"""Unit tests for the bitset vertex-set engine primitives."""

import pickle

import pytest

from repro.errors import IndexerMismatchError, ReproError, UnknownVertexError
from repro.graph.attributed_graph import AttributedGraph
from repro.graph.vertexset import (
    GraphBitsetIndex,
    VertexBitset,
    VertexIndexer,
    iter_bits,
    popcount,
)


class TestBitHelpers:
    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(0b1011) == 3
        assert popcount((1 << 500) | 1) == 2

    def test_iter_bits_ascending(self):
        assert list(iter_bits(0)) == []
        assert list(iter_bits(0b1011)) == [0, 1, 3]
        assert list(iter_bits(1 << 200)) == [200]

    def test_iter_bits_round_trip(self):
        mask = 0
        for i in (0, 5, 63, 64, 65, 129, 1000):
            mask |= 1 << i
        rebuilt = 0
        for i in iter_bits(mask):
            rebuilt |= 1 << i
        assert rebuilt == mask


class TestVertexIndexer:
    def test_ids_follow_insertion_order(self):
        indexer = VertexIndexer(["u", "v", "w"])
        assert [indexer.id_of(v) for v in ("u", "v", "w")] == [0, 1, 2]
        assert [indexer.vertex_of(i) for i in range(3)] == ["u", "v", "w"]

    def test_add_is_idempotent(self):
        indexer = VertexIndexer()
        assert indexer.add("x") == 0
        assert indexer.add("x") == 0
        assert len(indexer) == 1

    def test_unknown_vertex_raises(self):
        indexer = VertexIndexer(["u"])
        with pytest.raises(UnknownVertexError):
            indexer.id_of("nope")
        with pytest.raises(UnknownVertexError):
            indexer.mask_of(["u", "nope"])

    def test_mask_of_known_skips_unknown(self):
        indexer = VertexIndexer(["u", "v"])
        assert indexer.mask_of_known(["u", "nope"]) == 0b01

    def test_mask_round_trip(self):
        vertices = [f"v{i}" for i in range(130)]  # forces a multi-word mask
        indexer = VertexIndexer(vertices)
        subset = vertices[::3]
        mask = indexer.mask_of(subset)
        assert indexer.vertices_of(mask) == frozenset(subset)
        assert popcount(mask) == len(subset)

    def test_full_mask(self):
        indexer = VertexIndexer(range(5))
        assert indexer.full_mask == 0b11111
        assert VertexIndexer().full_mask == 0


class TestVertexBitset:
    def setup_method(self):
        self.indexer = VertexIndexer(range(100))

    def bs(self, vertices):
        return self.indexer.bitset(vertices)

    def test_empty(self):
        empty = self.bs([])
        assert len(empty) == 0
        assert not empty
        assert list(empty) == []
        assert empty.to_frozenset() == frozenset()

    def test_set_algebra_matches_frozensets(self):
        a, b = self.bs([1, 2, 3, 64, 65]), self.bs([2, 3, 4, 65, 99])
        fa, fb = frozenset([1, 2, 3, 64, 65]), frozenset([2, 3, 4, 65, 99])
        assert (a & b).to_frozenset() == fa & fb
        assert (a | b).to_frozenset() == fa | fb
        assert (a - b).to_frozenset() == fa - fb
        assert (a ^ b).to_frozenset() == fa ^ fb

    def test_len_is_popcount(self):
        assert len(self.bs([0, 63, 64, 99])) == 4

    def test_iteration_round_trip(self):
        vertices = {0, 7, 31, 32, 63, 64, 99}
        assert set(self.bs(vertices)) == vertices
        assert VertexBitset.from_vertices(self.indexer, vertices).to_frozenset() == vertices

    def test_contains(self):
        a = self.bs([5, 70])
        assert 5 in a and 70 in a
        assert 6 not in a and "stranger" not in a

    def test_subset_relations(self):
        small, big = self.bs([1, 2]), self.bs([1, 2, 3])
        assert small <= big and small < big
        assert big >= small and big > small
        assert not big <= small
        assert small <= small and not small < small

    def test_equality_and_hash(self):
        a, b = self.bs([1, 2]), self.bs([1, 2])
        assert a == b and hash(a) == hash(b)
        assert a == {1, 2} and a == frozenset({1, 2})
        assert a != self.bs([1])

    def test_eq_hash_contract_with_frozensets(self):
        # equal objects must hash equally, even across representations
        a = self.bs([1, 2, 64])
        assert a == frozenset({1, 2, 64})
        assert hash(a) == hash(frozenset({1, 2, 64}))
        assert {frozenset({1, 2, 64}): "hit"}[a] == "hit"

    def test_named_set_methods_accept_iterables(self):
        a = self.bs([1, 2])
        assert a.issubset({1, 2, 3})
        assert a.issubset(frozenset({1, 2}))
        assert not a.issubset([1])
        assert a.issubset([1, 2, "unknown-vertex"])  # extras outside the universe
        assert a.isdisjoint({3, 4})
        assert not a.isdisjoint([2, 9])
        assert a.isdisjoint(["unknown-vertex"])

    def test_dunder_comparison_with_foreign_type_raises_cleanly(self):
        with pytest.raises(TypeError):
            self.bs([1]) <= frozenset({1, 2})  # unordered across types

    def test_isdisjoint(self):
        assert self.bs([1]).isdisjoint(self.bs([2]))
        assert not self.bs([1, 2]).isdisjoint(self.bs([2, 3]))

    def test_mixed_indexers_rejected(self):
        other = VertexIndexer(range(100))
        with pytest.raises(ValueError):  # IndexerMismatchError is a ValueError
            self.bs([1]) & other.bitset([1])

    def test_mixed_indexer_operations_raise_typed_error(self):
        other = VertexIndexer(range(100))
        foreign = other.bitset([1, 2])
        for operation in (
            lambda a, b: a & b,
            lambda a, b: a | b,
            lambda a, b: a - b,
            lambda a, b: a ^ b,
            lambda a, b: a <= b,
            lambda a, b: a.issubset(b),
            lambda a, b: a.isdisjoint(b),
        ):
            with pytest.raises(IndexerMismatchError):
                operation(self.bs([1, 2]), foreign)

    def test_mixed_indexer_equality_raises_instead_of_comparing_bits(self):
        # Same raw bits over a different indexer may denote a different
        # vertex set entirely — equality must refuse, not silently answer.
        other = VertexIndexer(range(100))
        with pytest.raises(IndexerMismatchError):
            self.bs([1, 2]) == other.bitset([1, 2])
        with pytest.raises(IndexerMismatchError):
            self.bs([1, 2]) != other.bitset([3])

    def test_indexer_mismatch_error_is_catchable_as_library_error(self):
        other = VertexIndexer(range(100))
        with pytest.raises(ReproError) as excinfo:
            self.bs([1]) & other.bitset([1])
        assert excinfo.value.operation == "combine"
        assert "different indexers" in str(excinfo.value)

    def test_same_indexer_comparisons_still_work(self):
        assert self.bs([1, 2]) == self.bs([2, 1])
        assert self.bs([1]) != self.bs([2])
        # frozenset/set comparisons are content-based, never an error
        assert self.bs([1, 2]) == {1, 2}
        assert not (self.bs([1, 2]) == {1, 3})

    def test_single_word_and_multi_word(self):
        # below and above the 64-bit word boundary behave identically
        lo, hi = self.bs([0, 1, 2]), self.bs([64, 65, 99])
        assert len(lo) == len(hi) == 3
        assert (lo | hi).to_frozenset() == {0, 1, 2, 64, 65, 99}
        assert (lo & hi).to_frozenset() == frozenset()


class TestGraphBitsetIndex:
    def make_graph(self):
        graph = AttributedGraph()
        graph.add_edge("a", "b")
        graph.add_edge("b", "c")
        graph.add_attributes("a", ["x", "y"])
        graph.add_attributes("b", ["x"])
        graph.add_attributes("c", ["y"])
        return graph

    def test_build_matches_graph(self):
        graph = self.make_graph()
        index = graph.bitset_index()
        assert index.indexer.vertices_of(index.full_mask) == frozenset("abc")
        assert index.indexer.vertices_of(index.adjacency_mask("b")) == {"a", "c"}
        assert index.indexer.vertices_of(index.attribute_mask("x")) == {"a", "b"}
        assert index.attribute_mask("missing") == 0

    def test_members_mask_matches_vertices_with_all(self):
        graph = self.make_graph()
        index = graph.bitset_index()
        for attrs in ([], ["x"], ["y"], ["x", "y"], ["x", "missing"]):
            assert index.indexer.vertices_of(
                index.members_mask(attrs)
            ) == graph.vertices_with_all(attrs)

    def test_cache_reuse_and_invalidation(self):
        graph = self.make_graph()
        index = graph.bitset_index()
        assert graph.bitset_index() is index  # cached
        graph.add_vertex("a")  # no-op: vertex exists
        assert graph.bitset_index() is index
        graph.add_edge("a", "c")  # mutation invalidates
        fresh = graph.bitset_index()
        assert fresh is not index
        assert fresh.indexer.vertices_of(fresh.adjacency_mask("a")) == {"b", "c"}

    def test_invalidation_on_attribute_and_removal(self):
        graph = self.make_graph()
        first = graph.bitset_index()
        graph.add_attribute("c", "x")
        second = graph.bitset_index()
        assert second is not first
        assert second.indexer.vertices_of(second.attribute_mask("x")) == {"a", "b", "c"}
        graph.remove_vertex("b")
        third = graph.bitset_index()
        assert third.indexer.vertices_of(third.full_mask) == {"a", "c"}

    def test_working_mask_accepts_all_restriction_forms(self):
        graph = self.make_graph()
        index = graph.bitset_index()
        assert index.working_mask(None) == index.full_mask
        assert index.working_mask(["a", "zzz"]) == index.indexer.mask_of(["a"])
        native = index.bitset(index.indexer.mask_of(["a", "b"]))
        assert index.working_mask(native) == native.bits

    def test_index_survives_pickling(self):
        graph = self.make_graph()
        graph.bitset_index()
        clone = pickle.loads(pickle.dumps(graph))
        index = clone.bitset_index()
        assert index.indexer.vertices_of(index.attribute_mask("x")) == {"a", "b"}

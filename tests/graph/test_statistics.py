"""Unit tests for graph statistics."""

import pytest

from repro.graph.attributed_graph import AttributedGraph
from repro.graph.statistics import (
    attribute_support_histogram,
    connected_components,
    degree_distribution,
    edge_density,
    minimum_degree_ratio,
    summarize,
)


def path_graph(n: int) -> AttributedGraph:
    graph = AttributedGraph()
    for i in range(n - 1):
        graph.add_edge(i, i + 1)
    return graph


class TestDegreeDistribution:
    def test_empty_graph(self):
        dist = degree_distribution(AttributedGraph())
        assert dist.max_degree == 0
        assert dist.mean() == 0.0
        assert dist.probability(3) == 0.0

    def test_path_graph(self):
        dist = degree_distribution(path_graph(4))
        assert dist.max_degree == 2
        assert dist.probability(1) == pytest.approx(0.5)
        assert dist.probability(2) == pytest.approx(0.5)
        assert dist.probability(7) == 0.0

    def test_probabilities_sum_to_one(self, example_graph):
        dist = degree_distribution(example_graph)
        assert dist.probabilities.sum() == pytest.approx(1.0)

    def test_mean_degree_matches_handshake_lemma(self, example_graph):
        dist = degree_distribution(example_graph)
        assert dist.mean() == pytest.approx(
            2 * example_graph.num_edges / example_graph.num_vertices
        )


class TestDensityAndRatio:
    def test_edge_density_complete_graph(self):
        graph = AttributedGraph()
        for u in range(4):
            for v in range(u + 1, 4):
                graph.add_edge(u, v)
        assert edge_density(graph) == pytest.approx(1.0)

    def test_edge_density_small_graphs(self):
        assert edge_density(AttributedGraph()) == 0.0
        single = AttributedGraph(vertices=[1])
        assert edge_density(single) == 0.0

    def test_minimum_degree_ratio_clique(self, example_graph):
        assert minimum_degree_ratio(example_graph, {3, 4, 5, 6}) == pytest.approx(1.0)

    def test_minimum_degree_ratio_prism(self, example_graph):
        assert minimum_degree_ratio(
            example_graph, {6, 7, 8, 9, 10, 11}
        ) == pytest.approx(0.6)

    def test_minimum_degree_ratio_tiny_sets(self, example_graph):
        assert minimum_degree_ratio(example_graph, set()) == 0.0
        assert minimum_degree_ratio(example_graph, {1}) == 0.0


class TestComponentsAndSummary:
    def test_attribute_support_histogram(self, example_graph):
        histogram = attribute_support_histogram(example_graph)
        assert histogram["A"] == 11
        assert histogram["B"] == 6
        assert histogram["E"] == 2

    def test_connected_components_single(self, example_graph):
        components = connected_components(example_graph)
        assert len(components) == 1
        assert components[0] == set(range(1, 12))

    def test_connected_components_two_parts(self):
        graph = AttributedGraph()
        graph.add_edge(1, 2)
        graph.add_edge(3, 4)
        graph.add_vertex(5)
        components = connected_components(graph)
        assert sorted(len(c) for c in components) == [1, 2, 2]

    def test_summarize(self, example_graph):
        summary = summarize(example_graph)
        assert summary.num_vertices == 11
        assert summary.num_edges == 19
        assert summary.num_components == 1
        assert summary.max_degree == 6  # vertex 3 and 6 have degree 6
        row = summary.as_row()
        assert row[0] == 11 and row[1] == 19

"""Differential fuzz suite for the chunk-op backends.

The big-int chunk loop (:class:`repro.graph.chunkops.BigintChunkOps`) is
the reference; the vectorised numpy backend
(:class:`repro.graph.chunkops.NumpyChunkOps`) must produce **identical
canonical chunk dictionaries** — container types included (offset tuple
iff cardinality ≤ ``ARRAY_MAX``, Python-int bitmap otherwise, no empty
chunks) — for every operation, so that
:class:`~repro.graph.sparseset.SparseBitset` equality, hashing and
pickling never depend on which backend computed a value.  A plain
``set``-of-ids model is the independent third oracle both backends must
agree with.

Randomized sets span sub-chunk, few-chunk and many-chunk shapes on both
sides of the :data:`NUMPY_MIN_COMMON_CHUNKS` delegation threshold.  Seeds
are fixed so failures replay; CI appends one more seed through the
``REPRO_FUZZ_SEED`` environment variable, like the other differential
suites.
"""

import os
import pickle
import random

import pytest

from repro.errors import ParameterError
from repro.graph.chunkops import (
    ARRAY_MAX,
    BIGINT_CHUNKS,
    BigintChunkOps,
    CHUNK_BACKEND_ENV,
    CHUNK_BITS,
    NUMPY_CHUNKS,
    NumpyChunkOps,
    canonical,
    container_bits,
    container_count,
    get_chunk_backend,
    iter_chunk_ids,
    numpy_available,
    resolve_chunk_backend,
    set_chunk_backend,
)
from repro.graph.sparseset import SparseBitset

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="chunk-op differential needs numpy"
)

BASE_SEEDS = (3, 17)

#: (universe size, expected cardinality) — one-chunk sets, overlaps just
#: under and over the numpy delegation threshold, and wide many-chunk
#: sets with array and bitmap containers mixed.
SHAPE_GRID = (
    (CHUNK_BITS // 2, 40),
    (3 * CHUNK_BITS, 90),
    (6 * CHUNK_BITS, 500),
    (40 * CHUNK_BITS, 1200),
    (40 * CHUNK_BITS, 25000),
)

OPS = (
    "and_chunks",
    "or_chunks",
    "xor_chunks",
    "andnot_chunks",
    "intersection_count",
    "isdisjoint",
    "issubset",
)


def fuzz_seeds():
    seeds = list(BASE_SEEDS)
    extra = os.environ.get("REPRO_FUZZ_SEED")
    if extra is not None:
        seeds.append(int(extra))
    return seeds


def chunks_of(ids):
    """Canonical ``{chunk: container}`` dictionary of a set of ids."""
    raw = {}
    for value in ids:
        raw[value // CHUNK_BITS] = raw.get(value // CHUNK_BITS, 0) | (
            1 << (value % CHUNK_BITS)
        )
    return {chunk: canonical(bits) for chunk, bits in raw.items()}


def ids_of(chunks):
    return {
        i
        for chunk, container in chunks.items()
        for i in iter_chunk_ids(chunk, container)
    }


def assert_canonical(chunks):
    for container in chunks.values():
        count = container_count(container)
        assert count > 0, "empty chunk survived"
        if count <= ARRAY_MAX:
            assert isinstance(container, tuple)
            assert list(container) == sorted(container)
        else:
            assert isinstance(container, int)


def random_pair(rng, universe, cardinality):
    """Two random sets sharing about half their ids (dense overlaps)."""
    shared = rng.sample(range(universe), min(cardinality, universe))
    half = len(shared) // 2
    a = set(shared[:half]) | set(
        rng.sample(range(universe), min(cardinality // 2, universe))
    )
    b = set(shared[half:]) | set(
        rng.sample(range(universe), min(cardinality // 2, universe))
    )
    return a, b


def model(op, a_ids, b_ids):
    """Plain-set semantics of one chunk op."""
    if op == "and_chunks":
        return a_ids & b_ids
    if op == "or_chunks":
        return a_ids | b_ids
    if op == "xor_chunks":
        return a_ids ^ b_ids
    if op == "andnot_chunks":
        return a_ids - b_ids
    if op == "intersection_count":
        return len(a_ids & b_ids)
    if op == "isdisjoint":
        return a_ids.isdisjoint(b_ids)
    return a_ids <= b_ids


@pytest.mark.parametrize("seed", fuzz_seeds())
@pytest.mark.parametrize("universe,cardinality", SHAPE_GRID)
def test_numpy_chunk_ops_identical_to_bigint(seed, universe, cardinality):
    rng = random.Random(seed * 7919 + universe + cardinality)
    for trial in range(8):
        a_ids, b_ids = random_pair(rng, universe, cardinality)
        a, b = chunks_of(a_ids), chunks_of(b_ids)
        for op in OPS:
            reference = getattr(BigintChunkOps, op)(a, b)
            vectorized = getattr(NumpyChunkOps, op)(a, b)
            assert vectorized == reference, (op, seed, trial)
            if isinstance(reference, dict):
                assert_canonical(reference)
                assert_canonical(vectorized)
                # container *types* must match too, not just the id sets
                for chunk, container in reference.items():
                    assert type(vectorized[chunk]) is type(container)
                assert ids_of(reference) == model(op, a_ids, b_ids)
            else:
                assert reference == model(op, a_ids, b_ids)


@pytest.mark.parametrize("seed", fuzz_seeds())
def test_subset_and_edge_shapes(seed):
    rng = random.Random(seed)
    base = set(rng.sample(range(20 * CHUNK_BITS), 3000))
    sub = set(rng.sample(sorted(base), 1500))
    cases = [
        (sub, base),  # genuine subset across many chunks
        (base, sub),  # superset direction
        (set(), base),  # empty operand
        (base, set()),
        (base, base),  # identical operands
    ]
    for a_ids, b_ids in cases:
        a, b = chunks_of(a_ids), chunks_of(b_ids)
        for op in OPS:
            reference = getattr(BigintChunkOps, op)(a, b)
            vectorized = getattr(NumpyChunkOps, op)(a, b)
            assert vectorized == reference, op


@pytest.mark.parametrize("seed", fuzz_seeds())
def test_sparsebitset_equality_hash_pickle_across_backends(seed):
    """Values computed under different active backends are interchangeable."""
    rng = random.Random(seed * 31)
    a_ids, b_ids = random_pair(rng, 12 * CHUNK_BITS, 4000)
    previous = get_chunk_backend()
    try:
        set_chunk_backend(BIGINT_CHUNKS)
        by_bigint = {
            "and": SparseBitset(chunks_of(a_ids)) & SparseBitset(chunks_of(b_ids)),
            "or": SparseBitset(chunks_of(a_ids)) | SparseBitset(chunks_of(b_ids)),
            "andnot": SparseBitset(chunks_of(a_ids)).andnot(
                SparseBitset(chunks_of(b_ids))
            ),
        }
        set_chunk_backend(NUMPY_CHUNKS)
        by_numpy = {
            "and": SparseBitset(chunks_of(a_ids)) & SparseBitset(chunks_of(b_ids)),
            "or": SparseBitset(chunks_of(a_ids)) | SparseBitset(chunks_of(b_ids)),
            "andnot": SparseBitset(chunks_of(a_ids)).andnot(
                SparseBitset(chunks_of(b_ids))
            ),
        }
    finally:
        set_chunk_backend(previous.name)
    for key, reference in by_bigint.items():
        other = by_numpy[key]
        assert other == reference
        assert hash(other) == hash(reference)
        assert pickle.dumps(other._chunks) == pickle.dumps(reference._chunks)


# ----------------------------------------------------------------------
# backend resolution and the process-global switch
# ----------------------------------------------------------------------
def test_resolve_rejects_unknown_names():
    with pytest.raises(ParameterError):
        resolve_chunk_backend("roaring")


def test_resolve_auto_prefers_numpy_when_available(monkeypatch):
    monkeypatch.delenv(CHUNK_BACKEND_ENV, raising=False)
    assert resolve_chunk_backend("auto") == NUMPY_CHUNKS


def test_env_override_steers_auto(monkeypatch):
    monkeypatch.setenv(CHUNK_BACKEND_ENV, BIGINT_CHUNKS)
    assert resolve_chunk_backend("auto") == BIGINT_CHUNKS
    monkeypatch.setenv(CHUNK_BACKEND_ENV, "not-a-backend")
    with pytest.raises(ParameterError):
        resolve_chunk_backend("auto")
    # explicit names ignore the environment entirely
    assert resolve_chunk_backend(NUMPY_CHUNKS) == NUMPY_CHUNKS


def test_set_chunk_backend_switches_and_restores():
    previous = get_chunk_backend()
    try:
        assert set_chunk_backend(BIGINT_CHUNKS) is BigintChunkOps
        assert get_chunk_backend() is BigintChunkOps
        assert set_chunk_backend(NUMPY_CHUNKS) is NumpyChunkOps
        assert get_chunk_backend() is NumpyChunkOps
    finally:
        set_chunk_backend(previous.name)

"""Tests for the vertex-set engine selection seam (:mod:`repro.graph.engine`)."""

import pytest

from repro.errors import EngineError, ParameterError
from repro.graph.attributed_graph import AttributedGraph
from repro.graph.engine import (
    AUTO,
    DENSE,
    SPARSE,
    SPARSE_DENSITY_THRESHOLD,
    SPARSE_VERTEX_THRESHOLD,
    VertexSetEngine,
    resolve_engine,
)
from repro.graph.sparseset import SparseGraphBitsetIndex
from repro.graph.vertexset import GraphBitsetIndex
from repro.correlation.parameters import SCPMParams


def small_graph():
    graph = AttributedGraph()
    graph.add_edge("a", "b")
    graph.add_edge("b", "c")
    graph.add_attributes("a", ["x"])
    graph.add_attributes("b", ["x"])
    return graph


class TestResolveEngine:
    def test_explicit_names_pass_through(self):
        assert resolve_engine(DENSE, 10**6, 10) == DENSE
        assert resolve_engine(SPARSE, 3, 3) == SPARSE

    def test_auto_small_graphs_are_dense(self):
        assert resolve_engine(AUTO, SPARSE_VERTEX_THRESHOLD - 1, 10**6) == DENSE
        assert resolve_engine(AUTO, 0, 0) == DENSE

    def test_auto_big_sparse_graphs_are_sparse(self):
        n = SPARSE_VERTEX_THRESHOLD
        assert resolve_engine(AUTO, n, 3 * n) == SPARSE

    def test_auto_big_dense_graphs_stay_dense(self):
        n = SPARSE_VERTEX_THRESHOLD
        dense_edges = int(n * (n - 1) / 2 * SPARSE_DENSITY_THRESHOLD) + 1
        assert resolve_engine(AUTO, n, dense_edges) == DENSE

    def test_unknown_engine_raises_typed_error(self):
        with pytest.raises(EngineError):
            resolve_engine("roaring", 10, 10)
        with pytest.raises(ParameterError):  # EngineError is a ParameterError
            resolve_engine("", 10, 10)


class TestGraphEngineCache:
    def test_bitset_index_engine_dispatch(self):
        graph = small_graph()
        assert isinstance(graph.bitset_index("dense"), GraphBitsetIndex)
        assert isinstance(graph.bitset_index("sparse"), SparseGraphBitsetIndex)
        # auto resolves to dense at this size and shares the dense cache slot
        assert graph.bitset_index("auto") is graph.bitset_index("dense")

    def test_per_engine_caches_are_independent_and_invalidated_together(self):
        graph = small_graph()
        dense = graph.bitset_index("dense")
        sparse = graph.bitset_index("sparse")
        assert graph.bitset_index("dense") is dense
        assert graph.bitset_index("sparse") is sparse
        graph.add_edge("a", "c")
        assert graph.bitset_index("dense") is not dense
        assert graph.bitset_index("sparse") is not sparse

    def test_unknown_engine_propagates(self):
        with pytest.raises(EngineError):
            small_graph().bitset_index("hashed")


class TestProtocolConformance:
    @pytest.mark.parametrize("engine", ["dense", "sparse"])
    def test_both_indexes_satisfy_vertex_set_engine(self, engine):
        index = small_graph().bitset_index(engine)
        assert isinstance(index, VertexSetEngine)

    @pytest.mark.parametrize("engine", ["dense", "sparse"])
    def test_shared_surface_behaves_identically(self, engine):
        graph = small_graph()
        index = graph.bitset_index(engine)
        full = index.full_mask
        assert index.bitset(full).to_frozenset() == frozenset("abc")
        members = index.members_mask(["x"])
        assert index.bitset(members).to_frozenset() == {"a", "b"}
        assert members.bit_count() == 2
        native = index.native_from_ids([0, 2])
        assert native.bit_count() == 2
        assert index.nbytes() > 0
        ids, masks = index.local_adjacency(full)
        assert ids == [0, 1, 2]
        assert len(masks) == 3


def test_scpm_params_validate_engine():
    params = SCPMParams(min_support=2, gamma=0.5, min_size=2, engine="sparse")
    assert params.engine == "sparse"
    with pytest.raises(ParameterError):
        SCPMParams(min_support=2, gamma=0.5, min_size=2, engine="bitmap")

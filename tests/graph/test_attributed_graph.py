"""Unit tests for the core AttributedGraph structure."""

import pytest

from repro.errors import GraphError, UnknownAttributeError, UnknownVertexError
from repro.graph.attributed_graph import AttributedGraph


def build_small():
    graph = AttributedGraph()
    graph.add_edge(1, 2)
    graph.add_edge(2, 3)
    graph.add_attributes(1, ["a", "b"])
    graph.add_attributes(2, ["a"])
    graph.add_attributes(3, ["b"])
    return graph


class TestConstruction:
    def test_empty_graph(self):
        graph = AttributedGraph()
        assert graph.num_vertices == 0
        assert graph.num_edges == 0
        assert graph.num_attributes == 0

    def test_constructor_arguments(self):
        graph = AttributedGraph(
            vertices=[1, 2, 3],
            edges=[(1, 2)],
            attributes={1: ["a"], 2: ["a", "b"]},
        )
        assert graph.num_vertices == 3
        assert graph.num_edges == 1
        assert graph.attributes_of(2) == frozenset({"a", "b"})

    def test_add_vertex_idempotent(self):
        graph = AttributedGraph()
        graph.add_vertex(1)
        graph.add_vertex(1)
        assert graph.num_vertices == 1

    def test_add_edge_creates_vertices(self):
        graph = AttributedGraph()
        graph.add_edge("u", "v")
        assert graph.has_vertex("u") and graph.has_vertex("v")
        assert graph.has_edge("u", "v") and graph.has_edge("v", "u")

    def test_duplicate_edge_not_counted_twice(self):
        graph = AttributedGraph()
        graph.add_edge(1, 2)
        graph.add_edge(2, 1)
        assert graph.num_edges == 1

    def test_self_loop_rejected(self):
        graph = AttributedGraph()
        with pytest.raises(GraphError):
            graph.add_edge(1, 1)

    def test_add_attribute_creates_vertex(self):
        graph = AttributedGraph()
        graph.add_attribute(5, "z")
        assert graph.has_vertex(5)
        assert graph.attributes_of(5) == frozenset({"z"})

    def test_remove_vertex(self):
        graph = build_small()
        graph.remove_vertex(2)
        assert not graph.has_vertex(2)
        assert graph.num_edges == 0
        assert graph.vertices_with("a") == frozenset({1})

    def test_remove_vertex_drops_empty_attribute(self):
        graph = AttributedGraph()
        graph.add_attribute(1, "only")
        graph.remove_vertex(1)
        assert graph.num_attributes == 0

    def test_remove_unknown_vertex_raises(self):
        with pytest.raises(UnknownVertexError):
            AttributedGraph().remove_vertex(1)


class TestQueries:
    def test_counts(self):
        graph = build_small()
        assert graph.num_vertices == 3
        assert graph.num_edges == 2
        assert graph.num_attributes == 2

    def test_degree_and_neighbors(self):
        graph = build_small()
        assert graph.degree(2) == 2
        assert graph.neighbors(2) == frozenset({1, 3})

    def test_unknown_vertex_queries_raise(self):
        graph = build_small()
        with pytest.raises(UnknownVertexError):
            graph.degree(99)
        with pytest.raises(UnknownVertexError):
            graph.neighbors(99)
        with pytest.raises(UnknownVertexError):
            graph.attributes_of(99)

    def test_unknown_attribute_raises(self):
        graph = build_small()
        with pytest.raises(UnknownAttributeError):
            graph.vertices_with("zzz")

    def test_edges_iterated_once(self):
        graph = build_small()
        edges = {frozenset(edge) for edge in graph.edges()}
        assert edges == {frozenset({1, 2}), frozenset({2, 3})}
        assert sum(1 for _ in graph.edges()) == 2

    def test_contains_len_iter(self):
        graph = build_small()
        assert 1 in graph
        assert 99 not in graph
        assert len(graph) == 3
        assert set(iter(graph)) == {1, 2, 3}

    def test_repr(self):
        assert "num_vertices=3" in repr(build_small())


class TestInducedSets:
    def test_vertices_with_all_single(self):
        graph = build_small()
        assert graph.vertices_with_all(["a"]) == frozenset({1, 2})

    def test_vertices_with_all_intersection(self):
        graph = build_small()
        assert graph.vertices_with_all(["a", "b"]) == frozenset({1})

    def test_vertices_with_all_unknown_attribute(self):
        graph = build_small()
        assert graph.vertices_with_all(["a", "nope"]) == frozenset()

    def test_vertices_with_all_empty_set_is_all_vertices(self):
        graph = build_small()
        assert graph.vertices_with_all([]) == frozenset({1, 2, 3})

    def test_support(self):
        graph = build_small()
        assert graph.support(["a"]) == 2
        assert graph.support(["a", "b"]) == 1

    def test_subgraph_preserves_attributes_and_edges(self):
        graph = build_small()
        sub = graph.subgraph([1, 2])
        assert sub.num_vertices == 2
        assert sub.num_edges == 1
        assert sub.attributes_of(1) == frozenset({"a", "b"})

    def test_subgraph_unknown_vertex_raises(self):
        with pytest.raises(UnknownVertexError):
            build_small().subgraph([1, 42])

    def test_induced_by(self):
        graph = build_small()
        induced = graph.induced_by(["a"])
        assert set(induced.vertices()) == {1, 2}
        assert induced.has_edge(1, 2)

    def test_copy_is_equal_but_independent(self):
        graph = build_small()
        clone = graph.copy()
        assert clone == graph
        clone.add_edge(1, 3)
        assert clone != graph

    def test_equality_against_other_types(self):
        assert AttributedGraph() != 3


class TestExampleGraph:
    def test_example_dimensions(self, example_graph):
        assert example_graph.num_vertices == 11
        assert example_graph.num_edges == 19
        assert example_graph.num_attributes == 5

    def test_example_supports_match_paper(self, example_graph):
        assert example_graph.support(["A"]) == 11
        assert example_graph.support(["B"]) == 6
        assert example_graph.support(["C"]) == 3
        assert example_graph.support(["A", "B"]) == 6

"""Memory-scaling regression tests for the sparse adjacency engine.

The dense index stores one |V|-bit mask per vertex — O(|V|²/8) bytes no
matter how few edges exist.  The chunked sparse index must instead grow
with the number of *edges*: these tests pin that down on a 100k-vertex
sparse graph (the acceptance bar: ≥ 10× less memory than dense adjacency
masks) and on a |V|-doubling experiment at constant edge count.

``REPRO_SPARSE_SCALE`` shrinks the graphs for a quick smoke run (e.g.
``REPRO_SPARSE_SCALE=0.1``); the default is the full 100k-vertex acceptance
configuration.  The 10× bar is a property of the acceptance scale — dense
payload is quadratic, so the margin legitimately narrows as the graph
shrinks — and the assertions relax accordingly below full scale.
"""

import os

from repro.datasets.synthetic import random_edge_graph
from repro.graph.engine import dense_index_payload_bytes, resolve_engine
from repro.graph.sparseset import SparseGraphBitsetIndex


def scale() -> float:
    return float(os.environ.get("REPRO_SPARSE_SCALE", "1.0"))


def test_100k_sparse_graph_index_beats_dense_by_10x():
    num_vertices = int(100_000 * scale())
    num_edges = 3 * num_vertices
    graph = random_edge_graph(num_vertices, num_edges, seed=7)

    index = SparseGraphBitsetIndex.build(graph)
    sparse_bytes = index.nbytes()
    dense_bytes = dense_index_payload_bytes(num_vertices)

    if num_vertices >= 100_000:
        # Acceptance bar at full scale.
        assert sparse_bytes * 10 <= dense_bytes, (
            f"sparse index {sparse_bytes / 1e6:.1f} MB vs dense adjacency "
            f"{dense_bytes / 1e6:.1f} MB — less than the 10x acceptance margin"
        )
    elif num_vertices >= 10_000:
        # Smoke scale: the quadratic/linear crossover must already show.
        assert sparse_bytes < dense_bytes
    # Sanity at any scale: the index is faithful, not just small.
    probe = next(iter(graph.vertices()))
    assert index.bitset(index.adjacency_mask(probe)).to_frozenset() == frozenset(
        graph.neighbor_set(probe)
    )


def test_auto_engine_picks_sparse_at_this_scale():
    num_vertices = max(int(100_000 * scale()), 8192)
    assert resolve_engine("auto", num_vertices, 3 * num_vertices) == "sparse"
    assert resolve_engine("auto", 100, 300) == "dense"


def test_index_bytes_grow_with_edges_not_vertices_squared():
    """Double |V| at constant |E|: dense payload ~×4, sparse far below ×2.5."""
    base_vertices = max(int(50_000 * scale()), 2_000)
    num_edges = 3 * base_vertices

    small = SparseGraphBitsetIndex.build(
        random_edge_graph(base_vertices, num_edges, seed=11)
    )
    large = SparseGraphBitsetIndex.build(
        random_edge_graph(2 * base_vertices, num_edges, seed=11)
    )

    sparse_ratio = large.nbytes() / small.nbytes()
    dense_ratio = dense_index_payload_bytes(2 * base_vertices) / dense_index_payload_bytes(
        base_vertices
    )
    # The quadratic baseline the sparse index escapes (per-int overhead pulls
    # it slightly under the asymptotic 4x at small smoke scales).
    assert dense_ratio > 3.5
    assert sparse_ratio < 2.5, (
        f"sparse index grew {sparse_ratio:.2f}x when doubling |V| at fixed |E| "
        "— memory is tracking the universe size, not the edges"
    )


def test_index_bytes_roughly_linear_in_edges():
    """Double |E| at constant |V|: bytes must stay within ~2x + fixed cost."""
    num_vertices = max(int(40_000 * scale()), 2_000)
    lean = SparseGraphBitsetIndex.build(
        random_edge_graph(num_vertices, 2 * num_vertices, seed=13)
    )
    rich = SparseGraphBitsetIndex.build(
        random_edge_graph(num_vertices, 4 * num_vertices, seed=13)
    )
    assert rich.nbytes() < 2.2 * lean.nbytes()

"""Randomized differential fuzz suite: sparse engine vs dense vs frozensets.

Seeded-RNG graphs across a density/size grid drive every miner on both
vertex-set engines; the sparse engine's output must be **byte-identical**
to the dense engine's (record order, supports, ε/δ floats, covered sets and
patterns included) and consistent with the engine-free frozenset reference
paths (frozenset Eclat, brute-force quasi-clique oracle).

Seeds are fixed so failures replay; CI additionally runs the suite with two
extra pinned seeds through the ``REPRO_FUZZ_SEED`` environment variable,
which appends one more seed to the grid.
"""

import os

import pytest

from repro.correlation.naive import NaiveMiner
from repro.correlation.parameters import SCPMParams
from repro.correlation.scpm import SCPM
from repro.correlation.structural import structural_correlation
from repro.datasets.synthetic import random_attributed_graph
from repro.itemsets.eclat import EclatConfig, EclatMiner
from repro.quasiclique.reference import brute_force_maximal_quasi_cliques
from repro.quasiclique.definitions import QuasiCliqueParams
from repro.quasiclique.search import QuasiCliqueSearch, find_quasi_cliques

BASE_SEEDS = (3, 17)

#: (num_vertices, edge_probability) — from near-empty to dense, small enough
#: that the exhaustive naive baseline stays fast.
SIZE_DENSITY_GRID = (
    (10, 0.05),
    (14, 0.2),
    (18, 0.35),
    (18, 0.5),
    (26, 0.15),
)

PARAMS = SCPMParams(
    min_support=3, gamma=0.6, min_size=3, min_epsilon=0.1, top_k=5
)


def fuzz_seeds():
    """Fixed seeds plus an optional CI-injected one (REPRO_FUZZ_SEED)."""
    seeds = list(BASE_SEEDS)
    extra = os.environ.get("REPRO_FUZZ_SEED")
    if extra is not None:
        seeds.append(int(extra))
    return seeds


def fuzz_cases():
    return [
        (seed, n, p) for seed in fuzz_seeds() for n, p in SIZE_DENSITY_GRID
    ]


def fuzz_graph(seed, num_vertices, edge_probability):
    return random_attributed_graph(
        num_vertices=num_vertices,
        edge_probability=edge_probability,
        attributes=["a", "b", "c", "d"],
        attribute_probability=0.45,
        seed=seed * 1000 + num_vertices,
    )


def mining_fingerprint(result):
    """Every observable field of a MiningResult, bit-for-bit comparable."""
    return [
        (
            r.attributes,
            r.support,
            r.epsilon,  # exact float equality: engines must not diverge
            r.expected_epsilon,
            r.delta,
            r.covered_vertices,
            r.qualified,
            tuple((p.attributes, p.vertices, p.gamma) for p in r.patterns),
        )
        for r in result.evaluated
    ]


@pytest.mark.parametrize("seed,num_vertices,edge_probability", fuzz_cases())
class TestSparseEngineDifferential:
    def test_eclat_byte_identical_across_engines_and_frozensets(
        self, seed, num_vertices, edge_probability
    ):
        graph = fuzz_graph(seed, num_vertices, edge_probability)
        config = EclatConfig(min_support=2)
        reference = [
            (f.items, frozenset(f.tidset))
            for f in EclatMiner(config).mine_graph(graph)
        ]
        for engine in ("dense", "sparse"):
            mined = [
                (f.items, f.tidset.to_frozenset())
                for f in EclatMiner(
                    config, use_bitsets=True, engine=engine
                ).mine_graph(graph)
            ]
            assert mined == reference, engine  # order included

    def test_quasi_clique_search_byte_identical(
        self, seed, num_vertices, edge_probability
    ):
        graph = fuzz_graph(seed, num_vertices, edge_probability)
        dense = find_quasi_cliques(graph, 0.6, 3, engine="dense")
        sparse = find_quasi_cliques(graph, 0.6, 3, engine="sparse")
        assert sparse == dense  # enumeration order included
        if graph.num_vertices <= 18:
            oracle = set(
                brute_force_maximal_quasi_cliques(
                    graph, QuasiCliqueParams(gamma=0.6, min_size=3)
                )
            )
            assert set(dense) == oracle

    def test_coverage_and_topk_byte_identical(
        self, seed, num_vertices, edge_probability
    ):
        graph = fuzz_graph(seed, num_vertices, edge_probability)
        qc = QuasiCliqueParams(gamma=0.6, min_size=3)
        by_engine = {}
        for engine in ("dense", "sparse"):
            search = QuasiCliqueSearch(graph, qc, engine=engine)
            by_engine[engine] = (
                search.covered_vertices(),
                search.top_k(4),
                search.working_vertices,
            )
        assert by_engine["sparse"] == by_engine["dense"]

    def test_scpm_byte_identical_across_engines(
        self, seed, num_vertices, edge_probability
    ):
        graph = fuzz_graph(seed, num_vertices, edge_probability)
        dense = SCPM(graph, PARAMS.with_changes(engine="dense")).mine()
        sparse = SCPM(graph, PARAMS.with_changes(engine="sparse")).mine()
        assert mining_fingerprint(sparse) == mining_fingerprint(dense)

    def test_naive_byte_identical_across_engines(
        self, seed, num_vertices, edge_probability
    ):
        graph = fuzz_graph(seed, num_vertices, edge_probability)
        dense = NaiveMiner(graph, PARAMS.with_changes(engine="dense")).mine()
        sparse = NaiveMiner(graph, PARAMS.with_changes(engine="sparse")).mine()
        assert mining_fingerprint(sparse) == mining_fingerprint(dense)

    def test_sparse_scpm_agrees_with_frozenset_reference_miner(
        self, seed, num_vertices, edge_probability
    ):
        """Cross-algorithm oracle: sparse SCPM vs the exhaustive naive path.

        The naive miner applies no Theorem 3/4/5 pruning, so agreement on
        the qualified sets checks the sparse engine *and* the pruning rules
        at once (mirroring the dense differential suite).
        """
        graph = fuzz_graph(seed, num_vertices, edge_probability)
        scpm = SCPM(graph, PARAMS.with_changes(engine="sparse")).mine()
        naive = NaiveMiner(graph, PARAMS.with_changes(engine="dense")).mine()
        scpm_view = {
            r.attributes: (r.support, pytest.approx(r.epsilon), r.covered_vertices)
            for r in scpm.qualified
        }
        naive_view = {
            r.attributes: (r.support, r.epsilon, r.covered_vertices)
            for r in naive.qualified
        }
        assert naive_view == scpm_view


@pytest.mark.parametrize("seed", fuzz_seeds())
def test_structural_correlation_identical_across_engines(seed):
    graph = fuzz_graph(seed, 20, 0.3)
    qc = QuasiCliqueParams(gamma=0.6, min_size=3)
    for attribute in sorted(graph.attributes(), key=repr):
        eps_dense, cov_dense = structural_correlation(
            graph, [attribute], qc, engine="dense"
        )
        eps_sparse, cov_sparse = structural_correlation(
            graph, [attribute], qc, engine="sparse"
        )
        assert (eps_sparse, cov_sparse) == (eps_dense, cov_dense)


def test_table1_example_byte_identical_across_engines():
    """Acceptance criterion: the paper's Table 1 graph, all miners."""
    from repro.datasets.example import paper_example_graph

    graph = paper_example_graph()
    params = SCPMParams(
        min_support=3, gamma=0.6, min_size=4, min_epsilon=0.5, top_k=10
    )
    for miner in (SCPM, NaiveMiner):
        dense = miner(graph, params.with_changes(engine="dense")).mine()
        sparse = miner(graph, params.with_changes(engine="sparse")).mine()
        assert mining_fingerprint(sparse) == mining_fingerprint(dense)

"""Unit tests for the networkx converters."""

import networkx as nx
import pytest

from repro.errors import GraphError
from repro.graph.converters import from_networkx, to_networkx


class TestToNetworkx:
    def test_preserves_structure(self, example_graph):
        nxg = to_networkx(example_graph)
        assert nxg.number_of_nodes() == 11
        assert nxg.number_of_edges() == 19

    def test_stores_attributes_on_nodes(self, example_graph):
        nxg = to_networkx(example_graph)
        assert nxg.nodes[6]["attributes"] == ("A", "B", "C")


class TestFromNetworkx:
    def test_round_trip(self, example_graph):
        back = from_networkx(to_networkx(example_graph))
        assert back.num_vertices == example_graph.num_vertices
        assert back.num_edges == example_graph.num_edges
        assert back.support(["A", "B"]) == 6

    def test_explicit_attribute_mapping(self):
        nxg = nx.path_graph(3)
        graph = from_networkx(nxg, attributes={0: ["x"], 2: ["x", "y"]})
        assert graph.support(["x"]) == 2
        assert graph.attributes_of(1) == frozenset()

    def test_directed_rejected(self):
        with pytest.raises(GraphError):
            from_networkx(nx.DiGraph([(1, 2)]))

    def test_multigraph_rejected(self):
        with pytest.raises(GraphError):
            from_networkx(nx.MultiGraph([(1, 2), (1, 2)]))

    def test_self_loops_dropped(self):
        nxg = nx.Graph()
        nxg.add_edge(1, 1)
        nxg.add_edge(1, 2)
        graph = from_networkx(nxg)
        assert graph.num_edges == 1

"""Unit tests for graph validation."""

from repro.graph.attributed_graph import AttributedGraph
from repro.graph.validation import validate_graph


class TestValidateGraph:
    def test_valid_graph_passes(self, example_graph):
        report = validate_graph(example_graph, require_attributes=True, require_edges=True)
        assert report.ok
        assert bool(report)
        assert report.issues == []

    def test_empty_graph_fails(self):
        report = validate_graph(AttributedGraph())
        assert not report.ok
        assert "no vertices" in report.issues[0]

    def test_require_edges(self):
        graph = AttributedGraph(vertices=[1, 2])
        report = validate_graph(graph, require_edges=True)
        assert any("no edges" in issue for issue in report.issues)

    def test_require_attributes(self):
        graph = AttributedGraph(vertices=[1, 2], edges=[(1, 2)])
        graph.add_attribute(1, "a")
        report = validate_graph(graph, require_attributes=True)
        assert any("no attributes" in issue for issue in report.issues)

    def test_detects_corrupted_adjacency(self):
        graph = AttributedGraph(edges=[(1, 2)])
        # break the invariant on purpose through the private structure
        graph._adjacency[1].discard(2)
        report = validate_graph(graph)
        assert any("asymmetric" in issue for issue in report.issues)

    def test_detects_corrupted_attribute_index(self):
        graph = AttributedGraph(edges=[(1, 2)], attributes={1: ["a"]})
        graph._attribute_vertices["a"].add(2)
        report = validate_graph(graph)
        assert not report.ok

"""Property-style unit tests for the chunked sparse-set primitives.

Every algebraic operation of :class:`repro.graph.sparseset.SparseBitset` is
mirrored against plain Python ``set`` semantics over seeded random inputs
that straddle chunk and container-promotion boundaries, so array/bitmap
promotion, chunk dropping and iteration order can never drift from set
semantics unnoticed.
"""

import random

import pytest

from repro.errors import IndexerMismatchError
from repro.graph.sparseset import (
    ARRAY_MAX,
    CHUNK_BITS,
    SparseBitset,
    SparseGraphBitsetIndex,
    SparseVertexBitset,
)
from repro.graph.vertexset import VertexIndexer
from repro.graph.attributed_graph import AttributedGraph


def random_id_sets(seed, universe, rounds=25):
    """Seeded pairs of random id sets spread over several chunks."""
    rng = random.Random(seed)
    for _ in range(rounds):
        size_a = rng.randrange(0, 80)
        size_b = rng.randrange(0, 80)
        yield (
            {rng.randrange(universe) for _ in range(size_a)},
            {rng.randrange(universe) for _ in range(size_b)},
        )


class TestSparseBitsetAlgebra:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize(
        "universe",
        [
            60,  # everything inside one chunk, array containers
            CHUNK_BITS,  # single chunk, mixed containers
            CHUNK_BITS * 5,  # several chunks
            CHUNK_BITS * 300,  # mostly-empty chunk space
        ],
    )
    def test_ops_mirror_python_sets(self, seed, universe):
        for set_a, set_b in random_id_sets(seed, universe):
            a = SparseBitset.from_iterable(set_a)
            b = SparseBitset.from_iterable(set_b)
            assert set(a & b) == set_a & set_b
            assert set(a | b) == set_a | set_b
            assert set(a - b) == set_a - set_b
            assert set(a ^ b) == set_a ^ set_b
            assert a.bit_count() == len(set_a)
            assert len(a | b) == len(set_a | set_b)
            assert a.isdisjoint(b) == set_a.isdisjoint(set_b)
            assert a.issubset(b) == set_a.issubset(set_b)
            assert (a & b).issubset(a)
            assert a.intersection_count(b) == len(set_a & set_b)
            assert bool(a) == bool(set_a)

    @pytest.mark.parametrize("seed", [5, 6])
    def test_iteration_is_ascending_and_complete(self, seed):
        rng = random.Random(seed)
        ids = {rng.randrange(CHUNK_BITS * 40) for _ in range(300)}
        sparse = SparseBitset.from_iterable(ids)
        listed = list(sparse)
        assert listed == sorted(ids)
        assert all(value in sparse for value in ids)
        assert (max(ids) + 1) not in sparse

    def test_equality_and_hash_are_content_based(self):
        ids = [3, 77, CHUNK_BITS + 5, CHUNK_BITS * 9]
        a = SparseBitset.from_iterable(ids)
        b = SparseBitset.from_iterable(reversed(ids))
        assert a == b
        assert hash(a) == hash(b)
        assert a != SparseBitset.from_iterable(ids[:-1])

    def test_mask_round_trip(self):
        mask = (1 << 3) | (1 << (CHUNK_BITS - 1)) | (1 << (CHUNK_BITS * 7 + 13))
        sparse = SparseBitset.from_mask(mask)
        assert sparse.to_mask() == mask
        assert list(sparse) == [3, CHUNK_BITS - 1, CHUNK_BITS * 7 + 13]

    def test_empty_set(self):
        empty = SparseBitset()
        assert not empty
        assert len(empty) == 0
        assert list(empty) == []
        assert empty.to_mask() == 0
        other = SparseBitset.from_iterable([1])
        assert (empty & other) == empty
        assert (empty | other) == other
        assert empty.issubset(other)
        assert empty.isdisjoint(other)


class TestContainerPromotion:
    def containers_of(self, sparse):
        return {chunk: type(c) for chunk, c in sparse._chunks.items()}

    def test_boundary_cardinalities(self):
        # exactly ARRAY_MAX members -> array container (sorted tuple)
        at_boundary = SparseBitset.from_iterable(range(ARRAY_MAX))
        assert self.containers_of(at_boundary) == {0: tuple}
        assert at_boundary._chunks[0] == tuple(range(ARRAY_MAX))
        # one past the boundary -> bitmap container (int)
        promoted = SparseBitset.from_iterable(range(ARRAY_MAX + 1))
        assert self.containers_of(promoted) == {0: int}

    def test_operations_keep_containers_canonical(self):
        dense_chunk = SparseBitset.from_iterable(range(ARRAY_MAX * 4))
        thin = SparseBitset.from_iterable(range(0, ARRAY_MAX * 4, 8))
        # intersection shrinks below the boundary -> demoted back to array
        shrunk = dense_chunk & thin
        assert self.containers_of(shrunk) == {0: tuple}
        # union past the boundary -> promoted to bitmap
        grown = thin | dense_chunk
        assert self.containers_of(grown) == {0: int}

    def test_empty_chunks_are_dropped(self):
        a = SparseBitset.from_iterable([1, CHUNK_BITS + 1])
        b = SparseBitset.from_iterable([CHUNK_BITS + 1])
        assert set((a - b)._chunks) == {0}
        assert set((a ^ a)._chunks) == set()
        assert set((a & b)._chunks) == {1}

    @pytest.mark.parametrize("seed", [11, 13])
    def test_canonical_invariant_after_random_ops(self, seed):
        rng = random.Random(seed)
        current = SparseBitset.from_iterable(
            rng.randrange(CHUNK_BITS * 3) for _ in range(50)
        )
        for _ in range(30):
            other = SparseBitset.from_iterable(
                rng.randrange(CHUNK_BITS * 3) for _ in range(50)
            )
            op = rng.choice(["and", "or", "xor", "sub"])
            if op == "and":
                current = current & other
            elif op == "or":
                current = current | other
            elif op == "xor":
                current = current ^ other
            else:
                current = current - other
            for chunk, container in current._chunks.items():
                count = (
                    container.bit_count()
                    if isinstance(container, int)
                    else len(container)
                )
                assert count > 0, "empty chunk retained"
                if isinstance(container, tuple):
                    assert count <= ARRAY_MAX
                    assert list(container) == sorted(container)
                else:
                    assert count > ARRAY_MAX
                    assert container < (1 << CHUNK_BITS)


class TestSparseVertexBitset:
    def setup_method(self):
        self.indexer = VertexIndexer([f"v{i}" for i in range(CHUNK_BITS + 50)])

    def bs(self, vertices):
        return SparseVertexBitset.from_vertices(self.indexer, vertices)

    def test_set_protocol_matches_frozenset(self):
        names_a = {"v1", "v2", "v1030"}
        names_b = {"v2", "v49", "v1030"}
        a, b = self.bs(names_a), self.bs(names_b)
        assert (a & b).to_frozenset() == names_a & names_b
        assert (a | b).to_frozenset() == names_a | names_b
        assert (a - b).to_frozenset() == names_a - names_b
        assert (a ^ b).to_frozenset() == names_a ^ names_b
        assert len(a) == 3 and set(a) == names_a
        assert "v1" in a and "v3" not in a and "stranger" not in a
        assert a == names_a and hash(a) == hash(frozenset(names_a))
        assert a.issubset(names_a | {"unknown-vertex"})
        assert a.isdisjoint(["v7", "unknown-vertex"])

    def test_subset_ordering(self):
        small, big = self.bs(["v1"]), self.bs(["v1", "v1030"])
        assert small <= big and small < big
        assert big >= small and big > small
        assert not big <= small

    def test_mixed_indexers_raise_typed_error(self):
        foreign = SparseVertexBitset.from_vertices(
            VertexIndexer([f"v{i}" for i in range(60)]), ["v1"]
        )
        with pytest.raises(IndexerMismatchError):
            self.bs(["v1"]) & foreign
        with pytest.raises(IndexerMismatchError):
            self.bs(["v1"]) == foreign
        with pytest.raises(ValueError):  # typed error stays a ValueError
            self.bs(["v1"]) | foreign


class TestSparseGraphBitsetIndex:
    def make_graph(self):
        graph = AttributedGraph()
        graph.add_edge("a", "b")
        graph.add_edge("b", "c")
        graph.add_attributes("a", ["x", "y"])
        graph.add_attributes("b", ["x"])
        graph.add_attributes("c", ["y"])
        return graph

    def test_build_matches_graph(self):
        graph = self.make_graph()
        index = SparseGraphBitsetIndex.build(graph)
        assert index.bitset(index.full_mask).to_frozenset() == frozenset("abc")
        assert index.bitset(index.adjacency_mask("b")).to_frozenset() == {"a", "c"}
        assert index.bitset(index.attribute_mask("x")).to_frozenset() == {"a", "b"}
        assert not index.attribute_mask("missing")

    def test_members_mask_matches_vertices_with_all(self):
        graph = self.make_graph()
        index = SparseGraphBitsetIndex.build(graph)
        for attrs in ([], ["x"], ["y"], ["x", "y"], ["x", "missing"]):
            assert index.bitset(
                index.members_mask(attrs)
            ).to_frozenset() == graph.vertices_with_all(attrs)

    def test_working_mask_accepts_all_restriction_forms(self):
        graph = self.make_graph()
        index = SparseGraphBitsetIndex.build(graph)
        assert index.working_mask(None) == index.full_mask
        assert set(index.working_mask(["a", "zzz"])) == {index.indexer.id_of("a")}
        view = index.bitset(index.native_from_ids([0, 1]))
        assert index.working_mask(view) is view.chunks  # zero-copy

    def test_local_adjacency_matches_dense_engine(self):
        graph = self.make_graph()
        sparse = SparseGraphBitsetIndex.build(graph)
        dense = graph.bitset_index("dense")
        working_ids = [0, 1, 2]
        dense_ids, dense_masks = dense.local_adjacency(
            dense.native_from_ids(working_ids)
        )
        sparse_ids, sparse_masks = sparse.local_adjacency(
            sparse.native_from_ids(working_ids)
        )
        assert sparse_ids == dense_ids
        assert sparse_masks == dense_masks

    def test_local_adjacency_min_degree_prepass_is_sound(self, monkeypatch):
        # path a-b-c plus isolated d: with min_degree=2 only nothing survives,
        # with min_degree=1 the path survives without d.  The pre-pass only
        # runs above the dense fast-path bound, so pin the bound to 0 here.
        import repro.graph.sparseset as sparseset_module

        monkeypatch.setattr(sparseset_module, "LOCAL_DENSE_FAST_PATH_MAX", 0)
        graph = self.make_graph()
        graph.add_vertex("d")
        index = SparseGraphBitsetIndex.build(graph)
        ids, masks = index.local_adjacency(index.full_mask, min_degree=1)
        assert [index.indexer.vertex_of(i) for i in ids] == ["a", "b", "c"]
        assert masks == [0b010, 0b101, 0b010]
        ids2, _ = index.local_adjacency(index.full_mask, min_degree=2)
        assert ids2 == []

    def test_local_adjacency_small_working_set_fast_path(self):
        # Below the fast-path bound min_degree pre-dropping is skipped (the
        # engine contract allows it: callers prune to the same fixpoint) and
        # the projected masks must match the chunk-algebra path exactly.
        import repro.graph.sparseset as sparseset_module

        graph = self.make_graph()
        graph.add_vertex("d")
        index = SparseGraphBitsetIndex.build(graph)
        assert graph.num_vertices <= sparseset_module.LOCAL_DENSE_FAST_PATH_MAX
        ids, masks = index.local_adjacency(index.full_mask, min_degree=1)
        assert [index.indexer.vertex_of(i) for i in ids] == ["a", "b", "c", "d"]
        assert masks == [0b0010, 0b0101, 0b0010, 0b0000]

"""Streaming ingestion tests — builder, handle surface, differential grid.

The load-bearing property is at the bottom: on the randomized
size/density grid (the same shape as ``test_sparse_differential``), every
miner run on a :class:`~repro.graph.streaming.StreamedGraphHandle` must
produce **byte-identical** :class:`~repro.correlation.patterns.MiningResult`
output — record order, ε/δ floats, covered sets, patterns — to the same
miner on the in-memory graph loaded from the same files.
"""

import os
import pickle

import pytest

from repro.correlation.naive import NaiveMiner
from repro.correlation.parameters import SCPMParams
from repro.correlation.scpm import SCPM, mine_scpm_files
from repro.datasets.synthetic import random_attributed_graph
from repro.errors import (
    FormatError,
    StreamingError,
    UnknownAttributeError,
    UnknownVertexError,
)
from repro.graph.io import read_attributed_graph, write_attributed_graph
from repro.graph.sparseset import SparseGraphBitsetIndex
from repro.graph.streaming import (
    StreamedGraphHandle,
    StreamingGraphBuilder,
    stream_attributed_graph,
    stream_attributes,
    stream_edge_list,
)
from repro.graph.vertexset import GraphBitsetIndex
from repro.itemsets.eclat import EclatConfig, EclatMiner
from repro.quasiclique.search import find_quasi_cliques

PARAMS = SCPMParams(
    min_support=3, gamma=0.6, min_size=3, min_epsilon=0.1, top_k=5
)

def fuzz_seeds():
    """Fixed seeds plus an optional CI-injected one (REPRO_FUZZ_SEED)."""
    seeds = [3, 17]
    extra = os.environ.get("REPRO_FUZZ_SEED")
    if extra is not None:
        seeds.append(int(extra))
    return seeds


#: Seed × (num_vertices, edge_probability) differential grid — small enough
#: that every case runs all miners on four graph objects.
GRID = [
    (seed, n, p)
    for seed in fuzz_seeds()
    for n, p in ((10, 0.05), (14, 0.2), (18, 0.35), (24, 0.15))
]


def fuzz_graph(seed, num_vertices, edge_probability):
    return random_attributed_graph(
        num_vertices=num_vertices,
        edge_probability=edge_probability,
        attributes=["a", "b", "c", "d"],
        attribute_probability=0.45,
        seed=seed * 1000 + num_vertices,
    )


def mining_fingerprint(result):
    """Every observable field of a MiningResult, bit-for-bit comparable."""
    return [
        (
            r.attributes,
            r.support,
            r.epsilon,
            r.expected_epsilon,
            r.delta,
            r.covered_vertices,
            r.qualified,
            tuple((p.attributes, p.vertices, p.gamma) for p in r.patterns),
        )
        for r in result.evaluated
    ]


@pytest.fixture
def paper_files(tmp_path, example_graph):
    edges = tmp_path / "g.edges"
    attrs = tmp_path / "g.attrs"
    write_attributed_graph(example_graph, edges, attrs)
    return edges, attrs


class TestBuilder:
    def test_incremental_build(self):
        builder = StreamingGraphBuilder()
        builder.add_edge("u", "v")
        builder.add_edge("v", "w")
        builder.add_vertex("isolated")
        builder.add_attributes("u", ["a", "b", "a"])  # repeats collapse
        handle = builder.finish()
        assert handle.num_vertices == 4
        assert handle.num_edges == 2
        assert handle.attributes_of("u") == frozenset({"a", "b"})
        assert handle.degree("isolated") == 0

    def test_duplicate_edges_collapse(self):
        builder = StreamingGraphBuilder()
        builder.add_edge(1, 2)
        builder.add_edge(2, 1)
        builder.add_edge(1, 2)
        handle = builder.finish()
        assert handle.num_edges == 1
        assert handle.has_edge(2, 1)

    def test_self_loop_rejected(self):
        builder = StreamingGraphBuilder()
        with pytest.raises(StreamingError):
            builder.add_edge(1, 1)

    def test_finished_builder_refuses_input(self):
        builder = StreamingGraphBuilder()
        builder.add_edge(1, 2)
        builder.finish()
        with pytest.raises(StreamingError):
            builder.add_edge(2, 3)
        with pytest.raises(StreamingError):
            builder.finish()


class TestStreamReaders:
    def test_same_graph_as_in_memory_loader(self, paper_files, example_graph):
        handle = stream_attributed_graph(*paper_files)
        assert handle.num_vertices == example_graph.num_vertices
        assert handle.num_edges == example_graph.num_edges
        assert set(handle.attributes()) == set(example_graph.attributes())
        for vertex in example_graph.vertices():
            assert handle.neighbors(vertex) == example_graph.neighbors(vertex)
            assert handle.attributes_of(vertex) == example_graph.attributes_of(vertex)

    def test_edge_file_only(self, tmp_path):
        path = tmp_path / "g.edges"
        path.write_text("# comment\n1 2\n\n2 3\n3 3\n")
        handle = stream_attributed_graph(path)
        assert handle.num_vertices == 3  # self-loop line skipped entirely
        assert handle.num_edges == 2
        assert handle.num_attributes == 0

    def test_attribute_file_adds_isolated_vertices(self, tmp_path):
        edges = tmp_path / "g.edges"
        attrs = tmp_path / "g.attrs"
        edges.write_text("1 2\n")
        attrs.write_text("3 x\n4\n")
        handle = stream_attributed_graph(edges, attrs)
        assert handle.has_vertex(3) and handle.has_vertex(4)
        assert handle.degree(3) == 0
        assert handle.support(["x"]) == 1

    def test_malformed_edge_line_raises_format_error(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("1 2\nonly\n")
        with pytest.raises(FormatError, match="bad.edges:2"):
            stream_edge_list(path)

    def test_streaming_into_existing_builder(self, tmp_path):
        edges = tmp_path / "g.edges"
        attrs = tmp_path / "g.attrs"
        edges.write_text("1 2\n")
        attrs.write_text("1 a\n")
        builder = stream_edge_list(edges)
        handle = stream_attributes(attrs, builder).finish()
        assert handle.support(["a"]) == 1


class TestHandleSurface:
    def test_queries_match_attributed_graph(self, paper_files, example_graph):
        handle = stream_attributed_graph(*paper_files)
        assert len(handle) == len(example_graph)
        assert set(iter(handle)) == set(iter(example_graph))
        for vertex in example_graph.vertices():
            assert vertex in handle
            assert handle.degree(vertex) == example_graph.degree(vertex)
        for attribute in example_graph.attributes():
            assert handle.vertices_with(attribute) == example_graph.vertices_with(
                attribute
            )
        assert handle.vertices_with_all(["A", "B"]) == example_graph.vertices_with_all(
            ["A", "B"]
        )
        assert handle.vertices_with_all([]) == frozenset(example_graph.vertices())
        assert handle.support(["A"]) == example_graph.support(["A"])
        assert handle.vertices_with_all(["A", "missing"]) == frozenset()
        assert (
            handle.attribute_support_index()
            == example_graph.attribute_support_index()
        )
        assert {frozenset(e) for e in handle.edges()} == {
            frozenset(e) for e in example_graph.edges()
        }

    def test_membership_and_repr(self, paper_files):
        handle = stream_attributed_graph(*paper_files)
        assert not handle.has_vertex("nope")
        assert not handle.has_edge("nope", "nope either")
        assert "nope" not in handle
        assert repr(handle) == (
            f"StreamedGraphHandle(num_vertices={handle.num_vertices}, "
            f"num_edges={handle.num_edges}, "
            f"num_attributes={handle.num_attributes})"
        )

    def test_unknown_lookups_raise_typed_errors(self, paper_files):
        handle = stream_attributed_graph(*paper_files)
        with pytest.raises(UnknownVertexError):
            handle.degree("nope")
        with pytest.raises(UnknownVertexError):
            handle.neighbors("nope")
        with pytest.raises(UnknownAttributeError):
            handle.vertices_with("nope")

    def test_handle_is_immutable(self, paper_files):
        handle = stream_attributed_graph(*paper_files)
        for mutate in (
            lambda: handle.add_vertex(99),
            lambda: handle.add_edge(99, 100),
            lambda: handle.add_attribute(1, "z"),
            lambda: handle.add_attributes(1, ["z"]),
            lambda: handle.remove_vertex(1),
        ):
            with pytest.raises(StreamingError):
                mutate()

    def test_bitset_index_engines_and_caching(self, paper_files):
        handle = stream_attributed_graph(*paper_files)
        sparse = handle.bitset_index("sparse")
        assert isinstance(sparse, SparseGraphBitsetIndex)
        assert handle.bitset_index("sparse") is sparse
        dense = handle.bitset_index("dense")
        assert isinstance(dense, GraphBitsetIndex)
        assert handle.bitset_index("dense") is dense
        assert dense.indexer is sparse.indexer  # shared vertex universe
        # Small graph: auto resolves dense, exactly like AttributedGraph.
        assert handle.bitset_index("auto") is dense
        for vertex in handle.vertices():
            assert dense.adjacency_mask(vertex) == sparse.adjacency_mask(
                vertex
            ).to_mask()

    def test_pickle_round_trip(self, paper_files):
        handle = stream_attributed_graph(*paper_files)
        clone = pickle.loads(pickle.dumps(handle))
        assert clone.num_vertices == handle.num_vertices
        assert clone.num_edges == handle.num_edges
        assert mining_fingerprint(
            SCPM(clone, PARAMS).mine()
        ) == mining_fingerprint(SCPM(handle, PARAMS).mine())

    def test_materialisation(self, paper_files, example_graph):
        handle = stream_attributed_graph(*paper_files)
        assert handle.to_attributed_graph() == example_graph
        keep = sorted(example_graph.vertices(), key=repr)[:5]
        assert handle.subgraph(keep) == example_graph.subgraph(keep)
        assert handle.induced_by(["A"]) == example_graph.induced_by(["A"])
        with pytest.raises(UnknownVertexError):
            handle.subgraph(["nope"])


@pytest.mark.parametrize("seed,num_vertices,edge_probability", GRID)
class TestStreamedMiningDifferential:
    """Streamed handle vs in-memory graph loaded from the same files."""

    @pytest.fixture
    def loaded_pair(self, tmp_path, seed, num_vertices, edge_probability):
        graph = fuzz_graph(seed, num_vertices, edge_probability)
        edges = tmp_path / "g.edges"
        attrs = tmp_path / "g.attrs"
        write_attributed_graph(graph, edges, attrs)
        return read_attributed_graph(edges, attrs), stream_attributed_graph(
            edges, attrs
        )

    def test_scpm_byte_identical(self, loaded_pair):
        graph, handle = loaded_pair
        for engine in ("dense", "sparse", "auto"):
            params = PARAMS.with_changes(engine=engine)
            streamed = SCPM(handle, params).mine()
            in_memory = SCPM(graph, params).mine()
            assert mining_fingerprint(streamed) == mining_fingerprint(
                in_memory
            ), engine

    def test_naive_byte_identical(self, loaded_pair):
        graph, handle = loaded_pair
        streamed = NaiveMiner(handle, PARAMS).mine()
        in_memory = NaiveMiner(graph, PARAMS).mine()
        assert mining_fingerprint(streamed) == mining_fingerprint(in_memory)

    def test_eclat_byte_identical(self, loaded_pair):
        graph, handle = loaded_pair
        config = EclatConfig(min_support=2)
        for engine in ("dense", "sparse"):
            miner = EclatMiner(config, use_bitsets=True, engine=engine)
            streamed = [
                (f.items, f.tidset.to_frozenset()) for f in miner.mine_graph(handle)
            ]
            in_memory = [
                (f.items, f.tidset.to_frozenset()) for f in miner.mine_graph(graph)
            ]
            assert streamed == in_memory, engine

    def test_quasi_clique_search_byte_identical(self, loaded_pair):
        graph, handle = loaded_pair
        for engine in ("dense", "sparse"):
            assert find_quasi_cliques(
                handle, 0.6, 3, engine=engine
            ) == find_quasi_cliques(graph, 0.6, 3, engine=engine), engine


def test_parallel_scpm_on_streamed_handle_matches_sequential(tmp_path):
    """file → stream → work-stealing scheduler → byte-identical results."""
    graph = fuzz_graph(7, 20, 0.25)
    edges = tmp_path / "g.edges"
    attrs = tmp_path / "g.attrs"
    write_attributed_graph(graph, edges, attrs)
    handle = stream_attributed_graph(edges, attrs)
    sequential = SCPM(graph, PARAMS).mine()
    parallel = SCPM(handle, PARAMS.with_changes(n_jobs=2)).mine()
    assert mining_fingerprint(parallel) == mining_fingerprint(sequential)


def test_mine_scpm_files_both_loaders(tmp_path, example_graph, example_scpm_params):
    edges = tmp_path / "g.edges"
    attrs = tmp_path / "g.attrs"
    write_attributed_graph(example_graph, edges, attrs)
    streamed = mine_scpm_files(edges, attrs, example_scpm_params)
    in_memory = mine_scpm_files(edges, attrs, example_scpm_params, streaming=False)
    reference = SCPM(example_graph, example_scpm_params).mine()
    assert mining_fingerprint(streamed) == mining_fingerprint(reference)
    assert mining_fingerprint(in_memory) == mining_fingerprint(reference)


def test_scpm_from_files_returns_streamed_handle(tmp_path, example_graph):
    edges = tmp_path / "g.edges"
    attrs = tmp_path / "g.attrs"
    write_attributed_graph(example_graph, edges, attrs)
    miner = SCPM.from_files(edges, attrs, PARAMS)
    assert isinstance(miner.graph, StreamedGraphHandle)
    miner = SCPM.from_files(edges, attrs, PARAMS, streaming=False)
    assert not isinstance(miner.graph, StreamedGraphHandle)

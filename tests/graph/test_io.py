"""Unit tests for graph reading/writing."""

import pytest

from repro.errors import FormatError
from repro.graph.io import (
    from_json,
    read_attributed_graph,
    read_attributes,
    read_edge_list,
    read_json,
    to_json,
    write_attributed_graph,
    write_json,
)


@pytest.fixture
def edge_file(tmp_path):
    path = tmp_path / "g.edges"
    path.write_text("# comment\n1 2\n2 3\n\n3 1\n")
    return path


@pytest.fixture
def attr_file(tmp_path):
    path = tmp_path / "g.attrs"
    path.write_text("# vertex attrs\n1 a b\n2 a\n3\n4 c\n")
    return path


class TestReading:
    def test_read_edge_list(self, edge_file):
        graph = read_edge_list(edge_file)
        assert graph.num_vertices == 3
        assert graph.num_edges == 3

    def test_read_edge_list_bad_line(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("justone\n")
        with pytest.raises(FormatError):
            read_edge_list(path)

    def test_read_edge_list_skips_self_loops(self, tmp_path):
        path = tmp_path / "loops.edges"
        path.write_text("1 1\n1 2\n")
        graph = read_edge_list(path)
        assert graph.num_edges == 1

    def test_read_attributes(self, attr_file):
        graph = read_attributes(attr_file)
        assert graph.attributes_of(1) == frozenset({"a", "b"})
        assert graph.attributes_of(3) == frozenset()
        assert graph.has_vertex(4)

    def test_read_attributed_graph(self, edge_file, attr_file):
        graph = read_attributed_graph(edge_file, attr_file)
        assert graph.num_vertices == 4  # vertex 4 only appears in the attribute file
        assert graph.num_edges == 3
        assert graph.support(["a"]) == 2

    def test_vertex_tokens_parsed_as_int_when_possible(self, tmp_path):
        path = tmp_path / "mixed.edges"
        path.write_text("1 alice\n")
        graph = read_edge_list(path)
        assert graph.has_vertex(1)
        assert graph.has_vertex("alice")


class TestWriting:
    def test_round_trip_files(self, tmp_path, example_graph):
        edges = tmp_path / "out.edges"
        attrs = tmp_path / "out.attrs"
        write_attributed_graph(example_graph, edges, attrs)
        loaded = read_attributed_graph(edges, attrs)
        assert loaded.num_vertices == example_graph.num_vertices
        assert loaded.num_edges == example_graph.num_edges
        assert loaded.support(["A", "B"]) == 6

    def test_json_round_trip(self, example_graph):
        text = to_json(example_graph)
        loaded = from_json(text)
        assert loaded.num_vertices == example_graph.num_vertices
        assert loaded.num_edges == example_graph.num_edges
        assert loaded.support(["A"]) == 11

    def test_json_file_round_trip(self, tmp_path, example_graph):
        path = tmp_path / "g.json"
        write_json(example_graph, path)
        loaded = read_json(path)
        assert loaded.num_edges == example_graph.num_edges

    def test_from_json_errors(self):
        with pytest.raises(FormatError):
            from_json("not json at all {")
        with pytest.raises(FormatError):
            from_json("{}")
        with pytest.raises(FormatError):
            from_json('{"vertices": {}, "edges": [[1, 2, 3]]}')

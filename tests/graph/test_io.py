"""Unit tests for graph reading/writing.

Covers the documented grammar of ``docs/FILE_FORMATS.md`` end to end:
round-trips, the shared record iterators, and the malformed/edge-case
inputs (blank lines, duplicate edges, self-loops, extra tokens, attribute
records for vertices absent from the edge file).
"""

import pytest

from repro.errors import FormatError, GraphError
from repro.graph.attributed_graph import AttributedGraph
from repro.graph.io import (
    from_json,
    iter_attribute_records,
    iter_edge_records,
    parse_vertex_token,
    read_attributed_graph,
    read_attributes,
    read_edge_list,
    read_json,
    to_json,
    write_attributed_graph,
    write_json,
)


@pytest.fixture
def edge_file(tmp_path):
    path = tmp_path / "g.edges"
    path.write_text("# comment\n1 2\n2 3\n\n3 1\n")
    return path


@pytest.fixture
def attr_file(tmp_path):
    path = tmp_path / "g.attrs"
    path.write_text("# vertex attrs\n1 a b\n2 a\n3\n4 c\n")
    return path


class TestReading:
    def test_read_edge_list(self, edge_file):
        graph = read_edge_list(edge_file)
        assert graph.num_vertices == 3
        assert graph.num_edges == 3

    def test_read_edge_list_bad_line(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("justone\n")
        with pytest.raises(FormatError):
            read_edge_list(path)

    def test_read_edge_list_skips_self_loops(self, tmp_path):
        path = tmp_path / "loops.edges"
        path.write_text("1 1\n1 2\n")
        graph = read_edge_list(path)
        assert graph.num_edges == 1

    def test_read_attributes(self, attr_file):
        graph = read_attributes(attr_file)
        assert graph.attributes_of(1) == frozenset({"a", "b"})
        assert graph.attributes_of(3) == frozenset()
        assert graph.has_vertex(4)

    def test_read_attributed_graph(self, edge_file, attr_file):
        graph = read_attributed_graph(edge_file, attr_file)
        assert graph.num_vertices == 4  # vertex 4 only appears in the attribute file
        assert graph.num_edges == 3
        assert graph.support(["a"]) == 2

    def test_vertex_tokens_parsed_as_int_when_possible(self, tmp_path):
        path = tmp_path / "mixed.edges"
        path.write_text("1 alice\n")
        graph = read_edge_list(path)
        assert graph.has_vertex(1)
        assert graph.has_vertex("alice")

    def test_parse_vertex_token_rule(self):
        assert parse_vertex_token("42") == 42
        assert parse_vertex_token("-3") == -3
        assert parse_vertex_token("v42") == "v42"
        assert parse_vertex_token("4.2") == "4.2"

    def test_blank_and_comment_lines_skipped_everywhere(self, tmp_path):
        edges = tmp_path / "g.edges"
        attrs = tmp_path / "g.attrs"
        edges.write_text("\n   \n# header\n1 2\n\n# trailing\n")
        attrs.write_text("# header\n\n1 a\n   \n")
        graph = read_attributed_graph(edges, attrs)
        assert graph.num_edges == 1
        assert graph.attributes_of(1) == frozenset({"a"})

    def test_duplicate_edges_collapse(self, tmp_path):
        path = tmp_path / "dup.edges"
        path.write_text("1 2\n1 2\n2 1\n1 3\n")
        graph = read_edge_list(path)
        assert graph.num_edges == 2
        assert graph.degree(1) == 2

    def test_extra_edge_tokens_ignored(self, tmp_path):
        path = tmp_path / "weighted.edges"
        path.write_text("1 2 0.75 extra\n")
        graph = read_edge_list(path)
        assert graph.num_edges == 1
        assert not graph.has_vertex("0.75")

    def test_format_error_names_file_and_line(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("1 2\n\n# ok\nonlyone\n")
        with pytest.raises(FormatError, match=r"bad\.edges:4"):
            read_edge_list(path)

    def test_attribute_file_vertices_not_in_edge_file_are_added(self, tmp_path):
        """A vertex unknown to the edge file becomes an isolated vertex."""
        edges = tmp_path / "g.edges"
        attrs = tmp_path / "g.attrs"
        edges.write_text("1 2\n")
        attrs.write_text("7 topic\n")
        graph = read_attributed_graph(edges, attrs)
        assert graph.has_vertex(7)
        assert graph.degree(7) == 0
        assert graph.support(["topic"]) == 1

    def test_repeated_attribute_records_merge(self, tmp_path):
        path = tmp_path / "g.attrs"
        path.write_text("1 a\n1 b a\n")
        graph = read_attributes(path)
        assert graph.attributes_of(1) == frozenset({"a", "b"})

    def test_read_into_existing_graph(self, edge_file):
        graph = AttributedGraph(vertices=[99])
        loaded = read_edge_list(edge_file, graph)
        assert loaded is graph
        assert graph.has_vertex(99) and graph.num_edges == 3


class TestRecordIterators:
    """The shared grammar both the in-memory and streaming readers use."""

    def test_iter_edge_records_skips_and_numbers(self, tmp_path):
        path = tmp_path / "g.edges"
        path.write_text("# c\n1 2\n3 3\n\n4 five\n")
        records = list(iter_edge_records(path))
        assert records == [(2, 1, 2), (5, 4, "five")]  # self-loop line gone

    def test_iter_attribute_records(self, tmp_path):
        path = tmp_path / "g.attrs"
        path.write_text("1 a b\n2\n# c\nbob x\n")
        records = list(iter_attribute_records(path))
        assert records == [(1, 1, ["a", "b"]), (2, 2, []), (4, "bob", ["x"])]


class TestWriting:
    def test_round_trip_files(self, tmp_path, example_graph):
        edges = tmp_path / "out.edges"
        attrs = tmp_path / "out.attrs"
        write_attributed_graph(example_graph, edges, attrs)
        loaded = read_attributed_graph(edges, attrs)
        assert loaded.num_vertices == example_graph.num_vertices
        assert loaded.num_edges == example_graph.num_edges
        assert loaded.support(["A", "B"]) == 6

    def test_json_round_trip(self, example_graph):
        text = to_json(example_graph)
        loaded = from_json(text)
        assert loaded.num_vertices == example_graph.num_vertices
        assert loaded.num_edges == example_graph.num_edges
        assert loaded.support(["A"]) == 11

    def test_json_file_round_trip(self, tmp_path, example_graph):
        path = tmp_path / "g.json"
        write_json(example_graph, path)
        loaded = read_json(path)
        assert loaded.num_edges == example_graph.num_edges

    def test_from_json_errors(self):
        with pytest.raises(FormatError):
            from_json("not json at all {")
        with pytest.raises(FormatError):
            from_json("{}")
        with pytest.raises(FormatError):
            from_json('{"vertices": {}, "edges": [[1, 2, 3]]}')

    def test_from_json_self_loop_raises_graph_error(self):
        with pytest.raises(GraphError):
            from_json('{"vertices": {}, "edges": [[1, 1]]}')

    def test_string_vertex_round_trip(self, tmp_path):
        graph = AttributedGraph(
            edges=[("alice", "bob"), ("bob", 3)],
            attributes={"alice": ["x", "y"], 3: ["x"]},
        )
        edges = tmp_path / "s.edges"
        attrs = tmp_path / "s.attrs"
        write_attributed_graph(graph, edges, attrs)
        loaded = read_attributed_graph(edges, attrs)
        assert loaded == graph

    def test_round_trip_preserves_every_record(self, tmp_path, example_graph):
        """Full-fidelity round trip: attributes and adjacency, per vertex."""
        edges = tmp_path / "rt.edges"
        attrs = tmp_path / "rt.attrs"
        write_attributed_graph(example_graph, edges, attrs)
        loaded = read_attributed_graph(edges, attrs)
        assert loaded == example_graph

"""Serialization hooks of the vertex-set indexes (parallel transfer path).

The parallel transfer layer ships graphs, indexes and candidate bitsets to
workers as one pickle.  These tests pin the two properties that transfer
relies on: round-trips reproduce the index exactly (with recomputable
state rebuilt), and everything serialized together keeps sharing a single
indexer object after unpickling.
"""

import pickle

import pytest

from repro.datasets.example import paper_example_graph
from repro.graph.sparseset import SparseBitset, SparseGraphBitsetIndex
from repro.graph.vertexset import GraphBitsetIndex, VertexIndexer


@pytest.fixture()
def graph():
    return paper_example_graph()


class TestVertexIndexer:
    def test_roundtrip_rebuilds_id_table(self):
        indexer = VertexIndexer(["u", "v", "w"])
        clone = pickle.loads(pickle.dumps(indexer))
        assert list(clone) == list(indexer)
        assert [clone.id_of(v) for v in clone] == [0, 1, 2]
        assert clone.mask_of(["u", "w"]) == indexer.mask_of(["u", "w"])

    def test_state_drops_the_redundant_dict(self):
        indexer = VertexIndexer(["a", "b"])
        assert indexer.__getstate__() == ["a", "b"]


class TestSparseBitset:
    def test_roundtrip_recomputes_count(self):
        original = SparseBitset.from_iterable([1, 2, 70000, 90001])
        clone = pickle.loads(pickle.dumps(original))
        assert clone == original
        assert clone.bit_count() == 4
        assert sorted(clone) == sorted(original)


class TestDenseIndex:
    def test_roundtrip(self, graph):
        index = graph.bitset_index("dense")
        clone = pickle.loads(pickle.dumps(index))
        assert isinstance(clone, GraphBitsetIndex)
        assert list(clone.indexer) == list(index.indexer)
        assert clone.adjacency_masks == index.adjacency_masks
        assert clone.attribute_masks == index.attribute_masks

    def test_single_indexer_invariant_through_one_pickle(self, graph):
        """Graph, cached index and candidate bitsets serialized together
        unify back onto ONE indexer — the invariant the parallel branch
        tasks rely on when intersecting covered sets."""
        index = graph.bitset_index("dense")
        a = index.bitset(index.attribute_mask("A"))
        b = index.bitset(index.attribute_mask("B"))
        graph2, a2, b2 = pickle.loads(pickle.dumps((graph, a, b)))
        index2 = graph2.bitset_index("dense")
        assert a2.indexer is index2.indexer
        assert b2.indexer is index2.indexer
        # cross-candidate operations therefore work worker-side
        assert (a2 & b2).to_frozenset() == (a & b).to_frozenset()


class TestSparseIndex:
    def test_roundtrip_and_lazy_full_mask(self, graph):
        index = graph.bitset_index("sparse")
        _ = index.full_mask  # populate the lazy cache before pickling
        clone = pickle.loads(pickle.dumps(index))
        assert isinstance(clone, SparseGraphBitsetIndex)
        assert clone._full is None  # recomputable state stays local
        assert clone.full_mask == index.full_mask
        assert list(clone.indexer) == list(index.indexer)
        for vertex in graph.vertices():
            assert clone.adjacency_mask(vertex) == index.adjacency_mask(vertex)
        for attribute in graph.attributes():
            assert clone.attribute_mask(attribute) == index.attribute_mask(attribute)

    def test_single_indexer_invariant_through_one_pickle(self, graph):
        index = graph.bitset_index("sparse")
        a = index.bitset(index.attribute_mask("A"))
        graph2, a2 = pickle.loads(pickle.dumps((graph, a)))
        index2 = graph2.bitset_index("sparse")
        assert a2.indexer is index2.indexer
        assert a2.to_frozenset() == a.to_frozenset()

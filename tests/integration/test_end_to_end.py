"""End-to-end integration tests across the whole pipeline.

These exercise the path a user of the library follows: generate (or load) an
attributed graph, mine it with SCPM, inspect the ranking tables and the
patterns, and round-trip everything through the I/O layer.
"""

import pytest

from repro import (
    SCPM,
    AttributedGraph,
    NaiveMiner,
    SCPMParams,
    load_profile,
    structural_correlation,
)
from repro.analysis.ranking import render_case_study_table
from repro.correlation.null_models import AnalyticalNullModel
from repro.graph.io import read_attributed_graph, write_attributed_graph
from repro.quasiclique.definitions import QuasiCliqueParams


@pytest.fixture(scope="module")
def profile():
    return load_profile("small-dblp", scale=0.6)


@pytest.fixture(scope="module")
def graph(profile):
    return profile.build()


@pytest.fixture(scope="module")
def result(profile, graph):
    return SCPM(graph, profile.params).mine()


class TestEndToEnd:
    def test_planted_topics_rank_high_by_delta(self, profile, graph, result):
        top_delta_labels = {
            frozenset(r.attributes) for r in result.top_by_delta(10, min_set_size=2)
        }
        planted = {
            frozenset(c.attributes)
            for c in profile.spec.communities
            if c.attributes and graph.support(c.attributes) >= profile.params.min_support
        }
        assert planted & top_delta_labels, "no planted topic reached the top-delta table"

    def test_patterns_live_inside_their_induced_graphs(self, profile, graph, result):
        for pattern in result.patterns:
            members = graph.vertices_with_all(pattern.attributes)
            assert pattern.vertices <= members
            assert pattern.size >= profile.params.min_size

    def test_epsilon_consistency_between_api_layers(self, profile, graph, result):
        qc_params = profile.params.quasi_clique_params()
        for record in result.qualified[:5]:
            epsilon, _ = structural_correlation(graph, record.attributes, qc_params)
            assert epsilon == pytest.approx(record.epsilon)

    def test_delta_consistency_with_null_model(self, profile, graph, result):
        model = AnalyticalNullModel(graph, profile.params.quasi_clique_params())
        for record in result.evaluated[:10]:
            expected = model.expected_epsilon(record.support)
            assert record.expected_epsilon == pytest.approx(expected)

    def test_naive_and_scpm_qualified_sets_agree(self, profile, graph, result):
        naive = NaiveMiner(graph, profile.params).mine()
        assert {r.attributes for r in result.qualified} == {
            r.attributes for r in naive.qualified
        }

    def test_render_tables(self, result):
        text = render_case_study_table(result, "small-dblp", n=5, min_set_size=1)
        assert "top-delta" in text and "sigma" in text

    def test_io_round_trip_preserves_mining_output(self, tmp_path, graph, profile):
        edges = tmp_path / "graph.edges"
        attrs = tmp_path / "graph.attrs"
        write_attributed_graph(graph, edges, attrs)
        reloaded = read_attributed_graph(edges, attrs)
        original = SCPM(graph, profile.params, collect_patterns=False).mine()
        round_tripped = SCPM(reloaded, profile.params, collect_patterns=False).mine()
        original_stats = {r.attributes: (r.support, pytest.approx(r.epsilon)) for r in original.evaluated}
        reloaded_stats = {r.attributes: (r.support, r.epsilon) for r in round_tripped.evaluated}
        assert set(original_stats) == set(reloaded_stats)

    def test_building_a_graph_by_hand(self):
        graph = AttributedGraph()
        for member in range(5):
            graph.add_attributes(member, ["go", "club"])
        for u in range(5):
            for v in range(u + 1, 5):
                graph.add_edge(u, v)
        for outsider in range(5, 30):
            graph.add_attribute(outsider, "go")
            graph.add_edge(outsider, (outsider + 1) % 30)
        params = SCPMParams(min_support=5, gamma=0.8, min_size=4, min_epsilon=0.1)
        result = SCPM(graph, params).mine()
        club = result.find(["club", "go"])
        assert club.qualified
        assert club.epsilon == 1.0
        go = result.find(["go"])
        assert go.epsilon == pytest.approx(5 / 30)

"""Unit tests of the evolve layer (:mod:`repro.graph.evolve`).

Pins the container-level contract incremental mining stands on: edits
are copy-on-write (live aliases keep seeing the pre-edit graph), the
evolved index is bit-identical to one rebuilt from scratch off the
replayed graph, the :class:`DeltaReport` footprint is exact, and the
edit-script file grammar round-trips.
"""

from __future__ import annotations

import pytest

from repro.errors import FormatError, GraphError, StreamingError
from repro.graph.evolve import (
    AttributeEdit,
    DeltaReport,
    EdgeEdit,
    apply_attribute_batch,
    apply_edge_batch,
    read_attribute_edits,
    read_edge_edits,
)
from repro.graph.sparseset import CHUNK_BITS
from repro.graph.streaming import StreamingGraphBuilder


def _handle_of(graph):
    """Stream a hashed graph into a fresh handle (same first-seen order)."""
    builder = StreamingGraphBuilder()
    for vertex in graph.vertices():
        builder.add_vertex(vertex)
    for u, v in graph.edges():
        builder.add_edge(u, v)
    for vertex in graph.vertices():
        attributes = graph.attributes_of(vertex)
        if attributes:
            builder.add_attributes(vertex, sorted(map(str, attributes)))
    return builder.finish()


def _small_handle():
    builder = StreamingGraphBuilder()
    for vertex in range(4):
        builder.add_vertex(vertex)
    builder.add_edge(0, 1)
    builder.add_edge(1, 2)
    builder.add_attributes(0, ["x"])
    builder.add_attributes(1, ["x", "y"])
    return builder.finish()


class TestCopyOnWrite:
    def test_edge_edit_replaces_containers(self):
        index = _small_handle().bitset_index("sparse")
        before = index.adjacency_sets[0]
        before_chunks = dict(before._chunks)
        report = apply_edge_batch(index, [EdgeEdit(0, 2)])
        assert report.edges_added == 1
        # the old container object is intact and no longer installed
        assert before._chunks == before_chunks
        assert index.adjacency_sets[0] is not before

    def test_attribute_edit_replaces_containers(self):
        index = _small_handle().bitset_index("sparse")
        before = index.attribute_masks["x"]
        before_chunks = dict(before._chunks)
        report = apply_attribute_batch(index, [AttributeEdit(2, "x")])
        assert report.attributes_added == 1
        assert before._chunks == before_chunks
        assert index.attribute_masks["x"] is not before


class TestDeltaReport:
    def test_edge_counts_and_footprint(self):
        index = _small_handle().bitset_index("sparse")
        report = apply_edge_batch(
            index,
            [
                EdgeEdit(0, 2),            # effective add
                EdgeEdit(0, 1),            # duplicate: no-op
                EdgeEdit(1, 2, add=False), # effective remove
                EdgeEdit(0, 3, add=False), # absent edge: no-op
                EdgeEdit(9, 8, add=False), # unknown endpoints: no-op
            ],
        )
        assert report.edges_added == 1
        assert report.edges_removed == 1
        assert report.vertices_added == 0
        assert report.touched_chunks == frozenset({0})
        assert report.structural_change
        assert not report.empty

    def test_addition_registers_new_vertices_in_order(self):
        index = _small_handle().bitset_index("sparse")
        report = apply_edge_batch(index, [EdgeEdit(0, 10), EdgeEdit(11, 10)])
        assert report.vertices_added == 2
        assert index.indexer.id_of(10) == 4
        assert index.indexer.id_of(11) == 5
        assert len(index.adjacency_sets) == 6

    def test_attribute_counts_and_names(self):
        index = _small_handle().bitset_index("sparse")
        report = apply_attribute_batch(
            index,
            [
                AttributeEdit(2, "y"),              # effective add
                AttributeEdit(1, "y", add=False),   # effective remove
                AttributeEdit(1, "y", add=False),   # now absent: no-op
                AttributeEdit(9, "y", add=False),   # unknown vertex: no-op
            ],
        )
        assert report.attributes_added == 1
        assert report.attributes_removed == 1
        assert report.edited_attributes == frozenset({"y"})
        assert not report.structural_change  # attributes only

    def test_removing_last_holder_deletes_attribute(self):
        index = _small_handle().bitset_index("sparse")
        apply_attribute_batch(index, [AttributeEdit(1, "y", add=False)])
        assert "y" not in index.attribute_masks
        apply_attribute_batch(index, [AttributeEdit(3, "y")])
        assert "y" in index.attribute_masks

    def test_noop_batch_is_empty(self):
        index = _small_handle().bitset_index("sparse")
        report = apply_edge_batch(index, [EdgeEdit(0, 1)])  # already present
        assert report.empty
        assert report.touched_chunks == frozenset()

    def test_merge_unions_footprints(self):
        a = DeltaReport(
            touched_chunks=frozenset({0}), edges_added=1, vertices_added=1
        )
        b = DeltaReport(
            touched_chunks=frozenset({2}),
            edited_attributes=frozenset({"x"}),
            attributes_removed=2,
        )
        merged = a.merge(b)
        assert merged.touched_chunks == frozenset({0, 2})
        assert merged.edited_attributes == frozenset({"x"})
        assert merged.edges_added == 1
        assert merged.attributes_removed == 2
        assert merged.vertices_added == 1

    def test_self_loop_raises(self):
        index = _small_handle().bitset_index("sparse")
        with pytest.raises(GraphError):
            apply_edge_batch(index, [EdgeEdit(1, 1)])

    def test_cross_chunk_edge_touches_both_chunks(self):
        builder = StreamingGraphBuilder()
        for vertex in range(CHUNK_BITS + 2):
            builder.add_vertex(vertex)
        index = builder.finish().bitset_index("sparse")
        report = apply_edge_batch(index, [EdgeEdit(0, CHUNK_BITS + 1)])
        assert report.touched_chunks == frozenset({0, 1})


class TestEvolvedMatchesRebuilt:
    def test_evolved_index_equals_rebuilt_from_replay(self, evolving_graph):
        scenario = evolving_graph(seed=3)
        handle = scenario.build_handle()
        for edge_edits, attribute_edits in scenario.batches():
            handle.apply_edge_batch(edge_edits)
            handle.apply_attribute_batch(attribute_edits)
        evolved = handle.bitset_index("sparse")
        rebuilt = _handle_of(
            scenario.replay(len(scenario.batches()))
        ).bitset_index("sparse")
        assert list(evolved.indexer) == list(rebuilt.indexer)
        assert evolved.adjacency_sets == rebuilt.adjacency_sets
        # attribute key order may differ after remove/re-add cycles —
        # mining sorts, so only dict equality matters
        assert dict(evolved.attribute_masks) == dict(rebuilt.attribute_masks)

    def test_handle_counts_track_edits(self, evolving_graph):
        scenario = evolving_graph(seed=17)
        handle = scenario.build_handle()
        for edge_edits, attribute_edits in scenario.batches():
            handle.apply_edge_batch(edge_edits)
            handle.apply_attribute_batch(attribute_edits)
        final = scenario.replay(len(scenario.batches()))
        assert handle.num_vertices == final.num_vertices
        assert handle.num_edges == final.num_edges

    def test_per_element_mutators_still_raise(self):
        handle = _small_handle()
        with pytest.raises(StreamingError):
            handle.add_edge(0, 3)
        with pytest.raises(StreamingError):
            handle.add_attribute(0, "z")


class TestEditScriptFiles:
    def test_round_trip(self, tmp_path):
        edge_path = tmp_path / "edges.edits"
        edge_path.write_text(
            "# day one\n"
            "add 1 2\n"
            "\n"
            "remove 3 4\n"
        )
        assert read_edge_edits(edge_path) == [
            EdgeEdit(1, 2, add=True),
            EdgeEdit(3, 4, add=False),
        ]
        attr_path = tmp_path / "attrs.edits"
        attr_path.write_text("add 7 blue\nremove 7 red\n")
        assert read_attribute_edits(attr_path) == [
            AttributeEdit(7, "blue", add=True),
            AttributeEdit(7, "red", add=False),
        ]

    @pytest.mark.parametrize(
        "line",
        ["toggle 1 2", "add 1", "add 1 2 3", "remove"],
    )
    def test_bad_edge_lines_raise(self, tmp_path, line):
        path = tmp_path / "bad.edits"
        path.write_text(line + "\n")
        with pytest.raises(FormatError):
            read_edge_edits(path)

    def test_bad_attribute_lines_raise(self, tmp_path):
        path = tmp_path / "bad.edits"
        path.write_text("flip 1 x\n")
        with pytest.raises(FormatError):
            read_attribute_edits(path)

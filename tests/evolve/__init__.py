"""Tests for evolving graphs: batched edits, chunk-level invalidation,
and the delta-vs-full incremental mining differential harness."""

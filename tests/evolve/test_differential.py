"""The headline delta-vs-full differential harness.

For every seed × engine × schedule × n_jobs configuration, an
:class:`~repro.correlation.incremental.IncrementalSCPM` mines an
evolving handle once and applies random edit batches; after every batch
its patched result must be **byte-identical** (every observable record
field, record order included) to a from-scratch :class:`SCPM` mine of
the independently replayed
:class:`~repro.graph.attributed_graph.AttributedGraph` oracle.  The
oracle replays the same edit script through the hashed per-element
mutators, so the two sides share no graph code below the mining layer.

``REPRO_FUZZ_SEED`` appends a CI-injected seed to the fixed ones — this
module is part of the differential-fuzz job's matrix.
"""

from __future__ import annotations

import os

import pytest

from repro.correlation.incremental import IncrementalSCPM
from repro.correlation.parameters import SCPMParams
from repro.correlation.scpm import SCPM
from repro.datasets.evolving import patch_scenario, random_scenario

BASE_SEEDS = (3, 17)

#: engine × schedule × n_jobs corners: both engines sequentially, both
#: schedules through the parallel scheduler (the incremental rerun path
#: fans dirty branches out through the same submit protocol as a full
#: parallel mine).
CONFIGS = (
    ("dense", "steal", 1),
    ("sparse", "steal", 1),
    ("dense", "steal", 2),
    ("sparse", "stripe", 2),
)

PARAMS = SCPMParams(
    min_support=3, gamma=0.6, min_size=3, min_epsilon=0.1, top_k=5
)


def fuzz_seeds():
    """Fixed seeds plus an optional CI-injected one (REPRO_FUZZ_SEED)."""
    seeds = list(BASE_SEEDS)
    extra = os.environ.get("REPRO_FUZZ_SEED")
    if extra is not None:
        seeds.append(int(extra))
    return seeds


def mining_fingerprint(result):
    """Every observable field of a MiningResult, bit-for-bit comparable."""
    return [
        (
            r.attributes,
            r.support,
            r.epsilon,  # exact float equality: paths must not diverge
            r.expected_epsilon,
            r.delta,
            r.covered_vertices,
            r.qualified,
            tuple((p.attributes, p.vertices, p.gamma) for p in r.patterns),
        )
        for r in result.evaluated
    ]


def config_params(engine, schedule, n_jobs):
    return SCPMParams(
        min_support=PARAMS.min_support,
        gamma=PARAMS.gamma,
        min_size=PARAMS.min_size,
        min_epsilon=PARAMS.min_epsilon,
        top_k=PARAMS.top_k,
        engine=engine,
        schedule=schedule,
        n_jobs=n_jobs,
    )


@pytest.mark.parametrize("engine,schedule,n_jobs", CONFIGS)
@pytest.mark.parametrize("seed", fuzz_seeds())
def test_incremental_equals_full_remine(seed, engine, schedule, n_jobs):
    params = config_params(engine, schedule, n_jobs)
    scenario = random_scenario(seed, num_vertices=40, num_batches=3)
    miner = IncrementalSCPM(scenario.build_handle(), params)
    miner.mine()
    # the initial mine itself must match a full mine of the initial graph
    baseline = SCPM(scenario.initial_graph(), params).mine()
    assert mining_fingerprint(miner.result) == mining_fingerprint(baseline)
    for step, (edge_edits, attribute_edits) in enumerate(
        scenario.batches(), start=1
    ):
        miner.update(edge_edits=edge_edits, attribute_edits=attribute_edits)
        oracle = scenario.replay(step)
        full = SCPM(oracle, params).mine()
        assert mining_fingerprint(miner.result) == mining_fingerprint(full), (
            f"divergence after batch {step} "
            f"(seed={seed}, engine={engine}, schedule={schedule}, "
            f"n_jobs={n_jobs})"
        )


@pytest.mark.parametrize("seed", fuzz_seeds())
def test_multichunk_reuse_stays_identical(seed):
    """The reuse path (clean roots kept, dirty branches re-run) is exact.

    Chunk-aligned patches with edits confined to patch 0: most roots are
    provably clean and must be *reused*, and the patched result must
    still match the full re-mine bit for bit.
    """
    params = SCPMParams(
        min_support=3,
        gamma=0.6,
        min_size=3,
        min_epsilon=0.0,
        top_k=3,
        engine="sparse",
    )
    scenario = patch_scenario(
        seed, num_patches=4, edges_per_vertex=1.5, edge_edits=12
    )
    miner = IncrementalSCPM(scenario.build_handle(), params)
    miner.mine()
    edge_edits, _ = scenario.batches()[0]
    miner.update(edge_edits=edge_edits)
    stats = miner.last_update_stats
    assert stats.roots_reused >= 2, stats
    assert stats.branches_reused >= 2, stats
    full = SCPM(scenario.replay(1), params).mine()
    assert mining_fingerprint(miner.result) == mining_fingerprint(full)


def test_updates_compose_across_many_batches(evolving_graph):
    """A long edit script applied batch-by-batch ends where a single
    full mine of the final graph ends."""
    scenario = evolving_graph(seed=29, num_vertices=36, num_batches=6)
    miner = IncrementalSCPM(scenario.build_handle(), PARAMS)
    miner.mine()
    for edge_edits, attribute_edits in scenario.batches():
        miner.update(edge_edits=edge_edits, attribute_edits=attribute_edits)
    full = SCPM(scenario.replay(len(scenario.batches())), PARAMS).mine()
    assert mining_fingerprint(miner.result) == mining_fingerprint(full)

"""Unit tests of :class:`~repro.correlation.incremental.IncrementalSCPM`
lifecycle, :class:`UpdateStats` accounting, and the store delta path
(:meth:`~repro.store.writer.PatternStore.apply_delta`)."""

from __future__ import annotations

import pytest

from repro.correlation.incremental import IncrementalSCPM, UpdateStats
from repro.correlation.parameters import SCPMParams
from repro.datasets.evolving import patch_scenario
from repro.errors import DeltaError, NotFoundError
from repro.graph.evolve import EdgeEdit
from repro.serve import PatternStoreReader
from repro.store import PatternStore, verify_store

PARAMS = SCPMParams(
    min_support=3, gamma=0.6, min_size=3, min_epsilon=0.1, top_k=5
)


def result_fingerprint(result):
    return [
        (
            r.attributes,
            r.support,
            r.epsilon,
            r.expected_epsilon,
            r.delta,
            r.covered_vertices,
            r.qualified,
            tuple((p.attributes, p.vertices, p.gamma) for p in r.patterns),
        )
        for r in result.evaluated
    ]


class TestLifecycle:
    def test_update_before_mine_raises(self, evolving_graph):
        miner = IncrementalSCPM(evolving_graph(seed=3).build_handle(), PARAMS)
        with pytest.raises(DeltaError):
            miner.update(edge_edits=[EdgeEdit(0, 1)])

    def test_non_evolvable_graph_raises(self, triangle_graph):
        with pytest.raises(DeltaError):
            IncrementalSCPM(triangle_graph, PARAMS)

    def test_mine_returns_result_and_sets_state(self, evolving_graph):
        miner = IncrementalSCPM(evolving_graph(seed=3).build_handle(), PARAMS)
        result = miner.mine()
        assert result is miner.result
        assert result.evaluated
        assert miner.last_update_stats is None


class TestUpdateStats:
    def test_empty_update_reuses_everything(self, evolving_graph):
        miner = IncrementalSCPM(evolving_graph(seed=3).build_handle(), PARAMS)
        miner.mine()
        before = result_fingerprint(miner.result)
        miner.update()
        stats = miner.last_update_stats
        assert isinstance(stats, UpdateStats)
        assert stats.touched_chunks == 0
        assert stats.roots_reevaluated == 0
        assert stats.branches_rerun == 0
        assert stats.roots_reused == stats.roots_total
        assert result_fingerprint(miner.result) == before

    def test_localized_edit_reuses_clean_roots(self):
        scenario = patch_scenario(
            7, num_patches=4, edges_per_vertex=1.5, edge_edits=10
        )
        params = SCPMParams(
            min_support=3,
            gamma=0.6,
            min_size=3,
            min_epsilon=0.0,
            top_k=3,
            engine="sparse",
        )
        miner = IncrementalSCPM(scenario.build_handle(), params)
        miner.mine()
        edge_edits, _ = scenario.batches()[0]
        miner.update(edge_edits=edge_edits)
        stats = miner.last_update_stats
        assert stats.roots_total == 4
        assert stats.touched_chunks == 1
        assert stats.roots_reused + stats.roots_reevaluated == stats.roots_total
        assert stats.roots_reused >= 2
        # the structural change rebuilt the null model, so surviving
        # clean records were patched against the new expectation
        assert stats.records_patched >= stats.roots_reused
        assert stats.elapsed_seconds >= 0.0


class TestStoreDelta:
    def test_apply_delta_round_trips(self, tmp_path, evolving_graph):
        scenario = evolving_graph(seed=3)
        miner = IncrementalSCPM(scenario.build_handle(), PARAMS)
        miner.mine()
        path = tmp_path / "patterns.sqlite"
        with PatternStore(path) as store:
            run_id = store.save(miner.result, params=PARAMS)
            for edge_edits, attribute_edits in scenario.batches():
                miner.update(
                    edge_edits=edge_edits, attribute_edits=attribute_edits
                )
                assert store.apply_delta(run_id, miner.result) == run_id
        report = verify_store(path)
        assert report.ok, "\n".join(report.lines())
        with PatternStoreReader(path) as reader:
            loaded = reader.load_result(run_id)
        assert result_fingerprint(loaded) == result_fingerprint(miner.result)

    def test_apply_delta_unknown_run_raises_and_keeps_store(
        self, tmp_path, evolving_graph
    ):
        scenario = evolving_graph(seed=17)
        miner = IncrementalSCPM(scenario.build_handle(), PARAMS)
        miner.mine()
        path = tmp_path / "patterns.sqlite"
        with PatternStore(path) as store:
            run_id = store.save(miner.result, params=PARAMS)
            with pytest.raises(NotFoundError):
                store.apply_delta(run_id + 5, miner.result)
        report = verify_store(path)
        assert report.ok
        with PatternStoreReader(path) as reader:
            loaded = reader.load_result(run_id)
        assert result_fingerprint(loaded) == result_fingerprint(miner.result)

    def test_apply_delta_on_closed_store_raises(self, tmp_path, evolving_graph):
        from repro.errors import StoreError

        miner = IncrementalSCPM(evolving_graph(seed=3).build_handle(), PARAMS)
        miner.mine()
        store = PatternStore(tmp_path / "p.sqlite")
        run_id = store.save(miner.result)
        store.close()
        with pytest.raises(StoreError):
            store.apply_delta(run_id, miner.result)

    def test_only_target_run_is_touched(self, tmp_path, evolving_graph):
        """apply_delta on one run leaves every other stored run intact."""
        scenario = evolving_graph(seed=3)
        miner = IncrementalSCPM(scenario.build_handle(), PARAMS)
        miner.mine()
        other = IncrementalSCPM(
            evolving_graph(seed=17).build_handle(), PARAMS
        )
        other.mine()
        other_print = result_fingerprint(other.result)
        path = tmp_path / "patterns.sqlite"
        with PatternStore(path) as store:
            run_id = store.save(miner.result, params=PARAMS)
            other_id = store.save(other.result, params=PARAMS)
            edge_edits, attribute_edits = scenario.batches()[0]
            miner.update(
                edge_edits=edge_edits, attribute_edits=attribute_edits
            )
            store.apply_delta(run_id, miner.result)
        with PatternStoreReader(path) as reader:
            assert result_fingerprint(
                reader.load_result(other_id)
            ) == other_print
            assert result_fingerprint(
                reader.load_result(run_id)
            ) == result_fingerprint(miner.result)

"""Property tests of chunk-level invalidation (:mod:`repro.quasiclique.delta`).

The invariant incremental mining's correctness rests on: after an edit
batch touching chunk set ``T``, a :class:`CoverageMemo` entry is evicted
**iff** its working-set native has a member inside some chunk of ``T`` —
and never otherwise.  Hypothesis generates arbitrary chunk layouts for
both engine natives (dense int masks and chunked
:class:`~repro.graph.sparseset.SparseBitset` containers, including
members far beyond the first chunk) and arbitrary touched sets, and
checks the footprint predicates against a direct member-level model.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.evolve import _set_bit
from repro.graph.sparseset import CHUNK_BITS, SparseBitset
from repro.quasiclique.delta import (
    chunk_of,
    chunks_of_native,
    invalidate_memo,
    native_touches,
)
from repro.quasiclique.memo import CoverageMemo

#: Keep the universe a handful of chunks wide — wide enough that natives
#: span several containers, small enough that examples stay fast.
MAX_CHUNKS = 5

members_strategy = st.sets(
    st.integers(min_value=0, max_value=MAX_CHUNKS * CHUNK_BITS - 1),
    max_size=24,
)
touched_strategy = st.frozensets(
    st.integers(min_value=0, max_value=MAX_CHUNKS + 1), max_size=4
)


def sparse_of(members):
    container = SparseBitset()
    for member in members:
        container, _ = _set_bit(container, member)
    return container


def dense_of(members):
    mask = 0
    for member in members:
        mask |= 1 << member
    return mask


def model_chunks(members):
    return {chunk_of(member) for member in members}


class TestFootprintPredicates:
    @given(members=members_strategy)
    def test_chunks_of_native_matches_members(self, members):
        expected = model_chunks(members)
        assert chunks_of_native(sparse_of(members)) == expected
        assert chunks_of_native(dense_of(members)) == expected

    @given(members=members_strategy, touched=touched_strategy)
    def test_native_touches_matches_member_model(self, members, touched):
        expected = bool(model_chunks(members) & touched)
        assert native_touches(sparse_of(members), touched) is expected
        assert native_touches(dense_of(members), touched) is expected

    @given(members=members_strategy)
    def test_empty_touched_never_touches(self, members):
        assert not native_touches(sparse_of(members), frozenset())
        assert not native_touches(dense_of(members), frozenset())


class TestMemoInvalidation:
    @settings(max_examples=60)
    @given(
        layouts=st.lists(members_strategy, min_size=1, max_size=8),
        touched=touched_strategy,
        shared_split=st.integers(min_value=0, max_value=8),
        use_sparse=st.booleans(),
    )
    def test_evicted_iff_intersecting(
        self, layouts, touched, shared_split, use_sparse
    ):
        """An entry dies iff its working set meets a touched chunk —
        across both layers, both engines, and any chunk layout."""
        make = sparse_of if use_sparse else dense_of
        shared = {}
        memo = CoverageMemo(shared=shared)
        keys = []
        for i, members in enumerate(layouts):
            # vary γ so equal working sets still make distinct keys
            key = CoverageMemo.key(make(members), 0.5 + i / 100.0, 3)
            keys.append((key, frozenset(model_chunks(members))))
            if i < shared_split:
                shared[key] = 0
            else:
                memo.put(key, 0)
        before = {key for key, _ in keys}
        expected_dead = {
            key for key, chunks in keys if chunks & touched
        }
        removed = invalidate_memo(memo, touched)
        survivors = set(memo.snapshot())
        assert removed == len(expected_dead)
        assert survivors == before - expected_dead

    def test_disabled_memo_and_empty_touched_are_noops(self):
        assert invalidate_memo(None, frozenset({1})) == 0
        memo = CoverageMemo()
        memo.put(CoverageMemo.key(0b11, 0.6, 3), 0b1)
        assert invalidate_memo(memo, frozenset()) == 0
        assert len(memo) == 1

"""Unit tests for the Eclat frequent itemset miner."""

import pytest

from repro.errors import ParameterError
from repro.itemsets.eclat import EclatConfig, EclatMiner, mine_frequent_itemsets, support_of
from repro.itemsets.itemset import FrequentItemset


def itemset_map(itemsets):
    """Map frozenset(items) -> support for easy comparison."""
    return {frozenset(f.items): f.support for f in itemsets}


class TestEclatConfig:
    def test_invalid_min_support(self):
        with pytest.raises(ParameterError):
            EclatConfig(min_support=0)

    def test_invalid_min_size(self):
        with pytest.raises(ParameterError):
            EclatConfig(min_support=1, min_size=0)

    def test_invalid_max_size(self):
        with pytest.raises(ParameterError):
            EclatConfig(min_support=1, min_size=3, max_size=2)


class TestEclatOnExample:
    def test_frequent_itemsets_at_support_3(self, example_graph):
        found = itemset_map(mine_frequent_itemsets(example_graph, min_support=3))
        expected = {
            frozenset({"A"}): 11,
            frozenset({"B"}): 6,
            frozenset({"C"}): 3,
            frozenset({"D"}): 3,
            frozenset({"A", "B"}): 6,
            frozenset({"A", "C"}): 3,
            frozenset({"A", "D"}): 3,
        }
        assert found == expected

    def test_frequent_itemsets_at_support_6(self, example_graph):
        found = itemset_map(mine_frequent_itemsets(example_graph, min_support=6))
        assert found == {
            frozenset({"A"}): 11,
            frozenset({"B"}): 6,
            frozenset({"A", "B"}): 6,
        }

    def test_min_size_filter(self, example_graph):
        found = mine_frequent_itemsets(example_graph, min_support=3, min_size=2)
        assert all(f.size >= 2 for f in found)
        assert frozenset({"A", "B"}) in itemset_map(found)

    def test_max_size_cap(self, example_graph):
        found = mine_frequent_itemsets(example_graph, min_support=1, max_size=1)
        assert all(f.size == 1 for f in found)
        assert len(found) == 5

    def test_tidsets_are_correct(self, example_graph):
        found = {frozenset(f.items): f.tidset for f in
                 mine_frequent_itemsets(example_graph, min_support=3)}
        assert found[frozenset({"A", "B"})] == frozenset({6, 7, 8, 9, 10, 11})
        assert found[frozenset({"C"})] == frozenset({1, 3, 6})

    def test_support_of_helper(self, example_graph):
        assert support_of(example_graph, ("A", "B")) == 6
        assert support_of(example_graph, ("E", "B")) == 1

    def test_generator_is_lazy(self, example_graph):
        miner = EclatMiner(EclatConfig(min_support=1))
        iterator = miner.mine_graph(example_graph)
        first = next(iterator)
        assert isinstance(first, FrequentItemset)


class TestEclatOnTransactions:
    def test_mine_transactions(self):
        transactions = {
            "t1": frozenset({"bread", "milk"}),
            "t2": frozenset({"bread", "butter"}),
            "t3": frozenset({"bread", "milk", "butter"}),
            "t4": frozenset({"milk"}),
        }
        miner = EclatMiner(EclatConfig(min_support=2))
        found = itemset_map(miner.mine_transactions(transactions))
        assert found[frozenset({"bread"})] == 3
        assert found[frozenset({"milk"})] == 3
        assert found[frozenset({"bread", "milk"})] == 2
        assert frozenset({"bread", "milk", "butter"}) not in found

    def test_extension_filter_blocks_growth(self, example_graph):
        # forbid extending anything: only 1-itemsets are produced
        miner = EclatMiner(
            EclatConfig(min_support=1), extension_filter=lambda itemset: False
        )
        found = list(miner.mine_graph(example_graph))
        assert all(f.size == 1 for f in found)

    def test_extension_filter_selective(self, example_graph):
        # itemsets containing 'C' may not be extended (mirrors SCPM pruning:
        # both parents must survive for a union to be generated)
        miner = EclatMiner(
            EclatConfig(min_support=1),
            extension_filter=lambda itemset: "C" not in itemset.items,
        )
        found = itemset_map(miner.mine_graph(example_graph))
        assert frozenset({"A", "B"}) in found
        assert frozenset({"C"}) in found  # still reported, just not extended
        assert not any("C" in items and len(items) > 1 for items in found)

"""Unit tests for transaction-database helpers and itemset containers."""

from repro.itemsets.itemset import FrequentItemset, canonical_itemset
from repro.itemsets.transactions import (
    frequent_items,
    horizontal_database,
    transactions_from_lists,
    vertical_database,
    vertical_from_transactions,
)


class TestItemsetContainer:
    def test_canonical_itemset_sorts_and_dedupes(self):
        assert canonical_itemset(["b", "a", "b"]) == ("a", "b")

    def test_canonical_itemset_mixed_types(self):
        # must not raise even though ints and strs are not comparable
        result = canonical_itemset([2, "a", 1])
        assert set(result) == {1, 2, "a"}

    def test_frequent_itemset_properties(self):
        itemset = FrequentItemset(items=("a", "b"), tidset=frozenset({1, 2, 3}))
        assert itemset.support == 3
        assert itemset.size == 2
        assert itemset.as_frozenset() == frozenset({"a", "b"})
        assert "support=3" in str(itemset)

    def test_contains(self):
        big = FrequentItemset(items=("a", "b"), tidset=frozenset({1}))
        small = FrequentItemset(items=("a",), tidset=frozenset({1, 2}))
        assert big.contains(small)
        assert not small.contains(big)


class TestTransactionViews:
    def test_horizontal_database(self, example_graph):
        database = horizontal_database(example_graph)
        assert database[6] == frozenset({"A", "B", "C"})
        assert len(database) == 11

    def test_vertical_database(self, example_graph):
        vertical = vertical_database(example_graph)
        assert vertical["B"] == frozenset({6, 7, 8, 9, 10, 11})

    def test_vertical_from_transactions(self):
        transactions = {"t1": ["a", "b"], "t2": ["a"]}
        vertical = vertical_from_transactions(transactions)
        assert vertical["a"] == frozenset({"t1", "t2"})
        assert vertical["b"] == frozenset({"t1"})

    def test_transactions_from_lists(self):
        database = transactions_from_lists([["a"], ["a", "b"]])
        assert database == {0: frozenset({"a"}), 1: frozenset({"a", "b"})}

    def test_frequent_items_sorted_by_support(self):
        vertical = {
            "rare": frozenset({1}),
            "common": frozenset({1, 2, 3}),
            "mid": frozenset({1, 2}),
        }
        kept = frequent_items(vertical, min_support=2)
        assert [item for item, _ in kept] == ["mid", "common"]

    def test_frequent_items_filters(self):
        vertical = {"x": frozenset({1})}
        assert frequent_items(vertical, min_support=2) == []

"""Unit tests for the Apriori baseline and its agreement with Eclat."""

import pytest

from repro.datasets.synthetic import random_attributed_graph
from repro.errors import ParameterError
from repro.itemsets.apriori import mine_frequent_itemsets_apriori
from repro.itemsets.eclat import mine_frequent_itemsets


def as_map(itemsets):
    return {frozenset(f.items): f.support for f in itemsets}


class TestApriori:
    def test_example_graph_support_3(self, example_graph):
        found = as_map(mine_frequent_itemsets_apriori(example_graph, min_support=3))
        assert found[frozenset({"A"})] == 11
        assert found[frozenset({"A", "B"})] == 6
        assert frozenset({"B", "C"}) not in found

    def test_invalid_parameters(self, example_graph):
        with pytest.raises(ParameterError):
            mine_frequent_itemsets_apriori(example_graph, min_support=0)
        with pytest.raises(ParameterError):
            mine_frequent_itemsets_apriori(example_graph, min_support=1, min_size=0)

    def test_min_and_max_size(self, example_graph):
        found = mine_frequent_itemsets_apriori(
            example_graph, min_support=1, min_size=2, max_size=2
        )
        assert found and all(f.size == 2 for f in found)

    @pytest.mark.parametrize("min_support", [1, 2, 3, 5])
    def test_agrees_with_eclat_on_example(self, example_graph, min_support):
        apriori = as_map(mine_frequent_itemsets_apriori(example_graph, min_support))
        eclat = as_map(mine_frequent_itemsets(example_graph, min_support))
        assert apriori == eclat

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_agrees_with_eclat_on_random_graphs(self, seed):
        graph = random_attributed_graph(
            num_vertices=25,
            edge_probability=0.1,
            attributes=["a", "b", "c", "d", "e"],
            attribute_probability=0.4,
            seed=seed,
        )
        apriori = as_map(mine_frequent_itemsets_apriori(graph, min_support=3))
        eclat = as_map(mine_frequent_itemsets(graph, min_support=3))
        assert apriori == eclat

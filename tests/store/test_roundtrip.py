"""Store-parity differential suite: mine → persist → load → byte-identical.

The pattern store may never change *what* was mined, only *where* it
lives: a :class:`~repro.correlation.patterns.MiningResult` loaded back
through :class:`~repro.serve.PatternStoreReader.load_result` must
compare bit-for-bit equal — record order included, the keyed-merge
ordering contract — to the in-memory result it was saved from, across
engines × schedules × worker counts and for both miners.  Seeds are
fixed so failures replay; CI appends one more seed through
``REPRO_FUZZ_SEED``, like the other differential suites.

The suite also pins the serving queries against their in-memory
oracles (``top_k`` vs ``top_by_epsilon``, vertex/attribute filters vs
set comprehensions) and the typed value codec's injectivity.
"""

import dataclasses
import math
import os

import pytest

from repro.correlation.naive import NaiveMiner
from repro.correlation.parameters import SCPMParams
from repro.correlation.patterns import (
    AttributeSetResult,
    MiningCounters,
    MiningResult,
    StructuralCorrelationPattern,
)
from repro.correlation.scpm import SCPM
from repro.datasets.synthetic import random_attributed_graph
from repro.errors import QueryError, StoreError
from repro.serve import LRUCache, PatternStoreReader
from repro.store import PatternStore, decode_value, encode_value, save_result

BASE_SEEDS = (13, 41)

#: engine × schedule × n_jobs corners (sequential, parallel steal, stripe).
CONFIGS = (
    ("dense", "steal", 1),
    ("sparse", "steal", 2),
    ("auto", "stripe", 2),
)

PARAMS = SCPMParams(
    min_support=3, gamma=0.6, min_size=3, min_epsilon=0.1, top_k=4
)


def fuzz_seeds():
    seeds = list(BASE_SEEDS)
    extra = os.environ.get("REPRO_FUZZ_SEED")
    if extra is not None:
        seeds.append(int(extra))
    return seeds


def fuzz_graph(seed, num_vertices=22):
    return random_attributed_graph(
        num_vertices=num_vertices,
        edge_probability=0.35,
        attributes=["a", "b", "c", "d"],
        attribute_probability=0.5,
        seed=seed * 769 + num_vertices,
    )


def assert_byte_identical(loaded, original):
    assert loaded.algorithm == original.algorithm
    assert loaded.counters == original.counters
    assert loaded.fingerprint() == original.fingerprint()


# ----------------------------------------------------------------------
# the differential grid
# ----------------------------------------------------------------------
class TestRoundTripGrid:
    @pytest.mark.parametrize("seed", fuzz_seeds())
    @pytest.mark.parametrize("engine,schedule,n_jobs", CONFIGS)
    def test_scpm_round_trip(self, tmp_path, seed, engine, schedule, n_jobs):
        graph = fuzz_graph(seed)
        params = dataclasses.replace(
            PARAMS, engine=engine, schedule=schedule, n_jobs=n_jobs
        )
        result = SCPM(graph, params).mine()
        path = tmp_path / "store.sqlite"
        save_result(path, result, params=params)
        with PatternStoreReader(path) as reader:
            assert_byte_identical(reader.load_result(), result)

    @pytest.mark.parametrize("seed", fuzz_seeds())
    def test_naive_round_trip(self, tmp_path, seed):
        graph = fuzz_graph(seed, num_vertices=16)
        result = NaiveMiner(graph, PARAMS).mine()
        path = tmp_path / "store.sqlite"
        save_result(path, result)
        with PatternStoreReader(path) as reader:
            assert_byte_identical(reader.load_result(), result)

    def test_multiple_runs_round_trip_independently(self, tmp_path):
        """Several runs share one store; each loads back bit-for-bit."""
        path = tmp_path / "store.sqlite"
        results = {}
        with PatternStore(path) as store:
            for seed in fuzz_seeds()[:2]:
                result = SCPM(fuzz_graph(seed), PARAMS).mine()
                results[store.save(result)] = result
        with PatternStoreReader(path) as reader:
            infos = reader.runs()
            assert [info.run_id for info in infos] == sorted(results)
            for info in infos:
                assert info.num_evaluated == len(results[info.run_id].evaluated)
                assert_byte_identical(
                    reader.load_result(info.run_id), results[info.run_id]
                )
            # the default run is the latest one
            assert reader.latest_run_id() == max(results)
            assert_byte_identical(
                reader.load_result(), results[max(results)]
            )


# ----------------------------------------------------------------------
# serving queries vs in-memory oracles
# ----------------------------------------------------------------------
class TestServingQueries:
    @pytest.fixture
    def served(self, tmp_path):
        result = SCPM(fuzz_graph(fuzz_seeds()[0]), PARAMS).mine()
        path = tmp_path / "store.sqlite"
        save_result(path, result)
        with PatternStoreReader(path) as reader:
            yield reader, result

    def test_top_k_matches_top_by_epsilon(self, served):
        reader, result = served
        for k in (1, 3, 10_000):
            expected = [
                (r.label(), r.epsilon, r.support)
                for r in result.top_by_epsilon(k)
            ]
            got = [
                (e.label, e.epsilon, e.support) for e in reader.top_k(k)
            ]
            assert got == expected

    def test_patterns_with_vertex_matches_oracle(self, served):
        reader, result = served
        vertices = {v for p in result.patterns for v in p.vertices}
        assert vertices, "fuzz workload must produce patterns"
        for vertex in sorted(vertices):
            expected = [p for p in result.patterns if vertex in p.vertices]
            got = [s.pattern for s in reader.patterns_with_vertex(vertex)]
            assert sorted(got, key=str) == sorted(expected, key=str)
        assert reader.patterns_with_vertex("no-such-vertex") == []

    def test_patterns_with_attributes_matches_oracle(self, served):
        reader, result = served
        filters = [("a",), ("a", "b"), ("c", "d")]
        for attrs in filters:
            for mode, keep in (
                ("all", lambda p: set(attrs) <= set(p.attributes)),
                ("any", lambda p: set(attrs) & set(p.attributes)),
            ):
                expected = [p for p in result.patterns if keep(p)]
                got = [
                    s.pattern
                    for s in reader.patterns_with_attributes(attrs, mode=mode)
                ]
                assert sorted(got, key=str) == sorted(expected, key=str), (
                    attrs,
                    mode,
                )

    def test_get_pattern_round_trips_and_caches(self, served):
        reader, result = served
        stored = reader.patterns_with_vertex(
            next(iter(result.patterns[0].vertices))
        )[0]
        reader.cache.clear()
        fetched = reader.get_pattern(stored.pattern_id)
        assert fetched.pattern == stored.pattern
        assert reader.cache.misses == 1
        again = reader.get_pattern(stored.pattern_id)
        assert again is fetched  # served from the LRU, not re-deserialized
        assert reader.cache.hits == 1

    def test_query_error_paths(self, served):
        reader, _ = served
        with pytest.raises(StoreError):
            reader.get_pattern(10_000_000)
        with pytest.raises(QueryError):
            reader.patterns_with_attributes([], mode="all")
        with pytest.raises(QueryError):
            reader.patterns_with_attributes(["a"], mode="some")
        with pytest.raises(QueryError):
            reader.top_k(0)
        with pytest.raises(StoreError):
            reader.top_k(3, run_id=999)
        with pytest.raises(StoreError):
            reader.load_result(run_id=999)

    def test_missing_store_never_created(self, tmp_path):
        missing = tmp_path / "nope.sqlite"
        with pytest.raises(StoreError):
            PatternStoreReader(missing)
        assert not missing.exists()  # the read path must not conjure files


# ----------------------------------------------------------------------
# typed value codec
# ----------------------------------------------------------------------
class TestCodec:
    VALUES = (
        0,
        -17,
        2**80,
        "alice",
        "5",  # must stay distinct from int 5
        5,
        "",
        'quo"ted',
        "multi word",
        0.25,
        -0.0,
        float("inf"),
        True,
        False,
        None,
        ("a", 1, (2.5, None)),
        (),
    )

    def test_round_trip_every_supported_type(self):
        for value in self.VALUES:
            decoded = decode_value(encode_value(value))
            assert decoded == value and type(decoded) is type(value), value

    def test_nan_round_trips(self):
        assert math.isnan(decode_value(encode_value(float("nan"))))

    def test_encoding_is_injective_across_types(self):
        encoded = [encode_value(v) for v in self.VALUES]
        assert len(set(encoded)) == len(encoded)

    def test_unsupported_type_raises(self):
        with pytest.raises(StoreError):
            encode_value(object())
        with pytest.raises(StoreError):
            encode_value(frozenset({1}))

    def test_malformed_text_raises(self):
        with pytest.raises(StoreError):
            decode_value("no-tag")
        with pytest.raises(StoreError):
            decode_value("z:whatever")

    @pytest.mark.parametrize(
        "text",
        [
            "i:abc",  # non-numeric int body
            "i:",  # empty int body
            "f:garbage",  # unparseable float body
            "t:not-json",  # tuple body that is not JSON
            "t:[1]",  # tuple element that is not tagged text
            't:{"a": 1}',  # JSON but not a list of tagged strings
        ],
    )
    def test_malformed_body_raises_store_error(self, text):
        """Corrupt cells surface as StoreError, never a raw ValueError
        (or JSONDecodeError) leaking out of the codec."""
        with pytest.raises(StoreError, match="malformed stored value"):
            decode_value(text)


class TestAwkwardValuesThroughTheStore:
    def test_exotic_result_round_trips(self, tmp_path):
        """Typed vertices/attributes and non-finite floats survive SQLite."""
        pattern = StructuralCorrelationPattern(
            attributes=(("topic", 3), "db"),
            vertices=frozenset([5, "5", 2.5, None, True]),
            gamma=0.625,
        )
        record = AttributeSetResult(
            attributes=(("topic", 3), "db"),
            support=7,
            epsilon=0.1 + 0.2,  # a float repr() must preserve exactly
            expected_epsilon=3e-321,  # subnormal
            delta=float("inf"),
            covered_vertices=frozenset([5, "5", None]),
            patterns=(pattern,),
            qualified=True,
        )
        result = MiningResult(
            algorithm="hand-built",
            evaluated=[record],
            counters=MiningCounters(
                attribute_sets_evaluated=1, elapsed_seconds=0.125
            ),
        )
        path = tmp_path / "store.sqlite"
        save_result(path, result)
        with PatternStoreReader(path) as reader:
            loaded = reader.load_result()
            assert_byte_identical(loaded, result)
            assert loaded.evaluated[0].delta == float("inf")
            assert loaded.evaluated[0].expected_epsilon == 3e-321
            # typed lookups distinguish int 5 from str "5"
            assert len(reader.patterns_with_vertex(5)) == 1
            assert len(reader.patterns_with_vertex("5")) == 1
            assert len(reader.patterns_with_vertex(7)) == 0
            # tuple attribute filter, through FTS narrowing + exact check
            assert (
                len(reader.patterns_with_attributes([("topic", 3)], mode="all"))
                == 1
            )


# ----------------------------------------------------------------------
# LRU cache unit behaviour
# ----------------------------------------------------------------------
class TestLRUCache:
    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"; "b" is now stalest
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.get("b") is None
        assert (cache.hits, cache.misses) == (3, 1)

    def test_zero_capacity_disables_caching(self):
        cache = LRUCache(capacity=0)
        cache.put("a", 1)
        assert len(cache) == 0 and cache.get("a") is None

    def test_clear_resets_counters(self):
        cache = LRUCache(capacity=4)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert (len(cache), cache.hits, cache.misses) == (0, 0, 0)

"""Tests for the persistent pattern store and the serving read path."""

"""Concurrent-read suite: WAL serving under a live writer.

The store's whole reason to exist is the batch-write / concurrent-read
split: any number of readers issue ``patterns_with_vertex`` / ``top_k``
/ ``load_result`` against the WAL file while ``scpm mine --store``
appends the next run.  Two properties are pinned here:

* **no lock errors** — no reader or writer ever surfaces ``database is
  locked`` (WAL + busy_timeout make readers and the one writer fully
  concurrent);
* **stable snapshots** — a reader never observes half a run: every run
  visible to a read transaction is complete (its header counts match
  the rows reconstructed from it), because each ``save`` commits
  atomically and every multi-statement read runs in one snapshot.

Both thread readers (shared process, one connection each) and process
readers (fresh connections in worker processes) are exercised.
"""

import multiprocessing
import sqlite3
import threading
import time

import pytest

from repro.correlation.parameters import SCPMParams
from repro.correlation.scpm import SCPM
from repro.datasets.synthetic import random_attributed_graph
from repro.serve import PatternStoreReader
from repro.store import PatternStore

PARAMS = SCPMParams(
    min_support=3, gamma=0.6, min_size=3, min_epsilon=0.1, top_k=4
)

NUM_THREAD_READERS = 8


def build_result(seed):
    graph = random_attributed_graph(
        num_vertices=20,
        edge_probability=0.35,
        attributes=["a", "b", "c", "d"],
        attribute_probability=0.5,
        seed=seed,
    )
    return SCPM(graph, PARAMS).mine()


def check_visible_runs_are_complete(reader):
    """Every run a snapshot shows must reconstruct to its header counts."""
    observed = []
    with reader._snapshot():  # one snapshot across runs() + load_result()
        for info in reader.runs():
            result = reader.load_result(info.run_id)
            assert len(result.evaluated) == info.num_evaluated, info
            assert len(result.qualified) == info.num_qualified, info
            assert len(result.patterns) == info.num_patterns, info
            observed.append(info.run_id)
    return observed


def _process_reader(path, stop_unix, queue):
    """Worker-process reader loop (fresh connection, own LRU)."""
    try:
        runs_seen = set()
        queries = 0
        while time.time() < stop_unix:
            with PatternStoreReader(path) as reader:
                runs_seen.update(check_visible_runs_are_complete(reader))
                reader.top_k(5)
                queries += 2
        queue.put(("ok", queries, sorted(runs_seen)))
    except BaseException as error:  # pragma: no cover — failure reporting
        queue.put(("error", repr(error), []))


class TestConcurrentReads:
    @pytest.fixture
    def store_path(self, tmp_path):
        path = tmp_path / "store.sqlite"
        with PatternStore(path) as store:
            store.save(build_result(seed=7))
        return path

    def test_threads_read_while_writer_appends(self, store_path):
        """8 reader threads vs a writer appending two more runs: no locks."""
        errors = []
        lock_errors = []
        snapshots = []
        stop = threading.Event()

        def read_loop(thread_index):
            try:
                with PatternStoreReader(store_path) as reader:
                    first = reader.load_result(run_id=1)
                    vertex = next(iter(first.patterns[0].vertices))
                    while not stop.is_set():
                        reader.patterns_with_vertex(vertex)
                        reader.top_k(3)
                        snapshots.append(
                            tuple(check_visible_runs_are_complete(reader))
                        )
            except sqlite3.OperationalError as error:
                lock_errors.append(repr(error))
            except BaseException as error:
                errors.append(repr(error))

        threads = [
            threading.Thread(target=read_loop, args=(i,), daemon=True)
            for i in range(NUM_THREAD_READERS)
        ]
        for thread in threads:
            thread.start()
        try:
            # the writer appends two runs while the readers hammer away
            with PatternStore(store_path) as store:
                for seed in (19, 23):
                    store.save(build_result(seed=seed))
                    time.sleep(0.05)
            time.sleep(0.2)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
        assert not lock_errors, f"database-lock errors: {lock_errors}"
        assert not errors, f"reader errors: {errors}"
        assert snapshots, "readers must have completed queries during the write"
        # every snapshot saw a complete prefix of the run sequence
        seen = {snap for snap in snapshots}
        assert all(snap in {(1,), (1, 2), (1, 2, 3)} for snap in seen), seen
        # and at least one reader observed the store both before and after
        # an append (the writer really was concurrent with the readers)
        assert len(seen) >= 2, seen

    def test_processes_read_while_writer_appends(self, store_path):
        """Reader *processes* against the WAL file while a writer appends."""
        context = multiprocessing.get_context()
        queue = context.Queue()
        stop_unix = time.time() + 1.5
        workers = [
            context.Process(
                target=_process_reader,
                args=(str(store_path), stop_unix, queue),
                daemon=True,
            )
            for _ in range(4)
        ]
        for worker in workers:
            worker.start()
        with PatternStore(store_path) as store:
            store.save(build_result(seed=31))
        outcomes = [queue.get(timeout=60) for _ in workers]
        for worker in workers:
            worker.join(timeout=30)
        failures = [o for o in outcomes if o[0] != "ok"]
        assert not failures, failures
        assert all(queries > 0 for _, queries, _ in outcomes)

    def test_writers_queue_behind_each_other(self, store_path):
        """Two writer connections appending serially never deadlock."""
        with PatternStore(store_path) as first, PatternStore(store_path) as second:
            run_a = first.save(build_result(seed=43))
            run_b = second.save(build_result(seed=47))
        assert run_b == run_a + 1
        with PatternStoreReader(store_path) as reader:
            assert [info.run_id for info in reader.runs()] == [1, run_a, run_b]

"""``verify_store`` / ``scpm verify-store``: every recovery edge case a
crashed or mangled store file can present, and the CLI exit contract."""

import sqlite3

import pytest

from repro.cli.main import main
from repro.store import PatternStore, verify_store
from repro.store.schema import SCHEMA_VERSION
from tests.faults.test_store_crash import build_result


@pytest.fixture()
def saved_store(tmp_path):
    path = tmp_path / "store.sqlite"
    with PatternStore(path) as store:
        store.save(build_result())
    return path


class TestCleanStores:
    def test_clean_store_verifies(self, saved_store):
        report = verify_store(saved_store)
        assert report.ok, "\n".join(report.lines())
        assert report.runs == 1
        assert report.failures == []

    def test_empty_but_initialised_store_verifies(self, tmp_path):
        path = tmp_path / "store.sqlite"
        PatternStore(path).close()
        report = verify_store(path)
        assert report.ok, "\n".join(report.lines())
        assert report.runs == 0

    def test_report_lines_carry_a_verdict(self, saved_store):
        lines = verify_store(saved_store).lines()
        assert lines[-1].endswith("clean (1 run(s))")
        assert all(line.startswith("ok  ") for line in lines[:-1])


class TestFileLevelCorruption:
    def test_missing_file(self, tmp_path):
        report = verify_store(tmp_path / "nope.sqlite")
        assert not report.ok
        assert report.failures[0].name == "file exists"

    def test_zero_byte_store(self, tmp_path):
        path = tmp_path / "store.sqlite"
        path.touch()
        report = verify_store(path)
        assert not report.ok
        assert report.failures[0].name == "file non-empty"

    def test_not_a_sqlite_file(self, tmp_path):
        path = tmp_path / "store.sqlite"
        path.write_bytes(b"definitely not a database header here")
        report = verify_store(path)
        assert not report.ok
        assert report.failures[0].name == "sqlite header"

    def test_directory_is_a_usage_error(self, tmp_path):
        with pytest.raises(OSError):
            verify_store(tmp_path)


class TestWalSidecar:
    def test_missing_and_empty_sidecars_are_fine(self, saved_store):
        wal = saved_store.with_name(saved_store.name + "-wal")
        assert not wal.exists() or wal.stat().st_size == 0
        assert verify_store(saved_store).ok

    def test_truncated_wal_header_fails(self, saved_store):
        wal = saved_store.with_name(saved_store.name + "-wal")
        wal.write_bytes(b"\x37\x7f\x06\x82TRUNC")  # < 32-byte header
        report = verify_store(saved_store)
        assert not report.ok
        (failure,) = report.failures
        assert failure.name == "wal sidecar"
        assert "truncated" in failure.detail

    def test_garbage_wal_magic_fails(self, saved_store):
        # SQLite itself would silently reset this log; verify must not
        wal = saved_store.with_name(saved_store.name + "-wal")
        wal.write_bytes(b"garbage!" * 8)
        report = verify_store(saved_store)
        assert not report.ok
        (failure,) = report.failures
        assert failure.name == "wal sidecar"
        assert "magic" in failure.detail


class TestStoreLevelCorruption:
    def test_schema_version_mismatch(self, saved_store):
        with sqlite3.connect(saved_store) as connection:
            connection.execute(
                "UPDATE store_meta SET value = ? WHERE key = 'schema_version'",
                (str(SCHEMA_VERSION + 1),),
            )
        report = verify_store(saved_store)
        assert not report.ok
        (failure,) = report.failures
        assert failure.name == "schema_version"
        assert str(SCHEMA_VERSION + 1) in failure.detail

    def test_missing_table(self, saved_store):
        with sqlite3.connect(saved_store) as connection:
            connection.execute("DROP TABLE epsilon_listing")
        report = verify_store(saved_store)
        assert not report.ok
        assert any(
            check.name == "schema tables" and "epsilon_listing" in check.detail
            for check in report.failures
        )

    def test_header_count_mismatch(self, saved_store):
        # a deleted pattern row contradicts the run header's num_patterns
        with sqlite3.connect(saved_store) as connection:
            connection.execute(
                "DELETE FROM patterns WHERE pattern_id IN "
                "(SELECT pattern_id FROM patterns LIMIT 1)"
            )
        report = verify_store(saved_store)
        assert not report.ok
        assert any(
            check.name == "run 1 patterns" for check in report.failures
        )

    def test_position_gap_detected(self, saved_store):
        with sqlite3.connect(saved_store) as connection:
            connection.execute(
                "UPDATE attribute_sets SET position = position + 10 "
                "WHERE position = 1"
            )
        report = verify_store(saved_store)
        assert not report.ok
        assert any(
            check.name == "run 1 attribute sets" for check in report.failures
        )


class TestDiedMidDelta:
    """A store whose writer died inside ``apply_delta`` must triage clean:
    the transaction either rolled back (old run intact) or committed
    (new run intact), and ``scpm verify-store`` exits 0 either way."""

    @pytest.mark.parametrize(
        "site", ["store.writer.delete_rows", "store.writer.commit"]
    )
    def test_killed_before_commit_verifies_clean(self, tmp_path, site):
        from repro.faults import KILL_EXIT_CODE
        from tests.faults.test_delta_crash import (
            _delta_in_subprocess,
            _kill_plan,
            base_store,
        )

        path = tmp_path / "store.sqlite"
        base_store(path)
        assert (
            _delta_in_subprocess(path, _kill_plan(tmp_path / "faults", site))
            == KILL_EXIT_CODE
        )
        report = verify_store(path)
        assert report.ok, "\n".join(report.lines())
        assert report.runs == 1
        assert main(["verify-store", "--store", str(path), "--quiet"]) == 0

    def test_torn_delta_is_flagged(self, tmp_path):
        """If a buggy delta DID tear (simulated by deleting listing rows
        outside any transaction discipline), verify must catch it."""
        from tests.faults.test_delta_crash import base_store

        path = tmp_path / "store.sqlite"
        base_store(path)
        with sqlite3.connect(path) as connection:
            connection.execute("DELETE FROM epsilon_listing WHERE rank = 1")
        report = verify_store(path)
        assert not report.ok
        assert main(["verify-store", "--store", str(path)]) == 1


class TestVerifyStoreCli:
    def test_clean_store_exits_zero(self, saved_store, capsys):
        assert main(["verify-store", "--store", str(saved_store)]) == 0
        captured = capsys.readouterr()
        assert "clean" in captured.out
        assert captured.err == ""

    def test_quiet_prints_only_the_verdict_line(self, saved_store, capsys):
        assert main(
            ["verify-store", "--store", str(saved_store), "--quiet"]
        ) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 1
        assert out[0].endswith("clean (1 run(s))")

    def test_corrupt_store_exits_one(self, tmp_path, capsys):
        path = tmp_path / "store.sqlite"
        path.touch()
        assert main(["verify-store", "--store", str(path)]) == 1
        assert "CORRUPT" in capsys.readouterr().err

    def test_usage_error_exits_two(self, tmp_path, capsys):
        assert main(["verify-store", "--store", str(tmp_path)]) == 2
        assert "not a regular file" in capsys.readouterr().err

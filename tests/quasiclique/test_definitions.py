"""Unit tests for quasi-clique definitions and parameter objects."""

import pytest

from repro.errors import ParameterError
from repro.quasiclique.definitions import (
    QuasiCliqueParams,
    gamma_of,
    restricted_adjacency,
    satisfies_degree_condition,
)


def adjacency_of(graph):
    return {v: set(graph.neighbor_set(v)) for v in graph.vertices()}


class TestParams:
    def test_invalid_gamma(self):
        with pytest.raises(ParameterError):
            QuasiCliqueParams(gamma=0.0, min_size=3)
        with pytest.raises(ParameterError):
            QuasiCliqueParams(gamma=1.5, min_size=3)

    def test_invalid_min_size(self):
        with pytest.raises(ParameterError):
            QuasiCliqueParams(gamma=0.5, min_size=1)

    def test_degree_threshold_values(self):
        params = QuasiCliqueParams(gamma=0.6, min_size=4)
        assert params.degree_threshold(4) == 2  # ceil(0.6 * 3)
        assert params.degree_threshold(6) == 3  # ceil(0.6 * 5)
        assert params.degree_threshold(1) == 0
        assert params.base_degree_threshold == 2

    def test_degree_threshold_avoids_float_artifacts(self):
        # 0.6 * 5 is 2.9999999999999996 in floating point; the threshold must be 3
        params = QuasiCliqueParams(gamma=0.6, min_size=6)
        assert params.degree_threshold(6) == 3
        # 0.7 * 10 = 6.999999999999999; must be 7, not 8
        params = QuasiCliqueParams(gamma=0.7, min_size=11)
        assert params.degree_threshold(11) == 7

    def test_distance_bound(self):
        assert QuasiCliqueParams(gamma=1.0, min_size=3).distance_bound == 1
        assert QuasiCliqueParams(gamma=0.6, min_size=3).distance_bound == 2
        assert QuasiCliqueParams(gamma=0.4, min_size=3).distance_bound == 0


class TestDegreeCondition:
    def test_clique_satisfies(self, example_graph):
        adjacency = adjacency_of(example_graph)
        params = QuasiCliqueParams(gamma=1.0, min_size=4)
        assert satisfies_degree_condition(adjacency, {3, 4, 5, 6}, params)

    def test_prism_satisfies_at_060(self, example_graph):
        adjacency = adjacency_of(example_graph)
        params = QuasiCliqueParams(gamma=0.6, min_size=4)
        assert satisfies_degree_condition(adjacency, {6, 7, 8, 9, 10, 11}, params)

    def test_prism_fails_at_higher_gamma(self, example_graph):
        adjacency = adjacency_of(example_graph)
        params = QuasiCliqueParams(gamma=0.7, min_size=4)
        assert not satisfies_degree_condition(adjacency, {6, 7, 8, 9, 10, 11}, params)

    def test_size_constraint(self, example_graph):
        adjacency = adjacency_of(example_graph)
        params = QuasiCliqueParams(gamma=0.5, min_size=5)
        assert not satisfies_degree_condition(adjacency, {3, 4, 5, 6}, params)

    def test_gamma_of(self, example_graph):
        adjacency = adjacency_of(example_graph)
        assert gamma_of(adjacency, {3, 4, 5, 6}) == pytest.approx(1.0)
        assert gamma_of(adjacency, {6, 7, 8, 9, 10, 11}) == pytest.approx(0.6)
        assert gamma_of(adjacency, {1}) == 0.0
        assert gamma_of(adjacency, set()) == 0.0

    def test_restricted_adjacency(self, example_graph):
        adjacency = adjacency_of(example_graph)
        restricted = restricted_adjacency(adjacency, {3, 4, 5})
        assert restricted[3] == {4, 5}
        assert 6 not in restricted

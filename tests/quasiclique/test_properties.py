"""Property-based tests: the pruned engine must agree with brute force.

Random small attributed graphs are generated with hypothesis and every mode
of the search engine (enumeration, coverage, top-k) is compared against the
exhaustive reference implementation.  These tests are the safety net for the
soundness of every pruning rule.
"""

from hypothesis import given, settings, strategies as st

from repro.graph.attributed_graph import AttributedGraph
from repro.quasiclique.definitions import QuasiCliqueParams, satisfies_degree_condition
from repro.quasiclique.reference import (
    brute_force_covered_vertices,
    brute_force_maximal_quasi_cliques,
)
from repro.quasiclique.search import BFS, DFS, QuasiCliqueSearch

MAX_VERTICES = 9


@st.composite
def random_graphs(draw):
    """Generate a small random graph together with quasi-clique parameters."""
    num_vertices = draw(st.integers(min_value=2, max_value=MAX_VERTICES))
    possible_edges = [
        (u, v) for u in range(num_vertices) for v in range(u + 1, num_vertices)
    ]
    edge_flags = draw(
        st.lists(st.booleans(), min_size=len(possible_edges), max_size=len(possible_edges))
    )
    gamma = draw(st.sampled_from([0.3, 0.5, 0.6, 0.7, 0.8, 1.0]))
    min_size = draw(st.integers(min_value=2, max_value=4))
    graph = AttributedGraph()
    for vertex in range(num_vertices):
        graph.add_vertex(vertex)
        graph.add_attribute(vertex, "x")
    for include, (u, v) in zip(edge_flags, possible_edges):
        if include:
            graph.add_edge(u, v)
    return graph, QuasiCliqueParams(gamma=gamma, min_size=min_size)


@given(random_graphs())
@settings(max_examples=120, deadline=None)
def test_enumeration_matches_brute_force(case):
    graph, params = case
    expected = set(brute_force_maximal_quasi_cliques(graph, params))
    found = set(QuasiCliqueSearch(graph, params, order=DFS).enumerate_maximal())
    assert found == expected


@given(random_graphs())
@settings(max_examples=120, deadline=None)
def test_coverage_matches_brute_force(case):
    graph, params = case
    expected = brute_force_covered_vertices(graph, params)
    for order in (DFS, BFS):
        covered = QuasiCliqueSearch(graph, params, order=order).covered_vertices()
        assert covered == expected


@given(random_graphs())
@settings(max_examples=80, deadline=None)
def test_enumeration_without_distance_pruning_matches(case):
    graph, params = case
    expected = set(brute_force_maximal_quasi_cliques(graph, params))
    found = set(
        QuasiCliqueSearch(
            graph, params, use_distance_pruning=False
        ).enumerate_maximal()
    )
    assert found == expected


@given(random_graphs(), st.integers(min_value=1, max_value=4))
@settings(max_examples=80, deadline=None)
def test_top_k_guarantees(case, k):
    """Guarantees of the top-k search (Section 3.2.3).

    The dynamic size threshold prunes against the *current* pattern set,
    which may momentarily contain non-maximal candidates (the paper's rule
    has the same behaviour), so the exact k-th size is not guaranteed — but
    the largest pattern is exact, every returned set satisfies the
    definition, the results form an antichain, and sizes never exceed the
    true maxima.
    """
    graph, params = case
    adjacency = {v: set(graph.neighbor_set(v)) for v in graph.vertices()}
    expected = brute_force_maximal_quasi_cliques(graph, params)
    top = QuasiCliqueSearch(graph, params).top_k(k)
    assert len(top) <= k
    for vertex_set, gamma in top:
        assert satisfies_degree_condition(adjacency, vertex_set, params)
        assert len(vertex_set) >= params.min_size
        assert 0.0 <= gamma <= 1.0
    # pairwise incomparable
    sets = [vertex_set for vertex_set, _ in top]
    for first in sets:
        for second in sets:
            if first is not second:
                assert not first < second
    if expected:
        assert top, "patterns exist but none were returned"
        # the top-1 pattern is exactly the largest maximal quasi-clique size
        assert len(top[0][0]) == len(expected[0])
        # no returned pattern can exceed the largest maximal size
        assert all(len(s) <= len(expected[0]) for s in sets)
    else:
        assert top == []


@given(random_graphs())
@settings(max_examples=80, deadline=None)
def test_every_returned_set_satisfies_the_definition(case):
    graph, params = case
    adjacency = {v: set(graph.neighbor_set(v)) for v in graph.vertices()}
    for vertex_set in QuasiCliqueSearch(graph, params).enumerate_maximal():
        assert satisfies_degree_condition(adjacency, vertex_set, params)
        assert len(vertex_set) >= params.min_size

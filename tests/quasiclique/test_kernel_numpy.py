"""Property suite for the numpy counter-lane kernel backend.

Mirrors ``test_kernel.py`` one level up the backend seam: where that
suite proves the big-int SWAR kernel byte-identical to the from-scratch
oracle, this one proves the vectorized numpy backend
(:mod:`repro.quasiclique.kernel_numpy`) byte-identical to the big-int
kernel — same emitted sets, same expansion/pruning statistics and the
same ``counter_updates`` tally, across the randomized grid, both
traversal orders and both vertex-set engines.  The big-int backend thus
stays the differential oracle for any future lane representation (a C
extension would slot into the same :func:`make_search_kernel` seam and
inherit this suite).

Also covered: the per-dtype lane selection (uint8 up to 127 working
vertices, uint16 beyond), the typed :class:`KernelCapacityError` on both
capacity limits, the ``REPRO_KERNEL_BACKEND`` environment override and
the working-set-size auto heuristic.

Seeds are fixed so failures replay; CI appends one more seed through the
``REPRO_FUZZ_SEED`` environment variable, exactly like ``test_kernel.py``.
"""

import os

import pytest

from repro.datasets.synthetic import random_attributed_graph
from repro.errors import KernelCapacityError, ParameterError
from repro.quasiclique.definitions import QuasiCliqueParams
from repro.quasiclique.kernel import (
    BIGINT_BACKEND,
    KERNEL_BACKEND_ENV,
    KERNEL_MAX_VERTICES,
    NUMPY_AUTO_MIN_VERTICES,
    NUMPY_BACKEND,
    NUMPY_UINT8_MAX_VERTICES,
    SearchKernel,
    make_search_kernel,
    numpy_available,
    resolve_kernel_backend,
)
from repro.quasiclique.search import BFS, DFS, QuasiCliqueSearch, SearchStats

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="numpy backend needs numpy importable"
)

BASE_SEEDS = (5, 23)

#: (num_vertices, edge_probability, γ, min_size) — the lean subset of the
#: ``test_kernel.py`` grid: γ < 0.5 rows exercise the no-diameter-bound
#: regime the numpy lanes target, γ ≥ 0.5 the distance-pruned one, and
#: every row's exhaustive tree stays small (γ=0.4 at min_size=2 explodes
#: to ~10M counter updates — deliberately excluded).
CASE_GRID = (
    (10, 0.1, 0.4, 3),
    (14, 0.3, 0.4, 3),
    (16, 0.25, 0.45, 3),
    (16, 0.25, 0.6, 3),
    (20, 0.4, 0.6, 3),
    (18, 0.5, 0.8, 4),
    (30, 0.2, 0.6, 3),
)


def fuzz_seeds():
    seeds = list(BASE_SEEDS)
    extra = os.environ.get("REPRO_FUZZ_SEED")
    if extra is not None:
        seeds.append(int(extra))
    return seeds


def fuzz_graph(seed, num_vertices, edge_probability):
    return random_attributed_graph(
        num_vertices=num_vertices,
        edge_probability=edge_probability,
        attributes=["a", "b"],
        attribute_probability=0.6,
        seed=seed * 977 + num_vertices,
    )


def stats_tuple(stats):
    """Every statistic both backends must agree on (labels aside)."""
    return (
        stats.nodes_expanded,
        stats.lookahead_hits,
        stats.satisfying_sets_found,
        stats.pruned_hopeless,
        stats.pruned_covered,
        stats.pruned_by_size,
        stats.counter_updates,
    )


def all_modes(graph, params, order, backend):
    def searcher():
        return QuasiCliqueSearch(
            graph,
            params,
            order=order,
            use_incremental_kernel=True,
            kernel_backend=backend,
        )

    coverage, enum, topk = searcher(), searcher(), searcher()
    return (
        coverage.covered_vertices(),
        stats_tuple(coverage.stats),
        enum.enumerate_maximal(),  # order included
        stats_tuple(enum.stats),
        topk.top_k(4),
        stats_tuple(topk.stats),
    )


# ----------------------------------------------------------------------
# differential identity: numpy backend vs big-int backend
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", fuzz_seeds())
@pytest.mark.parametrize(
    "num_vertices,edge_probability,gamma,min_size", CASE_GRID
)
def test_numpy_byte_identical_to_bigint(
    seed, num_vertices, edge_probability, gamma, min_size
):
    graph = fuzz_graph(seed, num_vertices, edge_probability)
    params = QuasiCliqueParams(gamma=gamma, min_size=min_size)
    for order in (DFS, BFS):
        bigint = all_modes(graph, params, order, BIGINT_BACKEND)
        vectorized = all_modes(graph, params, order, NUMPY_BACKEND)
        assert vectorized == bigint


@pytest.mark.parametrize("seed", fuzz_seeds())
def test_numpy_byte_identical_on_both_engines(seed):
    graph = fuzz_graph(seed, 22, 0.35)
    params = QuasiCliqueParams(gamma=0.6, min_size=3)
    results = set()
    for engine in ("dense", "sparse"):
        for backend in (BIGINT_BACKEND, NUMPY_BACKEND):
            search = QuasiCliqueSearch(
                graph,
                params,
                engine=engine,
                use_incremental_kernel=True,
                kernel_backend=backend,
            )
            results.add(
                (search.covered_vertices(), tuple(search.enumerate_maximal()))
            )
    assert len(results) == 1


# ----------------------------------------------------------------------
# counter invariants through the shared debug hook
# ----------------------------------------------------------------------
class _InvariantChecker:
    """debug_hook asserting live lanes == from-scratch at every node."""

    def __init__(self):
        self.nodes_checked = 0

    def __call__(self, kernel, node):
        self.nodes_checked += 1
        live = kernel.unpack(node)
        oracle = kernel.recompute_counters(node)
        assert live == oracle, (
            f"indeg_ext diverged at node X={node.members!r} "
            f"cand={bin(node.candidates)}: {live} != {oracle}"
        )


@pytest.mark.parametrize("seed", fuzz_seeds())
@pytest.mark.parametrize(
    "num_vertices,edge_probability,gamma,min_size", CASE_GRID[:4]
)
def test_numpy_indeg_ext_invariant_at_every_expanded_node(
    seed, num_vertices, edge_probability, gamma, min_size
):
    params = QuasiCliqueParams(gamma=gamma, min_size=min_size)
    checker = _InvariantChecker()
    SearchKernel.debug_hook = checker
    try:
        graph = fuzz_graph(seed, num_vertices, edge_probability)
        for order in (DFS, BFS):
            for mode in ("coverage", "enumerate", "topk"):
                search = QuasiCliqueSearch(
                    graph,
                    params,
                    order=order,
                    use_incremental_kernel=True,
                    kernel_backend=NUMPY_BACKEND,
                )
                if mode == "coverage":
                    search.covered_vertices()
                elif mode == "enumerate":
                    search.enumerate_maximal()
                else:
                    search.top_k(3)
    finally:
        SearchKernel.debug_hook = None
    assert checker.nodes_checked > 0


@pytest.mark.parametrize("seed", fuzz_seeds())
def test_row_loop_sweep_identical_to_cumsum(seed, monkeypatch):
    """Both retirement-sweep strategies must agree byte-for-byte.

    ``children()`` batches the sibling retirement with ``np.cumsum`` for
    small sibling blocks and an explicit SIMD row loop past
    ``_CUMSUM_CELLS_MAX`` cells; forcing the threshold to zero runs the
    row loop on the small fuzz graphs too, so the branch the benchmark
    workload exercises is differentially pinned here.
    """
    from repro.quasiclique import kernel_numpy

    graph = fuzz_graph(seed, 16, 0.35)
    params = QuasiCliqueParams(gamma=0.45, min_size=3)
    default = all_modes(graph, params, DFS, NUMPY_BACKEND)
    monkeypatch.setattr(kernel_numpy, "_CUMSUM_CELLS_MAX", 0)
    forced_row_loop = all_modes(graph, params, DFS, NUMPY_BACKEND)
    assert forced_row_loop == default
    assert default == all_modes(graph, params, DFS, BIGINT_BACKEND)


def test_empty_working_set_kernel():
    """A zero-vertex working set builds a (0, 0) kernel without tripping."""
    kernel = _kernel_for(0)
    assert kernel.backend_label == NUMPY_BACKEND


# ----------------------------------------------------------------------
# dtype selection and capacity limits
# ----------------------------------------------------------------------
def _kernel_for(n, backend=NUMPY_BACKEND):
    params = QuasiCliqueParams(gamma=0.5, min_size=3)
    return make_search_kernel([0] * n, params, None, SearchStats(), backend)


def test_dtype_uint8_up_to_127_vertices():
    for n in (1, NUMPY_UINT8_MAX_VERTICES):
        kernel = _kernel_for(n)
        assert kernel.backend_label == NUMPY_BACKEND
        assert kernel.dtype_name == "uint8"


def test_dtype_uint16_beyond_127_vertices():
    for n in (NUMPY_UINT8_MAX_VERTICES + 1, 500):
        kernel = _kernel_for(n)
        assert kernel.dtype_name == "uint16"


def test_numpy_capacity_error_beyond_uint16():
    with pytest.raises(KernelCapacityError) as caught:
        _kernel_for(KERNEL_MAX_VERTICES + 1)
    error = caught.value
    assert error.working_set_size == KERNEL_MAX_VERTICES + 1
    assert error.limit == KERNEL_MAX_VERTICES
    assert error.backend == NUMPY_BACKEND
    assert "uint8" in str(error) and "uint16" in str(error)


def test_bigint_capacity_error_beyond_lane_limit():
    with pytest.raises(KernelCapacityError) as caught:
        _kernel_for(KERNEL_MAX_VERTICES + 1, backend=BIGINT_BACKEND)
    error = caught.value
    assert error.limit == KERNEL_MAX_VERTICES
    assert error.backend == BIGINT_BACKEND


def test_search_reports_backend_and_dtype():
    graph = fuzz_graph(1, 20, 0.4)
    params = QuasiCliqueParams(gamma=0.6, min_size=3)
    search = QuasiCliqueSearch(
        graph, params, use_incremental_kernel=True, kernel_backend=NUMPY_BACKEND
    )
    assert search.stats.kernel_backend == NUMPY_BACKEND
    assert search.stats.kernel_dtype == "uint8"
    assert search.stats.kernel_backend_label() == "numpy(uint8)"


# ----------------------------------------------------------------------
# backend resolution: validation, env override, auto heuristic
# ----------------------------------------------------------------------
def test_unknown_backend_rejected():
    with pytest.raises(ParameterError):
        resolve_kernel_backend("cython", 10)
    with pytest.raises(ParameterError):
        QuasiCliqueSearch(
            fuzz_graph(1, 8, 0.3),
            QuasiCliqueParams(gamma=0.5, min_size=3),
            kernel_backend="cython",
        )


def test_auto_picks_by_working_set_size(monkeypatch):
    monkeypatch.delenv(KERNEL_BACKEND_ENV, raising=False)
    assert (
        resolve_kernel_backend("auto", NUMPY_AUTO_MIN_VERTICES - 1)
        == BIGINT_BACKEND
    )
    assert (
        resolve_kernel_backend("auto", NUMPY_AUTO_MIN_VERTICES) == NUMPY_BACKEND
    )
    # beyond numpy lane capacity auto stays on big-int (which the search
    # loop then auto-disables; only a *forced* kernel raises).
    assert (
        resolve_kernel_backend("auto", KERNEL_MAX_VERTICES + 1)
        == BIGINT_BACKEND
    )


def test_env_override_steers_auto(monkeypatch):
    monkeypatch.setenv(KERNEL_BACKEND_ENV, NUMPY_BACKEND)
    assert resolve_kernel_backend("auto", 10) == NUMPY_BACKEND
    monkeypatch.setenv(KERNEL_BACKEND_ENV, BIGINT_BACKEND)
    assert resolve_kernel_backend("auto", 10 ** 6) == BIGINT_BACKEND
    # explicit requests win over the environment
    assert resolve_kernel_backend(NUMPY_BACKEND, 10) == NUMPY_BACKEND
    monkeypatch.setenv(KERNEL_BACKEND_ENV, "not-a-backend")
    with pytest.raises(ParameterError):
        resolve_kernel_backend("auto", 10)
    # ...and ignore a broken environment value entirely
    assert resolve_kernel_backend(BIGINT_BACKEND, 10) == BIGINT_BACKEND

"""Unit tests for the quasi-clique search engine (all three modes)."""

import pytest

from repro.errors import ParameterError
from repro.quasiclique.definitions import QuasiCliqueParams
from repro.quasiclique.search import (
    BFS,
    DFS,
    QuasiCliqueSearch,
    SearchBudgetExceeded,
    find_quasi_cliques,
    top_k_quasi_cliques,
    vertices_in_quasi_cliques,
)

EXAMPLE_MAXIMAL = {
    frozenset({3, 4, 5, 6}),
    frozenset({3, 4, 6, 7}),
    frozenset({3, 5, 6, 7}),
    frozenset({3, 6, 7, 8}),
    frozenset({6, 7, 8, 9, 10, 11}),
}


class TestEnumeration:
    def test_example_maximal_quasi_cliques(self, example_graph):
        found = set(find_quasi_cliques(example_graph, gamma=0.6, min_size=4))
        assert found == EXAMPLE_MAXIMAL

    def test_bfs_and_dfs_agree(self, example_graph):
        dfs = set(find_quasi_cliques(example_graph, 0.6, 4, order=DFS))
        bfs = set(find_quasi_cliques(example_graph, 0.6, 4, order=BFS))
        assert dfs == bfs

    def test_cliques_at_gamma_one(self, example_graph):
        found = set(find_quasi_cliques(example_graph, gamma=1.0, min_size=3))
        assert frozenset({3, 4, 5, 6}) in found
        # every returned set is a clique
        for clique in found:
            for u in clique:
                assert clique - {u} <= set(example_graph.neighbor_set(u))

    def test_min_size_filters_small_cliques(self, example_graph):
        found = find_quasi_cliques(example_graph, gamma=1.0, min_size=5)
        assert found == []

    def test_vertex_restriction(self, example_graph):
        found = set(
            find_quasi_cliques(
                example_graph, 0.6, 4, vertices=[6, 7, 8, 9, 10, 11]
            )
        )
        assert found == {frozenset({6, 7, 8, 9, 10, 11})}

    def test_results_are_maximal(self, example_graph):
        found = find_quasi_cliques(example_graph, 0.6, 4)
        for first in found:
            for second in found:
                assert not first < second

    def test_triangle_with_pendant(self, triangle_graph):
        found = set(find_quasi_cliques(triangle_graph, gamma=1.0, min_size=3))
        assert found == {frozenset({1, 2, 3})}

    def test_empty_graph_like_restriction(self, example_graph):
        assert find_quasi_cliques(example_graph, 0.6, 4, vertices=[]) == []

    def test_invalid_order_rejected(self, example_graph):
        params = QuasiCliqueParams(gamma=0.5, min_size=3)
        with pytest.raises(ParameterError):
            QuasiCliqueSearch(example_graph, params, order="random")


class TestCoverage:
    def test_example_coverage(self, example_graph):
        covered = vertices_in_quasi_cliques(example_graph, 0.6, 4)
        assert covered == frozenset(range(3, 12))

    def test_coverage_orders_agree(self, example_graph):
        dfs = vertices_in_quasi_cliques(example_graph, 0.6, 4, order=DFS)
        bfs = vertices_in_quasi_cliques(example_graph, 0.6, 4, order=BFS)
        assert dfs == bfs

    def test_coverage_equals_union_of_maximal(self, example_graph, small_random_graph):
        for graph in (example_graph, small_random_graph):
            maximal = find_quasi_cliques(graph, 0.5, 3)
            union = frozenset().union(*maximal) if maximal else frozenset()
            assert vertices_in_quasi_cliques(graph, 0.5, 3) == union

    def test_targets_limit_the_answer(self, example_graph):
        covered = vertices_in_quasi_cliques(example_graph, 0.6, 4, targets=[1, 3, 9])
        assert covered == frozenset({3, 9})

    def test_targets_outside_working_set(self, example_graph):
        covered = vertices_in_quasi_cliques(example_graph, 0.6, 4, targets=[1, 2])
        assert covered == frozenset()

    def test_restriction_propagates(self, example_graph):
        covered = vertices_in_quasi_cliques(
            example_graph, 0.6, 4, vertices=[3, 4, 5, 6, 7]
        )
        assert covered == frozenset({3, 4, 5, 6, 7})


class TestTopK:
    def test_top_1_is_largest(self, example_graph):
        top = top_k_quasi_cliques(example_graph, 0.6, 4, k=1)
        assert len(top) == 1
        assert top[0][0] == frozenset({6, 7, 8, 9, 10, 11})
        assert top[0][1] == pytest.approx(0.6)

    def test_top_k_ordering(self, example_graph):
        top = top_k_quasi_cliques(example_graph, 0.6, 4, k=3)
        sizes = [len(vertex_set) for vertex_set, _ in top]
        assert sizes == sorted(sizes, reverse=True)
        # secondary criterion: among the size-4 patterns the clique comes first
        assert top[1][0] == frozenset({3, 4, 5, 6})

    def test_top_k_larger_than_available(self, example_graph):
        top = top_k_quasi_cliques(example_graph, 0.6, 4, k=50)
        assert {vertex_set for vertex_set, _ in top} == EXAMPLE_MAXIMAL

    def test_invalid_k(self, example_graph):
        params = QuasiCliqueParams(gamma=0.6, min_size=4)
        with pytest.raises(ParameterError):
            QuasiCliqueSearch(example_graph, params).top_k(0)


class TestEngineDetails:
    def test_stats_are_recorded(self, example_graph):
        params = QuasiCliqueParams(gamma=0.6, min_size=4)
        search = QuasiCliqueSearch(example_graph, params)
        search.enumerate_maximal()
        assert search.stats.nodes_expanded > 0
        assert search.stats.satisfying_sets_found >= len(EXAMPLE_MAXIMAL)

    def test_node_budget_enforced(self, example_graph):
        params = QuasiCliqueParams(gamma=0.5, min_size=3)
        search = QuasiCliqueSearch(example_graph, params, node_budget=2)
        with pytest.raises(SearchBudgetExceeded):
            search.enumerate_maximal()

    def test_disable_distance_pruning_same_result(self, example_graph):
        params = QuasiCliqueParams(gamma=0.6, min_size=4)
        with_pruning = QuasiCliqueSearch(example_graph, params).enumerate_maximal()
        without_pruning = QuasiCliqueSearch(
            example_graph, params, use_distance_pruning=False
        ).enumerate_maximal()
        assert set(with_pruning) == set(without_pruning)

    def test_working_vertices_after_global_pruning(self, triangle_graph):
        params = QuasiCliqueParams(gamma=1.0, min_size=3)
        search = QuasiCliqueSearch(triangle_graph, params)
        assert search.working_vertices == frozenset({1, 2, 3})

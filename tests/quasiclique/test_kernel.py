"""Property suite for the incremental-counter search kernel.

Two families of guarantees:

* **Counter invariants** — at every expanded node the kernel's
  ``indeg_ext`` lane vector must equal the from-scratch mask
  recomputation (checked through the ``SearchKernel.debug_hook`` seam on
  randomized graphs, every search mode, both traversal orders).
* **Differential identity** — every search mode must return
  byte-identical results (and identical expansion/pruning statistics)
  with the kernel on and off, across a randomized size/density grid,
  high and low γ (the γ < 0.5 regime disables distance pruning and is
  the kernel's primary target), both orders, and both engines.

Seeds are fixed so failures replay; CI appends one more seed through the
``REPRO_FUZZ_SEED`` environment variable, exactly like the sparse/dense
differential suite.
"""

import os

import pytest

from repro.datasets.synthetic import random_attributed_graph
from repro.quasiclique.definitions import QuasiCliqueParams
from repro.quasiclique.kernel import (
    KERNEL_MAX_VERTICES,
    SearchKernel,
    spread_lanes,
    threshold_table,
)
from repro.quasiclique.search import BFS, DFS, QuasiCliqueSearch

BASE_SEEDS = (5, 23)

#: (num_vertices, edge_probability, γ, min_size) — shapes from
#: near-empty to dense.  γ < 0.5 rows run without the diameter bound —
#: the regime where the kernel replaces the oracle's fattest sweeps —
#: and are paired with sizes/densities whose exhaustive trees stay small.
CASE_GRID = (
    (10, 0.1, 0.4, 3),
    (14, 0.3, 0.4, 3),
    (16, 0.25, 0.45, 3),
    (16, 0.25, 0.6, 3),
    (20, 0.4, 0.6, 3),
    (18, 0.5, 0.8, 4),
    (30, 0.2, 0.6, 3),
    (20, 0.4, 1.0, 3),
)


def fuzz_seeds():
    seeds = list(BASE_SEEDS)
    extra = os.environ.get("REPRO_FUZZ_SEED")
    if extra is not None:
        seeds.append(int(extra))
    return seeds


def fuzz_graph(seed, num_vertices, edge_probability):
    return random_attributed_graph(
        num_vertices=num_vertices,
        edge_probability=edge_probability,
        attributes=["a", "b"],
        attribute_probability=0.6,
        seed=seed * 977 + num_vertices,
    )


def stats_tuple(stats):
    """Every statistic both loops must agree on (kernel bookkeeping aside)."""
    return (
        stats.nodes_expanded,
        stats.lookahead_hits,
        stats.satisfying_sets_found,
        stats.pruned_hopeless,
        stats.pruned_covered,
        stats.pruned_by_size,
    )


# ----------------------------------------------------------------------
# counter invariants through the debug hook
# ----------------------------------------------------------------------
class _InvariantChecker:
    """debug_hook asserting live lanes == from-scratch at every node."""

    def __init__(self):
        self.nodes_checked = 0

    def __call__(self, kernel, node):
        self.nodes_checked += 1
        live = kernel.unpack(node)
        oracle = kernel.recompute_counters(node)
        assert live == oracle, (
            f"indeg_ext diverged at node X={node.members!r} "
            f"cand={bin(node.candidates)}: {live} != {oracle}"
        )


@pytest.mark.parametrize("seed", fuzz_seeds())
@pytest.mark.parametrize(
    "num_vertices,edge_probability,gamma,min_size", CASE_GRID[:5]
)
def test_indeg_ext_invariant_at_every_expanded_node(
    seed, num_vertices, edge_probability, gamma, min_size
):
    params = QuasiCliqueParams(gamma=gamma, min_size=min_size)
    checker = _InvariantChecker()
    SearchKernel.debug_hook = checker
    try:
        graph = fuzz_graph(seed, num_vertices, edge_probability)
        for order in (DFS, BFS):
            for mode in ("coverage", "enumerate", "topk"):
                search = QuasiCliqueSearch(
                    graph, params, order=order, use_incremental_kernel=True
                )
                if mode == "coverage":
                    search.covered_vertices()
                elif mode == "enumerate":
                    search.enumerate_maximal()
                else:
                    search.top_k(3)
    finally:
        SearchKernel.debug_hook = None
    assert checker.nodes_checked > 0


# ----------------------------------------------------------------------
# differential identity: kernel vs from-scratch oracle
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", fuzz_seeds())
@pytest.mark.parametrize(
    "num_vertices,edge_probability,gamma,min_size", CASE_GRID
)
def test_kernel_byte_identical_to_oracle(
    seed, num_vertices, edge_probability, gamma, min_size
):
    graph = fuzz_graph(seed, num_vertices, edge_probability)
    params = QuasiCliqueParams(gamma=gamma, min_size=min_size)
    for order in (DFS, BFS):
        by_kernel = {}
        for use_kernel in (False, True):
            coverage = QuasiCliqueSearch(
                graph, params, order=order, use_incremental_kernel=use_kernel
            )
            enumerate_search = QuasiCliqueSearch(
                graph, params, order=order, use_incremental_kernel=use_kernel
            )
            topk = QuasiCliqueSearch(
                graph, params, order=order, use_incremental_kernel=use_kernel
            )
            by_kernel[use_kernel] = (
                coverage.covered_vertices(),
                stats_tuple(coverage.stats),
                enumerate_search.enumerate_maximal(),  # order included
                stats_tuple(enumerate_search.stats),
                topk.top_k(4),
                stats_tuple(topk.stats),
            )
        assert by_kernel[True] == by_kernel[False]


@pytest.mark.parametrize("seed", fuzz_seeds())
def test_kernel_byte_identical_on_both_engines(seed):
    graph = fuzz_graph(seed, 22, 0.35)
    params = QuasiCliqueParams(gamma=0.6, min_size=3)
    results = set()
    for engine in ("dense", "sparse"):
        for use_kernel in (False, True):
            search = QuasiCliqueSearch(
                graph,
                params,
                engine=engine,
                use_incremental_kernel=use_kernel,
            )
            results.add(
                (search.covered_vertices(), tuple(search.enumerate_maximal()))
            )
    assert len(results) == 1


def test_vertex_restricted_search_identical(example_graph, example_qc_params):
    vertices = list(example_graph.vertices())[:8]
    for use_kernel in (False, True):
        search = QuasiCliqueSearch(
            example_graph,
            example_qc_params,
            vertices=vertices,
            use_incremental_kernel=use_kernel,
        )
        if use_kernel:
            kernel_result = search.covered_vertices()
        else:
            oracle_result = search.covered_vertices()
    assert kernel_result == oracle_result


# ----------------------------------------------------------------------
# selection rule and kernel plumbing
# ----------------------------------------------------------------------
def test_auto_selection_rule(example_graph):
    low_gamma = QuasiCliqueParams(gamma=0.4, min_size=3)
    high_gamma = QuasiCliqueParams(gamma=0.6, min_size=3)
    # γ < 0.5: no usable diameter bound — the kernel always engages (DFS).
    assert QuasiCliqueSearch(example_graph, low_gamma)._kernel is not None
    # BFS never auto-selects the kernel.
    assert QuasiCliqueSearch(example_graph, low_gamma, order=BFS)._kernel is None
    # small γ ≥ 0.5 working sets keep the oracle...
    assert QuasiCliqueSearch(example_graph, high_gamma)._kernel is None
    # ...unless forced.
    forced = QuasiCliqueSearch(
        example_graph, high_gamma, use_incremental_kernel=True
    )
    assert forced._kernel is not None
    disabled = QuasiCliqueSearch(
        example_graph, low_gamma, use_incremental_kernel=False
    )
    assert disabled._kernel is None


def test_deep_member_paths_use_the_lane_compare():
    # A 14-clique forces |X| past the small-set bound, exercising the SWAR
    # branches of the hopeless/lookahead rules; the oracle stays the
    # ground truth.
    from repro.graph.attributed_graph import AttributedGraph

    graph = AttributedGraph()
    clique = list(range(14))
    # full 14-clique, except vertex 0 misses four edges — the root
    # lookahead fails and the search recurses into member paths longer
    # than the small-set bound
    missing = {(0, 1), (0, 2), (0, 3), (0, 4)}
    for v in clique:
        graph.add_vertex(v)
    for i in clique:
        for j in clique[i + 1:]:
            if (i, j) not in missing:
                graph.add_edge(i, j)
    params = QuasiCliqueParams(gamma=0.9, min_size=10)
    results = {
        use_kernel: (
            QuasiCliqueSearch(
                graph, params, use_incremental_kernel=use_kernel
            ).enumerate_maximal(),
            QuasiCliqueSearch(
                graph, params, use_incremental_kernel=use_kernel
            ).covered_vertices(),
        )
        for use_kernel in (False, True)
    }
    assert results[True] == results[False]
    assert frozenset(clique[1:]) in results[True][0]


def test_counter_updates_stat_counts_kernel_work(example_graph):
    params = QuasiCliqueParams(gamma=0.6, min_size=4)
    kernel_search = QuasiCliqueSearch(
        example_graph, params, use_incremental_kernel=True
    )
    kernel_search.covered_vertices()
    oracle_search = QuasiCliqueSearch(
        example_graph, params, use_incremental_kernel=False
    )
    oracle_search.covered_vertices()
    assert kernel_search.stats.counter_updates > 0
    assert oracle_search.stats.counter_updates == 0


def test_kernel_refuses_oversized_local_space():
    table = threshold_table(QuasiCliqueParams(gamma=0.5, min_size=2), 4)
    assert table == [0, 0, 1, 1, 2]
    with pytest.raises(ValueError):
        SearchKernel(
            [0] * (KERNEL_MAX_VERTICES + 1),
            QuasiCliqueParams(gamma=0.5, min_size=2),
            None,
            None,
        )


def test_spread_lanes():
    assert spread_lanes(0) == 0
    assert spread_lanes(0b1) == 1
    assert spread_lanes(0b101) == (1 << 32) | 1
    # every bit lands at 16×its position, nothing else is set
    mask = 0b1101001
    spread = spread_lanes(mask)
    for v in range(8):
        expected = 1 if mask >> v & 1 else 0
        assert (spread >> (16 * v)) & 0xFFFF == expected

"""Unit tests for the quasi-clique pruning rules."""

from repro.quasiclique.definitions import QuasiCliqueParams
from repro.quasiclique.pruning import (
    DistanceIndex,
    filter_candidates_by_degree,
    prune_low_degree_vertices,
    restrict_candidates,
    subtree_is_hopeless,
)


def adjacency_of(graph, vertices=None):
    keep = set(graph.vertices()) if vertices is None else set(vertices)
    return {v: set(graph.neighbor_set(v)) & keep for v in keep}


class TestVertexPruning:
    def test_keeps_dense_core(self, example_graph):
        adjacency = adjacency_of(example_graph)
        params = QuasiCliqueParams(gamma=0.6, min_size=4)
        pruned = prune_low_degree_vertices(adjacency, params)
        # every vertex of the example has degree >= 2, nothing is pruned
        assert set(pruned) == set(adjacency)

    def test_prunes_pendant_chain(self, triangle_graph):
        adjacency = adjacency_of(triangle_graph)
        params = QuasiCliqueParams(gamma=1.0, min_size=3)
        pruned = prune_low_degree_vertices(adjacency, params)
        assert set(pruned) == {1, 2, 3}

    def test_cascading_removal(self):
        # a path 1-2-3-4: nobody reaches degree 2, so everything goes
        adjacency = {1: {2}, 2: {1, 3}, 3: {2, 4}, 4: {3}}
        params = QuasiCliqueParams(gamma=1.0, min_size=3)
        assert prune_low_degree_vertices(adjacency, params) == {}

    def test_never_prunes_members_of_valid_quasi_cliques(self, example_graph):
        adjacency = adjacency_of(example_graph)
        params = QuasiCliqueParams(gamma=0.6, min_size=4)
        pruned = prune_low_degree_vertices(adjacency, params)
        for member in (3, 4, 5, 6, 7, 8, 9, 10, 11):
            assert member in pruned


class TestDistanceIndex:
    def test_disabled_for_low_gamma(self, example_graph):
        adjacency = adjacency_of(example_graph)
        index = DistanceIndex(adjacency, distance_bound=0)
        assert not index.enabled

    def test_distance_one_is_closed_neighborhood(self, example_graph):
        adjacency = adjacency_of(example_graph)
        index = DistanceIndex(adjacency, distance_bound=1)
        assert index.reachable(4) == {3, 4, 5, 6}

    def test_distance_two(self, example_graph):
        adjacency = adjacency_of(example_graph)
        index = DistanceIndex(adjacency, distance_bound=2)
        reachable = index.reachable(1)
        assert 4 in reachable  # via 3
        assert 9 not in reachable  # distance 3 from vertex 1

    def test_allowed_extensions_intersects_members(self, example_graph):
        adjacency = adjacency_of(example_graph)
        index = DistanceIndex(adjacency, distance_bound=1)
        allowed = index.allowed_extensions([3, 4], set(adjacency))
        assert allowed == {3, 4, 5, 6}  # common closed neighbourhood


class TestCandidateFilters:
    def test_filter_candidates_by_degree(self, example_graph):
        adjacency = adjacency_of(example_graph)
        params = QuasiCliqueParams(gamma=1.0, min_size=4)
        # extending X = {3, 4}: vertex 1 has only one neighbour in scope, dropped
        remaining = filter_candidates_by_degree(
            adjacency, {3, 4}, {1, 5, 6, 7}, params
        )
        assert 1 not in remaining
        assert {5, 6} <= remaining

    def test_filter_reaches_fixpoint(self):
        # star graph: centre 0, leaves 1..4 — once leaves go, nothing remains
        adjacency = {0: {1, 2, 3, 4}, 1: {0}, 2: {0}, 3: {0}, 4: {0}}
        params = QuasiCliqueParams(gamma=1.0, min_size=3)
        remaining = filter_candidates_by_degree(adjacency, set(), set(adjacency), params)
        assert remaining == set()

    def test_subtree_is_hopeless_when_too_small(self, example_graph):
        adjacency = adjacency_of(example_graph)
        params = QuasiCliqueParams(gamma=0.6, min_size=4)
        # fewer vertices than min_size -> hopeless
        assert subtree_is_hopeless(adjacency, set(), {1, 2}, params)
        assert subtree_is_hopeless(adjacency, {1, 2}, {3}, params)

    def test_subtree_is_hopeless_degree_bound(self, example_graph):
        adjacency = adjacency_of(example_graph)
        params = QuasiCliqueParams(gamma=0.6, min_size=4)
        # vertex 1 has neighbours {2, 3}, none of which is in the subtree scope
        # {1, 4, 5, 6, 7}, so it can never reach the required degree of 2
        assert subtree_is_hopeless(adjacency, {1}, {4, 5, 6, 7}, params)

    def test_subtree_with_valid_quasi_clique_is_not_hopeless(self, example_graph):
        adjacency = adjacency_of(example_graph)
        params = QuasiCliqueParams(gamma=0.6, min_size=4)
        assert not subtree_is_hopeless(adjacency, {3}, {4, 5, 6}, params)

    def test_restrict_candidates_combines_rules(self, example_graph):
        adjacency = adjacency_of(example_graph)
        params = QuasiCliqueParams(gamma=1.0, min_size=4)
        index = DistanceIndex(adjacency, params.distance_bound)
        reduced = restrict_candidates(
            adjacency, {3, 4}, set(adjacency) - {3, 4}, params, index
        )
        assert reduced == {5, 6}

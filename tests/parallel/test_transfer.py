"""Unit tests for the one-time payload transfer layer.

The contract under test: the payload is serialized in the parent at most
once (zero times under fork), every worker attaches exactly once no matter
how many tasks it executes, and no shared-memory segment outlives its
:class:`~repro.parallel.transfer.PayloadTransfer` context.
"""

import os

import pytest

from repro.errors import ParameterError, TransferError
from repro.parallel import transfer
from repro.parallel.scheduler import WorkStealingScheduler
from repro.parallel.transfer import (
    AUTO,
    FORK,
    PICKLE,
    SHARED_MEMORY,
    STRATEGIES,
    PayloadTransfer,
    active_segments,
    attach_count,
    current_payload,
    in_worker,
    resolve_transfer,
)


def available_strategies():
    """Concrete strategies usable on this platform."""
    strategies = [PICKLE]
    try:
        import multiprocessing

        if FORK in multiprocessing.get_all_start_methods():
            strategies.append(FORK)
    except (ImportError, NotImplementedError):
        return strategies
    try:
        import multiprocessing.shared_memory  # noqa: F401

        strategies.append(SHARED_MEMORY)
    except ImportError:
        pass
    return strategies


def _probe_task(payload, run):
    """Report what this worker sees: payload, pid, attach count, flag."""
    return (payload, os.getpid(), attach_count(), in_worker())


class TestResolve:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(ParameterError):
            resolve_transfer("teleport")

    def test_auto_resolves_to_concrete(self):
        assert resolve_transfer(AUTO) in (FORK, SHARED_MEMORY, PICKLE)
        assert resolve_transfer(AUTO) != AUTO

    def test_concrete_names_resolve_to_themselves(self):
        for strategy in STRATEGIES:
            if strategy != AUTO:
                assert resolve_transfer(strategy) == strategy


class TestParentSide:
    def test_current_payload_outside_worker_raises(self):
        with pytest.raises(TransferError):
            current_payload()
        assert not in_worker()

    def test_not_reentrant(self):
        staged = PayloadTransfer({"x": 1}, strategy=PICKLE)
        with staged:
            with pytest.raises(TransferError):
                staged.__enter__()

    def test_serialization_counts(self):
        for strategy in available_strategies():
            with PayloadTransfer([1, 2, 3], strategy=strategy) as staged:
                expected = 0 if strategy == FORK else 1
                assert staged.stats.serializations == expected, strategy

    @pytest.mark.skipif(
        SHARED_MEMORY not in available_strategies(),
        reason="shared memory unavailable",
    )
    def test_shared_memory_segment_unlinked_on_exit(self):
        from multiprocessing import shared_memory

        with PayloadTransfer({"big": list(range(1000))}, strategy=SHARED_MEMORY) as staged:
            name = staged._segment.name
            assert name in active_segments()
        assert name not in active_segments()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    @pytest.mark.skipif(
        SHARED_MEMORY not in available_strategies(),
        reason="shared memory unavailable",
    )
    def test_fork_inherited_copy_does_not_unlink_parent_segment(self):
        """A transfer object reaching a worker by fork inheritance must not
        tear down the parent's shared segment on exit (owner-PID guard)."""
        from multiprocessing import shared_memory

        staged = PayloadTransfer({"x": 1}, strategy=SHARED_MEMORY)
        staged.__enter__()
        name = staged._segment.name
        try:
            staged._owner_pid += 1  # simulate: a different (child) process
            staged.__exit__(None, None, None)
            probe = shared_memory.SharedMemory(name=name)  # still alive
            probe.close()
        finally:
            # re-own and clean up for real
            import os

            staged._segment = shared_memory.SharedMemory(name=name)
            staged._owner_pid = os.getpid()
            staged.__exit__(None, None, None)
        assert name not in active_segments()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_no_segments_leak_across_scheduler_runs(self):
        before = active_segments()
        for strategy in available_strategies():
            with WorkStealingScheduler(
                {"k": "v"}, _probe_task, 2, transfer=strategy
            ) as scheduler:
                for run in range(4):
                    scheduler.submit((run,), run)
                scheduler.run()
        assert active_segments() == before


class TestWorkerSide:
    @pytest.mark.parametrize("strategy", available_strategies())
    def test_payload_roundtrip_and_single_attach(self, strategy):
        """20 tasks across 2 workers: payload intact, one attach per worker."""
        payload = {"graph": list(range(50)), "tag": strategy}
        with WorkStealingScheduler(
            payload, _probe_task, 2, transfer=strategy
        ) as scheduler:
            for run in range(20):
                scheduler.submit((run,), run)
            results = scheduler.run()
        assert len(results) == 20
        parent_pid = os.getpid()
        attaches_by_pid = {}
        for seen_payload, pid, attaches, flagged in results.values():
            assert seen_payload == payload
            assert flagged
            assert pid != parent_pid, "task ran in the parent process"
            attaches_by_pid.setdefault(pid, set()).add(attaches)
        # every worker deserialized the payload exactly once, however many
        # of the 20 tasks it pulled from the shared queue
        for pid, counts in attaches_by_pid.items():
            assert counts == {1}, (pid, counts)

    def test_parent_never_attaches(self):
        with WorkStealingScheduler(
            "payload", _probe_task, 2, transfer=available_strategies()[0]
        ) as scheduler:
            scheduler.submit((0,), 0)
            scheduler.run()
        assert attach_count() == 0
        assert not in_worker()


class TestInitializersInline:
    """Drive each pool initializer in this process (workers run them in
    children, where the coverage gate cannot see them)."""

    def test_attach_blob(self):
        import pickle

        transfer._attach_blob(pickle.dumps({"k": 1}))
        try:
            assert current_payload() == {"k": 1}
        finally:
            transfer.reset_worker_state()

    @pytest.mark.skipif(
        SHARED_MEMORY not in available_strategies(),
        reason="shared memory unavailable",
    )
    def test_attach_shared(self):
        with PayloadTransfer(["shm", "payload"], strategy=SHARED_MEMORY) as staged:
            transfer._attach_shared(*staged.initargs)
            try:
                assert current_payload() == ["shm", "payload"]
            finally:
                transfer.reset_worker_state()

    def test_attach_shared_vanished_segment(self):
        with pytest.raises(TransferError):
            transfer._attach_shared("repro-no-such-segment", 8)

    def test_attach_fork(self):
        with PayloadTransfer(("fork", "payload"), strategy=FORK) as staged:
            assert staged.stats.serializations == 0
            token = staged.initargs[0]
            staged.initializer(*staged.initargs)
            try:
                assert current_payload() == ("fork", "payload")
            finally:
                transfer.reset_worker_state()
        # outside the context the staged entry is cleared again
        with pytest.raises(TransferError):
            transfer._attach_fork(token)

    def test_overlapping_fork_transfers_stay_isolated(self):
        """Two fork transfers open at once must not clobber each other —
        each pool's initargs token resolves to its own payload (the bug a
        lazily forked outer-pool worker would otherwise hit)."""
        with PayloadTransfer("outer", strategy=FORK) as outer:
            with PayloadTransfer("inner", strategy=FORK) as inner:
                inner.initializer(*inner.initargs)
                assert current_payload() == "inner"
                transfer.reset_worker_state()
                # the outer pool can still fork-and-attach correctly
                outer.initializer(*outer.initargs)
                assert current_payload() == "outer"
                transfer.reset_worker_state()
            # inner closed: outer's staged payload must survive
            outer.initializer(*outer.initargs)
            assert current_payload() == "outer"
            transfer.reset_worker_state()


class TestWorkerStateReset:
    def test_reset_clears_adopted_payload(self):
        transfer._adopt("unit-test payload")
        try:
            assert in_worker()
            assert current_payload() == "unit-test payload"
            assert attach_count() == 1
        finally:
            transfer.reset_worker_state()
        assert not in_worker()
        assert attach_count() == 0

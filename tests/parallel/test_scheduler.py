"""Unit tests for the work-stealing scheduler and its task batching."""

import pytest

from repro.errors import ParallelError, ParameterError
from repro.parallel import transfer
from repro.parallel.scheduler import (
    BATCH_OVERSUBSCRIPTION,
    WorkStealingScheduler,
    _Task,
    _run_batch,
    pack_batches,
)


def _square_task(payload, value):
    return payload * value * value


def _echo_task(payload, *args):
    return args


def tasks_from_weights(weights):
    return [
        _Task(key=(index,), args=(index,), weight=weight)
        for index, weight in enumerate(weights)
    ]


class TestPackBatches:
    def test_empty(self):
        assert pack_batches([], n_jobs=4, batch_size=8) == []

    def test_every_task_packed_exactly_once(self):
        tasks = tasks_from_weights([5, 1, 9, 2, 2, 40, 1, 1])
        batches = pack_batches(tasks, n_jobs=2, batch_size=4)
        packed = sorted(task.key for batch in batches for task in batch)
        assert packed == sorted(task.key for task in tasks)

    def test_heaviest_first(self):
        tasks = tasks_from_weights([1, 100, 3])
        batches = pack_batches(tasks, n_jobs=2, batch_size=8)
        assert batches[0][0].key == (1,)

    def test_heavy_task_travels_alone(self):
        # one task dominating the total weight must not drag small tasks
        # into its submission — it has to stay individually stealable
        tasks = tasks_from_weights([100, 1, 1, 1, 1])
        batches = pack_batches(tasks, n_jobs=2, batch_size=8)
        assert [task.key for task in batches[0]] == [(0,)]

    def test_small_tasks_coalesce(self):
        # equal light tasks with a generous cap should share submissions
        tasks = tasks_from_weights([1] * 64)
        batches = pack_batches(tasks, n_jobs=2, batch_size=8)
        assert len(batches) == 64 // 8
        assert all(len(batch) == 8 for batch in batches)

    def test_batch_size_cap_respected(self):
        tasks = tasks_from_weights([1] * 30)
        for batch_size in (1, 3, 8):
            batches = pack_batches(tasks, n_jobs=1, batch_size=batch_size)
            assert max(len(batch) for batch in batches) <= batch_size

    def test_deterministic(self):
        tasks = tasks_from_weights([7, 7, 3, 9, 1, 1, 4])
        first = pack_batches(tasks, n_jobs=2, batch_size=4)
        second = pack_batches(list(tasks), n_jobs=2, batch_size=4)
        assert [[t.key for t in b] for b in first] == [
            [t.key for t in b] for b in second
        ]

    def test_weight_cap_tracks_jobs(self):
        # more workers → smaller cap → more, finer batches
        tasks = tasks_from_weights([2] * 32)
        few = pack_batches(tasks, n_jobs=1, batch_size=32)
        many = pack_batches(tasks, n_jobs=4, batch_size=32)
        assert len(many) >= len(few)
        assert len(many) >= 4 * BATCH_OVERSUBSCRIPTION // 2


class TestSchedulerContract:
    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            WorkStealingScheduler(None, _square_task, n_jobs=0)
        with pytest.raises(ParameterError):
            WorkStealingScheduler(None, _square_task, n_jobs=2, batch_size=0)

    def test_submit_outside_context_raises(self):
        scheduler = WorkStealingScheduler(2, _square_task, n_jobs=1)
        with pytest.raises(ParallelError):
            scheduler.submit((0,), 1)

    def test_duplicate_key_rejected(self):
        with WorkStealingScheduler(2, _square_task, n_jobs=1) as scheduler:
            scheduler.submit((0,), 1)
            scheduler.run()
            with pytest.raises(ParallelError):
                scheduler.submit((0,), 1)

    def test_duplicate_key_rejected_before_flush(self):
        # the guard must also catch duplicates still sitting in the buffer
        with WorkStealingScheduler(2, _square_task, n_jobs=1) as scheduler:
            scheduler.submit((0,), 1)
            with pytest.raises(ParallelError):
                scheduler.submit((0,), 2)

    def test_not_reentrant(self):
        scheduler = WorkStealingScheduler(2, _square_task, n_jobs=1)
        with scheduler:
            with pytest.raises(ParallelError):
                scheduler.__enter__()

    def test_task_error_propagates(self):
        def _boom(payload, value):
            raise ValueError("task exploded")

        # in-process path: the error surfaces directly
        with WorkStealingScheduler(1, _boom, n_jobs=1) as scheduler:
            scheduler.submit((0,), 1)
            with pytest.raises(ValueError):
                scheduler.run()


class TestSchedulerExecution:
    @pytest.mark.parametrize("n_jobs", [1, 2, 4])
    def test_results_identical_for_any_worker_count(self, n_jobs):
        with WorkStealingScheduler(3, _square_task, n_jobs=n_jobs) as scheduler:
            for value in range(12):
                scheduler.submit((value,), value, weight=value + 1)
            results = scheduler.run()
        assert results == {(v,): 3 * v * v for v in range(12)}

    def test_durations_recorded_per_task(self):
        with WorkStealingScheduler(1, _square_task, n_jobs=2) as scheduler:
            for value in range(6):
                scheduler.submit((value,), value)
            scheduler.run()
        assert set(scheduler.task_durations) == {(v,) for v in range(6)}
        assert all(s >= 0.0 for s in scheduler.task_durations.values())

    @pytest.mark.parametrize("n_jobs", [1, 3])
    def test_dynamic_submission_during_drain(self, n_jobs):
        """Second-wave tasks submitted from the drain loop still run."""
        with WorkStealingScheduler(10, _square_task, n_jobs=n_jobs) as scheduler:
            for value in range(4):
                scheduler.submit(("first", value), value)
            for key, result in scheduler.drain():
                if key[0] == "first":
                    scheduler.submit(("second", key[1]), key[1] + 100)
            results = scheduler.results
        assert len(results) == 8
        for value in range(4):
            assert results[("second", value)] == 10 * (value + 100) ** 2

    def test_stats_count_tasks_and_batches(self):
        with WorkStealingScheduler(
            1, _echo_task, n_jobs=2, batch_size=4
        ) as scheduler:
            for value in range(16):
                scheduler.submit((value,), value, weight=1)
            scheduler.run()
        assert scheduler.stats.tasks_submitted == 16
        assert scheduler.stats.batches_submitted >= 4
        assert scheduler.stats.workers in (1, 2)

    def test_measure_task_bytes(self):
        with WorkStealingScheduler(
            1, _echo_task, n_jobs=2, measure_task_bytes=True
        ) as scheduler:
            scheduler.submit((0,), "x" * 100)
            scheduler.run()
        if scheduler.stats.workers > 1:
            assert scheduler.stats.max_batch_bytes > 100

    def test_pool_unavailable_falls_back_in_process(self, monkeypatch):
        """A platform without usable multiprocessing degrades to in-process
        execution of the same task graph instead of failing."""
        import concurrent.futures

        def _broken_pool(*args, **kwargs):
            raise OSError("no process support")

        monkeypatch.setattr(
            concurrent.futures, "ProcessPoolExecutor", _broken_pool
        )
        with WorkStealingScheduler(3, _square_task, n_jobs=4) as scheduler:
            for value in range(6):
                scheduler.submit((value,), value)
            results = scheduler.run()
        assert scheduler.stats.workers == 1
        assert results == {(v,): 3 * v * v for v in range(6)}

    def test_release_results_keeps_persistent_pool_bounded(self):
        with WorkStealingScheduler(2, _square_task, n_jobs=1) as scheduler:
            scheduler.submit((0, 0), 3)
            scheduler.run()
            assert scheduler.results
            scheduler.release_results()
            assert not scheduler.results
            assert not scheduler.task_durations
            # key history cleared too: the same key is accepted again
            scheduler.submit((0, 0), 4)
            assert scheduler.run() == {(0, 0): 2 * 16}

    def test_run_batch_reads_worker_payload(self):
        """The pool entry point itself, driven in-process: it must read the
        attached payload and report per-task durations."""
        transfer._adopt(5)
        try:
            output = _run_batch(_square_task, [((0,), (2,)), ((1,), (3,))])
        finally:
            transfer.reset_worker_state()
        assert [(key, result) for key, result, _ in output] == [
            ((0,), 20),
            ((1,), 45),
        ]
        assert all(seconds >= 0.0 for _, _, seconds in output)

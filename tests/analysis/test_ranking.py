"""Tests for the case-study ranking tables."""

import pytest

from repro.analysis.ranking import (
    pattern_rows,
    render_case_study_table,
    render_pattern_table,
    top_delta_rows,
    top_epsilon_rows,
    top_support_rows,
)
from repro.correlation.scpm import SCPM
from repro.datasets.example import paper_example_graph


@pytest.fixture(scope="module")
def example_result():
    from repro.correlation.parameters import SCPMParams

    params = SCPMParams(min_support=3, gamma=0.6, min_size=4, min_epsilon=0.5, top_k=10)
    return SCPM(paper_example_graph(), params).mine()


class TestRankingRows:
    def test_top_support_rows(self, example_result):
        rows = top_support_rows(example_result, n=3)
        assert rows[0].attribute_set == "A"
        assert rows[0].support == 11
        assert rows[0].as_tuple()[0] == "A"

    def test_top_epsilon_rows(self, example_result):
        rows = top_epsilon_rows(example_result, n=2)
        assert {row.attribute_set for row in rows} <= {"B", "A B"}
        assert all(row.epsilon == 1.0 for row in rows)

    def test_top_delta_rows_are_sorted(self, example_result):
        rows = top_delta_rows(example_result, n=5)
        deltas = [row.delta for row in rows]
        assert deltas == sorted(deltas, reverse=True)

    def test_min_set_size_filter(self, example_result):
        rows = top_support_rows(example_result, n=5, min_set_size=2)
        assert all(len(row.attribute_set.split()) >= 2 for row in rows)


class TestRendering:
    def test_case_study_table_contains_three_groups(self, example_result):
        text = render_case_study_table(example_result, "example", n=3)
        assert "top-sigma" in text
        assert "top-epsilon" in text
        assert "top-delta" in text
        assert "A B" in text

    def test_pattern_rows_include_support_and_epsilon(self, example_result):
        rows = pattern_rows(example_result.patterns, example_result)
        assert len(rows) == 7  # Table 1 has seven patterns
        prism_rows = [row for row in rows if row[2] == 6]
        assert len(prism_rows) == 3
        for row in prism_rows:
            assert row[3] == pytest.approx(0.6)

    def test_render_pattern_table(self, example_result):
        text = render_pattern_table(example_result, title="Table 1")
        assert text.startswith("Table 1")
        assert "{10, 11, 6, 7, 8, 9}" in text or "{6, 7, 8, 9, 10, 11}" in text

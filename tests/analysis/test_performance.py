"""Tests for the runtime-sweep harness (Figure 8 machinery)."""

import pytest

from repro.analysis.performance import (
    ALGORITHMS,
    run_algorithm,
    run_parameter_sweep,
    runtimes_by_algorithm,
    sweep_table,
    total_runtime,
)
from repro.correlation.parameters import SCPMParams
from repro.datasets.example import paper_example_graph


@pytest.fixture(scope="module")
def graph():
    return paper_example_graph()


@pytest.fixture(scope="module")
def base_params():
    return SCPMParams(min_support=3, gamma=0.6, min_size=4, min_epsilon=0.5, top_k=5)


class TestRunAlgorithm:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_every_algorithm_runs(self, graph, base_params, algorithm):
        result = run_algorithm(graph, base_params, algorithm)
        assert result.counters.attribute_sets_evaluated > 0

    def test_unknown_algorithm(self, graph, base_params):
        with pytest.raises(ValueError):
            run_algorithm(graph, base_params, "quantum")


class TestSweep:
    def test_sweep_shape(self, graph, base_params):
        points = run_parameter_sweep(
            graph, base_params, "gamma", [0.6, 0.8], algorithms=("scpm-dfs", "naive")
        )
        assert len(points) == 4
        assert {p.algorithm for p in points} == {"scpm-dfs", "naive"}
        assert {p.value for p in points} == {0.6, 0.8}
        assert all(p.runtime_seconds >= 0 for p in points)

    def test_sweep_applies_integer_parameters(self, graph, base_params):
        points = run_parameter_sweep(
            graph, base_params, "min_size", [4, 5], algorithms=("scpm-dfs",)
        )
        # min_size = 5 excludes the size-4 patterns, so fewer patterns are found
        by_value = {p.value: p.patterns_found for p in points}
        assert by_value[5.0] <= by_value[4.0]

    def test_unknown_parameter_rejected(self, graph, base_params):
        with pytest.raises(ValueError):
            run_parameter_sweep(graph, base_params, "speed", [1])

    def test_grouping_and_totals(self, graph, base_params):
        points = run_parameter_sweep(
            graph, base_params, "top_k", [1, 2], algorithms=("scpm-dfs",)
        )
        grouped = runtimes_by_algorithm(points)
        assert list(grouped) == ["scpm-dfs"]
        assert len(grouped["scpm-dfs"]) == 2
        assert total_runtime(points) == pytest.approx(
            total_runtime(points, "scpm-dfs")
        )

    def test_sweep_table_rendering(self, graph, base_params):
        points = run_parameter_sweep(
            graph, base_params, "min_support", [3], algorithms=("naive",)
        )
        text = sweep_table(points, title="figure 8")
        assert text.startswith("figure 8")
        assert "naive" in text
        assert "min_support" in text

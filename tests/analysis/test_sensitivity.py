"""Tests for the parameter-sensitivity harness (Figure 10 machinery)."""

import pytest

from repro.analysis.sensitivity import run_sensitivity_sweep, sensitivity_table
from repro.correlation.parameters import SCPMParams
from repro.datasets.example import paper_example_graph


@pytest.fixture(scope="module")
def graph():
    return paper_example_graph()


@pytest.fixture(scope="module")
def base_params():
    return SCPMParams(min_support=3, gamma=0.6, min_size=4)


class TestSensitivity:
    def test_sweep_shape(self, graph, base_params):
        points = run_sensitivity_sweep(graph, base_params, "gamma", [0.6, 1.0])
        assert [p.value for p in points] == [0.6, 1.0]
        for point in points:
            assert 0.0 <= point.average_epsilon <= 1.0
            assert point.average_epsilon_top10 >= point.average_epsilon - 1e-12
            assert point.attribute_sets > 0

    def test_higher_gamma_lowers_average_epsilon(self, graph, base_params):
        points = run_sensitivity_sweep(graph, base_params, "gamma", [0.6, 1.0])
        assert points[-1].average_epsilon <= points[0].average_epsilon + 1e-12

    def test_min_size_sweep(self, graph, base_params):
        points = run_sensitivity_sweep(graph, base_params, "min_size", [4, 6, 7])
        assert points[-1].average_epsilon <= points[0].average_epsilon + 1e-12

    def test_table_rendering(self, graph, base_params):
        points = run_sensitivity_sweep(graph, base_params, "gamma", [0.6])
        text = sensitivity_table(points, title="figure 10")
        assert text.startswith("figure 10")
        assert "avg_epsilon" in text

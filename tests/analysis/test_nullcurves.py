"""Tests for the expected-ε curve harness (Figures 4/7/9 machinery)."""

import pytest

from repro.analysis.nullcurves import expected_epsilon_curve, null_curve_table
from repro.datasets.example import paper_example_graph
from repro.quasiclique.definitions import QuasiCliqueParams


class TestNullCurves:
    @pytest.fixture(scope="class")
    def curve(self):
        graph = paper_example_graph()
        params = QuasiCliqueParams(gamma=0.6, min_size=4)
        return expected_epsilon_curve(graph, params, supports=[4, 7, 11], runs=10, seed=3)

    def test_curve_shape(self, curve):
        assert [point.support for point in curve] == [4, 7, 11]
        for point in curve:
            assert 0.0 <= point.sim_exp_mean <= 1.0
            assert point.sim_exp_std >= 0.0
            assert 0.0 <= point.max_exp <= 1.0

    def test_max_exp_is_monotone(self, curve):
        values = [point.max_exp for point in curve]
        assert values == sorted(values)

    def test_table_rendering(self, curve):
        text = null_curve_table(curve, title="figure 4")
        assert text.startswith("figure 4")
        assert "sim_exp_mean" in text
        assert "max_exp" in text

"""Tests for the plain-text table renderer."""

from repro.analysis.reporting import format_number, format_table


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(
            headers=("name", "value"),
            rows=[("alpha", 1), ("beta", 2)],
            title="demo",
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert lines[2].startswith("---")
        assert "alpha" in lines[3]

    def test_columns_are_aligned(self):
        text = format_table(("a", "b"), [("x", 1), ("longer", 22)])
        rows = text.splitlines()[2:]
        positions = {row.index("1") if "1" in row else row.index("2") for row in rows[1:]}
        assert len(positions) == 1  # values start at the same column

    def test_float_rendering(self):
        text = format_table(("v",), [(0.123456,), (1e-7,), (float("inf"),), (2.5e8,)])
        assert "0.1235" in text
        assert "1.000e-07" in text
        assert "inf" in text
        assert "2.500e+08" in text

    def test_without_title(self):
        text = format_table(("v",), [(1,)])
        assert not text.startswith("\n")
        assert text.splitlines()[0].startswith("v")


class TestFormatNumber:
    def test_small_and_large(self):
        assert format_number(0.5) == "0.5"
        assert format_number(1234567.0) == "1.235e+06"
        assert format_number(0.0) == "0"

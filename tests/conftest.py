"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.correlation.parameters import SCPMParams
from repro.datasets.evolving import EvolvingScenario, random_scenario
from repro.datasets.example import paper_example_graph
from repro.datasets.synthetic import random_attributed_graph
from repro.graph.attributed_graph import AttributedGraph
from repro.quasiclique.definitions import QuasiCliqueParams


@pytest.fixture
def example_graph() -> AttributedGraph:
    """The 11-vertex running example of the paper (Figure 1)."""
    return paper_example_graph()


@pytest.fixture
def example_qc_params() -> QuasiCliqueParams:
    """Quasi-clique parameters used for Table 1 (γ = 0.6, min_size = 4)."""
    return QuasiCliqueParams(gamma=0.6, min_size=4)


@pytest.fixture
def example_scpm_params() -> SCPMParams:
    """Full SCPM parameters used for Table 1."""
    return SCPMParams(
        min_support=3, gamma=0.6, min_size=4, min_epsilon=0.5, top_k=10
    )


@pytest.fixture
def triangle_graph() -> AttributedGraph:
    """A triangle with one pendant vertex; all vertices carry attribute 'x'."""
    graph = AttributedGraph()
    for vertex in (1, 2, 3, 4):
        graph.add_vertex(vertex)
        graph.add_attribute(vertex, "x")
    graph.add_edge(1, 2)
    graph.add_edge(2, 3)
    graph.add_edge(1, 3)
    graph.add_edge(3, 4)
    return graph


@pytest.fixture
def evolving_graph():
    """Factory for seeded evolving-graph scenarios (shared by the evolve,
    store and serve suites).

    Call it with a seed (and any :func:`repro.datasets.evolving.
    random_scenario` keyword) to get an :class:`EvolvingScenario` —
    an initial graph, an edit script, and an independent ``replay``
    oracle for the differential harness.
    """

    def factory(seed: int = 3, **kwargs) -> EvolvingScenario:
        return random_scenario(seed, **kwargs)

    return factory


@pytest.fixture
def small_random_graph() -> AttributedGraph:
    """A deterministic 12-vertex random attributed graph."""
    return random_attributed_graph(
        num_vertices=12,
        edge_probability=0.35,
        attributes=["a", "b", "c"],
        attribute_probability=0.5,
        seed=3,
    )

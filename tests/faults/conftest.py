"""Fixtures for the chaos suite: fault hygiene + per-test timeout guard.

Fault-tolerance tests have a failure mode ordinary tests do not: the
*recovery path under test* can hang (a drain that never finishes, a
retry loop that never gives up), which stalls the whole run instead of
failing one test.  The ``SIGALRM`` guard turns such a hang into an
ordinary test failure after ``REPRO_TEST_TIMEOUT`` seconds (default
120; pytest-timeout is deliberately not a dependency).

The hygiene fixture guarantees no test leaks an installed
:class:`~repro.faults.FaultPlan` (or the ``REPRO_FAULT_PLAN``
environment activation) into its neighbours.
"""

from __future__ import annotations

import os
import signal
import threading

import pytest

from repro.faults import uninstall

TEST_TIMEOUT_SECONDS = int(os.environ.get("REPRO_TEST_TIMEOUT", "120"))


@pytest.fixture(autouse=True)
def fault_plan_hygiene():
    """Every chaos test ends with no plan installed, whatever happened."""
    uninstall()
    yield
    uninstall()


@pytest.fixture(autouse=True)
def per_test_timeout():
    """Fail (not hang) any chaos test that outlives its wall budget."""
    if (
        not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def on_alarm(signum, frame):
        raise TimeoutError(
            f"chaos test exceeded {TEST_TIMEOUT_SECONDS}s — a recovery "
            "path under test is hanging instead of failing"
        )

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.alarm(TEST_TIMEOUT_SECONDS)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)

"""Scheduler fault tolerance: worker deaths heal, poison is quarantined,
and the parallel output stays identical to the sequential ground truth.

The kill plans use a ``state_dir`` so occurrence numbers are shared
across worker processes *and* pool rebuilds — "kill the first two task
executions" means exactly that, whichever workers end up firing them.
``REPRO_FUZZ_SEED`` varies which executions die in CI.
"""

import os
import random

import pytest

from repro.errors import ParameterError, PoisonTaskError
from repro.faults import FaultPlan, FaultRule, installed
from repro.parallel.scheduler import (
    DEFAULT_MAX_TASK_RETRIES,
    WorkStealingScheduler,
)

TASK_SITE = "parallel.scheduler.task"


def _triple(payload, value):
    return payload * value


def _fuzz_rng() -> random.Random:
    return random.Random(int(os.environ.get("REPRO_FUZZ_SEED", "0")))


def _run_with_plan(plan, num_tasks=10, n_jobs=2, **scheduler_kwargs):
    with installed(plan):
        with WorkStealingScheduler(
            3, _triple, n_jobs=n_jobs, **scheduler_kwargs
        ) as scheduler:
            for value in range(num_tasks):
                scheduler.submit((value,), value)
            results = scheduler.run()
    return results, scheduler


class TestWorkerKillRecovery:
    def test_two_worker_kills_heal(self, tmp_path):
        rng = _fuzz_rng()
        kills = tuple(sorted(rng.sample(range(8), 2)))
        plan = FaultPlan(
            [FaultRule(site=TASK_SITE, action="kill", occurrences=kills)],
            state_dir=tmp_path,
        )
        results, scheduler = _run_with_plan(plan, num_tasks=10)
        assert results == {(v,): 3 * v for v in range(10)}
        assert scheduler.stats.pool_rebuilds >= 1
        assert scheduler.stats.tasks_retried >= 1
        assert scheduler.stats.tasks_quarantined == 0

    def test_output_matches_sequential_under_same_plan(self, tmp_path):
        # The in-process path never arms the task site, so the sequential
        # ground truth stays computable while the plan is installed —
        # and the healed parallel run must reproduce it exactly.
        plan = FaultPlan(
            [FaultRule(site=TASK_SITE, action="kill", occurrences=(0,))],
            state_dir=tmp_path,
        )
        parallel_results, _ = _run_with_plan(plan, num_tasks=8, n_jobs=2)
        sequential_results, scheduler = _run_with_plan(
            plan, num_tasks=8, n_jobs=1
        )
        assert parallel_results == sequential_results
        assert scheduler.stats.pool_rebuilds == 0  # sequential: no pool

    def test_kill_during_successive_batches(self, tmp_path):
        # Deaths spread over distinct submissions force several rebuild
        # rounds; the run must still converge and lose nothing.
        plan = FaultPlan(
            [FaultRule(site=TASK_SITE, action="kill", occurrences=(1, 5))],
            state_dir=tmp_path,
        )
        results, scheduler = _run_with_plan(
            plan, num_tasks=12, n_jobs=2, batch_size=2
        )
        assert results == {(v,): 3 * v for v in range(12)}
        assert scheduler.stats.pool_rebuilds >= 1


class TestPoisonQuarantine:
    def test_permanent_killer_is_quarantined(self, tmp_path):
        poison_key = (3,)
        plan = FaultPlan(
            [FaultRule(site=TASK_SITE, action="kill", key=str(poison_key))],
            state_dir=tmp_path,
        )
        with installed(plan):
            with WorkStealingScheduler(3, _triple, n_jobs=2) as scheduler:
                for value in range(6):
                    scheduler.submit((value,), value)
                with pytest.raises(PoisonTaskError) as info:
                    scheduler.run()
        assert info.value.keys == (poison_key,)
        assert scheduler.stats.tasks_quarantined == 1
        # every healthy task still completed before the quarantine verdict
        healthy = {(v,): 3 * v for v in range(6) if (v,) != poison_key}
        assert {
            key: value
            for key, value in scheduler.results.items()
            if key != poison_key
        } == healthy

    def test_retry_budget_is_bounded(self, tmp_path):
        # a poison task dies exactly max_task_retries + 1 times: initial
        # execution plus one blame-assignment round per retry
        plan = FaultPlan(
            [FaultRule(site=TASK_SITE, action="kill", key="(0,)")],
            state_dir=tmp_path,
        )
        with installed(plan):
            with WorkStealingScheduler(
                3, _triple, n_jobs=2, max_task_retries=1
            ) as scheduler:
                for value in range(4):
                    scheduler.submit((value,), value)
                with pytest.raises(PoisonTaskError):
                    scheduler.run()
        assert plan.occurrences_fired(TASK_SITE) <= 4 + 2

    def test_max_task_retries_validation(self):
        with pytest.raises(ParameterError):
            WorkStealingScheduler(3, _triple, n_jobs=2, max_task_retries=-1)
        assert DEFAULT_MAX_TASK_RETRIES >= 1


class TestInjectedTaskErrors:
    def test_injected_error_propagates_as_task_failure(self, tmp_path):
        # a raising task is an application bug, not a worker death — no
        # rebuild, no retry, the error surfaces to the caller
        plan = FaultPlan(
            [FaultRule(site=TASK_SITE, action="raise", occurrences=(0,),
                       error="runtime", message="injected task bug")],
            state_dir=tmp_path,
        )
        with installed(plan):
            with WorkStealingScheduler(3, _triple, n_jobs=2) as scheduler:
                for value in range(4):
                    scheduler.submit((value,), value)
                with pytest.raises(RuntimeError, match="injected task bug"):
                    scheduler.run()
        assert scheduler.stats.pool_rebuilds == 0

"""The shared backoff helper: bounded, deterministic, picky about what
it retries."""

import sqlite3

import pytest

from repro.faults.retry import (
    READ_RETRY_POLICY,
    WRITE_RETRY_POLICY,
    RetryPolicy,
    call_with_retry,
    is_transient_operational_error,
)


class TestTransientClassification:
    def test_locked_and_busy_are_transient(self):
        assert is_transient_operational_error(
            sqlite3.OperationalError("database is locked")
        )
        assert is_transient_operational_error(
            sqlite3.OperationalError("database is busy")
        )

    def test_other_operational_errors_are_not(self):
        # a corrupt store must fail loudly, never loop
        for message in ("no such table: runs", "disk I/O error",
                        "interrupted"):
            assert not is_transient_operational_error(
                sqlite3.OperationalError(message)
            )

    def test_non_sqlite_errors_are_not(self):
        assert not is_transient_operational_error(OSError("locked"))
        assert not is_transient_operational_error(ValueError("busy"))


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)

    def test_delays_are_deterministic(self):
        policy = RetryPolicy(max_attempts=6, seed=42)
        assert policy.delays() == policy.delays()
        assert policy.delays() == RetryPolicy(max_attempts=6, seed=42).delays()

    def test_delays_bounded_and_capped(self):
        policy = RetryPolicy(
            max_attempts=10, base_delay=0.01, multiplier=4.0, max_delay=0.1
        )
        delays = policy.delays()
        assert len(delays) == 9
        assert all(0.0 <= delay <= 0.1 for delay in delays)

    def test_different_seeds_decorrelate(self):
        a = RetryPolicy(max_attempts=5, seed=1).delays()
        b = RetryPolicy(max_attempts=5, seed=2).delays()
        assert a != b

    def test_shipped_policies_are_modest(self):
        # total worst-case stall stays test-suite friendly
        assert sum(WRITE_RETRY_POLICY.delays()) < 4.0
        assert sum(READ_RETRY_POLICY.delays()) < 1.0


class TestCallWithRetry:
    def test_success_needs_no_retry(self):
        calls = []
        result = call_with_retry(lambda: calls.append(1) or "ok",
                                 sleep=lambda s: None)
        assert result == "ok"
        assert len(calls) == 1

    def test_transient_errors_retry_until_success(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise sqlite3.OperationalError("database is locked")
            return "finally"

        pauses = []
        result = call_with_retry(
            flaky,
            policy=RetryPolicy(max_attempts=5, seed=7),
            sleep=pauses.append,
        )
        assert result == "finally"
        assert len(attempts) == 3
        # pauses follow the policy's deterministic schedule exactly
        assert pauses == RetryPolicy(max_attempts=5, seed=7).delays()[:2]

    def test_budget_exhaustion_propagates_last_error(self):
        def always_locked():
            raise sqlite3.OperationalError("database is locked")

        with pytest.raises(sqlite3.OperationalError):
            call_with_retry(
                always_locked,
                policy=RetryPolicy(max_attempts=3),
                sleep=lambda s: None,
            )

    def test_non_retryable_propagates_immediately(self):
        attempts = []

        def broken():
            attempts.append(1)
            raise ValueError("not transient")

        with pytest.raises(ValueError):
            call_with_retry(broken, sleep=lambda s: None)
        assert len(attempts) == 1

    def test_on_retry_hook_sees_each_failure(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise sqlite3.OperationalError("busy")
            return None

        seen = []
        call_with_retry(
            flaky,
            policy=RetryPolicy(max_attempts=5),
            on_retry=lambda error, attempt, delay: seen.append(attempt),
            sleep=lambda s: None,
        )
        assert seen == [1, 2]

    def test_custom_predicate(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) == 1:
                raise KeyError("transient for this caller")
            return "ok"

        result = call_with_retry(
            flaky,
            retry_on=lambda error: isinstance(error, KeyError),
            sleep=lambda s: None,
        )
        assert result == "ok"
        assert len(attempts) == 2

"""Chaos suite: deterministic fault injection across mining/store/serve."""

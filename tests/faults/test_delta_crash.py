"""Crash-point fuzz of ``PatternStore.apply_delta``: kill the writer at
every fault site mid-delta and prove the stored run is never torn.

The delta path has a sharper atomicity contract than ``save``: it
*replaces* rows that readers may be serving, so a crash must leave
either the complete **old** run (killed anywhere before COMMIT — even
after the deletes, which happened inside the open transaction) or the
complete **new** run (killed after), never a mix and never an empty
husk.  Each case runs a real subprocess (plan activation via
``REPRO_FAULT_PLAN``), kills it at one ``store.writer.*`` site, then
checks :func:`verify_store` and the surviving content.
"""

import os
import random
import subprocess
import sys
from pathlib import Path

import pytest

from repro.faults import KILL_EXIT_CODE, FaultPlan, FaultRule, installed
from repro.serve import PatternStoreReader
from repro.store import APPLY_DELTA_FAULT_SITES, PatternStore, verify_store
from tests.faults.test_store_crash import build_result

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Sites at which the OLD run must survive a kill — everything before the
#: COMMIT, including the delete step (it ran inside the open transaction).
PRE_COMMIT_SITES = tuple(
    site
    for site in APPLY_DELTA_FAULT_SITES
    if site != "store.writer.post_commit"
)


def updated_result():
    """The post-update run: distinguishable from the base in every table."""
    return build_result(num_sets=4, patterns_per_set=1)


def base_store(store_path: Path) -> int:
    """A store holding the base run, written without any faults."""
    with PatternStore(store_path) as store:
        return store.save(build_result())


def _child_main(store_path: str) -> None:
    """Subprocess body: apply one delta to run 1 (plan active via env)."""
    with PatternStore(store_path) as store:
        store.apply_delta(1, updated_result())


def _delta_in_subprocess(store_path: Path, plan: FaultPlan) -> int:
    plan_path = plan.save(plan.state_dir / "plan.json")
    env = dict(os.environ)
    env["REPRO_FAULT_PLAN"] = str(plan_path)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src"), str(REPO_ROOT)]
    )
    code = (
        "from tests.faults.test_delta_crash import _child_main; "
        f"_child_main({str(store_path)!r})"
    )
    return subprocess.run(
        [sys.executable, "-c", code], cwd=str(REPO_ROOT), env=env
    ).returncode


def _kill_plan(state_dir: Path, site: str, occurrence: int = 0) -> FaultPlan:
    return FaultPlan(
        [FaultRule(site=site, action="kill", occurrences=(occurrence,))],
        state_dir=state_dir,
    )


def _loaded_evaluated(store_path: Path):
    with PatternStoreReader(store_path) as reader:
        return reader.load_result(1).evaluated


class TestDeltaCrashMatrix:
    @pytest.mark.parametrize("site", PRE_COMMIT_SITES)
    def test_kill_before_commit_keeps_old_run(self, tmp_path, site):
        store_path = tmp_path / "store.sqlite"
        base_store(store_path)
        returncode = _delta_in_subprocess(
            store_path, _kill_plan(tmp_path / "faults", site)
        )
        assert returncode == KILL_EXIT_CODE
        report = verify_store(store_path)
        assert report.ok, "\n".join(report.lines())
        assert report.runs == 1
        assert _loaded_evaluated(store_path) == build_result().evaluated

    def test_kill_after_commit_keeps_new_run(self, tmp_path):
        store_path = tmp_path / "store.sqlite"
        base_store(store_path)
        returncode = _delta_in_subprocess(
            store_path,
            _kill_plan(tmp_path / "faults", "store.writer.post_commit"),
        )
        assert returncode == KILL_EXIT_CODE
        report = verify_store(store_path)
        assert report.ok, "\n".join(report.lines())
        assert report.runs == 1
        assert _loaded_evaluated(store_path) == updated_result().evaluated

    def test_fuzzed_kill_position(self, tmp_path):
        rng = random.Random(int(os.environ.get("REPRO_FUZZ_SEED", "0")))
        site = rng.choice(APPLY_DELTA_FAULT_SITES)
        occurrence = rng.randrange(0, 3)
        store_path = tmp_path / "store.sqlite"
        base_store(store_path)
        returncode = _delta_in_subprocess(
            store_path, _kill_plan(tmp_path / "faults", site, occurrence)
        )
        assert returncode in (0, KILL_EXIT_CODE)
        report = verify_store(store_path)
        assert report.ok, "\n".join(report.lines())
        assert report.runs == 1
        # whichever side of the commit the kill landed on, the run is
        # exactly one of the two complete states
        assert _loaded_evaluated(store_path) in (
            build_result().evaluated,
            updated_result().evaluated,
        )

    def test_store_usable_after_mid_delta_crash(self, tmp_path):
        store_path = tmp_path / "store.sqlite"
        base_store(store_path)
        _delta_in_subprocess(
            store_path,
            _kill_plan(tmp_path / "faults", "store.writer.delete_rows"),
        )
        with PatternStore(store_path) as store:
            assert store.apply_delta(1, updated_result()) == 1
        report = verify_store(store_path)
        assert report.ok, "\n".join(report.lines())
        assert _loaded_evaluated(store_path) == updated_result().evaluated


class TestDeltaRetry:
    def test_transient_lock_is_retried(self, tmp_path):
        plan = FaultPlan(
            [
                FaultRule(
                    site="store.writer.begin",
                    action="raise",
                    occurrences=(1,),  # 0 fires inside the base save
                    error="locked",
                )
            ]
        )
        store_path = tmp_path / "store.sqlite"
        with installed(plan):
            with PatternStore(store_path) as store:
                run_id = store.save(build_result())
                store.apply_delta(run_id, updated_result())
                assert store.last_save_retries == 1
        assert verify_store(store_path).ok
        assert _loaded_evaluated(store_path) == updated_result().evaluated

    def test_non_transient_error_rolls_back_to_old_run(self, tmp_path):
        store_path = tmp_path / "store.sqlite"
        base_store(store_path)
        plan = FaultPlan(
            [
                FaultRule(
                    site="store.writer.set_row",
                    action="raise",
                    occurrences=(0,),
                    error="io",
                )
            ]
        )
        with installed(plan):
            with PatternStore(store_path) as store:
                with pytest.raises(OSError):
                    store.apply_delta(1, updated_result())
                assert store.last_save_retries == 0
        report = verify_store(store_path)
        assert report.ok, "\n".join(report.lines())
        assert _loaded_evaluated(store_path) == build_result().evaluated

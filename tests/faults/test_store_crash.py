"""Crash-point fuzz of ``PatternStore.save``: kill the writer process at
every fault site and prove the store is never torn.

Each case spawns a real subprocess (activation via ``REPRO_FAULT_PLAN``,
no parent-side install — the parent must survive its own test), kills it
mid-save, and then holds the store to the atomicity contract: the run is
fully present (killed after COMMIT) or fully absent (killed before),
and :func:`repro.store.verify.verify_store` reports clean either way.
``REPRO_FUZZ_SEED`` adds a randomly placed kill on top of the
exhaustive first-occurrence matrix.
"""

import os
import random
import subprocess
import sys
from pathlib import Path

import pytest

from repro.correlation.patterns import (
    AttributeSetResult,
    MiningCounters,
    MiningResult,
    StructuralCorrelationPattern,
)
from repro.faults import KILL_EXIT_CODE, FaultPlan, FaultRule
from repro.store import PatternStore, SAVE_FAULT_SITES, verify_store
from repro.serve import PatternStoreReader

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Sites at which the saved run must be absent after a kill (everything
#: before the COMMIT) — only ``post_commit`` leaves the run behind.
PRE_COMMIT_SITES = tuple(
    site for site in SAVE_FAULT_SITES if site != "store.writer.post_commit"
)


def build_result(num_sets: int = 3, patterns_per_set: int = 2) -> MiningResult:
    """A small hand-built run (no mining — crash tests need speed)."""
    evaluated = []
    for index in range(num_sets):
        attributes = (f"a{index}", "common")
        patterns = tuple(
            StructuralCorrelationPattern(
                attributes=attributes,
                vertices=frozenset(range(index + p, index + p + 4)),
                gamma=0.7,
            )
            for p in range(patterns_per_set)
        )
        evaluated.append(
            AttributeSetResult(
                attributes=attributes,
                support=3 + index,
                epsilon=0.5 + 0.01 * index,
                expected_epsilon=0.1,
                delta=0.4 + 0.01 * index,
                covered_vertices=frozenset(range(index, index + 5)),
                patterns=patterns,
                qualified=True,
            )
        )
    return MiningResult(
        algorithm="hand-built",
        evaluated=evaluated,
        counters=MiningCounters(attribute_sets_evaluated=num_sets),
    )


def _child_main(store_path: str) -> None:
    """Subprocess body: save one hand-built run (plan active via env)."""
    with PatternStore(store_path) as store:
        store.save(build_result())


def _save_in_subprocess(store_path: Path, plan: FaultPlan) -> int:
    plan_path = plan.save(plan.state_dir / "plan.json")
    env = dict(os.environ)
    env["REPRO_FAULT_PLAN"] = str(plan_path)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src"), str(REPO_ROOT)]
    )
    code = (
        "from tests.faults.test_store_crash import _child_main; "
        f"_child_main({str(store_path)!r})"
    )
    return subprocess.run(
        [sys.executable, "-c", code], cwd=str(REPO_ROOT)
    , env=env).returncode


def _kill_plan(state_dir: Path, site: str, occurrence: int = 0) -> FaultPlan:
    return FaultPlan(
        [FaultRule(site=site, action="kill", occurrences=(occurrence,))],
        state_dir=state_dir,
    )


class TestCrashMatrix:
    @pytest.mark.parametrize("site", PRE_COMMIT_SITES)
    def test_kill_before_commit_leaves_no_trace(self, tmp_path, site):
        store_path = tmp_path / "store.sqlite"
        returncode = _save_in_subprocess(
            store_path, _kill_plan(tmp_path / "faults", site)
        )
        assert returncode == KILL_EXIT_CODE
        report = verify_store(store_path)
        assert report.ok, "\n".join(report.lines())
        assert report.runs == 0

    def test_kill_after_commit_keeps_the_whole_run(self, tmp_path):
        store_path = tmp_path / "store.sqlite"
        returncode = _save_in_subprocess(
            store_path,
            _kill_plan(tmp_path / "faults", "store.writer.post_commit"),
        )
        assert returncode == KILL_EXIT_CODE
        report = verify_store(store_path)
        assert report.ok, "\n".join(report.lines())
        assert report.runs == 1
        # the committed run is complete and readable, not just counted
        with PatternStoreReader(store_path) as reader:
            loaded = reader.load_result()
        assert loaded.evaluated == build_result().evaluated

    def test_fuzzed_kill_position(self, tmp_path):
        rng = random.Random(int(os.environ.get("REPRO_FUZZ_SEED", "0")))
        site = rng.choice(SAVE_FAULT_SITES)
        # per-row sites fire once per row; anything in-range works, and
        # out-of-range occurrences simply never fire (save succeeds)
        occurrence = rng.randrange(0, 3)
        store_path = tmp_path / "store.sqlite"
        returncode = _save_in_subprocess(
            store_path, _kill_plan(tmp_path / "faults", site, occurrence)
        )
        assert returncode in (0, KILL_EXIT_CODE)
        report = verify_store(store_path)
        assert report.ok, "\n".join(report.lines())
        assert report.runs in (0, 1)

    def test_store_usable_after_crash(self, tmp_path):
        # recovery contract: a crashed save must not poison the file —
        # the next writer starts from a clean pre-run state and succeeds
        store_path = tmp_path / "store.sqlite"
        _save_in_subprocess(
            store_path, _kill_plan(tmp_path / "faults", "store.writer.commit")
        )
        with PatternStore(store_path) as store:
            run_id = store.save(build_result())
        assert run_id == 1
        report = verify_store(store_path)
        assert report.ok, "\n".join(report.lines())
        assert report.runs == 1


class TestWriterRetry:
    def test_transient_lock_is_retried(self, tmp_path):
        from repro.faults import installed

        plan = FaultPlan(
            [FaultRule(site="store.writer.begin", action="raise",
                       occurrences=(0,), error="locked")]
        )
        store_path = tmp_path / "store.sqlite"
        with installed(plan):
            with PatternStore(store_path) as store:
                run_id = store.save(build_result())
                assert store.last_save_retries == 1
        assert run_id == 1
        assert verify_store(store_path).ok

    def test_non_transient_error_rolls_back_and_propagates(self, tmp_path):
        from repro.faults import installed

        plan = FaultPlan(
            [FaultRule(site="store.writer.set_row", action="raise",
                       occurrences=(0,), error="io")]
        )
        store_path = tmp_path / "store.sqlite"
        with installed(plan):
            with PatternStore(store_path) as store:
                with pytest.raises(OSError):
                    store.save(build_result())
                assert store.last_save_retries == 0
                # same handle, next attempt: transaction was rolled back
                assert store.save(build_result()) == 1
        report = verify_store(store_path)
        assert report.ok, "\n".join(report.lines())
        assert report.runs == 1

    def test_retry_budget_exhaustion_propagates(self, tmp_path):
        from repro.faults import installed
        from repro.faults.retry import RetryPolicy

        plan = FaultPlan(
            [FaultRule(site="store.writer.begin", action="raise",
                       error="busy")]  # permanent
        )
        policy = RetryPolicy(max_attempts=3, base_delay=0.001,
                             max_delay=0.002)
        store_path = tmp_path / "store.sqlite"
        with installed(plan):
            with PatternStore(store_path, retry_policy=policy) as store:
                import sqlite3

                with pytest.raises(sqlite3.OperationalError):
                    store.save(build_result())
                assert store.last_save_retries == 2  # attempts - 1
        report = verify_store(store_path)
        assert report.ok
        assert report.runs == 0

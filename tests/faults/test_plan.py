"""Semantics of the fault plan itself: occurrence counting, matching,
activation — the determinism every other chaos test stands on."""

import os
import sqlite3
import subprocess
import sys
import time

import pytest

from repro.errors import FaultInjectionError, StoreError
from repro.faults import (
    ENV_PLAN,
    KILL_EXIT_CODE,
    FaultPlan,
    FaultRule,
    active_plan,
    fault_point,
    install,
    installed,
    uninstall,
)


class TestFaultRule:
    def test_unknown_action_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultRule(site="s", action="explode")

    def test_unknown_error_kind_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultRule(site="s", action="raise", error="cosmic-ray")

    def test_matching_is_site_key_and_occurrence(self):
        rule = FaultRule(
            site="s", action="raise", occurrences=(1, 3), key="k"
        )
        assert rule.matches("s", "k", 1)
        assert rule.matches("s", "k", 3)
        assert not rule.matches("s", "k", 0)
        assert not rule.matches("s", "other", 1)
        assert not rule.matches("other", "k", 1)

    def test_none_occurrences_matches_every_firing(self):
        rule = FaultRule(site="s", action="raise")
        for occurrence in (0, 7, 10_000):
            assert rule.matches("s", None, occurrence)

    def test_roundtrip_through_dict(self):
        rule = FaultRule(
            site="store.writer.commit",
            action="raise",
            occurrences=(0, 2),
            key="5",
            error="busy",
            seconds=0.0,
            message="boom",
        )
        assert FaultRule.from_dict(rule.to_dict()) == rule


class TestOccurrenceCounting:
    def test_armed_site_fires_only_listed_occurrences(self):
        plan = FaultPlan(
            [FaultRule(site="s", action="raise", occurrences=(1,),
                       error="runtime")]
        )
        plan.fire("s")  # occurrence 0: no match
        with pytest.raises(RuntimeError):
            plan.fire("s")  # occurrence 1
        plan.fire("s")  # occurrence 2: healed

    def test_unarmed_site_consumes_no_occurrences(self):
        plan = FaultPlan([FaultRule(site="armed", action="raise")])
        for _ in range(5):
            plan.fire("unarmed")
        assert plan.occurrences_fired("unarmed") == 0

    def test_key_filter(self):
        plan = FaultPlan(
            [FaultRule(site="s", action="raise", key="(2,)",
                       error="runtime")]
        )
        plan.fire("s", key=(1,))
        with pytest.raises(RuntimeError):
            plan.fire("s", key=(2,))

    def test_state_dir_counters_shared_between_plan_instances(self, tmp_path):
        # Two FaultPlan objects over one state_dir model two processes:
        # their occurrence numbering must interleave gap-free.
        first = FaultPlan([FaultRule(site="s", action="raise",
                                     occurrences=(3,), error="runtime")],
                          state_dir=tmp_path)
        second = FaultPlan(first.rules, state_dir=tmp_path)
        first.fire("s")   # 0
        second.fire("s")  # 1
        first.fire("s")   # 2
        with pytest.raises(RuntimeError):
            second.fire("s")  # 3 — the armed occurrence
        assert first.occurrences_fired("s") == 4


class TestErrorKinds:
    @pytest.mark.parametrize(
        "kind, exc_type",
        [
            ("io", OSError),
            ("locked", sqlite3.OperationalError),
            ("busy", sqlite3.OperationalError),
            ("store", StoreError),
            ("runtime", RuntimeError),
        ],
    )
    def test_kind_maps_to_exception(self, kind, exc_type):
        plan = FaultPlan([FaultRule(site="s", action="raise", error=kind)])
        with pytest.raises(exc_type):
            plan.fire("s")

    def test_injected_lock_errors_read_as_transient(self):
        from repro.faults import is_transient_operational_error

        for kind in ("locked", "busy"):
            plan = FaultPlan([FaultRule(site="s", action="raise", error=kind)])
            with pytest.raises(sqlite3.OperationalError) as info:
                plan.fire("s")
            assert is_transient_operational_error(info.value)

    def test_delay_sleeps(self):
        plan = FaultPlan(
            [FaultRule(site="s", action="delay", seconds=0.05)]
        )
        started = time.monotonic()
        plan.fire("s")
        assert time.monotonic() - started >= 0.04


class TestActivation:
    def test_fault_point_is_noop_without_plan(self):
        uninstall()
        fault_point("anything")  # must not raise

    def test_install_and_context_manager(self):
        plan = FaultPlan([FaultRule(site="s", action="raise",
                                    error="runtime")])
        with installed(plan):
            assert active_plan() is plan
            with pytest.raises(RuntimeError):
                fault_point("s")
        assert active_plan() is None
        fault_point("s")  # uninstalled again

    def test_env_activation_reaches_subprocess(self, tmp_path):
        plan = FaultPlan(
            [FaultRule(site="child.site", action="kill", occurrences=(0,))],
            state_dir=tmp_path,
        )
        install(plan)
        try:
            assert os.environ[ENV_PLAN] == str(tmp_path / "plan.json")
            child = (
                "import sys; sys.path.insert(0, 'src'); "
                "from repro.faults import fault_point; "
                "fault_point('child.site')"
            )
            proc = subprocess.run(
                [sys.executable, "-c", child],
                cwd=os.getcwd(),
                env=dict(os.environ),
            )
            assert proc.returncode == KILL_EXIT_CODE
        finally:
            uninstall()
        assert ENV_PLAN not in os.environ

    def test_load_failure_is_fault_injection_error(self, tmp_path):
        bad = tmp_path / "nope.json"
        with pytest.raises(FaultInjectionError):
            FaultPlan.load(bad)
        bad.write_text("{not json")
        with pytest.raises(FaultInjectionError):
            FaultPlan.load(bad)

    def test_plan_roundtrip_through_file(self, tmp_path):
        plan = FaultPlan(
            [FaultRule(site="a", action="delay", seconds=0.5),
             FaultRule(site="b", action="raise", occurrences=(0,),
                       error="busy")],
            state_dir=tmp_path,
        )
        loaded = FaultPlan.load(plan.save(tmp_path / "plan.json"))
        assert loaded.rules == plan.rules
        assert loaded.state_dir == plan.state_dir

"""Read-path correctness regressions: snapshot rollback, FTS narrowing,
closed-reader contract, thread-safe LRU.

Each test class pins one of the bugs fixed alongside the HTTP serving
tier; they are written to fail against the pre-fix implementations:

* ``_snapshot`` used to commit in ``finally`` even when the body raised
  — a commit on a half-failed transaction can itself raise and *mask*
  the body's exception, and the reader could be left inside a stale
  transaction;
* ``_fts_narrowing`` used to keep the FTS clause for filter attributes
  that tokenize to **zero tokens** (punctuation-only, empty): a
  zero-token phrase silently MATCHes nothing, so the "narrowing"
  excluded sets the exact relational check would have kept;
* a closed reader used to keep serving LRU hits, and lookups racing a
  ``close()`` could die with ``AttributeError`` instead of the
  documented :class:`~repro.errors.StoreError`;
* :class:`~repro.serve.LRUCache` mutated an ``OrderedDict`` and bare
  counters without a lock — torn under the threaded HTTP server.
"""

import sqlite3
import threading

import pytest

from repro.correlation.patterns import (
    AttributeSetResult,
    MiningCounters,
    MiningResult,
    StructuralCorrelationPattern,
)
from repro.errors import NotFoundError, QueryError, StoreError
from repro.serve import LRUCache, PatternStoreReader
from repro.serve.reader import _fts_tokenizable
from repro.store import save_result


def handmade_result(attributes=("!!!", "db")):
    """One qualified set whose attributes include an exotic token."""
    pattern = StructuralCorrelationPattern(
        attributes=attributes, vertices=frozenset([1, 2, 3]), gamma=0.75
    )
    record = AttributeSetResult(
        attributes=attributes,
        support=3,
        epsilon=0.5,
        expected_epsilon=0.1,
        delta=0.4,
        covered_vertices=frozenset([1, 2, 3]),
        patterns=(pattern,),
        qualified=True,
    )
    return MiningResult(
        algorithm="hand-built",
        evaluated=[record],
        counters=MiningCounters(attribute_sets_evaluated=1),
    )


@pytest.fixture
def store_path(tmp_path):
    path = tmp_path / "store.sqlite"
    save_result(path, handmade_result())
    return path


class TestSnapshotRollback:
    def test_body_exception_propagates_and_rolls_back(self, store_path):
        with PatternStoreReader(store_path) as reader:
            with pytest.raises(RuntimeError, match="boom"):
                with reader._snapshot() as connection:
                    connection.execute("SELECT 1")
                    raise RuntimeError("boom")
            # the failed snapshot must not leave a transaction open ...
            assert reader._connection.in_transaction is False
            # ... and the reader keeps answering fresh snapshots
            assert len(reader.runs()) == 1

    def test_commit_failure_does_not_mask_body_exception(self, store_path):
        """Pre-fix: ``finally: commit()`` raised ``ProgrammingError`` on a
        connection the body had torn down, hiding the real error."""
        reader = PatternStoreReader(store_path)
        with pytest.raises(RuntimeError, match="the real error"):
            with reader._snapshot() as connection:
                connection.close()  # any post-body commit/rollback now raises
                raise RuntimeError("the real error")
        reader._connection = None  # already closed underneath

    def test_nested_snapshots_share_one_transaction(self, store_path):
        with PatternStoreReader(store_path) as reader:
            with reader._snapshot() as connection:
                assert connection.in_transaction
                with reader._snapshot():  # fresh=False — must not commit
                    pass
                assert connection.in_transaction
            assert not reader._connection.in_transaction


class TestFTSZeroTokenNarrowing:
    """Filters the unicode61 tokenizer cannot represent must not narrow."""

    @pytest.mark.parametrize("exotic", ["!!!", "--", "?!", ""])
    def test_tokenizability_probe(self, exotic):
        assert not _fts_tokenizable(exotic)
        assert _fts_tokenizable("db")
        assert _fts_tokenizable("c0_a1")  # separators inside are fine
        assert _fts_tokenizable(("topic", 3))  # display form has tokens

    @pytest.mark.parametrize("mode", ["all", "any"])
    def test_punctuation_only_filter_finds_its_set(self, store_path, mode):
        with PatternStoreReader(store_path) as reader:
            if not reader.fts_enabled:
                pytest.skip("this SQLite build has no FTS5")
            matches = reader.patterns_with_attributes(["!!!"], mode=mode)
            assert [s.pattern_id for s in matches] == [1]

    def test_mixed_filter_with_zero_token_attribute(self, store_path):
        """all-mode: AND-ing a zero-token phrase used to empty the result."""
        with PatternStoreReader(store_path) as reader:
            matches = reader.patterns_with_attributes(
                ["db", "!!!"], mode="all"
            )
            assert len(matches) == 1

    def test_any_mode_set_matching_only_the_exotic_attribute(self, tmp_path):
        """any-mode: a set whose *only* overlap is the zero-token
        attribute must still be returned."""
        path = tmp_path / "exotic.sqlite"
        save_result(path, handmade_result(attributes=("!!!",)))
        with PatternStoreReader(path) as reader:
            matches = reader.patterns_with_attributes(
                ["!!!", "unrelated"], mode="any"
            )
            assert len(matches) == 1

    def test_tokenizable_filters_still_narrow(self, store_path):
        """The FTS fast path stays on for ordinary filters."""
        with PatternStoreReader(store_path) as reader:
            if not reader.fts_enabled:
                pytest.skip("this SQLite build has no FTS5")
            narrowing, args = reader._fts_narrowing(
                reader._connection, ("db",), "all"
            )
            assert "MATCH" in narrowing and args
            narrowing, args = reader._fts_narrowing(
                reader._connection, ("db", "!!!"), "all"
            )
            assert narrowing == "" and args == ()


class TestClosedReaderContract:
    def test_every_public_method_raises_store_error(self, store_path):
        reader = PatternStoreReader(store_path)
        pattern_id = reader.patterns_with_vertex(1)[0].pattern_id
        reader.get_pattern(pattern_id)  # now LRU-hot
        reader.close()
        calls = (
            lambda: reader.runs(),
            lambda: reader.latest_run_id(),
            lambda: reader.get_pattern(pattern_id),  # the cached one
            lambda: reader.patterns_with_vertex(1),
            lambda: reader.patterns_with_attributes(["db"]),
            lambda: reader.top_k(1),
            lambda: reader.load_result(),
        )
        for call in calls:
            with pytest.raises(StoreError, match="closed"):
                call()

    def test_close_is_idempotent_and_clears_cache(self, store_path):
        reader = PatternStoreReader(store_path)
        reader.get_pattern(reader.patterns_with_vertex(1)[0].pattern_id)
        assert len(reader.cache) == 1
        reader.close()
        reader.close()
        assert len(reader.cache) == 0

    def test_context_manager_closes(self, store_path):
        with PatternStoreReader(store_path) as reader:
            reader.runs()
        with pytest.raises(StoreError, match="closed"):
            reader.runs()

    def test_not_found_taxonomy(self, store_path):
        """Unknown ids/runs are NotFoundError (and still StoreError)."""
        with PatternStoreReader(store_path) as reader:
            with pytest.raises(NotFoundError):
                reader.get_pattern(10_000)
            with pytest.raises(NotFoundError):
                reader.top_k(3, run_id=99)
            with pytest.raises(NotFoundError):
                reader.load_result(run_id=99)
            assert issubclass(NotFoundError, StoreError)
            assert not issubclass(QueryError, NotFoundError)


class TestLRUCacheThreadSafety:
    def test_concurrent_get_put_never_tears(self):
        cache = LRUCache(capacity=64)
        errors = []
        barrier = threading.Barrier(8)

        def worker(offset):
            try:
                barrier.wait()
                for round_index in range(300):
                    key = (offset * 300 + round_index) % 100
                    cache.put(key, key)
                    cache.get(key)
                    cache.get((key + 50) % 100)
                    len(cache)
                    cache.stats()
            except BaseException as error:  # pragma: no cover — reporting
                errors.append(repr(error))

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        stats = cache.stats()
        # no increment may be lost: every get was counted exactly once
        assert stats["hits"] + stats["misses"] == 8 * 300 * 2
        assert len(cache) <= 64

    def test_stats_snapshot_shape(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        assert cache.stats() == {
            "hits": 1,
            "misses": 1,
            "entries": 1,
            "capacity": 2,
        }


class TestCorruptCellSurfacesAsStoreError:
    def test_corrupt_vertex_cell(self, store_path):
        """A malformed stored cell surfaces as StoreError, not ValueError
        — the codec taxonomy the CLI/HTTP error paths map from."""
        connection = sqlite3.connect(store_path)
        connection.execute(
            "UPDATE pattern_vertices SET vertex = 'i:not-a-number' "
            "WHERE vertex = 'i:1'"
        )
        connection.commit()
        connection.close()
        with PatternStoreReader(store_path) as reader:
            with pytest.raises(StoreError):
                reader.get_pattern(1)
            # the failed decode rolled its snapshot back: reader still up
            assert len(reader.runs()) == 1

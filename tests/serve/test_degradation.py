"""Graceful degradation of the HTTP front end under injected faults:
load shedding (503 + Retry-After), request deadlines, health reporting,
transparent reader retries, and bounded shutdown.

Every stall here is injected via :mod:`repro.faults` delay rules — a
slow query is a delay at ``serve.reader.query`` (the lease is held, so
the pool saturates), a slow *handler* is a delay at
``serve.http.handler`` (the admission slot is held, the pool is not).
The two sites let each shedding layer be tested in isolation.
"""

import json
import threading
import time
from http.client import HTTPConnection

import pytest

from repro.errors import PoolExhaustedError
from repro.faults import FaultPlan, FaultRule, installed
from repro.serve import PatternStoreReader, create_server
from repro.serve.http import RETRY_AFTER_SECONDS
from repro.serve.metrics import ServingMetrics
from repro.store import PatternStore

from tests.faults.test_store_crash import build_result

READER_SITE = "serve.reader.query"
HANDLER_SITE = "serve.http.handler"


@pytest.fixture
def store_path(tmp_path):
    path = tmp_path / "store.sqlite"
    with PatternStore(path) as store:
        store.save(build_result())
    return path


def start_server(store_path, **kwargs):
    server = create_server(store_path, **kwargs)
    thread = threading.Thread(
        target=lambda: server.serve_forever(poll_interval=0.05), daemon=True
    )
    thread.start()
    return server, thread


class Client:
    """JSON client that also exposes response headers (Retry-After)."""

    def __init__(self, server, timeout=30):
        host, port = server.server_address[:2]
        self.connection = HTTPConnection(host, port, timeout=timeout)

    def get(self, path):
        self.connection.request("GET", path)
        response = self.connection.getresponse()
        body = json.loads(response.read().decode("utf-8"))
        return response.status, body, dict(response.getheaders())

    def close(self):
        self.connection.close()


def get_in_thread(server, path, results, index):
    client = Client(server)
    try:
        results[index] = client.get(path)
    finally:
        client.close()


class TestPoolExhaustion:
    def test_exhausted_pool_sheds_with_retry_after(self, store_path):
        # one reader, held for 1.5s by an injected slow query — the
        # second data request cannot get a lease within 0.15s and must
        # be shed, not queued forever and not 500'd
        # no occurrence pin: site occurrences count across *all* keys
        # (/top fires latest_run_id first), and only the stuck request
        # reaches a top_k query while the plan is installed anyway
        plan = FaultPlan(
            [FaultRule(site=READER_SITE, action="delay", key="top_k",
                       seconds=1.5)]
        )
        server, thread = start_server(
            store_path, max_readers=1, lease_timeout=0.15
        )
        try:
            with installed(plan):
                results = {}
                stuck = threading.Thread(
                    target=get_in_thread,
                    args=(server, "/top?k=3", results, "stuck"),
                )
                stuck.start()
                time.sleep(0.4)  # let the slow query take the only reader

                client = Client(server)
                status, body, headers = client.get("/top?k=3")
                assert status == 503
                assert body["error"]["type"] == "PoolExhaustedError"
                assert headers["Retry-After"] == str(RETRY_AFTER_SECONDS)

                # healthz stays answerable (exempt from admission) but
                # reports degraded: its short probe lease cannot be met
                status, body, _ = client.get("/healthz")
                assert status == 200
                assert body["status"] == "degraded"

                stuck.join(timeout=30)
                client.close()
            # the stalled request itself completed fine, just late
            assert results["stuck"][0] == 200

            client = Client(server)
            status, body, _ = client.get("/metrics")
            assert status == 200
            assert body["counters"]["requests_shed"] >= 1
            assert body["pool"]["exhausted"] >= 1
            assert body["pool"]["lease_waits"] >= 1
            assert body["pool"]["lease_wait_seconds"] > 0.0
            status, body, _ = client.get("/healthz")
            assert body["status"] == "ok"  # recovered
            client.close()
        finally:
            server.stop()
            thread.join(timeout=30)

    def test_pool_exhaustion_direct(self, store_path):
        # same contract at the pool layer, no HTTP: a saturated pool
        # raises PoolExhaustedError after the lease timeout, with the
        # live capacity numbers in the message
        from repro.serve.pool import ReaderPool

        pool = ReaderPool(store_path, max_readers=1, lease_timeout=0.05)
        try:
            with pool.lease():
                with pytest.raises(PoolExhaustedError, match="max_readers=1"):
                    with pool.lease():
                        pass
            assert pool.stats()["exhausted"] == 1
        finally:
            pool.close()


class TestAdmissionControl:
    def test_overload_sheds_at_admission(self, store_path):
        # max_inflight=1: a handler stalled *before* it leases anything
        # still holds its admission slot, so request two is shed with
        # OverloadedError — while healthz (exempt) stays "ok" because
        # the pool itself is idle
        plan = FaultPlan(
            [FaultRule(site=HANDLER_SITE, action="delay", key="runs",
                       occurrences=(0,), seconds=1.5)]
        )
        server, thread = start_server(store_path, max_inflight=1)
        try:
            with installed(plan):
                results = {}
                stuck = threading.Thread(
                    target=get_in_thread,
                    args=(server, "/runs", results, "stuck"),
                )
                stuck.start()
                time.sleep(0.4)

                client = Client(server)
                status, body, headers = client.get("/runs")
                assert status == 503
                assert body["error"]["type"] == "OverloadedError"
                assert headers["Retry-After"] == str(RETRY_AFTER_SECONDS)

                status, body, _ = client.get("/healthz")
                assert status == 200
                assert body["status"] == "ok"

                stuck.join(timeout=30)
                client.close()
            assert results["stuck"][0] == 200
        finally:
            server.stop()
            thread.join(timeout=30)


class TestRequestDeadline:
    def test_deadline_exceeded_is_shed_and_counted(self, store_path):
        plan = FaultPlan(
            [FaultRule(site=HANDLER_SITE, action="delay", key="runs",
                       occurrences=(0,), seconds=0.5)]
        )
        server, thread = start_server(store_path, request_deadline=0.2)
        try:
            with installed(plan):
                client = Client(server)
                status, body, headers = client.get("/runs")
                assert status == 503
                assert body["error"]["type"] == "DeadlineExceededError"
                assert headers["Retry-After"] == str(RETRY_AFTER_SECONDS)

                status, body, _ = client.get("/metrics")
                assert body["counters"]["deadline_exceeded"] == 1
                assert body["counters"]["requests_shed"] == 1
                client.close()
        finally:
            server.stop()
            thread.join(timeout=30)

    def test_fast_requests_unaffected_by_deadline(self, store_path):
        server, thread = start_server(store_path, request_deadline=5.0)
        try:
            client = Client(server)
            assert client.get("/runs")[0] == 200
            assert client.get("/metrics")[1]["counters"] == {}
            client.close()
        finally:
            server.stop()
            thread.join(timeout=30)


class TestReaderRetry:
    def test_transient_locks_are_retried_transparently(self, store_path):
        plan = FaultPlan(
            [FaultRule(site=READER_SITE, action="raise", key="runs",
                       occurrences=(0, 1), error="locked")]
        )
        with installed(plan):
            with PatternStoreReader(store_path) as reader:
                runs = reader.runs()
                assert len(runs) == 1
                assert reader.retries == 2

    def test_retry_budget_exhaustion_surfaces(self, store_path):
        import sqlite3

        plan = FaultPlan(
            [FaultRule(site=READER_SITE, action="raise", key="runs",
                       error="locked")]  # permanent
        )
        with installed(plan):
            with PatternStoreReader(store_path) as reader:
                with pytest.raises(sqlite3.OperationalError):
                    reader.runs()
                assert reader.retries == reader.retry_policy.max_attempts - 1

    def test_http_requests_survive_transient_locks(self, store_path):
        # a request whose first query attempt hits a lock still answers
        # 200 — and the retry shows up on /metrics, not in the status
        plan = FaultPlan(
            [FaultRule(site=READER_SITE, action="raise", key="runs",
                       occurrences=(0,), error="locked")]
        )
        server, thread = start_server(store_path)
        try:
            with installed(plan):
                client = Client(server)
                status, body, _ = client.get("/runs")
                assert status == 200
                assert len(body["runs"]) == 1
                status, body, _ = client.get("/metrics")
                assert body["pool"]["reader_retries"] >= 1
                assert body["counters"] == {}  # nothing was shed
                client.close()
        finally:
            server.stop()
            thread.join(timeout=30)


class TestShutdown:
    def test_graceful_stop_reports_clean(self, store_path):
        server, thread = start_server(store_path)
        client = Client(server)
        assert client.get("/healthz")[0] == 200
        client.close()
        assert server.stop(timeout=10.0) is True
        assert server.stop(timeout=10.0) is True  # idempotent
        thread.join(timeout=30)

    def test_stuck_handler_forces_unclean_stop(self, store_path):
        # a handler stalled far past the shutdown budget: stop() must
        # return within timeout + grace, report the drain as unclean,
        # and force-close the pool rather than wait out the stall
        plan = FaultPlan(
            [FaultRule(site=HANDLER_SITE, action="delay", key="runs",
                       occurrences=(0,), seconds=30.0)]
        )
        server, thread = start_server(store_path)
        try:
            with installed(plan):
                results = {}
                stuck = threading.Thread(
                    target=get_in_thread,
                    args=(server, "/runs", results, "stuck"),
                    daemon=True,
                )
                stuck.start()
                time.sleep(0.4)

                started = time.monotonic()
                clean = server.stop(timeout=0.5)
                elapsed = time.monotonic() - started
            assert clean is False
            assert elapsed < 10.0
        finally:
            thread.join(timeout=30)


class TestServingMetricsCounters:
    def test_increment_and_read(self):
        metrics = ServingMetrics()
        assert metrics.counter("requests_shed") == 0
        metrics.increment("requests_shed")
        metrics.increment("requests_shed", 2)
        assert metrics.counter("requests_shed") == 3

    def test_snapshot_lists_counters_sorted(self):
        metrics = ServingMetrics()
        metrics.increment("zeta")
        metrics.increment("alpha", 5)
        snapshot = metrics.snapshot()
        assert snapshot["counters"] == {"alpha": 5, "zeta": 1}
        assert list(snapshot["counters"]) == ["alpha", "zeta"]

    def test_counters_do_not_leak_between_instances(self):
        first = ServingMetrics()
        first.increment("x")
        assert ServingMetrics().counter("x") == 0


class TestServeKnobsPlumbing:
    def test_create_server_passes_degradation_knobs(self, store_path):
        server = create_server(
            store_path,
            max_readers=2,
            lease_timeout=0.5,
            max_inflight=7,
            request_deadline=1.25,
        )
        try:
            assert server.pool.max_readers == 2
            assert server.pool.lease_timeout == 0.5
            assert server.max_inflight == 7
            assert server.request_deadline == 1.25
        finally:
            server.stop()

    def test_cli_serve_flags_parse(self):
        from repro.cli.main import build_parser

        args = build_parser().parse_args(
            ["serve", "--store", "s.sqlite", "--max-readers", "4",
             "--lease-timeout", "2.0", "--max-inflight", "32",
             "--request-deadline", "15", "--shutdown-timeout", "3"]
        )
        assert args.max_readers == 4
        assert args.lease_timeout == 2.0
        assert args.max_inflight == 32
        assert args.request_deadline == 15.0
        assert args.shutdown_timeout == 3.0

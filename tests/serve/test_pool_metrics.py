"""Unit suites for the serving-tier pool and metrics layers.

:class:`~repro.serve.ReaderPool` — thread-affine leasing (no two
threads ever hold the same reader), LIFO reuse so warm LRUs serve
first, pool-wide cache aggregation, and shutdown semantics (closed pool
refuses leases, in-flight leases are closed on return).

:class:`~repro.serve.ServingMetrics` — per-endpoint counters, 4xx/5xx
split, latency histogram bucketing/quantiles, and lost-increment-free
concurrent observation.
"""

import threading

import pytest

from repro.errors import StoreError
from repro.serve import ReaderPool, ServingMetrics
from repro.serve.metrics import LatencyHistogram
from repro.store import save_result

from tests.serve.test_reader_fixes import handmade_result


@pytest.fixture
def store_path(tmp_path):
    path = tmp_path / "store.sqlite"
    save_result(path, handmade_result(attributes=("db", "xml")))
    return path


class TestReaderPool:
    def test_lease_reuses_one_reader_sequentially(self, store_path):
        with ReaderPool(store_path) as pool:
            with pool.lease() as first:
                first.top_k(1)
            with pool.lease() as second:
                second.top_k(1)
            assert first is second  # LIFO: the warm reader serves again
            assert pool.num_readers == 1

    def test_concurrent_leases_get_distinct_readers(self, store_path):
        pool = ReaderPool(store_path)
        seen = []
        release = threading.Event()
        ready = threading.Barrier(4 + 1)  # four holders + the main thread

        def hold():
            with pool.lease() as reader:
                seen.append(id(reader))
                ready.wait()
                release.wait(timeout=30)

        threads = [threading.Thread(target=hold) for _ in range(4)]
        for thread in threads:
            thread.start()
        ready.wait()
        assert len(set(seen)) == 4  # no sharing while leases overlap
        assert pool.peak_leases == 4
        release.set()
        for thread in threads:
            thread.join()
        assert pool.num_readers == 4
        pool.close()

    def test_cache_stats_aggregate_across_readers(self, store_path):
        pool = ReaderPool(store_path)
        with pool.lease() as reader:
            pattern_id = reader.top_k(1)[0].set_id  # warm nothing yet
            pattern_id = reader.patterns_with_attributes(["db"])[0].pattern_id
            reader.get_pattern(pattern_id)  # hit (cached by the filter)
        stats = pool.cache_stats()
        assert stats["readers"] == 1
        assert stats["hits"] >= 1
        assert 0.0 < stats["hit_ratio"] <= 1.0
        assert stats["hits"] + stats["misses"] > 0
        pool.close()

    def test_closed_pool_refuses_leases(self, store_path):
        pool = ReaderPool(store_path)
        pool.close()
        with pytest.raises(StoreError, match="closed"):
            with pool.lease():
                pass  # pragma: no cover — lease must not be granted
        pool.close()  # idempotent

    def test_close_while_leased_closes_on_checkin(self, store_path):
        pool = ReaderPool(store_path)
        with pool.lease() as reader:
            pool.close()
            reader.top_k(1)  # still usable inside the lease
        with pytest.raises(StoreError, match="closed"):
            reader.top_k(1)  # checked back into a closed pool → closed

    def test_missing_store_raises_on_first_lease(self, tmp_path):
        pool = ReaderPool(tmp_path / "nope.sqlite")
        with pytest.raises(StoreError):
            with pool.lease():
                pass  # pragma: no cover


class TestLatencyHistogram:
    def test_bucketing_is_le(self):
        histogram = LatencyHistogram(bounds=(0.001, 0.01, 0.1))
        for value in (0.0005, 0.001, 0.05, 5.0):
            histogram.observe(value)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 4
        assert snapshot["buckets_le"]["0.001"] == 2  # 0.0005 and 0.001
        assert snapshot["buckets_le"]["0.1"] == 3
        assert snapshot["buckets_le"]["+inf"] == 4
        assert snapshot["max_seconds"] == 5.0

    def test_quantiles(self):
        histogram = LatencyHistogram(bounds=(0.001, 0.01, 0.1))
        for _ in range(99):
            histogram.observe(0.0005)
        histogram.observe(2.0)
        assert histogram.quantile(0.5) == 0.001  # bucket upper bound
        assert histogram.quantile(1.0) == 2.0  # +inf bucket → max
        assert LatencyHistogram().quantile(0.5) == 0.0  # empty


class TestServingMetrics:
    def test_status_classes_and_totals(self):
        metrics = ServingMetrics()
        metrics.observe("top_k", 200, 0.002)
        metrics.observe("top_k", 404, 0.001)
        metrics.observe("get_pattern", 500, 0.003)
        snapshot = metrics.snapshot()
        assert snapshot["requests"] == 3
        assert snapshot["errors_4xx"] == 1
        assert snapshot["errors_5xx"] == 1
        top = snapshot["endpoints"]["top_k"]
        assert top["requests"] == 2
        assert top["by_status"] == {"200": 1, "404": 1}
        assert top["latency"]["count"] == 2
        assert metrics.requests_total("top_k") == 2
        assert metrics.requests_total() == 3
        assert metrics.errors_total() == 2
        assert metrics.errors_total(server_errors_only=True) == 1

    def test_concurrent_observation_loses_nothing(self):
        metrics = ServingMetrics()
        per_thread = 500

        def worker(name):
            for _ in range(per_thread):
                metrics.observe(name, 200, 0.001)

        threads = [
            threading.Thread(target=worker, args=(f"endpoint_{i % 3}",))
            for i in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert metrics.requests_total() == 6 * per_thread
        snapshot = metrics.snapshot()
        assert sum(
            endpoint["requests"]
            for endpoint in snapshot["endpoints"].values()
        ) == 6 * per_thread

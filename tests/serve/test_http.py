"""HTTP serving front end — endpoint round-trips, error contract,
metrics, graceful shutdown, and a concurrent-client smoke vs a live
writer.

The server under test runs in-process on an ephemeral port
(``port=0``); clients are plain ``http.client`` connections so the
whole request/response path — routing, JSON bodies, keep-alive,
status codes — is exercised over a real socket.

Error contract pinned here (mirrors ``scpm query``'s 0/1/2 exit
contract at the HTTP level): ``400`` for malformed requests
(:class:`~repro.errors.QueryError`), ``404`` for well-formed lookups
naming things the store does not hold
(:class:`~repro.errors.NotFoundError`), ``500`` never during normal
serving (the concurrent smoke asserts zero).
"""

import json
import threading
import time
from http.client import HTTPConnection

import pytest

from repro.correlation.parameters import SCPMParams
from repro.correlation.scpm import SCPM
from repro.datasets.synthetic import random_attributed_graph
from repro.errors import StoreError
from repro.serve import create_server
from repro.store import PatternStore, save_result

from tests.serve.test_reader_fixes import handmade_result

PARAMS = SCPMParams(
    min_support=3, gamma=0.6, min_size=3, min_epsilon=0.1, top_k=4
)


def build_result(seed):
    graph = random_attributed_graph(
        num_vertices=20,
        edge_probability=0.35,
        attributes=["a", "b", "c", "d"],
        attribute_probability=0.5,
        seed=seed,
    )
    return SCPM(graph, PARAMS).mine()


@pytest.fixture(scope="module")
def mined_result():
    # Module-scoped: mining dominates suite wall time, and every test
    # treats the result as read-only (stores are re-saved per test).
    result = build_result(seed=13)
    assert result.patterns, "fixture workload must mine patterns"
    return result


@pytest.fixture
def store_path(tmp_path, mined_result):
    path = tmp_path / "store.sqlite"
    save_result(path, mined_result, params=PARAMS)
    return path


@pytest.fixture
def server(store_path):
    server = create_server(store_path)
    thread = threading.Thread(
        target=lambda: server.serve_forever(poll_interval=0.05), daemon=True
    )
    thread.start()
    yield server
    server.stop()
    thread.join(timeout=30)


class Client:
    """Tiny JSON client over one keep-alive connection."""

    def __init__(self, server, timeout=10):
        host, port = server.server_address[:2]
        self.connection = HTTPConnection(host, port, timeout=timeout)

    def get(self, path):
        self.connection.request("GET", path)
        response = self.connection.getresponse()
        body = response.read().decode("utf-8")
        return response.status, json.loads(body)

    def close(self):
        self.connection.close()


@pytest.fixture
def client(server):
    client = Client(server)
    yield client
    client.close()


class TestEndpointRoundTrips:
    def test_healthz(self, client):
        status, body = client.get("/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["runs"] == 1

    def test_runs(self, client, mined_result):
        status, body = client.get("/runs")
        assert status == 200
        (run,) = body["runs"]
        assert run["run_id"] == 1
        assert run["algorithm"] == mined_result.algorithm
        assert run["num_patterns"] == len(mined_result.patterns)

    def test_top_k_matches_in_memory_ranking(self, client, mined_result):
        status, body = client.get("/top?k=3")
        assert status == 200
        assert body["run_id"] == 1
        expected = mined_result.top_by_epsilon(3)
        assert [entry["label"] for entry in body["entries"]] == [
            " ".join(str(a) for a in record.attributes)
            for record in expected
        ]
        assert [entry["epsilon"] for entry in body["entries"]] == [
            record.epsilon for record in expected
        ]

    def test_pattern_by_id_round_trips(self, client, mined_result):
        pattern = mined_result.patterns[0]
        vertex = next(iter(pattern.vertices))
        status, body = client.get(f"/patterns?vertex={vertex}")
        assert status == 200
        assert body["count"] == len(
            [p for p in mined_result.patterns if vertex in p.vertices]
        )
        first = body["patterns"][0]
        status, single = client.get(f"/patterns/{first['pattern_id']}")
        assert status == 200
        assert single == first
        assert single["size"] == len(single["vertices"])
        assert single["vertices"] == sorted(single["vertices"])

    def test_patterns_by_attributes_both_modes(self, client, mined_result):
        record = next(r for r in mined_result.qualified if r.patterns)
        filters = ",".join(str(a) for a in record.attributes)
        status, all_body = client.get(f"/patterns?attributes={filters}")
        assert status == 200
        status, any_body = client.get(
            f"/patterns?attributes={filters}&mode=any"
        )
        assert status == 200
        # every all-mode match is also an any-mode match
        all_ids = {p["pattern_id"] for p in all_body["patterns"]}
        any_ids = {p["pattern_id"] for p in any_body["patterns"]}
        assert all_ids and all_ids <= any_ids
        # oracle: the in-memory filter over the mined result
        expected = {
            id(p)
            for r in mined_result.evaluated
            if set(record.attributes) <= set(r.attributes)
            for p in r.patterns
        }
        assert len(all_ids) == len(expected)

    def test_trailing_slash_is_tolerated(self, client):
        assert client.get("/runs/")[0] == 200
        assert client.get("/top/?k=1")[0] == 200

    def test_metrics_reports_requests_and_pool(self, client):
        client.get("/top?k=1")
        client.get("/patterns/1")
        client.get("/patterns/1")  # LRU hit on the second fetch
        status, metrics = client.get("/metrics")
        assert status == 200
        assert metrics["requests"] >= 3
        assert metrics["errors_5xx"] == 0
        assert "top_k" in metrics["endpoints"]
        latency = metrics["endpoints"]["top_k"]["latency"]
        assert latency["count"] >= 1
        assert latency["buckets_le"]["+inf"] == latency["count"]
        pool = metrics["pool"]
        assert pool["readers"] >= 1
        assert pool["hits"] >= 1  # the repeated /patterns/1
        assert 0.0 <= pool["hit_ratio"] <= 1.0


class TestErrorContract:
    @pytest.mark.parametrize(
        "path",
        [
            "/top",  # k missing
            "/top?k=abc",  # k not an integer
            "/top?k=0",  # k not positive (QueryError from the reader)
            "/top?k=1&k=2",  # repeated parameter
            "/top?k=1&bogus=2",  # unknown parameter
            "/patterns",  # neither vertex nor attributes
            "/patterns?vertex=1&attributes=a",  # both
            "/patterns?mode=any",  # mode without attributes
            "/patterns?attributes=a&mode=nope",  # unknown mode
            "/patterns?attributes=",  # empty filter
            "/patterns/not-an-int",
            "/healthz?verbose=1",
        ],
    )
    def test_400_malformed(self, client, path):
        status, body = client.get(path)
        assert status == 400, path
        assert body["error"]["status"] == 400
        assert body["error"]["message"]

    @pytest.mark.parametrize(
        "path",
        [
            "/patterns/999999",  # unknown pattern id
            "/top?k=3&run=999",  # unknown run
            "/nope",  # unknown endpoint
            "/patterns/1/extra",  # over-deep path
        ],
    )
    def test_404_not_found(self, client, path):
        status, body = client.get(path)
        assert status == 404, path
        assert body["error"]["status"] == 404

    def test_errors_are_counted_not_5xx(self, client):
        client.get("/patterns/999999")
        client.get("/top?k=abc")
        status, metrics = client.get("/metrics")
        assert status == 200
        assert metrics["errors_4xx"] >= 1
        assert metrics["errors_5xx"] == 0
        assert metrics["endpoints"]["get_pattern"]["by_status"]["404"] >= 1

    def test_vertex_string_fallback(self, tmp_path):
        """Int-like queries against a string-keyed store still match,
        like the scpm query CLI."""
        path = tmp_path / "strkeys.sqlite"
        result = handmade_result(attributes=("db",))
        # re-key the single pattern's vertices as strings
        pattern = result.evaluated[0].patterns[0]
        object.__setattr__(
            pattern, "vertices", frozenset(["1", "2", "3"])
        )
        save_result(path, result)
        server = create_server(path)
        thread = threading.Thread(
            target=lambda: server.serve_forever(poll_interval=0.05),
            daemon=True,
        )
        thread.start()
        try:
            client = Client(server)
            status, body = client.get("/patterns?vertex=1")
            assert status == 200 and body["count"] == 1
            client.close()
        finally:
            server.stop()
            thread.join(timeout=30)


class TestServerLifecycle:
    def test_missing_store_fails_at_construction(self, tmp_path):
        with pytest.raises(StoreError):
            create_server(tmp_path / "missing.sqlite")

    def test_stop_is_graceful_and_idempotent(self, store_path):
        server = create_server(store_path)
        thread = threading.Thread(
            target=lambda: server.serve_forever(poll_interval=0.05),
            daemon=True,
        )
        thread.start()
        client = Client(server)
        assert client.get("/healthz")[0] == 200
        client.close()
        server.stop()
        server.stop()  # idempotent
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert server.pool.closed

    def test_stop_without_serve_forever(self, store_path):
        server = create_server(store_path)
        server.stop()  # must not deadlock waiting for a loop never run
        assert server.pool.closed


class TestConcurrentClientsVsLiveWriter:
    NUM_CLIENTS = 8

    def test_zero_5xx_under_concurrent_load(self, server, store_path):
        """≥8 keep-alive clients hammer the four lookups while a writer
        appends a second run — zero 5xx, zero lock errors, and /metrics
        aggregates a warm pool afterwards."""
        second = build_result(seed=29)
        probe = Client(server)
        _, seed_body = probe.get("/top?k=1")
        label = seed_body["entries"][0]["label"].split()[0]
        probe.close()

        statuses = [dict() for _ in range(self.NUM_CLIENTS)]
        client_errors = []
        stop = threading.Event()

        def client_loop(index):
            try:
                client = Client(server)
                paths = (
                    "/patterns/1",
                    "/top?k=4",
                    f"/patterns?attributes={label}&mode=any",
                    "/runs",
                )
                while not stop.is_set():
                    for path in paths:
                        status, _ = client.get(path)
                        counts = statuses[index]
                        counts[status] = counts.get(status, 0) + 1
                client.close()
            except BaseException as error:  # pragma: no cover — reporting
                client_errors.append(repr(error))

        threads = [
            threading.Thread(target=client_loop, args=(i,), daemon=True)
            for i in range(self.NUM_CLIENTS)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        with PatternStore(store_path) as store:
            store.save(second)  # live writer racing the HTTP readers
        time.sleep(max(0.0, 1.0 - (time.perf_counter() - started)))
        stop.set()
        for thread in threads:
            thread.join(timeout=30)

        assert not client_errors, client_errors
        total = sum(sum(c.values()) for c in statuses)
        assert total > 0
        assert all(sum(c.values()) > 0 for c in statuses), (
            f"every client must make progress: {statuses}"
        )
        fives = {
            status
            for counts in statuses
            for status in counts
            if status >= 500
        }
        assert not fives, f"5xx under load: {statuses}"

        # the second run became visible to the serving tier
        check = Client(server)
        status, body = check.get("/runs")
        assert status == 200 and len(body["runs"]) == 2
        status, metrics = check.get("/metrics")
        assert metrics["errors_5xx"] == 0
        assert metrics["pool"]["hit_ratio"] > 0.0
        assert metrics["pool"]["readers"] >= 1
        check.close()

"""Tests for the reconstructed paper example dataset."""

import pytest

from repro.datasets.example import (
    EXAMPLE_ATTRIBUTES,
    EXAMPLE_EDGES,
    TABLE1_PARAMETERS,
    TABLE1_PATTERNS,
    paper_example_graph,
)
from repro.graph.validation import validate_graph
from repro.quasiclique.definitions import QuasiCliqueParams
from repro.quasiclique.reference import brute_force_maximal_quasi_cliques


class TestExampleData:
    def test_graph_matches_declared_constants(self):
        graph = paper_example_graph()
        assert graph.num_vertices == len(EXAMPLE_ATTRIBUTES)
        assert graph.num_edges == len(EXAMPLE_EDGES)
        for vertex, attributes in EXAMPLE_ATTRIBUTES.items():
            assert graph.attributes_of(vertex) == frozenset(attributes)

    def test_graph_is_valid(self):
        report = validate_graph(
            paper_example_graph(), require_attributes=True, require_edges=True
        )
        assert report.ok

    def test_figure_1c_clique(self):
        graph = paper_example_graph()
        for u in (3, 4, 5, 6):
            for v in (3, 4, 5, 6):
                if u != v:
                    assert graph.has_edge(u, v)

    def test_figure_1d_prism_degrees(self):
        graph = paper_example_graph()
        prism = {6, 7, 8, 9, 10, 11}
        for vertex in prism:
            assert len(graph.neighbor_set(vertex) & prism) == 3

    def test_vertices_1_and_2_are_not_covered(self):
        # the text states epsilon(A) = 0.82 = 9/11: exactly vertices 1 and 2
        # are outside every quasi-clique
        graph = paper_example_graph()
        params = QuasiCliqueParams(
            gamma=TABLE1_PARAMETERS["gamma"], min_size=TABLE1_PARAMETERS["min_size"]
        )
        covered = set()
        for quasi_clique in brute_force_maximal_quasi_cliques(graph, params):
            covered |= quasi_clique
        assert covered == set(range(3, 12))

    def test_table1_patterns_are_the_exact_maximal_quasi_cliques(self):
        graph = paper_example_graph()
        params = QuasiCliqueParams(
            gamma=TABLE1_PARAMETERS["gamma"], min_size=TABLE1_PARAMETERS["min_size"]
        )
        expected_for_a = {
            frozenset(vertices)
            for attrs, vertices in TABLE1_PATTERNS
            if attrs == ("A",)
        }
        found = set(brute_force_maximal_quasi_cliques(graph, params))
        assert found == expected_for_a

    def test_each_call_returns_a_fresh_graph(self):
        first = paper_example_graph()
        second = paper_example_graph()
        first.add_edge(1, 11)
        assert not second.has_edge(1, 11)

    def test_table1_pattern_list_has_seven_rows(self):
        assert len(TABLE1_PATTERNS) == 7
        supports = {attrs for attrs, _ in TABLE1_PATTERNS}
        assert supports == {("A",), ("B",), ("A", "B")}

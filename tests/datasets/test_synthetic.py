"""Tests for the synthetic attributed-graph generators."""

import pytest

from repro.datasets.synthetic import (
    CommunitySpec,
    SyntheticSpec,
    community_supports,
    generate,
    random_attributed_graph,
)
from repro.errors import DatasetError, ParameterError
from repro.graph.validation import validate_graph
from repro.quasiclique.definitions import QuasiCliqueParams
from repro.quasiclique.search import vertices_in_quasi_cliques


class TestSpecs:
    def test_community_spec_validation(self):
        with pytest.raises(ParameterError):
            CommunitySpec(("x",), size=1)
        with pytest.raises(ParameterError):
            CommunitySpec(("x",), size=5, density=0.0)
        with pytest.raises(ParameterError):
            CommunitySpec(("x",), size=5, noise_carriers=-1)
        with pytest.raises(ParameterError):
            CommunitySpec((), size=5, noise_carriers=3)

    def test_synthetic_spec_validation(self):
        with pytest.raises(ParameterError):
            SyntheticSpec(num_vertices=1)
        with pytest.raises(ParameterError):
            SyntheticSpec(num_vertices=10, background_degree=-1)
        with pytest.raises(ParameterError):
            SyntheticSpec(num_vertices=10, popular_fraction=2.0)

    def test_communities_must_fit(self):
        with pytest.raises(DatasetError):
            SyntheticSpec(
                num_vertices=10,
                communities=(CommunitySpec(("x",), size=8, noise_carriers=8),),
            )

    def test_community_supports_helper(self):
        spec = SyntheticSpec(
            num_vertices=100,
            communities=(CommunitySpec(("x", "y"), size=10, noise_carriers=5),),
        )
        assert community_supports(spec) == {("x", "y"): 15}


class TestGeneration:
    @pytest.fixture(scope="class")
    def spec(self):
        return SyntheticSpec(
            num_vertices=200,
            background_degree=3.0,
            vocabulary_size=30,
            zipf_exponent=1.1,
            attributes_per_vertex=2.0,
            communities=(
                CommunitySpec(("topic", "hot"), size=10, density=0.9, noise_carriers=15),
                CommunitySpec((), size=8, density=0.9),
            ),
            popular_attributes=("popular",),
            popular_fraction=0.3,
            seed=13,
        )

    def test_graph_shape(self, spec):
        graph = generate(spec)
        assert graph.num_vertices == 200
        assert graph.num_edges > 0
        assert validate_graph(graph).ok

    def test_determinism(self, spec):
        assert generate(spec) == generate(spec)

    def test_different_seed_changes_graph(self, spec):
        import dataclasses

        other = dataclasses.replace(spec, seed=99)
        assert generate(spec) != generate(other)

    def test_planted_attribute_support(self, spec):
        graph = generate(spec)
        assert graph.support(["topic", "hot"]) == 25  # members + carriers

    def test_popular_attribute_support(self, spec):
        graph = generate(spec)
        assert graph.support(["popular"]) == 60  # 30% of 200

    def test_planted_community_is_dense(self, spec):
        graph = generate(spec)
        covered = vertices_in_quasi_cliques(
            graph.induced_by(["topic", "hot"]),
            gamma=0.5,
            min_size=4,
        )
        # most of the 10 planted members sit inside a quasi-clique
        assert len(covered) >= 8

    def test_structural_community_has_no_attributes(self, spec):
        # purely structural communities add edges but no attribute support
        graph = generate(spec)
        assert "topic" in set(graph.attributes())
        # the attribute universe contains only background terms, the planted
        # topic, and the popular attribute
        for attribute in graph.attributes():
            assert attribute == "popular" or attribute in ("topic", "hot") or str(
                attribute
            ).startswith("term")


class TestRandomAttributedGraph:
    def test_validation(self):
        with pytest.raises(ParameterError):
            random_attributed_graph(5, 1.5, ["a"], 0.5)
        with pytest.raises(ParameterError):
            random_attributed_graph(5, 0.5, ["a"], -0.1)

    def test_determinism_and_shape(self):
        first = random_attributed_graph(15, 0.3, ["a", "b"], 0.5, seed=2)
        second = random_attributed_graph(15, 0.3, ["a", "b"], 0.5, seed=2)
        assert first == second
        assert first.num_vertices == 15

    def test_extreme_probabilities(self):
        empty = random_attributed_graph(6, 0.0, ["a"], 0.0, seed=1)
        full = random_attributed_graph(6, 1.0, ["a"], 1.0, seed=1)
        assert empty.num_edges == 0
        assert full.num_edges == 15
        assert full.support(["a"]) == 6


class TestWriteRandomAttributedFiles:
    def _paths(self, tmp_path):
        return tmp_path / "g.edges", tmp_path / "g.attrs"

    def test_validation(self, tmp_path):
        edges, attrs = self._paths(tmp_path)
        from repro.datasets.synthetic import write_random_attributed_files

        for kwargs in (
            dict(num_vertices=1, num_edges=0),
            dict(num_vertices=5, num_edges=-1),
            dict(num_vertices=5, num_edges=2, num_attributes=-1),
            dict(num_vertices=5, num_edges=2, attribute_fraction=1.5),
            dict(num_vertices=5, num_edges=2, batch_size=0),
        ):
            with pytest.raises(ParameterError):
                write_random_attributed_files(edges, attrs, **kwargs)

    def test_deterministic_and_loadable_by_both_loaders(self, tmp_path):
        from repro.datasets.synthetic import write_random_attributed_files
        from repro.graph.io import read_attributed_graph
        from repro.graph.streaming import stream_attributed_graph

        edges, attrs = self._paths(tmp_path)
        write_random_attributed_files(
            edges, attrs, 200, 400, num_attributes=6,
            attribute_fraction=0.4, seed=9, batch_size=64,
        )
        first = (edges.read_text(), attrs.read_text())
        write_random_attributed_files(
            edges, attrs, 200, 400, num_attributes=6,
            attribute_fraction=0.4, seed=9, batch_size=64,
        )
        assert (edges.read_text(), attrs.read_text()) == first

        graph = read_attributed_graph(edges, attrs)
        handle = stream_attributed_graph(edges, attrs)
        # every vertex gets an attribute line, so |V| is exact; duplicate
        # sampled pairs collapse on load, so |E| is approximate from below
        assert graph.num_vertices == handle.num_vertices == 200
        assert 0 < graph.num_edges <= 400
        assert graph.num_edges == handle.num_edges
        assert graph.num_attributes == handle.num_attributes == 6
        assert graph.attribute_support_index() == handle.attribute_support_index()

    def test_no_attributes_requested(self, tmp_path):
        from repro.datasets.synthetic import write_random_attributed_files
        from repro.graph.io import read_attributed_graph

        edges, attrs = self._paths(tmp_path)
        write_random_attributed_files(edges, attrs, 50, 60, num_attributes=0, seed=3)
        graph = read_attributed_graph(edges, attrs)
        assert graph.num_vertices == 50
        assert graph.num_attributes == 0

"""Tests for the scaled dataset profiles (DBLP / LastFm / CiteSeer / SmallDBLP)."""

import pytest

from repro.datasets.profiles import (
    PROFILES,
    citeseer_like,
    dblp_like,
    lastfm_like,
    load_profile,
    small_dblp_like,
)
from repro.graph.validation import validate_graph


class TestRegistry:
    def test_all_profiles_registered(self):
        assert set(PROFILES) == {"dblp", "lastfm", "citeseer", "small-dblp"}

    def test_load_profile(self):
        profile = load_profile("small-dblp")
        assert profile.name == "small-dblp-like"

    def test_load_unknown_profile(self):
        with pytest.raises(KeyError):
            load_profile("imdb")


@pytest.mark.parametrize(
    "factory", [dblp_like, lastfm_like, citeseer_like, small_dblp_like]
)
class TestEveryProfile:
    def test_spec_is_consistent(self, factory):
        profile = factory(scale=0.5)
        total_planted = sum(
            c.size + c.noise_carriers for c in profile.spec.communities
        )
        assert total_planted <= profile.spec.num_vertices
        assert profile.params.min_support >= 1
        assert profile.description

    def test_build_produces_valid_graph(self, factory):
        profile = factory(scale=0.4)
        graph = profile.build()
        assert validate_graph(graph).ok
        assert graph.num_vertices == profile.spec.num_vertices

    def test_build_is_deterministic(self, factory):
        profile = factory(scale=0.4)
        assert profile.build() == profile.build()

    def test_scale_changes_size(self, factory):
        small = factory(scale=0.4).spec.num_vertices
        large = factory(scale=1.0).spec.num_vertices
        assert small < large


class TestProfileSemantics:
    def test_dblp_planted_topics_are_frequent(self):
        profile = dblp_like()
        graph = profile.build()
        for community in profile.spec.communities:
            assert graph.support(community.attributes) >= profile.params.min_support

    def test_lastfm_popular_artists_have_huge_support(self):
        profile = lastfm_like()
        graph = profile.build()
        radiohead = graph.support(["Radiohead"])
        niche = graph.support(["SStevens", "Wilco"])
        assert radiohead > 2 * niche

    def test_profiles_have_distinct_seeds(self):
        assert dblp_like().spec.seed != citeseer_like().spec.seed

"""Tests for the command-line interface."""

import pytest

from repro.cli.main import build_parser, main
from repro.datasets.example import paper_example_graph
from repro.graph.io import write_attributed_graph


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.profile == "small-dblp"
        assert args.algorithm == "scpm"

    def test_mine_requires_files(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["mine", "--edges", "x"])


class TestMainMine:
    @pytest.fixture
    def graph_files(self, tmp_path):
        edges = tmp_path / "g.edges"
        attrs = tmp_path / "g.attrs"
        write_attributed_graph(paper_example_graph(), edges, attrs)
        return str(edges), str(attrs)

    def test_mine_example_graph(self, graph_files, capsys):
        edges, attrs = graph_files
        code = main(
            [
                "mine",
                "--edges", edges,
                "--attributes", attrs,
                "--min-support", "3",
                "--gamma", "0.6",
                "--min-size", "4",
                "--min-epsilon", "0.5",
                "--show-patterns",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "11 vertices" in output
        assert "top-sigma" in output
        assert "patterns" in output

    def test_mine_with_naive_algorithm(self, graph_files, capsys):
        edges, attrs = graph_files
        code = main(
            [
                "mine",
                "--edges", edges,
                "--attributes", attrs,
                "--min-support", "3",
                "--gamma", "0.6",
                "--min-size", "4",
                "--algorithm", "naive",
            ]
        )
        assert code == 0
        assert "naive" in capsys.readouterr().out


class TestMainDemo:
    def test_demo_small_profile(self, capsys):
        code = main(["demo", "--profile", "small-dblp", "--scale", "0.4", "--rows", "3"])
        assert code == 0
        output = capsys.readouterr().out
        assert "small-dblp-like" in output
        assert "top-delta" in output

"""Tests for the command-line interface.

Exit-code contract (pinned by :class:`TestMainQuery`): ``0`` success,
``1`` store-level errors (missing store, unknown run/pattern id,
malformed filter values), ``2`` argparse usage errors (unknown flags,
missing/conflicting lookup modes) — argparse raises ``SystemExit``.
"""

import pytest

from repro.cli.main import build_parser, main
from repro.datasets.example import paper_example_graph
from repro.graph.io import write_attributed_graph


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.profile == "small-dblp"
        assert args.algorithm == "scpm"

    def test_mine_requires_files(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["mine", "--edges", "x"])


class TestMainMine:
    @pytest.fixture
    def graph_files(self, tmp_path):
        edges = tmp_path / "g.edges"
        attrs = tmp_path / "g.attrs"
        write_attributed_graph(paper_example_graph(), edges, attrs)
        return str(edges), str(attrs)

    def test_mine_example_graph(self, graph_files, capsys):
        edges, attrs = graph_files
        code = main(
            [
                "mine",
                "--edges", edges,
                "--attributes", attrs,
                "--min-support", "3",
                "--gamma", "0.6",
                "--min-size", "4",
                "--min-epsilon", "0.5",
                "--show-patterns",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "11 vertices" in output
        assert "top-sigma" in output
        assert "patterns" in output

    def test_mine_verbose_prints_kernel_and_memo_counters(
        self, graph_files, capsys
    ):
        edges, attrs = graph_files
        code = main(
            [
                "mine",
                "--edges", edges,
                "--attributes", attrs,
                "--min-support", "3",
                "--gamma", "0.6",
                "--min-size", "4",
                "--verbose",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "counters: qualified=" in output
        assert "kernel: counter_updates=" in output
        assert "coverage memo: hits=" in output

    def test_mine_streaming_matches_in_memory(self, graph_files, capsys):
        """--streaming swaps the loader without changing a byte of output."""
        edges, attrs = graph_files
        base = [
            "mine",
            "--edges", edges,
            "--attributes", attrs,
            "--min-support", "3",
            "--gamma", "0.6",
            "--min-size", "4",
            "--min-epsilon", "0.5",
        ]

        def tables(argv):
            assert main(argv) == 0
            out = capsys.readouterr().out
            # Drop the timing line (wall clock differs run to run).
            return [
                line for line in out.splitlines() if "attribute sets in" not in line
            ]

        assert tables(base + ["--streaming"]) == tables(base)

    def test_mine_streaming_with_engine_and_jobs(self, graph_files, capsys):
        edges, attrs = graph_files
        code = main(
            [
                "mine",
                "--edges", edges,
                "--attributes", attrs,
                "--streaming",
                "--engine", "sparse",
                "--jobs", "2",
                "--min-support", "3",
                "--gamma", "0.6",
                "--min-size", "4",
            ]
        )
        assert code == 0
        assert "11 vertices" in capsys.readouterr().out

    def test_mine_kernel_backend_flag(self, graph_files, capsys):
        """--kernel-backend switches the kernel without changing a byte."""
        edges, attrs = graph_files
        outputs = {}
        for backend in ("bigint", "numpy"):
            code = main(
                [
                    "mine",
                    "--edges", edges,
                    "--attributes", attrs,
                    "--min-support", "3",
                    "--gamma", "0.45",
                    "--min-size", "3",
                    "--kernel-backend", backend,
                    "--verbose",
                ]
            )
            assert code == 0
            outputs[backend] = capsys.readouterr().out
        assert "backends[searches]: bigint=" in outputs["bigint"]
        assert "backends[searches]: numpy(uint8)=" in outputs["numpy"]
        # everything except the backend attribution line is identical
        strip = lambda text: [
            line for line in text.splitlines()
            if not line.startswith("kernel: counter_updates=")
        ]
        assert strip(outputs["numpy"]) == strip(outputs["bigint"])

    def test_mine_rejects_unknown_kernel_backend(self, graph_files):
        edges, attrs = graph_files
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                [
                    "mine",
                    "--edges", edges,
                    "--attributes", attrs,
                    "--min-support", "3",
                    "--kernel-backend", "cython",
                ]
            )

    def test_mine_with_naive_algorithm(self, graph_files, capsys):
        edges, attrs = graph_files
        code = main(
            [
                "mine",
                "--edges", edges,
                "--attributes", attrs,
                "--min-support", "3",
                "--gamma", "0.6",
                "--min-size", "4",
                "--algorithm", "naive",
            ]
        )
        assert code == 0
        assert "naive" in capsys.readouterr().out


    def test_mine_verbose_empty_result_skips_counter_block(
        self, graph_files, capsys
    ):
        """Regression: zero evaluated sets must not print the counter block.

        With ``--min-support`` above every attribute's support the run
        evaluates nothing; ``--verbose`` used to print the all-zero
        kernel/memo counter lines anyway.  Now it says what happened.
        """
        edges, attrs = graph_files
        code = main(
            [
                "mine",
                "--edges", edges,
                "--attributes", attrs,
                "--min-support", "9999",
                "--verbose",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "evaluated 0 attribute sets" in output
        assert "kernel: counter_updates=" not in output
        assert "counters: qualified=" not in output
        assert "no attribute sets evaluated" in output

    def test_mine_store_writes_a_pattern_store(self, graph_files, tmp_path, capsys):
        edges, attrs = graph_files
        store = tmp_path / "patterns.sqlite"
        code = main(
            [
                "mine",
                "--edges", edges,
                "--attributes", attrs,
                "--min-support", "3",
                "--gamma", "0.6",
                "--min-size", "4",
                "--min-epsilon", "0.5",
                "--store", str(store),
            ]
        )
        assert code == 0
        assert "stored run #1" in capsys.readouterr().out
        assert store.exists()


class TestMainDemo:
    def test_demo_small_profile(self, capsys):
        code = main(["demo", "--profile", "small-dblp", "--scale", "0.4", "--rows", "3"])
        assert code == 0
        output = capsys.readouterr().out
        assert "small-dblp-like" in output
        assert "top-delta" in output


class TestMainQuery:
    @pytest.fixture
    def store(self, tmp_path, capsys):
        """A store holding one mined run of the paper's example graph."""
        edges = tmp_path / "g.edges"
        attrs = tmp_path / "g.attrs"
        write_attributed_graph(paper_example_graph(), edges, attrs)
        path = tmp_path / "patterns.sqlite"
        assert main(
            [
                "mine",
                "--edges", str(edges),
                "--attributes", str(attrs),
                "--min-support", "3",
                "--gamma", "0.6",
                "--min-size", "4",
                "--min-epsilon", "0.5",
                "--store", str(path),
            ]
        ) == 0
        capsys.readouterr()  # drop the mine output
        return str(path)

    # ---- the four lookup modes -------------------------------------
    def test_query_pattern_id(self, store, capsys):
        assert main(["query", "--store", store, "--pattern-id", "1"]) == 0
        output = capsys.readouterr().out
        assert output.startswith("pattern 1 (run 1, set ")
        assert "gamma=" in output

    def test_query_vertex(self, store, capsys):
        assert main(["query", "--store", store, "--vertex", "6"]) == 0
        output = capsys.readouterr().out
        assert "pattern(s) contain vertex 6" in output
        assert "pattern 1:" in output

    def test_query_attributes_all_and_any(self, store, capsys):
        assert main(["query", "--store", store, "--attributes", "A", "B"]) == 0
        all_output = capsys.readouterr().out
        assert "match all(A, B)" in all_output
        assert main(
            ["query", "--store", store, "--attributes", "A", "B", "--mode", "any"]
        ) == 0
        any_output = capsys.readouterr().out
        assert "match any(A, B)" in any_output
        # "any" can only widen the match set
        assert int(any_output.split()[0]) >= int(all_output.split()[0])

    def test_query_top_k(self, store, capsys):
        assert main(["query", "--store", store, "--top-k", "3"]) == 0
        output = capsys.readouterr().out.splitlines()
        assert output[0].split() == ["rank", "epsilon", "support", "label"]
        assert len(output) == 4  # header + 3 rows
        assert output[1].startswith("    1")

    # ---- error paths ------------------------------------------------
    def test_query_missing_store_exits_1(self, tmp_path, capsys):
        missing = tmp_path / "nope.sqlite"
        assert main(["query", "--store", str(missing), "--top-k", "3"]) == 1
        assert "does not exist" in capsys.readouterr().err
        assert not missing.exists()

    def test_query_unknown_pattern_id_exits_1(self, store, capsys):
        assert main(["query", "--store", store, "--pattern-id", "999"]) == 1
        assert "not in store" in capsys.readouterr().err

    def test_query_malformed_top_k_exits_1(self, store, capsys):
        assert main(["query", "--store", store, "--top-k", "0"]) == 1
        assert "positive k" in capsys.readouterr().err

    def test_query_unknown_run_exits_1(self, store, capsys):
        assert main(
            ["query", "--store", store, "--top-k", "3", "--run", "99"]
        ) == 1
        assert "run 99" in capsys.readouterr().err

    # ---- usage contract (argparse exits 2) --------------------------
    def test_query_requires_exactly_one_mode(self, store, capsys):
        with pytest.raises(SystemExit) as exit_info:
            main(["query", "--store", store])
        assert exit_info.value.code == 2
        assert "exactly one of" in capsys.readouterr().err

        with pytest.raises(SystemExit) as exit_info:
            main(["query", "--store", store, "--vertex", "6", "--top-k", "2"])
        assert exit_info.value.code == 2

    def test_query_mode_requires_attributes(self, store, capsys):
        with pytest.raises(SystemExit) as exit_info:
            main(["query", "--store", store, "--top-k", "2", "--mode", "any"])
        assert exit_info.value.code == 2
        assert "--mode is only valid" in capsys.readouterr().err

    def test_query_requires_store_flag(self):
        with pytest.raises(SystemExit) as exit_info:
            main(["query", "--top-k", "2"])
        assert exit_info.value.code == 2

    def test_query_rejects_bad_mode_value(self, store):
        with pytest.raises(SystemExit) as exit_info:
            main(
                ["query", "--store", store, "--attributes", "A",
                 "--mode", "sometimes"]
            )
        assert exit_info.value.code == 2


class TestMainServe:
    """``scpm serve`` argument handling and exit codes.

    The live HTTP behaviour is covered end-to-end in
    ``tests/serve/test_http.py``; here we pin the CLI contract only —
    usage errors exit 2, store/bind failures exit 1, and a keyboard
    interrupt drains and exits 0.
    """

    @pytest.fixture
    def store(self, tmp_path):
        from repro.store import save_result

        from tests.serve.test_reader_fixes import handmade_result

        path = tmp_path / "patterns.sqlite"
        save_result(path, handmade_result(attributes=("db",)))
        return str(path)

    def test_serve_requires_store_flag(self):
        with pytest.raises(SystemExit) as exit_info:
            main(["serve"])
        assert exit_info.value.code == 2

    def test_serve_rejects_non_integer_port(self, store):
        with pytest.raises(SystemExit) as exit_info:
            main(["serve", "--store", store, "--port", "abc"])
        assert exit_info.value.code == 2

    def test_serve_missing_store_exits_1(self, tmp_path, capsys):
        missing = tmp_path / "nope.sqlite"
        assert main(["serve", "--store", str(missing), "--port", "0"]) == 1
        assert "scpm serve: error:" in capsys.readouterr().err
        assert not missing.exists()  # serving must never create a store

    def test_serve_bind_failure_exits_1(self, store, capsys):
        import socket

        blocker = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            blocker.bind(("127.0.0.1", 0))
            blocker.listen(1)
            port = blocker.getsockname()[1]
            assert main(
                ["serve", "--store", store, "--port", str(port)]
            ) == 1
            err = capsys.readouterr().err
            assert f"cannot bind 127.0.0.1:{port}" in err
        finally:
            blocker.close()

    def test_serve_interrupt_drains_and_exits_0(
        self, store, capsys, monkeypatch
    ):
        from repro.serve.http import PatternStoreServer

        monkeypatch.setattr(
            PatternStoreServer,
            "serve_forever",
            lambda self, poll_interval=0.5: (_ for _ in ()).throw(
                KeyboardInterrupt()
            ),
        )
        assert main(["serve", "--store", store, "--port", "0"]) == 0
        out = capsys.readouterr().out
        assert "serving pattern store" in out
        assert "/healthz" in out
        assert "shutting down (draining in-flight requests)" in out

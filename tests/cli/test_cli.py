"""Tests for the command-line interface."""

import pytest

from repro.cli.main import build_parser, main
from repro.datasets.example import paper_example_graph
from repro.graph.io import write_attributed_graph


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.profile == "small-dblp"
        assert args.algorithm == "scpm"

    def test_mine_requires_files(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["mine", "--edges", "x"])


class TestMainMine:
    @pytest.fixture
    def graph_files(self, tmp_path):
        edges = tmp_path / "g.edges"
        attrs = tmp_path / "g.attrs"
        write_attributed_graph(paper_example_graph(), edges, attrs)
        return str(edges), str(attrs)

    def test_mine_example_graph(self, graph_files, capsys):
        edges, attrs = graph_files
        code = main(
            [
                "mine",
                "--edges", edges,
                "--attributes", attrs,
                "--min-support", "3",
                "--gamma", "0.6",
                "--min-size", "4",
                "--min-epsilon", "0.5",
                "--show-patterns",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "11 vertices" in output
        assert "top-sigma" in output
        assert "patterns" in output

    def test_mine_verbose_prints_kernel_and_memo_counters(
        self, graph_files, capsys
    ):
        edges, attrs = graph_files
        code = main(
            [
                "mine",
                "--edges", edges,
                "--attributes", attrs,
                "--min-support", "3",
                "--gamma", "0.6",
                "--min-size", "4",
                "--verbose",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "counters: qualified=" in output
        assert "kernel: counter_updates=" in output
        assert "coverage memo: hits=" in output

    def test_mine_streaming_matches_in_memory(self, graph_files, capsys):
        """--streaming swaps the loader without changing a byte of output."""
        edges, attrs = graph_files
        base = [
            "mine",
            "--edges", edges,
            "--attributes", attrs,
            "--min-support", "3",
            "--gamma", "0.6",
            "--min-size", "4",
            "--min-epsilon", "0.5",
        ]

        def tables(argv):
            assert main(argv) == 0
            out = capsys.readouterr().out
            # Drop the timing line (wall clock differs run to run).
            return [
                line for line in out.splitlines() if "attribute sets in" not in line
            ]

        assert tables(base + ["--streaming"]) == tables(base)

    def test_mine_streaming_with_engine_and_jobs(self, graph_files, capsys):
        edges, attrs = graph_files
        code = main(
            [
                "mine",
                "--edges", edges,
                "--attributes", attrs,
                "--streaming",
                "--engine", "sparse",
                "--jobs", "2",
                "--min-support", "3",
                "--gamma", "0.6",
                "--min-size", "4",
            ]
        )
        assert code == 0
        assert "11 vertices" in capsys.readouterr().out

    def test_mine_with_naive_algorithm(self, graph_files, capsys):
        edges, attrs = graph_files
        code = main(
            [
                "mine",
                "--edges", edges,
                "--attributes", attrs,
                "--min-support", "3",
                "--gamma", "0.6",
                "--min-size", "4",
                "--algorithm", "naive",
            ]
        )
        assert code == 0
        assert "naive" in capsys.readouterr().out


class TestMainDemo:
    def test_demo_small_profile(self, capsys):
        code = main(["demo", "--profile", "small-dblp", "--scale", "0.4", "--rows", "3"])
        assert code == 0
        output = capsys.readouterr().out
        assert "small-dblp-like" in output
        assert "top-delta" in output

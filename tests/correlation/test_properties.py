"""Property-based tests for the structural-correlation layer.

These check the paper's theorems on random attributed graphs:

* Theorem 3 — monotonicity of coverage: ``K_{S_j} ⊆ K_{S_i}`` for
  ``S_i ⊆ S_j``;
* Theorem 4 — the ε upper bound used for attribute-set pruning;
* monotonicity of the analytical null model (needed by Theorem 5);
* SCPM (pruned) and the naive baseline (exhaustive) find the same
  qualifying attribute sets with identical ε values.
"""

from hypothesis import given, settings, strategies as st

from repro.correlation.naive import NaiveMiner
from repro.correlation.null_models import AnalyticalNullModel
from repro.correlation.parameters import SCPMParams
from repro.correlation.scpm import SCPM
from repro.correlation.structural import structural_correlation
from repro.graph.attributed_graph import AttributedGraph
from repro.quasiclique.definitions import QuasiCliqueParams

ATTRIBUTES = ["a", "b", "c"]


@st.composite
def attributed_graphs(draw):
    """Random graphs of up to 10 vertices with up to 3 attributes per vertex."""
    num_vertices = draw(st.integers(min_value=4, max_value=10))
    possible_edges = [
        (u, v) for u in range(num_vertices) for v in range(u + 1, num_vertices)
    ]
    edge_flags = draw(
        st.lists(st.booleans(), min_size=len(possible_edges), max_size=len(possible_edges))
    )
    attribute_choices = draw(
        st.lists(
            st.sets(st.sampled_from(ATTRIBUTES)),
            min_size=num_vertices,
            max_size=num_vertices,
        )
    )
    graph = AttributedGraph()
    for vertex in range(num_vertices):
        graph.add_vertex(vertex)
        graph.add_attributes(vertex, attribute_choices[vertex])
        graph.add_attribute(vertex, "base")  # shared attribute so supersets exist
    for include, (u, v) in zip(edge_flags, possible_edges):
        if include:
            graph.add_edge(u, v)
    return graph


QC_PARAMS = QuasiCliqueParams(gamma=0.5, min_size=3)


@given(attributed_graphs(), st.sampled_from(ATTRIBUTES))
@settings(max_examples=60, deadline=None)
def test_theorem3_coverage_is_antitone_in_attributes(graph, extra):
    """Adding attributes to a set can only shrink the covered vertex set."""
    _, covered_small = structural_correlation(graph, ["base"], QC_PARAMS)
    _, covered_large = structural_correlation(graph, ["base", extra], QC_PARAMS)
    assert covered_large <= covered_small


@given(attributed_graphs(), st.sampled_from(ATTRIBUTES))
@settings(max_examples=60, deadline=None)
def test_theorem4_epsilon_upper_bound(graph, extra):
    """ε(S_j)·σ(S_j) ≤ ε(S_i)·σ(S_i) whenever S_i ⊆ S_j."""
    eps_small, _ = structural_correlation(graph, ["base"], QC_PARAMS)
    eps_large, _ = structural_correlation(graph, ["base", extra], QC_PARAMS)
    sigma_small = graph.support(["base"])
    sigma_large = graph.support(["base", extra])
    assert eps_large * sigma_large <= eps_small * sigma_small + 1e-9


@given(attributed_graphs())
@settings(max_examples=40, deadline=None)
def test_analytical_null_model_is_monotone(graph):
    model = AnalyticalNullModel(graph, QC_PARAMS)
    values = [model.expected_epsilon(s) for s in range(0, graph.num_vertices + 1)]
    assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))
    assert all(0.0 <= v <= 1.0 + 1e-12 for v in values)


@given(attributed_graphs())
@settings(max_examples=40, deadline=None)
def test_scpm_agrees_with_naive_baseline(graph):
    params = SCPMParams(
        min_support=2,
        gamma=0.5,
        min_size=3,
        min_epsilon=0.2,
        min_delta=0.0,
        top_k=3,
        max_attribute_set_size=2,
    )
    scpm = SCPM(graph, params).mine()
    naive = NaiveMiner(graph, params).mine()
    scpm_qualified = {r.attributes: r.epsilon for r in scpm.qualified}
    naive_qualified = {r.attributes: r.epsilon for r in naive.qualified}
    assert set(scpm_qualified) == set(naive_qualified)
    for key, epsilon in naive_qualified.items():
        assert abs(scpm_qualified[key] - epsilon) < 1e-9


@given(attributed_graphs())
@settings(max_examples=40, deadline=None)
def test_epsilon_is_a_probability(graph):
    for attributes in (["base"], ["a"], ["a", "b"]):
        epsilon, covered = structural_correlation(graph, attributes, QC_PARAMS)
        assert 0.0 <= epsilon <= 1.0
        assert covered <= graph.vertices_with_all(attributes)

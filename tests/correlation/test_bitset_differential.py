"""Differential tests: the bitset engine against frozenset-path oracles.

Three independent reference points pin the bitset engine down:

* the **frozenset Eclat path** (``EclatMiner(use_bitsets=False)``), which
  never touches the bitset machinery;
* the **naive baseline miner**, which enumerates exhaustively and applies
  the thresholds only afterwards — any pruning bug in SCPM shows up as a
  disagreement;
* the **set-based pruning rules**, the readable specification the mask
  twins in :mod:`repro.quasiclique.pruning` must reproduce bit for bit.

The graphs come from :mod:`repro.datasets.synthetic` (randomized but
seed-deterministic), exactly the structures the paper's workloads exhibit.
"""

import pytest

from repro.correlation.naive import NaiveMiner
from repro.correlation.parameters import SCPMParams
from repro.correlation.scpm import SCPM
from repro.correlation.structural import (
    structural_correlation,
    structural_correlation_bitset,
)
from repro.datasets.example import TABLE1_PATTERNS, paper_example_graph
from repro.datasets.synthetic import (
    CommunitySpec,
    SyntheticSpec,
    generate,
    random_attributed_graph,
)
from repro.itemsets.eclat import EclatConfig, EclatMiner
from repro.quasiclique.definitions import QuasiCliqueParams
from repro.quasiclique.search import find_quasi_cliques
from repro.quasiclique.pruning import (
    MaskDistanceIndex,
    DistanceIndex,
    filter_candidates_by_degree,
    filter_candidates_by_degree_masks,
    prune_low_degree_masks,
    prune_low_degree_vertices,
    subtree_is_hopeless,
    subtree_is_hopeless_masks,
)

PARAMS = SCPMParams(
    min_support=3, gamma=0.6, min_size=3, min_epsilon=0.1, top_k=5
)


def synthetic_graphs():
    """A spread of seed-deterministic synthetic graphs (small but varied)."""
    graphs = []
    for seed in (1, 7, 23):
        graphs.append(
            random_attributed_graph(
                num_vertices=18,
                edge_probability=0.3,
                attributes=["a", "b", "c", "d"],
                attribute_probability=0.4,
                seed=seed,
            )
        )
    graphs.append(
        generate(
            SyntheticSpec(
                num_vertices=60,
                background_degree=3.0,
                vocabulary_size=12,
                attributes_per_vertex=2.0,
                communities=(
                    CommunitySpec(attributes=("topic0",), size=8, density=0.9),
                    CommunitySpec(
                        attributes=("topic1", "topic2"),
                        size=6,
                        density=0.95,
                        noise_carriers=3,
                    ),
                ),
                seed=11,
            )
        )
    )
    return graphs


def result_fingerprint(result):
    """Everything observable about a mining run, in comparable form."""
    return [
        (
            r.attributes,
            r.support,
            pytest.approx(r.epsilon),
            pytest.approx(r.delta, rel=1e-9) if r.delta != float("inf") else r.delta,
            r.covered_vertices,
            r.qualified,
        )
        for r in result.evaluated
    ]


class TestEclatDifferential:
    """Bitset Eclat must mine exactly what the frozenset Eclat mines."""

    @pytest.mark.parametrize("seed", [1, 7, 23])
    def test_same_itemsets_and_tidsets(self, seed):
        graph = random_attributed_graph(
            num_vertices=40,
            edge_probability=0.1,
            attributes=["a", "b", "c", "d", "e"],
            attribute_probability=0.35,
            seed=seed,
        )
        config = EclatConfig(min_support=3)
        plain = {
            f.items: f.tidset for f in EclatMiner(config).mine_graph(graph)
        }
        bitset = {
            f.items: f.tidset.to_frozenset()
            for f in EclatMiner(config, use_bitsets=True).mine_graph(graph)
        }
        assert bitset == plain

    def test_yield_order_identical(self):
        graph = random_attributed_graph(
            num_vertices=30,
            edge_probability=0.2,
            attributes=["a", "b", "c"],
            attribute_probability=0.5,
            seed=5,
        )
        config = EclatConfig(min_support=2)
        plain = [f.items for f in EclatMiner(config).mine_graph(graph)]
        bitset = [
            f.items
            for f in EclatMiner(config, use_bitsets=True).mine_graph(graph)
        ]
        assert bitset == plain


class TestMiningDifferential:
    """SCPM on the bitset engine vs the exhaustive naive baseline."""

    @pytest.mark.parametrize("graph", synthetic_graphs())
    def test_scpm_agrees_with_naive_on_synthetic_graphs(self, graph):
        scpm = SCPM(graph, PARAMS).mine()
        naive = NaiveMiner(graph, PARAMS).mine()
        scpm_view = {
            r.attributes: (r.support, pytest.approx(r.epsilon), r.covered_vertices)
            for r in scpm.qualified
        }
        naive_view = {
            r.attributes: (r.support, r.epsilon, r.covered_vertices)
            for r in naive.qualified
        }
        assert naive_view == scpm_view

    @pytest.mark.parametrize("graph", synthetic_graphs())
    def test_scpm_patterns_agree_with_naive(self, graph):
        """Pattern-level differential within the top-k guarantees.

        SCPM's top-k search guarantees the largest pattern exactly and that
        every returned set satisfies the γ degree condition; ranks 2..k may
        legitimately include non-maximal sets (see
        ``QuasiCliqueSearch.top_k``), so each one must at least be contained
        in some maximal pattern the naive miner enumerates.
        """
        scpm = SCPM(graph, PARAMS).mine()
        naive = NaiveMiner(graph, PARAMS).mine()
        naive_by_attrs = {r.attributes: r for r in naive.qualified}
        for record in scpm.qualified:
            counterpart = naive_by_attrs[record.attributes]
            if counterpart.patterns:
                assert record.patterns, record.attributes
                top_scpm, top_naive = record.patterns[0], counterpart.patterns[0]
                assert top_scpm.vertices == top_naive.vertices
                assert top_scpm.gamma == pytest.approx(top_naive.gamma)
            if record.patterns:
                maximal = find_quasi_cliques(
                    graph,
                    PARAMS.gamma,
                    PARAMS.min_size,
                    vertices=graph.vertices_with_all(record.attributes),
                )
                for pattern in record.patterns:
                    assert any(
                        pattern.vertices <= m for m in maximal
                    ), (record.attributes, pattern.vertices)

    @pytest.mark.parametrize("graph", synthetic_graphs())
    def test_structural_correlation_bitset_matches_public_path(self, graph):
        qc = QuasiCliqueParams(gamma=0.6, min_size=3)
        for attribute in list(graph.attributes())[:6]:
            eps_pub, covered_pub = structural_correlation(graph, [attribute], qc)
            eps_bits, covered_bits = structural_correlation_bitset(
                graph, [attribute], qc
            )
            assert eps_bits == pytest.approx(eps_pub)
            assert covered_bits.to_frozenset() == covered_pub

    def test_table1_byte_identical_across_engines(self):
        """Acceptance criterion: SCPM == naive on the paper's Table 1 graph."""
        graph = paper_example_graph()
        params = SCPMParams(
            min_support=3, gamma=0.6, min_size=4, min_epsilon=0.5, top_k=10
        )
        scpm = SCPM(graph, params).mine()
        naive = NaiveMiner(graph, params).mine()
        expected = {
            (tuple(sorted(attrs)), frozenset(vertices))
            for attrs, vertices in TABLE1_PATTERNS
        }
        for result in (scpm, naive):
            found = {
                (p.attributes, frozenset(p.vertices)) for p in result.patterns
            }
            assert found == expected

    def test_sequential_runs_are_reproducible(self):
        graph = synthetic_graphs()[-1]
        first = SCPM(graph, PARAMS).mine()
        second = SCPM(graph, PARAMS).mine()
        assert result_fingerprint(first) == result_fingerprint(second)


class TestMaskPruningTwins:
    """The mask pruning rules must equal the set-based specification."""

    def local_space(self, graph):
        """Adjacency in both representations over the same dense ids."""
        vertices = sorted(graph.vertices(), key=repr)
        ids = {v: i for i, v in enumerate(vertices)}
        set_adj = {
            v: {u for u in graph.neighbor_set(v)} for v in vertices
        }
        mask_adj = [
            sum(1 << ids[u] for u in set_adj[v]) for v in vertices
        ]
        return vertices, ids, set_adj, mask_adj

    def to_mask(self, ids, vertices):
        return sum(1 << ids[v] for v in vertices)

    @pytest.mark.parametrize("seed", [2, 9, 31])
    @pytest.mark.parametrize("gamma,min_size", [(0.5, 3), (0.6, 4), (1.0, 3)])
    def test_low_degree_pruning_agrees(self, seed, gamma, min_size):
        graph = random_attributed_graph(
            num_vertices=16, edge_probability=0.25, attributes=[],
            attribute_probability=0.0, seed=seed,
        )
        params = QuasiCliqueParams(gamma=gamma, min_size=min_size)
        vertices, ids, set_adj, mask_adj = self.local_space(graph)
        expected = prune_low_degree_vertices(set_adj, params)
        alive, masks = prune_low_degree_masks(mask_adj, params)
        survivors = {vertices[i] for i in range(len(vertices)) if (alive >> i) & 1}
        assert survivors == set(expected)
        for v, neighbors in expected.items():
            assert masks[ids[v]] == self.to_mask(ids, neighbors)

    @pytest.mark.parametrize("seed", [2, 9, 31])
    def test_candidate_filters_agree(self, seed):
        graph = random_attributed_graph(
            num_vertices=14, edge_probability=0.35, attributes=[],
            attribute_probability=0.0, seed=seed,
        )
        params = QuasiCliqueParams(gamma=0.6, min_size=4)
        vertices, ids, set_adj, mask_adj = self.local_space(graph)
        members = set(vertices[:2])
        candidates = set(vertices[2:])
        expected = filter_candidates_by_degree(set_adj, members, candidates, params)
        got = filter_candidates_by_degree_masks(
            mask_adj, self.to_mask(ids, members), self.to_mask(ids, candidates), params
        )
        assert got == self.to_mask(ids, expected)

        assert subtree_is_hopeless(
            set_adj, members, candidates, params
        ) == subtree_is_hopeless_masks(
            mask_adj, self.to_mask(ids, members), self.to_mask(ids, candidates), params
        )

    @pytest.mark.parametrize("distance_bound", [1, 2])
    def test_distance_index_agrees(self, distance_bound):
        graph = random_attributed_graph(
            num_vertices=14, edge_probability=0.3, attributes=[],
            attribute_probability=0.0, seed=4,
        )
        vertices, ids, set_adj, mask_adj = self.local_space(graph)
        set_index = DistanceIndex(set_adj, distance_bound)
        mask_index = MaskDistanceIndex(mask_adj, distance_bound)
        for v in vertices:
            assert mask_index.reachable(ids[v]) == self.to_mask(
                ids, set_index.reachable(v)
            )
        members = vertices[:3]
        everything = set(vertices)
        assert mask_index.allowed_extensions(
            [ids[m] for m in members], self.to_mask(ids, everything)
        ) == self.to_mask(ids, set_index.allowed_extensions(members, everything))

"""Unit tests for the SCPMParams bundle."""

import pytest

from repro.correlation.parameters import SCPMParams
from repro.errors import ParameterError
from repro.quasiclique.search import BFS, DFS


class TestValidation:
    def test_defaults_are_valid(self):
        params = SCPMParams(min_support=10, gamma=0.5, min_size=5)
        assert params.min_epsilon == 0.0
        assert params.min_delta == 0.0
        assert params.top_k == 5
        assert params.order == DFS

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_support": 0},
            {"gamma": 0.0},
            {"gamma": 1.2},
            {"min_size": 1},
            {"min_epsilon": -0.1},
            {"min_epsilon": 1.5},
            {"min_delta": -1},
            {"top_k": 0},
            {"min_attribute_set_size": 0},
            {"max_attribute_set_size": 1, "min_attribute_set_size": 2},
            {"order": "sideways"},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        base = dict(min_support=10, gamma=0.5, min_size=5)
        base.update(kwargs)
        with pytest.raises(ParameterError):
            SCPMParams(**base)

    def test_quasi_clique_params(self):
        params = SCPMParams(min_support=10, gamma=0.7, min_size=6)
        qc = params.quasi_clique_params()
        assert qc.gamma == 0.7
        assert qc.min_size == 6

    def test_with_changes(self):
        params = SCPMParams(min_support=10, gamma=0.5, min_size=5)
        changed = params.with_changes(gamma=0.8, order=BFS)
        assert changed.gamma == 0.8
        assert changed.order == BFS
        assert params.gamma == 0.5  # original untouched

    def test_with_changes_validates(self):
        params = SCPMParams(min_support=10, gamma=0.5, min_size=5)
        with pytest.raises(ParameterError):
            params.with_changes(gamma=2.0)

"""Unit tests specific to the naive baseline."""

import pytest

from repro.correlation.naive import NaiveMiner, mine_naive
from repro.correlation.parameters import SCPMParams
from repro.datasets.example import paper_example_graph


@pytest.fixture
def graph():
    return paper_example_graph()


class TestNaive:
    def test_evaluates_every_frequent_attribute_set(self, graph):
        params = SCPMParams(min_support=3, gamma=0.6, min_size=4)
        result = NaiveMiner(graph, params).mine()
        labels = {r.attributes for r in result.evaluated}
        assert labels == {
            ("A",),
            ("B",),
            ("C",),
            ("D",),
            ("A", "B"),
            ("A", "C"),
            ("A", "D"),
        }

    def test_reports_all_patterns_up_to_top_k(self, graph):
        params = SCPMParams(
            min_support=3, gamma=0.6, min_size=4, min_epsilon=0.5, top_k=2
        )
        result = NaiveMiner(graph, params).mine()
        record = result.find(["A"])
        assert len(record.patterns) == 2
        assert record.patterns[0].size >= record.patterns[1].size

    def test_epsilon_and_delta_fields(self, graph):
        params = SCPMParams(min_support=3, gamma=0.6, min_size=4)
        result = NaiveMiner(graph, params).mine()
        record = result.find(["A", "B"])
        assert record.epsilon == 1.0
        assert record.expected_epsilon > 0.0
        assert record.delta == pytest.approx(1.0 / record.expected_epsilon)

    def test_algorithm_label_and_wrapper(self, graph):
        params = SCPMParams(min_support=3, gamma=0.6, min_size=4)
        assert NaiveMiner(graph, params).mine().algorithm == "naive"
        assert mine_naive(graph, params).algorithm == "naive"

    def test_delta_threshold_filters_output_only(self, graph):
        params = SCPMParams(
            min_support=3, gamma=0.6, min_size=4, min_epsilon=0.5, min_delta=10.0
        )
        result = NaiveMiner(graph, params).mine()
        # everything is still evaluated, but fewer sets qualify
        assert len(result.evaluated) == 7
        assert all(r.delta >= 10.0 for r in result.qualified)

    def test_counts_elapsed_time(self, graph):
        params = SCPMParams(min_support=3, gamma=0.6, min_size=4)
        result = NaiveMiner(graph, params).mine()
        assert result.counters.elapsed_seconds >= 0.0
        assert result.counters.attribute_sets_evaluated == 7

"""End-to-end reproduction of the paper's running example (Table 1).

With σ_min = 3, γ_min = 0.6, min_size = 4 and ε_min = 0.5 the complete set
of structural correlation patterns of the Figure-1 graph is the seven rows
of Table 1.  Both the SCPM algorithm and the naive baseline must reproduce
them exactly, along with the ε values quoted in the text (ε(A) ≈ 0.82,
ε(C) = 0, ε({A,B}) = 1).
"""

import pytest

from repro.correlation.naive import NaiveMiner
from repro.correlation.scpm import SCPM
from repro.datasets.example import TABLE1_PATTERNS, paper_example_graph


def normalized_patterns(result):
    """Return {(attribute tuple, vertex frozenset)} for comparison."""
    return {
        (pattern.attributes, frozenset(pattern.vertices))
        for pattern in result.patterns
    }


EXPECTED = {
    (tuple(sorted(attrs)), frozenset(vertices)) for attrs, vertices in TABLE1_PATTERNS
}


class TestTable1:
    @pytest.fixture
    def graph(self):
        return paper_example_graph()

    def test_scpm_reproduces_table1(self, graph, example_scpm_params):
        result = SCPM(graph, example_scpm_params).mine()
        assert normalized_patterns(result) == EXPECTED

    def test_naive_reproduces_table1(self, graph, example_scpm_params):
        result = NaiveMiner(graph, example_scpm_params).mine()
        assert normalized_patterns(result) == EXPECTED

    def test_scpm_and_naive_agree_on_attribute_statistics(self, graph, example_scpm_params):
        scpm = SCPM(graph, example_scpm_params).mine()
        naive = NaiveMiner(graph, example_scpm_params).mine()
        scpm_stats = {r.attributes: (r.support, r.epsilon) for r in scpm.evaluated}
        naive_stats = {r.attributes: (r.support, r.epsilon) for r in naive.evaluated}
        # SCPM prunes attribute sets that provably cannot qualify (Theorem 4),
        # so it may evaluate a subset of what the naive baseline evaluates —
        # but everything it does evaluate must agree, and the qualifying sets
        # must be identical.
        assert set(scpm_stats) <= set(naive_stats)
        for key, (support, epsilon) in scpm_stats.items():
            assert naive_stats[key][0] == support
            assert naive_stats[key][1] == pytest.approx(epsilon)
        assert {r.attributes for r in scpm.qualified} == {
            r.attributes for r in naive.qualified
        }

    def test_epsilon_values_from_the_text(self, graph, example_scpm_params):
        result = SCPM(graph, example_scpm_params).mine()
        assert result.find(["A"]).epsilon == pytest.approx(9 / 11)
        assert result.find(["C"]).epsilon == 0.0
        assert result.find(["A", "B"]).epsilon == 1.0
        assert result.find(["B"]).epsilon == 1.0

    def test_supports_match_table1(self, graph, example_scpm_params):
        result = SCPM(graph, example_scpm_params).mine()
        assert result.find(["A"]).support == 11
        assert result.find(["B"]).support == 6
        assert result.find(["A", "B"]).support == 6

    def test_pattern_sizes_and_densities(self, graph, example_scpm_params):
        result = SCPM(graph, example_scpm_params).mine()
        rows = {
            (pattern.attributes, frozenset(pattern.vertices)): (
                pattern.size,
                round(pattern.gamma, 2),
            )
            for pattern in result.patterns
        }
        assert rows[(("A",), frozenset({6, 7, 8, 9, 10, 11}))] == (6, 0.6)
        assert rows[(("A",), frozenset({3, 4, 5, 6}))] == (4, 1.0)
        assert rows[(("A", "B"), frozenset({6, 7, 8, 9, 10, 11}))] == (6, 0.6)

    def test_qualified_attribute_sets(self, graph, example_scpm_params):
        result = SCPM(graph, example_scpm_params).mine()
        qualified = {r.attributes for r in result.qualified}
        assert qualified == {("A",), ("B",), ("A", "B")}

    def test_min_epsilon_excludes_low_correlation_sets(self, graph, example_scpm_params):
        result = SCPM(graph, example_scpm_params).mine()
        # C and D are frequent (support 3) but have epsilon 0 < 0.5
        for attrs in (("C",), ("D",)):
            record = result.find(attrs)
            assert record is not None
            assert not record.qualified

"""Unit tests for the null models (sim-exp, max-exp) and δ."""

import math

import pytest

from repro.correlation.null_models import (
    AnalyticalNullModel,
    SimulationNullModel,
    binomial_degree_probability,
    inclusion_probability,
    max_expected_epsilon,
    normalized_structural_correlation,
)
from repro.errors import ParameterError
from repro.graph.statistics import degree_distribution
from repro.quasiclique.definitions import QuasiCliqueParams


class TestTheorem1:
    def test_binomial_probability_matches_formula(self):
        # F(4, 2, 0.5) = C(4,2) 0.5^2 0.5^2 = 6/16
        assert binomial_degree_probability(4, 2, 0.5) == pytest.approx(6 / 16)

    def test_binomial_probability_out_of_range(self):
        assert binomial_degree_probability(3, 5, 0.5) == 0.0
        assert binomial_degree_probability(3, -1, 0.5) == 0.0

    def test_probabilities_sum_to_one(self):
        total = sum(binomial_degree_probability(5, beta, 0.3) for beta in range(6))
        assert total == pytest.approx(1.0)

    def test_inclusion_probability(self):
        assert inclusion_probability(5, 11) == pytest.approx(0.4)
        assert inclusion_probability(1, 11) == 0.0
        assert inclusion_probability(0, 11) == 0.0
        assert inclusion_probability(12, 11) == 1.0
        assert inclusion_probability(5, 1) == 0.0


class TestTheorem2:
    def test_zero_for_tiny_supports(self, example_graph):
        params = QuasiCliqueParams(gamma=0.6, min_size=4)
        distribution = degree_distribution(example_graph)
        assert max_expected_epsilon(distribution, 11, 0, params) == 0.0
        assert max_expected_epsilon(distribution, 11, 1, params) == 0.0

    def test_full_support_close_to_degree_mass(self, example_graph):
        # with sigma = |V| every vertex is kept, so the bound equals the
        # fraction of vertices with degree >= z
        params = QuasiCliqueParams(gamma=0.6, min_size=4)
        distribution = degree_distribution(example_graph)
        value = max_expected_epsilon(distribution, 11, 11, params)
        z = params.base_degree_threshold
        expected = sum(
            p for d, p in zip(distribution.degrees, distribution.probabilities) if d >= z
        )
        assert value == pytest.approx(expected)

    def test_monotone_in_support(self, example_graph):
        params = QuasiCliqueParams(gamma=0.6, min_size=4)
        model = AnalyticalNullModel(example_graph, params)
        values = [model.expected_epsilon(s) for s in range(2, 12)]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    def test_negative_support_rejected(self, example_graph):
        params = QuasiCliqueParams(gamma=0.6, min_size=4)
        distribution = degree_distribution(example_graph)
        with pytest.raises(ParameterError):
            max_expected_epsilon(distribution, 11, -1, params)

    def test_higher_min_size_lowers_the_bound(self, example_graph):
        distribution = degree_distribution(example_graph)
        loose = max_expected_epsilon(
            distribution, 11, 8, QuasiCliqueParams(gamma=0.5, min_size=3)
        )
        strict = max_expected_epsilon(
            distribution, 11, 8, QuasiCliqueParams(gamma=0.5, min_size=6)
        )
        assert strict <= loose

    def test_analytical_model_caches(self, example_graph):
        params = QuasiCliqueParams(gamma=0.6, min_size=4)
        model = AnalyticalNullModel(example_graph, params)
        assert model.expected_epsilon(6) == model.expected_epsilon(6)
        assert model.curve([3, 6]) == [(3, model.expected_epsilon(3)), (6, model.expected_epsilon(6))]


class TestSimulationModel:
    def test_invalid_runs(self, example_graph):
        params = QuasiCliqueParams(gamma=0.6, min_size=4)
        with pytest.raises(ParameterError):
            SimulationNullModel(example_graph, params, runs=0)

    def test_estimate_is_deterministic_for_fixed_seed(self, example_graph):
        params = QuasiCliqueParams(gamma=0.6, min_size=4)
        first = SimulationNullModel(example_graph, params, runs=10, seed=5).estimate(8)
        second = SimulationNullModel(example_graph, params, runs=10, seed=5).estimate(8)
        assert first == second

    def test_estimate_bounds(self, example_graph):
        params = QuasiCliqueParams(gamma=0.6, min_size=4)
        model = SimulationNullModel(example_graph, params, runs=20, seed=1)
        estimate = model.estimate(8)
        assert 0.0 <= estimate.mean <= 1.0
        assert estimate.std >= 0.0
        assert estimate.runs == 20

    def test_support_below_min_size_gives_zero(self, example_graph):
        params = QuasiCliqueParams(gamma=0.6, min_size=4)
        model = SimulationNullModel(example_graph, params, runs=5, seed=1)
        assert model.expected_epsilon(2) == 0.0

    def test_full_support_sample_equals_true_epsilon(self, example_graph):
        # sampling |V| vertices always selects the whole graph
        params = QuasiCliqueParams(gamma=0.6, min_size=4)
        model = SimulationNullModel(example_graph, params, runs=3, seed=1)
        assert model.expected_epsilon(11) == pytest.approx(9 / 11)

    def test_max_exp_upper_bounds_sim_exp(self, example_graph):
        params = QuasiCliqueParams(gamma=0.6, min_size=4)
        analytical = AnalyticalNullModel(example_graph, params)
        simulation = SimulationNullModel(example_graph, params, runs=30, seed=3)
        # supports well below |V| (where the binomial bound is loose) plus the
        # degenerate full-graph case; intermediate supports are exercised on
        # larger graphs by the Figure 4/7/9 benchmarks.
        for support in (4, 6, 11):
            assert analytical.expected_epsilon(support) >= simulation.expected_epsilon(
                support
            ) - 1e-9

    def test_curve(self, example_graph):
        params = QuasiCliqueParams(gamma=0.6, min_size=4)
        model = SimulationNullModel(example_graph, params, runs=5, seed=1)
        curve = model.curve([4, 8])
        assert [point.support for point in curve] == [4, 8]

    def test_out_of_range_support_is_cached(self, example_graph):
        """Regression: the cache key used the raw support while the store
        used the clamped one, so every out-of-range call re-ran the full
        Monte-Carlo estimate.  Clamping now happens before the lookup."""
        params = QuasiCliqueParams(gamma=0.6, min_size=4)
        model = SimulationNullModel(example_graph, params, runs=4, seed=2)
        first = model.estimate(10**6)
        searches_after_first = model.searches_run
        assert searches_after_first > 0
        second = model.estimate(10**6)
        assert model.searches_run == searches_after_first
        assert second is first
        # the clamped and the raw support share one cache entry
        assert model.estimate(example_graph.num_vertices) is first

    def test_negative_support_clamped_and_cached(self, example_graph):
        params = QuasiCliqueParams(gamma=0.6, min_size=4)
        model = SimulationNullModel(example_graph, params, runs=3, seed=2)
        assert model.estimate(-5) is model.estimate(0)
        assert model.expected_epsilon(-5) == 0.0

    def test_estimates_independent_of_evaluation_order(self, example_graph):
        """Per-support child seeds: the stream of one support value cannot
        be perturbed by estimates computed before it (the property the
        parallel schedules rely on)."""
        params = QuasiCliqueParams(gamma=0.6, min_size=4)
        forward = SimulationNullModel(example_graph, params, runs=8, seed=3)
        backward = SimulationNullModel(example_graph, params, runs=8, seed=3)
        forward_estimates = [forward.estimate(s) for s in (5, 6, 8)]
        backward_estimates = [backward.estimate(s) for s in (8, 6, 5)]
        assert forward_estimates == list(reversed(backward_estimates))

    def test_parallel_evaluation_matches_sequential(self, example_graph):
        params = QuasiCliqueParams(gamma=0.6, min_size=4)
        sequential = SimulationNullModel(example_graph, params, runs=8, seed=3)
        with SimulationNullModel(
            example_graph, params, runs=8, seed=3, n_jobs=3
        ) as parallel:
            for support in (5, 8, 11):
                assert parallel.estimate(support) == sequential.estimate(support)
        assert parallel._scheduler is None  # context exit released the pool

    def test_persistent_pool_reused_across_estimates(self, example_graph):
        params = QuasiCliqueParams(gamma=0.6, min_size=4)
        model = SimulationNullModel(
            example_graph, params, runs=4, seed=3, n_jobs=2
        )
        try:
            model.estimate(6)
            first = model._scheduler
            model.estimate(9)
            assert model._scheduler is first, "pool was rebuilt per support"
        finally:
            model.close()

    def test_reevaluation_after_cache_invalidation(self, example_graph):
        """Regression: scheduler keys are unique for the pool's lifetime,
        so re-materializing a support after a cache purge must use fresh
        (wave-namespaced) keys instead of raising a duplicate-key error."""
        params = QuasiCliqueParams(gamma=0.6, min_size=4)
        model = SimulationNullModel(
            example_graph, params, runs=3, seed=2, n_jobs=2
        )
        try:
            first = model.estimate(6)
            model._cache.clear()
            assert model.estimate(6) == first
        finally:
            model.close()

    def test_pickling_drops_the_live_pool(self, example_graph):
        import pickle

        params = QuasiCliqueParams(gamma=0.6, min_size=4)
        model = SimulationNullModel(
            example_graph, params, runs=4, seed=3, n_jobs=2
        )
        try:
            before = model.estimate(6)
            clone = pickle.loads(pickle.dumps(model))
            assert clone._scheduler is None
            assert clone.estimate(6) == before  # cache travels, pool does not
        finally:
            model.close()

    def test_invalid_n_jobs(self, example_graph):
        params = QuasiCliqueParams(gamma=0.6, min_size=4)
        with pytest.raises(ParameterError):
            SimulationNullModel(example_graph, params, n_jobs=0)
        with pytest.raises(ParameterError):
            SimulationNullModel(example_graph, params, n_jobs=-3)

    def test_runs_sequentially_inside_pool_workers(self, example_graph):
        """Nested pools are forbidden: a model with n_jobs > 1 evaluated
        *inside* a worker process must take the sequential path."""
        from repro.parallel import transfer

        params = QuasiCliqueParams(gamma=0.6, min_size=4)
        reference = SimulationNullModel(example_graph, params, runs=4, seed=9)
        nested = SimulationNullModel(
            example_graph, params, runs=4, seed=9, n_jobs=4
        )
        transfer._adopt("pretend this process is a pool worker")
        try:
            estimate = nested.estimate(8)
        finally:
            transfer.reset_worker_state()
        assert estimate == reference.estimate(8)

    def test_sample_payload_roundtrip(self, example_graph):
        """Worker payload of the parallel sampler: the vertex table is
        rebuilt lazily (and identically) after unpickling."""
        import pickle

        from repro.correlation.null_models import _SamplePayload

        params = QuasiCliqueParams(gamma=0.6, min_size=4)
        payload = _SamplePayload(example_graph, params, "dfs")
        clone = pickle.loads(pickle.dumps(payload))
        assert clone._vertices is None
        assert clone.vertices() == payload.vertices()

    def test_unseeded_model_is_self_consistent(self, example_graph):
        params = QuasiCliqueParams(gamma=0.6, min_size=4)
        model = SimulationNullModel(example_graph, params, runs=4, seed=None)
        model._cache.clear()
        again = model.estimate(8)
        model._cache.clear()
        assert model.estimate(8) == again


class TestDelta:
    def test_normalized_value(self):
        assert normalized_structural_correlation(0.4, 0.1) == pytest.approx(4.0)

    def test_zero_expectation_positive_epsilon(self):
        assert math.isinf(normalized_structural_correlation(0.2, 0.0))

    def test_zero_expectation_zero_epsilon(self):
        assert normalized_structural_correlation(0.0, 0.0) == 0.0

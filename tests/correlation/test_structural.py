"""Unit tests for structural correlation (ε) and pattern extraction."""

import pytest

from repro.correlation.structural import (
    all_patterns,
    coverage_search,
    structural_correlation,
    top_k_patterns,
)
from repro.quasiclique.definitions import QuasiCliqueParams
from repro.quasiclique.reference import brute_force_structural_correlation


class TestStructuralCorrelation:
    def test_epsilon_of_A(self, example_graph, example_qc_params):
        epsilon, covered = structural_correlation(example_graph, ["A"], example_qc_params)
        assert epsilon == pytest.approx(9 / 11)
        assert covered == frozenset(range(3, 12))

    def test_epsilon_of_C_is_zero(self, example_graph, example_qc_params):
        epsilon, covered = structural_correlation(example_graph, ["C"], example_qc_params)
        assert epsilon == 0.0
        assert covered == frozenset()

    def test_epsilon_of_AB_is_one(self, example_graph, example_qc_params):
        epsilon, covered = structural_correlation(
            example_graph, ["A", "B"], example_qc_params
        )
        assert epsilon == 1.0
        assert covered == frozenset({6, 7, 8, 9, 10, 11})

    def test_unknown_attribute_gives_zero(self, example_graph, example_qc_params):
        epsilon, covered = structural_correlation(
            example_graph, ["missing"], example_qc_params
        )
        assert epsilon == 0.0 and covered == frozenset()

    def test_matches_brute_force(self, example_graph, example_qc_params):
        for attributes in (["A"], ["B"], ["C"], ["D"], ["A", "B"], ["A", "C"]):
            expected = brute_force_structural_correlation(
                example_graph, attributes, example_qc_params
            )
            epsilon, _ = structural_correlation(
                example_graph, attributes, example_qc_params
            )
            assert epsilon == pytest.approx(expected)

    def test_candidate_restriction_theorem3(self, example_graph, example_qc_params):
        # restricting to the parents' covered set must not change epsilon when
        # the restriction is a superset of the true coverage
        epsilon_full, covered = structural_correlation(
            example_graph, ["A", "B"], example_qc_params
        )
        epsilon_restricted, _ = structural_correlation(
            example_graph,
            ["A", "B"],
            example_qc_params,
            candidate_vertices=frozenset(range(3, 12)),
        )
        assert epsilon_restricted == pytest.approx(epsilon_full)

    def test_candidate_restriction_can_zero_out(self, example_graph, example_qc_params):
        epsilon, covered = structural_correlation(
            example_graph, ["A"], example_qc_params, candidate_vertices=[1, 2]
        )
        assert epsilon == 0.0

    def test_coverage_search_exposes_stats(self, example_graph, example_qc_params):
        search = coverage_search(example_graph, ["A"], example_qc_params)
        search.covered_vertices()
        assert search.stats.satisfying_sets_found > 0


class TestPatternExtraction:
    def test_top_k_patterns_for_A(self, example_graph, example_qc_params):
        patterns = top_k_patterns(example_graph, ["A"], example_qc_params, k=10)
        assert len(patterns) == 5
        assert patterns[0].vertices == frozenset({6, 7, 8, 9, 10, 11})
        assert patterns[0].gamma == pytest.approx(0.6)
        assert patterns[1].vertices == frozenset({3, 4, 5, 6})
        assert patterns[1].gamma == pytest.approx(1.0)
        assert all(p.attributes == ("A",) for p in patterns)

    def test_top_k_limits_output(self, example_graph, example_qc_params):
        patterns = top_k_patterns(example_graph, ["A"], example_qc_params, k=2)
        assert len(patterns) == 2

    def test_top_k_patterns_empty_for_small_support(self, example_graph, example_qc_params):
        assert top_k_patterns(example_graph, ["E"], example_qc_params, k=3) == []

    def test_all_patterns_matches_table1_for_A(self, example_graph, example_qc_params):
        patterns = all_patterns(example_graph, ["A"], example_qc_params)
        vertex_sets = {p.vertices for p in patterns}
        assert vertex_sets == {
            frozenset({6, 7, 8, 9, 10, 11}),
            frozenset({3, 4, 5, 6}),
            frozenset({3, 4, 6, 7}),
            frozenset({3, 5, 6, 7}),
            frozenset({3, 6, 7, 8}),
        }

    def test_all_patterns_small_support(self, example_graph, example_qc_params):
        assert all_patterns(example_graph, ["C"], example_qc_params) == []

    def test_pattern_gamma_values(self, example_graph, example_qc_params):
        patterns = all_patterns(example_graph, ["A"], example_qc_params)
        by_vertices = {p.vertices: p.gamma for p in patterns}
        assert by_vertices[frozenset({3, 4, 6, 7})] == pytest.approx(2 / 3)
        assert by_vertices[frozenset({6, 7, 8, 9, 10, 11})] == pytest.approx(0.6)

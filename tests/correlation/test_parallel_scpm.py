"""Determinism and correctness of the ``n_jobs`` attribute-branch fan-out.

The contract: for any worker count, the merged :class:`MiningResult` —
including the *order* of the evaluation records and every work counter —
is identical to the sequential run (with the default analytical null
model, whose ``expected_epsilon`` is a pure function of the support).
"""

import pytest

from repro.correlation.parameters import SCPMParams
from repro.correlation.scpm import SCPM, mine_scpm
from repro.datasets.example import paper_example_graph
from repro.datasets.synthetic import CommunitySpec, SyntheticSpec, generate
from repro.errors import ParameterError

PARAMS = SCPMParams(
    min_support=3, gamma=0.6, min_size=3, min_epsilon=0.1, top_k=5
)


def community_graph():
    return generate(
        SyntheticSpec(
            num_vertices=80,
            background_degree=3.0,
            vocabulary_size=10,
            attributes_per_vertex=2.0,
            communities=(
                CommunitySpec(attributes=("t0",), size=8, density=0.9),
                CommunitySpec(attributes=("t1",), size=7, density=0.9),
                CommunitySpec(
                    attributes=("t2", "t3"), size=6, density=0.95, noise_carriers=2
                ),
            ),
            seed=13,
        )
    )


def counters_tuple(result):
    c = result.counters
    return (
        c.attribute_sets_evaluated,
        c.attribute_sets_qualified,
        c.attribute_sets_extended,
        c.attribute_sets_pruned,
        c.coverage_nodes_expanded,
        c.pattern_nodes_expanded,
    )


class TestParallelDeterminism:
    def test_n_jobs_validation(self):
        with pytest.raises(ParameterError):
            SCPMParams(min_support=2, gamma=0.5, min_size=3, n_jobs=0)
        with pytest.raises(ParameterError):
            SCPMParams(min_support=2, gamma=0.5, min_size=3, n_jobs=-2)
        assert SCPMParams(min_support=2, gamma=0.5, min_size=3, n_jobs=-1).resolved_jobs() >= 1
        assert SCPMParams(min_support=2, gamma=0.5, min_size=3, n_jobs=4).resolved_jobs() == 4

    @pytest.mark.parametrize("n_jobs", [2, 3, -1])
    def test_paper_example_identical_for_any_worker_count(self, n_jobs):
        graph = paper_example_graph()
        params = SCPMParams(
            min_support=3, gamma=0.6, min_size=4, min_epsilon=0.5, top_k=10
        )
        sequential = SCPM(graph, params).mine()
        parallel = SCPM(graph, params.with_changes(n_jobs=n_jobs)).mine()
        assert parallel.evaluated == sequential.evaluated
        assert counters_tuple(parallel) == counters_tuple(sequential)
        assert parallel.algorithm == sequential.algorithm

    def test_synthetic_graph_identical_across_worker_counts(self):
        graph = community_graph()
        sequential = mine_scpm(graph, PARAMS)
        results = [
            mine_scpm(graph, PARAMS.with_changes(n_jobs=jobs)) for jobs in (2, 4)
        ]
        for parallel in results:
            # full record equality, order included
            assert parallel.evaluated == sequential.evaluated
            assert counters_tuple(parallel) == counters_tuple(sequential)

    def test_parallel_without_patterns(self):
        graph = community_graph()
        sequential = SCPM(graph, PARAMS, collect_patterns=False).mine()
        parallel = SCPM(
            graph, PARAMS.with_changes(n_jobs=2), collect_patterns=False
        ).mine()
        assert parallel.evaluated == sequential.evaluated

    def test_single_branch_falls_back_to_sequential(self):
        # a graph with one frequent attribute → nothing to fan out
        graph = paper_example_graph()
        params = SCPMParams(
            min_support=9, gamma=0.6, min_size=4, n_jobs=4
        )
        result = SCPM(graph, params).mine()
        sequential = SCPM(graph, params.with_changes(n_jobs=1)).mine()
        assert result.evaluated == sequential.evaluated

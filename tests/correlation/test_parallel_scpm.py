"""Determinism and correctness of the ``n_jobs`` attribute-branch fan-out.

The contract: for any worker count, either schedule (``stripe``/``steal``),
any fan-out depth and both vertex-set engines, the merged
:class:`MiningResult` — including the *order* of the evaluation records and
every work counter — is byte-identical to the sequential run.  Both
bundled null models qualify: the analytical model is closed-form and the
simulation model derives a per-support child seed.
"""

import pytest

from repro.correlation.null_models import SimulationNullModel
from repro.correlation.parameters import SCPMParams
from repro.correlation.scpm import SCPM, mine_scpm
from repro.datasets.example import paper_example_graph
from repro.datasets.synthetic import CommunitySpec, SyntheticSpec, generate
from repro.errors import ParameterError

PARAMS = SCPMParams(
    min_support=3, gamma=0.6, min_size=3, min_epsilon=0.1, top_k=5
)


def canonical_bytes(result):
    """Deterministic byte serialization of a MiningResult.

    Neither ``pickle.dumps`` of the raw result (frozenset iteration order
    varies, and pickle memoizes by object *identity*, which differs between
    parent-built and worker-rebuilt records) nor record equality alone is a
    byte-level check, so records are flattened into sorted value tuples and
    rendered with ``repr``: equal mined output ⇔ equal bytes.
    """
    def canon_record(r):
        return (
            r.attributes,
            r.support,
            r.epsilon,
            r.expected_epsilon,
            r.delta,
            tuple(sorted(map(repr, r.covered_vertices))),
            tuple(
                (p.attributes, tuple(sorted(map(repr, p.vertices))), p.gamma)
                for p in r.patterns
            ),
            r.qualified,
        )

    c = result.counters
    payload = (
        result.algorithm,
        tuple(canon_record(r) for r in result.evaluated),
        (
            c.attribute_sets_evaluated,
            c.attribute_sets_qualified,
            c.attribute_sets_extended,
            c.attribute_sets_pruned,
            c.coverage_nodes_expanded,
            c.pattern_nodes_expanded,
        ),
    )
    return repr(payload).encode("utf-8")


def community_graph():
    return generate(
        SyntheticSpec(
            num_vertices=80,
            background_degree=3.0,
            vocabulary_size=10,
            attributes_per_vertex=2.0,
            communities=(
                CommunitySpec(attributes=("t0",), size=8, density=0.9),
                CommunitySpec(attributes=("t1",), size=7, density=0.9),
                CommunitySpec(
                    attributes=("t2", "t3"), size=6, density=0.95, noise_carriers=2
                ),
            ),
            seed=13,
        )
    )


def counters_tuple(result):
    c = result.counters
    return (
        c.attribute_sets_evaluated,
        c.attribute_sets_qualified,
        c.attribute_sets_extended,
        c.attribute_sets_pruned,
        c.coverage_nodes_expanded,
        c.pattern_nodes_expanded,
    )


class TestParallelDeterminism:
    def test_n_jobs_validation(self):
        with pytest.raises(ParameterError):
            SCPMParams(min_support=2, gamma=0.5, min_size=3, n_jobs=0)
        with pytest.raises(ParameterError):
            SCPMParams(min_support=2, gamma=0.5, min_size=3, n_jobs=-2)
        assert SCPMParams(min_support=2, gamma=0.5, min_size=3, n_jobs=-1).resolved_jobs() >= 1
        assert SCPMParams(min_support=2, gamma=0.5, min_size=3, n_jobs=4).resolved_jobs() == 4

    @pytest.mark.parametrize("n_jobs", [2, 3, -1])
    def test_paper_example_identical_for_any_worker_count(self, n_jobs):
        graph = paper_example_graph()
        params = SCPMParams(
            min_support=3, gamma=0.6, min_size=4, min_epsilon=0.5, top_k=10
        )
        sequential = SCPM(graph, params).mine()
        parallel = SCPM(graph, params.with_changes(n_jobs=n_jobs)).mine()
        assert parallel.evaluated == sequential.evaluated
        assert counters_tuple(parallel) == counters_tuple(sequential)
        assert parallel.algorithm == sequential.algorithm

    def test_synthetic_graph_identical_across_worker_counts(self):
        graph = community_graph()
        sequential = mine_scpm(graph, PARAMS)
        results = [
            mine_scpm(graph, PARAMS.with_changes(n_jobs=jobs)) for jobs in (2, 4)
        ]
        for parallel in results:
            # full record equality, order included
            assert parallel.evaluated == sequential.evaluated
            assert counters_tuple(parallel) == counters_tuple(sequential)

    def test_parallel_without_patterns(self):
        graph = community_graph()
        sequential = SCPM(graph, PARAMS, collect_patterns=False).mine()
        parallel = SCPM(
            graph, PARAMS.with_changes(n_jobs=2), collect_patterns=False
        ).mine()
        assert parallel.evaluated == sequential.evaluated

    def test_single_branch_falls_back_to_sequential(self):
        # a graph with one frequent attribute → nothing to fan out
        graph = paper_example_graph()
        params = SCPMParams(
            min_support=9, gamma=0.6, min_size=4, n_jobs=4
        )
        result = SCPM(graph, params).mine()
        sequential = SCPM(graph, params.with_changes(n_jobs=1)).mine()
        assert result.evaluated == sequential.evaluated


class TestSchedulerDeterminism:
    """Byte-identical output across the full scheduling parameter grid."""

    def test_schedule_validation(self):
        with pytest.raises(ParameterError):
            SCPMParams(min_support=2, gamma=0.5, min_size=3, schedule="lifo")
        with pytest.raises(ParameterError):
            SCPMParams(min_support=2, gamma=0.5, min_size=3, fanout_depth=3)
        with pytest.raises(ParameterError):
            SCPMParams(min_support=2, gamma=0.5, min_size=3, task_batch_size=0)
        with pytest.raises(ParameterError):
            SCPMParams(min_support=2, gamma=0.5, min_size=3, transfer="carrier-pigeon")

    @pytest.mark.parametrize("engine", ["dense", "sparse"])
    @pytest.mark.parametrize("schedule", ["stripe", "steal"])
    @pytest.mark.parametrize("n_jobs", [1, 2, 4])
    def test_byte_identical_across_jobs_schedule_engine(
        self, community_reference, n_jobs, schedule, engine
    ):
        graph, reference = community_reference
        params = PARAMS.with_changes(
            n_jobs=n_jobs, schedule=schedule, engine=engine
        )
        assert canonical_bytes(mine_scpm(graph, params)) == reference

    @pytest.mark.parametrize("fanout_depth", [1, 2])
    def test_fanout_depth_preserves_output(self, community_reference, fanout_depth):
        graph, reference = community_reference
        params = PARAMS.with_changes(
            n_jobs=3, schedule="steal", fanout_depth=fanout_depth
        )
        assert canonical_bytes(mine_scpm(graph, params)) == reference

    def test_tiny_task_batches_preserve_output(self, community_reference):
        graph, reference = community_reference
        params = PARAMS.with_changes(n_jobs=2, schedule="steal", task_batch_size=1)
        assert canonical_bytes(mine_scpm(graph, params)) == reference

    @pytest.mark.parametrize("transfer", ["fork", "shared_memory", "pickle"])
    def test_transfer_strategies_preserve_output(
        self, community_reference, transfer
    ):
        import multiprocessing

        if transfer == "fork" and "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        graph, reference = community_reference
        params = PARAMS.with_changes(n_jobs=2, schedule="steal", transfer=transfer)
        assert canonical_bytes(mine_scpm(graph, params)) == reference

    @pytest.mark.parametrize("schedule", ["stripe", "steal"])
    def test_pool_unavailable_runs_tasks_in_process(
        self, community_reference, monkeypatch, schedule
    ):
        """Without usable multiprocessing the scheduler executes the same
        branch tasks in-process and the output is still byte-identical."""
        import concurrent.futures

        def _broken_pool(*args, **kwargs):
            raise OSError("no process support")

        monkeypatch.setattr(
            concurrent.futures, "ProcessPoolExecutor", _broken_pool
        )
        graph, reference = community_reference
        params = PARAMS.with_changes(n_jobs=4, schedule=schedule)
        miner = SCPM(graph, params)
        assert canonical_bytes(miner.mine()) == reference
        assert miner.last_scheduler_stats.workers == 1

    def test_simulation_null_model_deterministic_under_steal(self):
        """The PR-1 caveat is gone: sim-exp draws per-support child seeds,
        so the Monte-Carlo model mines identically under any schedule."""
        graph = paper_example_graph()
        params = SCPMParams(
            min_support=3, gamma=0.6, min_size=4, min_epsilon=0.3, top_k=5
        )

        def model():
            return SimulationNullModel(
                graph, params.quasi_clique_params(), runs=6, seed=11
            )

        sequential = SCPM(graph, params, null_model=model()).mine()
        for schedule in ("stripe", "steal"):
            parallel = SCPM(
                graph,
                params.with_changes(n_jobs=3, schedule=schedule),
                null_model=model(),
            ).mine()
            assert canonical_bytes(parallel) == canonical_bytes(sequential)


class TestBranchPayload:
    """The transfer payload itself, driven in this process (workers
    normally rebuild it in children, unseen by the coverage gate)."""

    def _payload(self, graph):
        from repro.correlation.scpm import SCPM, _BranchPayload

        miner = SCPM(graph, PARAMS)
        return _BranchPayload(
            graph=graph,
            params=PARAMS,
            null_model=miner.null_model,
            collect_patterns=True,
            candidate_states=[],
        )

    def test_roundtrip_rebuilds_context_lazily(self):
        import pickle

        graph = paper_example_graph()
        payload = self._payload(graph)
        clone = pickle.loads(pickle.dumps(payload))
        assert clone._context is None
        context = clone.context()
        assert clone.context() is context  # built once per process
        miner, candidates, index = context
        assert candidates == []
        assert index.indexer is clone.graph.bitset_index(PARAMS.engine).indexer

    def test_unknown_task_kind_rejected(self):
        from repro.correlation.scpm import _branch_task
        from repro.errors import ParallelError

        payload = self._payload(paper_example_graph())
        with pytest.raises(ParallelError):
            _branch_task(payload, "teleport")


@pytest.fixture(scope="module")
def community_reference():
    """The synthetic community graph plus its sequential reference bytes."""
    graph = community_graph()
    reference = canonical_bytes(mine_scpm(graph, PARAMS))
    return graph, reference

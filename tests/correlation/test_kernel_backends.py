"""SCPM-level differential suite for the kernel counter-lane backends.

The mined output of a run must be byte-identical whichever kernel backend
(``bigint`` big-int SWAR lanes or ``numpy`` vectorized lanes) drives the
quasi-clique searches — across both vertex-set engines, sequential and
parallel schedules, and γ on both sides of the 0.5 diameter-bound
boundary.  ``MiningResult.fingerprint()`` is the comparison: record
order, supports, ε/δ floats, covered sets and patterns included.

Also pinned here: the ``MiningCounters.kernel_backends`` attribution
vocabulary (searches tallied per backend label), its serialization
round-trip, and the parallel merge of the per-task tallies.
"""

import pytest

from repro.correlation.naive import mine_naive
from repro.correlation.parameters import SCPMParams
from repro.correlation.patterns import MiningCounters
from repro.correlation.scpm import _accumulate_counters, mine_scpm
from repro.datasets.synthetic import CommunitySpec, SyntheticSpec, generate
from repro.errors import ParameterError
from repro.quasiclique.kernel import numpy_available

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="backend differential needs numpy"
)


def community_graph():
    return generate(
        SyntheticSpec(
            num_vertices=60,
            background_degree=2.5,
            vocabulary_size=8,
            attributes_per_vertex=0.6,
            communities=tuple(
                CommunitySpec(attributes=(f"c{j}",), size=12, density=0.7)
                for j in range(3)
            ),
            seed=11,
        )
    )


def params_with(backend, gamma=0.45, n_jobs=1, schedule="steal", engine="auto"):
    return SCPMParams(
        min_support=5,
        gamma=gamma,
        min_size=3,
        min_epsilon=0.1,
        top_k=5,
        engine=engine,
        kernel_backend=backend,
        n_jobs=n_jobs,
        schedule=schedule,
    )


class TestByteIdentity:
    @pytest.mark.parametrize("gamma", (0.45, 0.6))
    @pytest.mark.parametrize("engine", ("dense", "sparse"))
    def test_scpm_identical_across_backends(self, gamma, engine):
        graph = community_graph()
        fingerprints = {
            backend: mine_scpm(
                graph, params_with(backend, gamma=gamma, engine=engine)
            ).fingerprint()
            for backend in ("bigint", "numpy", "auto")
        }
        assert fingerprints["numpy"] == fingerprints["bigint"]
        assert fingerprints["auto"] == fingerprints["bigint"]

    @pytest.mark.parametrize("schedule", ("steal", "stripe"))
    def test_parallel_scpm_identical_across_backends(self, schedule):
        graph = community_graph()
        reference = mine_scpm(graph, params_with("bigint")).fingerprint()
        for backend in ("bigint", "numpy"):
            parallel = mine_scpm(
                graph, params_with(backend, n_jobs=2, schedule=schedule)
            )
            assert parallel.fingerprint() == reference

    def test_naive_identical_across_backends(self):
        graph = community_graph()
        fingerprints = [
            mine_naive(graph, params_with(backend)).fingerprint()
            for backend in ("bigint", "numpy")
        ]
        assert fingerprints[0] == fingerprints[1]

    def test_unknown_backend_rejected_at_params(self):
        with pytest.raises(ParameterError):
            params_with("cython")


class TestBackendAttribution:
    def test_backend_tally_labels(self):
        graph = community_graph()
        bigint_run = mine_scpm(graph, params_with("bigint"))
        assert set(bigint_run.counters.kernel_backends) == {"bigint"}
        numpy_run = mine_scpm(graph, params_with("numpy"))
        # 60-vertex working sets fit uint8 lanes
        assert set(numpy_run.counters.kernel_backends) == {"numpy(uint8)"}
        assert (
            sum(numpy_run.counters.kernel_backends.values())
            == sum(bigint_run.counters.kernel_backends.values())
            > 0
        )

    def test_parallel_tally_merges_across_tasks(self):
        graph = community_graph()
        sequential = mine_scpm(graph, params_with("numpy"))
        parallel = mine_scpm(graph, params_with("numpy", n_jobs=2))
        assert parallel.counters.kernel_backends == (
            sequential.counters.kernel_backends
        )

    def test_counters_dict_round_trip(self):
        counters = MiningCounters(
            kernel_counter_updates=7,
            kernel_backends={"bigint": 2, "numpy(uint16)": 3},
        )
        data = counters.to_dict()
        assert data["kernel_backends"] == {"bigint": 2, "numpy(uint16)": 3}
        rebuilt = MiningCounters.from_dict(data)
        assert rebuilt == counters
        assert rebuilt.kernel_backends is not counters.kernel_backends

    def test_accumulate_merges_backend_tallies(self):
        target = MiningCounters(kernel_backends={"bigint": 1, "numpy(uint8)": 2})
        source = MiningCounters(
            kernel_backends={"numpy(uint8)": 3, "numpy(uint16)": 4},
            kernel_counter_updates=5,
        )
        _accumulate_counters(target, source)
        assert target.kernel_backends == {
            "bigint": 1,
            "numpy(uint8)": 5,
            "numpy(uint16)": 4,
        }
        assert target.kernel_counter_updates == 5

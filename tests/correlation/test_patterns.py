"""Unit tests for the result containers and ranking helpers."""

import pytest

from repro.correlation.patterns import (
    AttributeSetResult,
    MiningResult,
    StructuralCorrelationPattern,
)


def make_result(label, support, epsilon, delta, size=1, qualified=True, patterns=()):
    return AttributeSetResult(
        attributes=tuple(label.split()),
        support=support,
        epsilon=epsilon,
        expected_epsilon=epsilon / delta if delta else 0.0,
        delta=delta,
        covered_vertices=frozenset(range(int(support * epsilon))),
        patterns=patterns,
        qualified=qualified,
    )


@pytest.fixture
def mining_result():
    result = MiningResult(algorithm="test")
    result.evaluated.extend(
        [
            make_result("base", 100, 0.05, 0.5),
            make_result("grid applic", 40, 0.30, 50.0),
            make_result("search rank", 30, 0.25, 80.0),
            make_result("base system", 90, 0.02, 0.2, qualified=False),
        ]
    )
    return result


class TestPattern:
    def test_properties(self):
        pattern = StructuralCorrelationPattern(
            attributes=("a", "b"), vertices=frozenset({1, 2, 3}), gamma=0.8
        )
        assert pattern.size == 3
        assert pattern.sort_key() == (3, 0.8)
        assert "gamma=0.80" in str(pattern)


class TestAttributeSetResult:
    def test_properties(self):
        record = make_result("grid applic", 40, 0.5, 10.0)
        assert record.size == 2
        assert record.num_covered == 20
        assert record.label() == "grid applic"


class TestMiningResult:
    def test_qualified_filter(self, mining_result):
        assert len(mining_result.qualified) == 3

    def test_top_by_support(self, mining_result):
        rows = mining_result.top_by_support(2)
        assert [r.label() for r in rows] == ["base", "base system"]

    def test_top_by_epsilon(self, mining_result):
        rows = mining_result.top_by_epsilon(2)
        assert [r.label() for r in rows] == ["grid applic", "search rank"]

    def test_top_by_delta(self, mining_result):
        rows = mining_result.top_by_delta(2)
        assert [r.label() for r in rows] == ["search rank", "grid applic"]

    def test_min_set_size_filter(self, mining_result):
        rows = mining_result.top_by_support(10, min_set_size=2)
        assert all(r.size >= 2 for r in rows)
        assert [r.label() for r in rows][0] == "base system"

    def test_find(self, mining_result):
        assert mining_result.find(["applic", "grid"]).support == 40
        assert mining_result.find(["nope"]) is None

    def test_average_epsilon(self, mining_result):
        expected = (0.05 + 0.30 + 0.25 + 0.02) / 4
        assert mining_result.average_epsilon() == pytest.approx(expected)

    def test_average_epsilon_top_fraction(self, mining_result):
        # top 50% of 4 values -> two best epsilons
        assert mining_result.average_epsilon(0.5) == pytest.approx((0.30 + 0.25) / 2)

    def test_average_delta_ignores_infinities(self):
        result = MiningResult(algorithm="test")
        result.evaluated.append(make_result("a", 10, 0.5, float("inf")))
        result.evaluated.append(make_result("b", 10, 0.5, 2.0))
        assert result.average_delta() == pytest.approx(2.0)

    def test_average_with_invalid_fraction(self, mining_result):
        with pytest.raises(ValueError):
            mining_result.average_epsilon(0.0)

    def test_averages_on_empty_result(self):
        empty = MiningResult(algorithm="test")
        assert empty.average_epsilon() == 0.0
        assert empty.average_delta() == 0.0

    def test_patterns_and_top_patterns(self):
        result = MiningResult(algorithm="test")
        pattern_big = StructuralCorrelationPattern(("a",), frozenset({1, 2, 3, 4}), 0.9)
        pattern_small = StructuralCorrelationPattern(("b",), frozenset({1, 2, 3}), 1.0)
        result.evaluated.append(
            make_result("a", 10, 0.5, 2.0, patterns=(pattern_big,))
        )
        result.evaluated.append(
            make_result("b", 10, 0.5, 2.0, patterns=(pattern_small,))
        )
        assert len(result.patterns) == 2
        assert result.top_patterns(1) == [pattern_big]

"""Coverage-memo differential suite: memo-on vs memo-off byte-identity.

The :class:`~repro.quasiclique.memo.CoverageMemo` may only ever change
*when* a coverage result is computed, never *what* it is: SCPM with the
memo enabled (the default) must produce byte-identical
``MiningResult`` records to a memo-less run across engines × schedules ×
worker counts, and the :class:`SimulationNullModel` estimates must be
unchanged.  Seeds are fixed so failures replay; CI appends one more seed
through ``REPRO_FUZZ_SEED``, like the other differential suites.
"""

import os

import pytest

from repro.correlation.null_models import SimulationNullModel
from repro.correlation.parameters import SCPMParams
from repro.correlation.scpm import SCPM
from repro.datasets.synthetic import random_attributed_graph
from repro.quasiclique.definitions import QuasiCliqueParams
from repro.quasiclique.memo import CoverageMemo

BASE_SEEDS = (11, 29)

PARAMS = SCPMParams(
    min_support=3, gamma=0.6, min_size=3, min_epsilon=0.1, top_k=4
)


def fuzz_seeds():
    seeds = list(BASE_SEEDS)
    extra = os.environ.get("REPRO_FUZZ_SEED")
    if extra is not None:
        seeds.append(int(extra))
    return seeds


def fuzz_graph(seed, num_vertices=22, edge_probability=0.35):
    return random_attributed_graph(
        num_vertices=num_vertices,
        edge_probability=edge_probability,
        attributes=["a", "b", "c", "d"],
        attribute_probability=0.5,
        seed=seed * 613 + num_vertices,
    )


def mining_fingerprint(result):
    """Every observable record field, bit-for-bit comparable."""
    return [
        (
            r.attributes,
            r.support,
            r.epsilon,
            r.expected_epsilon,
            r.delta,
            r.covered_vertices,
            r.qualified,
            tuple((p.attributes, p.vertices, p.gamma) for p in r.patterns),
        )
        for r in result.evaluated
    ]


# ----------------------------------------------------------------------
# unit behaviour
# ----------------------------------------------------------------------
class TestCoverageMemo:
    def test_miss_then_hit(self):
        memo = CoverageMemo()
        key = memo.key(0b111, 0.6, 3)
        assert memo.get(key) is None
        memo.put(key, 0b101)
        assert memo.get(key) == 0b101
        assert (memo.hits, memo.misses) == (1, 1)
        assert len(memo) == 1

    def test_empty_covered_set_is_a_hit(self):
        # 0 (an empty native) must not be confused with "absent"
        memo = CoverageMemo()
        key = memo.key(0b11, 0.9, 2)
        memo.put(key, 0)
        assert memo.get(key) == 0
        assert memo.hits == 1

    def test_keys_distinguish_parameters(self):
        memo = CoverageMemo()
        memo.put(memo.key(0b111, 0.6, 3), 0b111)
        assert memo.get(memo.key(0b111, 0.6, 4)) is None
        assert memo.get(memo.key(0b111, 0.7, 3)) is None
        assert memo.get(memo.key(0b110, 0.6, 3)) is None

    def test_snapshot_and_local_reset(self):
        memo = CoverageMemo()
        memo.put(memo.key(0b1, 0.5, 2), 0b1)
        worker = CoverageMemo(shared=memo.snapshot())
        worker.put(worker.key(0b10, 0.5, 2), 0b10)
        assert len(worker) == 2
        worker.reset_local()
        assert len(worker) == 1  # the shared layer survives
        assert worker.get(worker.key(0b1, 0.5, 2)) == 0b1
        assert worker.get(worker.key(0b10, 0.5, 2)) is None
        assert "entries=1" in repr(worker)


# ----------------------------------------------------------------------
# SCPM: memo-on vs memo-off byte identity across the execution grid
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", fuzz_seeds())
@pytest.mark.parametrize("engine", ["dense", "sparse"])
def test_scpm_memo_on_off_byte_identical(seed, engine):
    graph = fuzz_graph(seed)
    off = SCPM(graph, PARAMS.with_changes(engine=engine, coverage_memo=False)).mine()
    on_miner = SCPM(graph, PARAMS.with_changes(engine=engine, coverage_memo=True))
    on = on_miner.mine()
    assert mining_fingerprint(on) == mining_fingerprint(off)
    assert off.counters.coverage_memo_hits == 0
    assert off.counters.coverage_memo_misses == 0
    assert (
        on.counters.coverage_memo_hits + on.counters.coverage_memo_misses
        == len(on_miner.coverage_memo) + on.counters.coverage_memo_hits
    )


@pytest.mark.parametrize("seed", fuzz_seeds())
@pytest.mark.parametrize("n_jobs,schedule,fanout_depth", [
    (2, "steal", 2),
    (2, "steal", 1),
    (2, "stripe", 2),
])
def test_scpm_memo_parallel_byte_identical(seed, n_jobs, schedule, fanout_depth):
    graph = fuzz_graph(seed)
    sequential_off = SCPM(
        graph, PARAMS.with_changes(coverage_memo=False)
    ).mine()
    for coverage_memo in (False, True):
        parallel = SCPM(
            graph,
            PARAMS.with_changes(
                coverage_memo=coverage_memo,
                n_jobs=n_jobs,
                schedule=schedule,
                fanout_depth=fanout_depth,
            ),
        ).mine()
        assert mining_fingerprint(parallel) == mining_fingerprint(sequential_off)


def test_scpm_memo_hits_on_sibling_collisions():
    # Two attributes carried by the same vertices induce identical working
    # sets at every lattice level — the memo must collapse the repeats.
    graph = fuzz_graph(7, num_vertices=18, edge_probability=0.45)
    for vertex in graph.vertices_with("a"):
        graph.add_attribute(vertex, "twin")
    miner = SCPM(graph, PARAMS)
    result = miner.mine()
    assert result.counters.coverage_memo_hits > 0
    assert miner.coverage_memo.hits == result.counters.coverage_memo_hits


# ----------------------------------------------------------------------
# SimulationNullModel
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", fuzz_seeds())
def test_null_model_memo_estimates_identical(seed):
    graph = fuzz_graph(seed, num_vertices=16, edge_probability=0.4)
    params = QuasiCliqueParams(gamma=0.6, min_size=3)
    supports = [4, 7, 16, 20]
    with SimulationNullModel(
        graph, params, runs=6, seed=5, use_coverage_memo=False
    ) as plain:
        expected = [plain.estimate(s) for s in supports]
    with SimulationNullModel(
        graph, params, runs=6, seed=5, use_coverage_memo=True
    ) as memoised:
        observed = [memoised.estimate(s) for s in supports]
        assert observed == expected
        assert memoised.coverage_memo is not None
        # σ clamped at |V| draws the identical sample every run: all but
        # the first of the 6 draws must hit the memo.
        assert memoised.coverage_memo.hits >= 5
    assert plain.coverage_memo is None

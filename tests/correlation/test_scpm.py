"""Unit tests for the SCPM algorithm beyond the paper example."""

import pytest

from repro.correlation.naive import NaiveMiner
from repro.correlation.null_models import SimulationNullModel
from repro.correlation.parameters import SCPMParams
from repro.correlation.scpm import SCPM, mine_scpm
from repro.datasets.synthetic import CommunitySpec, SyntheticSpec, generate
from repro.quasiclique.search import BFS, DFS


@pytest.fixture(scope="module")
def planted_graph():
    """A small synthetic graph with one strong planted community."""
    spec = SyntheticSpec(
        num_vertices=120,
        background_degree=2.0,
        vocabulary_size=20,
        zipf_exponent=1.0,
        attributes_per_vertex=2.0,
        communities=(
            CommunitySpec(("topic", "hot"), size=8, density=0.95, noise_carriers=10),
        ),
        popular_attributes=("generic",),
        popular_fraction=0.4,
        seed=5,
    )
    return generate(spec)


@pytest.fixture
def planted_params():
    return SCPMParams(
        min_support=8,
        gamma=0.5,
        min_size=4,
        min_epsilon=0.1,
        min_delta=1.0,
        top_k=3,
        max_attribute_set_size=2,
    )


class TestSCPMOnPlantedData:
    def test_planted_topic_is_found(self, planted_graph, planted_params):
        result = SCPM(planted_graph, planted_params).mine()
        record = result.find(["hot", "topic"])
        assert record is not None
        assert record.qualified
        assert record.epsilon >= 8 / 18 - 1e-9
        assert record.delta > 1.0
        assert record.patterns  # at least one pattern extracted

    def test_planted_pattern_contains_community(self, planted_graph, planted_params):
        result = SCPM(planted_graph, planted_params).mine()
        record = result.find(["hot", "topic"])
        biggest = max(record.patterns, key=lambda p: p.size)
        assert biggest.size >= planted_params.min_size
        assert biggest.vertices <= record.covered_vertices

    def test_generic_attribute_has_low_delta(self, planted_graph, planted_params):
        result = SCPM(
            planted_graph, planted_params.with_changes(min_epsilon=0.0, min_delta=0.0)
        ).mine()
        generic = result.find(["generic"])
        topic = result.find(["hot", "topic"])
        assert generic is not None and topic is not None
        assert topic.delta > generic.delta

    def test_bfs_and_dfs_agree(self, planted_graph, planted_params):
        dfs = SCPM(planted_graph, planted_params.with_changes(order=DFS)).mine()
        bfs = SCPM(planted_graph, planted_params.with_changes(order=BFS)).mine()
        dfs_stats = {r.attributes: (r.support, pytest.approx(r.epsilon)) for r in dfs.evaluated}
        bfs_stats = {r.attributes: (r.support, r.epsilon) for r in bfs.evaluated}
        assert set(dfs_stats) == set(bfs_stats)
        for key, value in bfs_stats.items():
            assert dfs_stats[key][1] == value[1]

    def test_agrees_with_naive_on_qualified_sets(self, planted_graph, planted_params):
        scpm = SCPM(planted_graph, planted_params).mine()
        naive = NaiveMiner(planted_graph, planted_params).mine()
        scpm_qualified = {r.attributes: r.epsilon for r in scpm.qualified}
        naive_qualified = {r.attributes: r.epsilon for r in naive.qualified}
        assert set(scpm_qualified) == set(naive_qualified)
        for key, epsilon in naive_qualified.items():
            assert scpm_qualified[key] == pytest.approx(epsilon)

    def test_collect_patterns_false_skips_patterns(self, planted_graph, planted_params):
        result = SCPM(planted_graph, planted_params, collect_patterns=False).mine()
        assert result.patterns == []
        assert result.counters.attribute_sets_evaluated > 0

    def test_simulation_null_model_can_be_plugged_in(self, planted_graph, planted_params):
        model = SimulationNullModel(
            planted_graph, planted_params.quasi_clique_params(), runs=3, seed=1
        )
        result = SCPM(planted_graph, planted_params, null_model=model).mine()
        assert result.find(["hot", "topic"]) is not None

    def test_mine_scpm_wrapper(self, planted_graph, planted_params):
        result = mine_scpm(planted_graph, planted_params)
        assert result.algorithm == "scpm-dfs"


class TestPruningBehaviour:
    def test_min_support_limits_evaluations(self, planted_graph, planted_params):
        low = SCPM(planted_graph, planted_params.with_changes(min_support=8)).mine()
        high = SCPM(planted_graph, planted_params.with_changes(min_support=40)).mine()
        assert (
            high.counters.attribute_sets_evaluated
            <= low.counters.attribute_sets_evaluated
        )

    def test_higher_epsilon_threshold_prunes_more(self, planted_graph, planted_params):
        lenient = SCPM(
            planted_graph, planted_params.with_changes(min_epsilon=0.0)
        ).mine()
        strict = SCPM(
            planted_graph, planted_params.with_changes(min_epsilon=0.4)
        ).mine()
        assert (
            strict.counters.attribute_sets_evaluated
            <= lenient.counters.attribute_sets_evaluated
        )
        assert len(strict.qualified) <= len(lenient.qualified)

    def test_counters_are_consistent(self, planted_graph, planted_params):
        result = SCPM(planted_graph, planted_params).mine()
        counters = result.counters
        assert counters.attribute_sets_evaluated == len(result.evaluated)
        assert counters.attribute_sets_qualified == len(result.qualified)
        assert (
            counters.attribute_sets_extended + counters.attribute_sets_pruned
            == counters.attribute_sets_evaluated
        )
        assert counters.elapsed_seconds >= 0.0

    def test_max_attribute_set_size_respected(self, planted_graph, planted_params):
        result = SCPM(
            planted_graph, planted_params.with_changes(max_attribute_set_size=1)
        ).mine()
        assert all(r.size == 1 for r in result.evaluated)

    def test_theorem4_pruning_never_loses_qualifying_sets(self, planted_graph):
        """With and without ε-pruning the qualifying attribute sets coincide."""
        strict = SCPMParams(
            min_support=8,
            gamma=0.5,
            min_size=4,
            min_epsilon=0.3,
            min_delta=0.0,
            max_attribute_set_size=2,
        )
        pruned = SCPM(planted_graph, strict).mine()
        exhaustive = NaiveMiner(planted_graph, strict).mine()
        assert {r.attributes for r in pruned.qualified} == {
            r.attributes for r in exhaustive.qualified
        }

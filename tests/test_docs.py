"""The documentation QA gate, run locally as part of tier-1.

CI has a dedicated ``docs`` job running ``tools/check_docs.py``; this test
keeps the same gate in the default suite so broken doc links or missing
module docstrings fail before a push.
"""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def test_docs_links_and_module_docstrings():
    completed = subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "check_docs.py")],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert completed.returncode == 0, completed.stdout + completed.stderr

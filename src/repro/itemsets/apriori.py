"""Apriori frequent itemset mining (Agrawal et al., SIGMOD 1993).

Apriori is included as the classical level-wise baseline: it is used in the
test suite as an independent oracle for the Eclat miner and is available to
users who prefer breadth-first candidate generation.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, Hashable, List, Mapping, Optional, Set, Tuple

from repro.errors import ParameterError
from repro.graph.attributed_graph import AttributedGraph
from repro.itemsets.itemset import FrequentItemset, Item
from repro.itemsets.transactions import vertical_database


def _generate_candidates(
    frequent_level: List[Tuple[Item, ...]],
) -> Set[Tuple[Item, ...]]:
    """Join step: combine size-k itemsets sharing a (k-1)-prefix.

    The input tuples must be in canonical (sorted) order; the prune step
    (all subsets frequent) is applied by the caller.
    """
    candidates: Set[Tuple[Item, ...]] = set()
    frequent_set = set(frequent_level)
    for first, second in combinations(frequent_level, 2):
        if first[:-1] == second[:-1]:
            last_pair = sorted((first[-1], second[-1]), key=repr)
            candidate = first[:-1] + tuple(last_pair)
            if all(
                candidate[:i] + candidate[i + 1 :] in frequent_set
                for i in range(len(candidate))
            ):
                candidates.add(candidate)
    return candidates


def mine_frequent_itemsets_apriori(
    graph: AttributedGraph,
    min_support: int,
    min_size: int = 1,
    max_size: Optional[int] = None,
) -> List[FrequentItemset]:
    """Mine all frequent attribute sets of ``graph`` level by level.

    The result is identical (as a set of itemsets with supports) to
    :func:`repro.itemsets.eclat.mine_frequent_itemsets`; ordering differs.
    """
    if min_support < 1:
        raise ParameterError(f"min_support must be >= 1, got {min_support}")
    if min_size < 1:
        raise ParameterError(f"min_size must be >= 1, got {min_size}")

    vertical = vertical_database(graph)
    tidsets: Dict[Tuple[Item, ...], FrozenSet[Hashable]] = {}
    level: List[Tuple[Item, ...]] = []
    for item, tidset in vertical.items():
        if len(tidset) >= min_support:
            key = (item,)
            tidsets[key] = tidset
            level.append(key)
    level.sort(key=lambda items: tuple(map(repr, items)))

    results: List[FrequentItemset] = []
    size = 1
    while level:
        if size >= min_size:
            results.extend(
                FrequentItemset(items=items, tidset=tidsets[items]) for items in level
            )
        if max_size is not None and size >= max_size:
            break
        candidates = _generate_candidates(level)
        next_level: List[Tuple[Item, ...]] = []
        for candidate in candidates:
            tidset = tidsets[candidate[:-1]] & vertical[candidate[-1]]
            if len(tidset) >= min_support:
                tidsets[candidate] = tidset
                next_level.append(candidate)
        next_level.sort(key=lambda items: tuple(map(repr, items)))
        level = next_level
        size += 1
    return results

"""Itemset containers shared by the Eclat and Apriori miners.

An *itemset* here is an attribute set ``S ⊆ A`` of the attributed graph and
its *tidset* is ``V(S)``, the set of vertices that carry every attribute of
``S``.  Support is measured in vertices, exactly as in the paper
(``σ(S) = |V(S)|``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Hashable, Iterable, Tuple

Item = Hashable
Transaction = FrozenSet[Item]


def canonical_itemset(items: Iterable[Item]) -> Tuple[Item, ...]:
    """Return the canonical (sorted, de-duplicated) tuple form of an itemset.

    Items are sorted by ``(type name, repr)`` so heterogeneous item types can
    coexist without ``TypeError`` from direct comparison.
    """
    return tuple(sorted(set(items), key=lambda item: (type(item).__name__, repr(item))))


@dataclass(frozen=True)
class FrequentItemset:
    """A frequent attribute set together with its supporting vertices.

    Attributes
    ----------
    items:
        Canonical tuple of items (attributes).
    tidset:
        The supporting transactions (vertices) — ``V(S)``.
    """

    items: Tuple[Item, ...]
    tidset: FrozenSet[Hashable]

    @property
    def support(self) -> int:
        """Absolute support ``σ(S)``."""
        return len(self.tidset)

    @property
    def size(self) -> int:
        """Number of items in the set."""
        return len(self.items)

    def as_frozenset(self) -> FrozenSet[Item]:
        """Return the items as a frozen set."""
        return frozenset(self.items)

    def contains(self, other: "FrequentItemset") -> bool:
        """Return ``True`` when ``other.items ⊆ self.items``."""
        return set(other.items) <= set(self.items)

    def __str__(self) -> str:
        rendered = ", ".join(map(str, self.items))
        return f"{{{rendered}}} (support={self.support})"

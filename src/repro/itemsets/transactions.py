"""Building transaction databases from attributed graphs.

The frequent-itemset view of an attributed graph treats every vertex as a
transaction whose items are the vertex's attributes.  Both a horizontal
(transaction → items) and a vertical (item → tidset) representation are
provided; Eclat works on the vertical one.
"""

from __future__ import annotations

from typing import AbstractSet, Dict, FrozenSet, Hashable, Iterable, List, Mapping, Tuple

from repro.graph.attributed_graph import AttributedGraph
from repro.graph.vertexset import VertexBitset
from repro.itemsets.itemset import Item


def horizontal_database(graph: AttributedGraph) -> Dict[Hashable, FrozenSet[Item]]:
    """Return ``vertex -> attribute set`` for every vertex of ``graph``."""
    return {vertex: graph.attributes_of(vertex) for vertex in graph.vertices()}


def vertical_database(graph: AttributedGraph) -> Dict[Item, FrozenSet[Hashable]]:
    """Return ``attribute -> vertex tidset`` for every attribute of ``graph``."""
    return graph.attribute_support_index()


def bitset_vertical_database(
    graph: AttributedGraph, engine: str = "auto"
) -> Dict[Item, VertexBitset]:
    """Return ``attribute -> vertex tidset`` with bitset-backed tidsets.

    The tidsets are set-protocol views over the graph's cached bitset index
    for ``engine`` (:class:`~repro.graph.vertexset.VertexBitset` on the
    dense engine, :class:`~repro.graph.sparseset.SparseVertexBitset` on the
    sparse one — see :mod:`repro.graph.engine`), so an Eclat tidset join is
    one native ``&`` instead of a hashed frozenset intersection.  They
    behave like frozensets for the operations the miners use; call
    ``to_frozenset()`` at public API boundaries.
    """
    index = graph.bitset_index(engine)
    return {
        attribute: index.bitset(native)
        for attribute, native in index.attribute_masks.items()
    }


def vertical_from_transactions(
    transactions: Mapping[Hashable, Iterable[Item]],
) -> Dict[Item, FrozenSet[Hashable]]:
    """Invert a horizontal database into tidsets.

    ``transactions`` maps a transaction id to its items; the result maps
    each item to the frozen set of transaction ids that contain it.
    """
    index: Dict[Item, set] = {}
    for tid, items in transactions.items():
        for item in items:
            index.setdefault(item, set()).add(tid)
    return {item: frozenset(tids) for item, tids in index.items()}


def transactions_from_lists(
    transaction_lists: Iterable[Iterable[Item]],
) -> Dict[int, FrozenSet[Item]]:
    """Number a plain iterable of item lists into a horizontal database."""
    return {
        tid: frozenset(items) for tid, items in enumerate(transaction_lists)
    }


def frequent_items(
    vertical: Mapping[Item, AbstractSet[Hashable]], min_support: int
) -> List[Tuple[Item, AbstractSet[Hashable]]]:
    """Return the 1-itemsets with support ≥ ``min_support``, sorted.

    The sort is by ascending support then item representation — the standard
    Eclat ordering that keeps equivalence classes small.  Works on plain
    frozenset tidsets and on the bitset tidsets of
    :func:`bitset_vertical_database` alike.
    """
    kept = [
        (item, tidset)
        for item, tidset in vertical.items()
        if len(tidset) >= min_support
    ]
    kept.sort(key=lambda pair: (len(pair[1]), type(pair[0]).__name__, repr(pair[0])))
    return kept

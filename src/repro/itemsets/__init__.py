"""Frequent itemset substrate: Eclat miner, Apriori baseline, transaction views."""

from repro.itemsets.apriori import mine_frequent_itemsets_apriori
from repro.itemsets.eclat import (
    EclatConfig,
    EclatMiner,
    mine_frequent_itemsets,
    support_of,
)
from repro.itemsets.itemset import FrequentItemset, canonical_itemset
from repro.itemsets.transactions import (
    bitset_vertical_database,
    frequent_items,
    horizontal_database,
    transactions_from_lists,
    vertical_database,
    vertical_from_transactions,
)

__all__ = [
    "EclatConfig",
    "bitset_vertical_database",
    "EclatMiner",
    "FrequentItemset",
    "canonical_itemset",
    "frequent_items",
    "horizontal_database",
    "mine_frequent_itemsets",
    "mine_frequent_itemsets_apriori",
    "support_of",
    "transactions_from_lists",
    "vertical_database",
    "vertical_from_transactions",
]

"""Eclat frequent itemset mining (Zaki, TKDE 2000).

Eclat explores the itemset lattice depth-first over *equivalence classes*:
all itemsets sharing a prefix are extended by intersecting their tidsets.
This is the miner the paper uses both inside the naive baseline and as the
attribute-set enumeration backbone of SCPM.

The implementation is generator-based so callers can stop early, and it
accepts an optional *extension filter* — a predicate deciding whether a
frequent itemset may be extended further.  SCPM plugs its Theorem 4/5
pruning rule in through that hook.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Hashable, Iterator, List, Mapping, Optional, Tuple

from repro.errors import ParameterError
from repro.graph.attributed_graph import AttributedGraph
from repro.itemsets.itemset import FrequentItemset, Item, canonical_itemset
from repro.itemsets.transactions import (
    bitset_vertical_database,
    frequent_items,
    vertical_database,
)

ExtensionFilter = Callable[[FrequentItemset], bool]


@dataclass(frozen=True)
class EclatConfig:
    """Configuration of an Eclat run.

    Attributes
    ----------
    min_support:
        Absolute minimum support ``σ_min`` (≥ 1).
    max_size:
        Optional cap on itemset cardinality (``None`` = unlimited).
    min_size:
        Minimum cardinality of reported itemsets (1 by default; the paper's
        case studies use 2 to skip single terms).
    """

    min_support: int
    max_size: Optional[int] = None
    min_size: int = 1

    def __post_init__(self) -> None:
        if self.min_support < 1:
            raise ParameterError(f"min_support must be >= 1, got {self.min_support}")
        if self.min_size < 1:
            raise ParameterError(f"min_size must be >= 1, got {self.min_size}")
        if self.max_size is not None and self.max_size < self.min_size:
            raise ParameterError(
                f"max_size ({self.max_size}) must be >= min_size ({self.min_size})"
            )


class EclatMiner:
    """Depth-first vertical frequent itemset miner.

    Parameters
    ----------
    config:
        The :class:`EclatConfig` with support and size constraints.
    extension_filter:
        Optional predicate; when it returns ``False`` for a frequent itemset
        the itemset is still *reported* but never *extended*.  This is the
        hook SCPM uses for its ε/δ-based pruning (Theorems 4 and 5).
    use_bitsets:
        When ``True``, :meth:`mine_graph` runs on the graph's bitset vertical
        database: tidset joins become single native ``&`` operations and the
        yielded :class:`FrequentItemset` objects carry bitset tidsets
        (set-like; convert with ``to_frozenset()`` at API boundaries).  The
        mined itemsets, supports and tidset *contents* are identical to the
        frozenset path.
    engine:
        Vertex-set engine of the bitset vertical database (``"dense"``,
        ``"sparse"`` or ``"auto"``; see :mod:`repro.graph.engine`).  Only
        meaningful together with ``use_bitsets=True``.
    """

    def __init__(
        self,
        config: EclatConfig,
        extension_filter: Optional[ExtensionFilter] = None,
        use_bitsets: bool = False,
        engine: str = "auto",
    ) -> None:
        self.config = config
        self.extension_filter = extension_filter
        self.use_bitsets = use_bitsets
        self.engine = engine

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def mine_graph(self, graph: AttributedGraph) -> Iterator[FrequentItemset]:
        """Mine frequent attribute sets of ``graph`` (vertices = transactions)."""
        if self.use_bitsets:
            return self.mine_vertical(bitset_vertical_database(graph, self.engine))
        return self.mine_vertical(vertical_database(graph))

    def mine_transactions(
        self, transactions: Mapping[Hashable, FrozenSet[Item]]
    ) -> Iterator[FrequentItemset]:
        """Mine a horizontal transaction database."""
        vertical: Dict[Item, set] = {}
        for tid, items in transactions.items():
            for item in items:
                vertical.setdefault(item, set()).add(tid)
        return self.mine_vertical(
            {item: frozenset(tids) for item, tids in vertical.items()}
        )

    def mine_vertical(
        self, vertical: Mapping[Item, FrozenSet[Hashable]]
    ) -> Iterator[FrequentItemset]:
        """Mine a vertical (item → tidset) database, yielding frequent itemsets."""
        base = frequent_items(vertical, self.config.min_support)
        prefix_class: List[Tuple[Tuple[Item, ...], FrozenSet[Hashable]]] = [
            ((item,), tidset) for item, tidset in base
        ]
        yield from self._mine_class((), prefix_class)

    def mine_all(self, graph: AttributedGraph) -> List[FrequentItemset]:
        """Return the complete list of frequent attribute sets of ``graph``."""
        return list(self.mine_graph(graph))

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _mine_class(
        self,
        prefix: Tuple[Item, ...],
        members: List[Tuple[Tuple[Item, ...], FrozenSet[Hashable]]],
    ) -> Iterator[FrequentItemset]:
        """Recursively process one equivalence class.

        ``members`` holds ``(itemset, tidset)`` pairs that all share
        ``prefix`` (the itemset includes the prefix).
        """
        max_size = self.config.max_size
        for index, (items, tidset) in enumerate(members):
            itemset = FrequentItemset(items=items, tidset=tidset)
            if len(items) >= self.config.min_size:
                yield itemset
            if max_size is not None and len(items) >= max_size:
                continue
            if self.extension_filter is not None and not self.extension_filter(itemset):
                continue
            extensions: List[Tuple[Tuple[Item, ...], FrozenSet[Hashable]]] = []
            for other_items, other_tidset in members[index + 1 :]:
                if self.extension_filter is not None:
                    other = FrequentItemset(items=other_items, tidset=other_tidset)
                    if not self.extension_filter(other):
                        continue
                joined_tidset = tidset & other_tidset
                if len(joined_tidset) >= self.config.min_support:
                    joined_items = items + (other_items[-1],)
                    extensions.append((joined_items, joined_tidset))
            if extensions:
                yield from self._mine_class(items, extensions)


def mine_frequent_itemsets(
    graph: AttributedGraph,
    min_support: int,
    min_size: int = 1,
    max_size: Optional[int] = None,
) -> List[FrequentItemset]:
    """Convenience wrapper: mine all frequent attribute sets of ``graph``.

    Examples
    --------
    >>> from repro.datasets import paper_example_graph
    >>> graph = paper_example_graph()
    >>> names = {tuple(sorted(f.items)) for f in mine_frequent_itemsets(graph, 6)}
    >>> ('A',) in names and ('A', 'B') in names
    True
    """
    miner = EclatMiner(EclatConfig(min_support=min_support, min_size=min_size, max_size=max_size))
    return miner.mine_all(graph)


def support_of(graph: AttributedGraph, items: Tuple[Item, ...]) -> int:
    """Return ``σ(S)`` for an arbitrary attribute set (not necessarily frequent)."""
    return graph.support(canonical_itemset(items))

"""Ranking tables in the style of the paper's Tables 1–4.

Given a :class:`~repro.correlation.patterns.MiningResult`, these helpers
extract and render the three column groups reported for every case study —
top attribute sets by support (σ), by structural correlation (ε) and by
normalized structural correlation (δ) — plus the per-pattern table used for
the running example (Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.analysis.reporting import format_table
from repro.correlation.patterns import (
    AttributeSetResult,
    MiningResult,
    StructuralCorrelationPattern,
)


@dataclass(frozen=True)
class RankingRow:
    """One row of a ranking table: the attribute set and its three measures."""

    attribute_set: str
    support: int
    epsilon: float
    delta: float

    def as_tuple(self) -> Tuple[str, int, float, float]:
        """Return the row as a plain tuple (label, σ, ε, δ)."""
        return (self.attribute_set, self.support, self.epsilon, self.delta)


def _to_rows(results: Sequence[AttributeSetResult]) -> List[RankingRow]:
    return [
        RankingRow(
            attribute_set=result.label(),
            support=result.support,
            epsilon=result.epsilon,
            delta=result.delta,
        )
        for result in results
    ]


def top_support_rows(
    result: MiningResult, n: int = 10, min_set_size: Optional[int] = None
) -> List[RankingRow]:
    """Rows of the "top support (σ)" column group."""
    return _to_rows(result.top_by_support(n, min_set_size))


def top_epsilon_rows(
    result: MiningResult, n: int = 10, min_set_size: Optional[int] = None
) -> List[RankingRow]:
    """Rows of the "top structural correlation (ε)" column group."""
    return _to_rows(result.top_by_epsilon(n, min_set_size))


def top_delta_rows(
    result: MiningResult, n: int = 10, min_set_size: Optional[int] = None
) -> List[RankingRow]:
    """Rows of the "top normalized structural correlation (δ)" column group."""
    return _to_rows(result.top_by_delta(n, min_set_size))


def render_case_study_table(
    result: MiningResult,
    title: str,
    n: int = 10,
    min_set_size: Optional[int] = None,
) -> str:
    """Render the three ranking groups side by side (paper Tables 2–4)."""
    groups = (
        ("top-sigma", top_support_rows(result, n, min_set_size)),
        ("top-epsilon", top_epsilon_rows(result, n, min_set_size)),
        ("top-delta", top_delta_rows(result, n, min_set_size)),
    )
    sections = []
    for name, rows in groups:
        sections.append(
            format_table(
                headers=("S", "sigma", "epsilon", "delta"),
                rows=[row.as_tuple() for row in rows],
                title=f"{title} — {name}",
            )
        )
    return "\n\n".join(sections)


def pattern_rows(
    patterns: Sequence[StructuralCorrelationPattern],
    result: MiningResult,
) -> List[Tuple[str, str, int, float, int, float]]:
    """Rows of the per-pattern table (paper Table 1).

    Each row is ``(attribute set, vertex set, size, γ, σ, ε)``.
    """
    rows = []
    for pattern in patterns:
        stats = result.find(pattern.attributes)
        support = stats.support if stats else 0
        epsilon = stats.epsilon if stats else 0.0
        rows.append(
            (
                " ".join(map(str, pattern.attributes)),
                "{" + ", ".join(sorted(map(str, pattern.vertices))) + "}",
                pattern.size,
                pattern.gamma,
                support,
                epsilon,
            )
        )
    rows.sort(key=lambda row: (row[0], -row[2], row[1]))
    return rows


def render_pattern_table(result: MiningResult, title: str = "Patterns") -> str:
    """Render every pattern of ``result`` in the style of Table 1."""
    rows = pattern_rows(result.patterns, result)
    return format_table(
        headers=("S", "Q", "size", "gamma", "sigma", "epsilon"),
        rows=rows,
        title=title,
    )

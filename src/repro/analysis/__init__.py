"""Analysis layer: ranking tables, runtime sweeps, sensitivity and null curves."""

from repro.analysis.nullcurves import (
    NullCurvePoint,
    expected_epsilon_curve,
    null_curve_table,
)
from repro.analysis.performance import (
    ALGORITHMS,
    SweepPoint,
    run_algorithm,
    run_parameter_sweep,
    runtimes_by_algorithm,
    sweep_table,
    total_runtime,
)
from repro.analysis.ranking import (
    RankingRow,
    pattern_rows,
    render_case_study_table,
    render_pattern_table,
    top_delta_rows,
    top_epsilon_rows,
    top_support_rows,
)
from repro.analysis.reporting import format_number, format_table
from repro.analysis.sensitivity import (
    SensitivityPoint,
    run_sensitivity_sweep,
    sensitivity_table,
)

__all__ = [
    "ALGORITHMS",
    "NullCurvePoint",
    "RankingRow",
    "SensitivityPoint",
    "SweepPoint",
    "expected_epsilon_curve",
    "format_number",
    "format_table",
    "null_curve_table",
    "pattern_rows",
    "render_case_study_table",
    "render_pattern_table",
    "run_algorithm",
    "run_parameter_sweep",
    "run_sensitivity_sweep",
    "runtimes_by_algorithm",
    "sensitivity_table",
    "sweep_table",
    "top_delta_rows",
    "top_epsilon_rows",
    "top_support_rows",
    "total_runtime",
]

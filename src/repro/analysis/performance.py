"""Runtime comparison harness (Figure 8 of the paper).

The paper compares SCPM-BFS, SCPM-DFS and the Naive algorithm on the
SmallDBLP dataset, varying one parameter at a time (γ_min, min_size, σ_min,
ε_min, δ_min and the top-k value).  :func:`run_parameter_sweep` reproduces
those series for any graph and any base parameter set; absolute runtimes are
hardware-dependent, so the benchmark assertions in ``benchmarks/`` check the
*orderings* (SCPM ≤ Naive, pruning thresholds reduce work) rather than the
paper's second counts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.analysis.reporting import format_table
from repro.correlation.naive import NaiveMiner
from repro.correlation.parameters import SCPMParams
from repro.correlation.patterns import MiningResult
from repro.correlation.scpm import SCPM
from repro.graph.attributed_graph import AttributedGraph
from repro.quasiclique.search import BFS, DFS

#: The three algorithms compared in Figure 8.
ALGORITHMS = ("scpm-dfs", "scpm-bfs", "naive")


@dataclass(frozen=True)
class SweepPoint:
    """One (algorithm, parameter value) measurement."""

    algorithm: str
    parameter: str
    value: float
    runtime_seconds: float
    attribute_sets_evaluated: int
    patterns_found: int

    def as_row(self) -> tuple:
        """Return the measurement as a table row."""
        return (
            self.algorithm,
            self.parameter,
            self.value,
            self.runtime_seconds,
            self.attribute_sets_evaluated,
            self.patterns_found,
        )


def run_algorithm(
    graph: AttributedGraph, params: SCPMParams, algorithm: str
) -> MiningResult:
    """Run one of the Figure-8 algorithms and return its result."""
    if algorithm == "scpm-dfs":
        return SCPM(graph, params.with_changes(order=DFS)).mine()
    if algorithm == "scpm-bfs":
        return SCPM(graph, params.with_changes(order=BFS)).mine()
    if algorithm == "naive":
        return NaiveMiner(graph, params).mine()
    raise ValueError(f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}")


def _apply(params: SCPMParams, parameter: str, value: float) -> SCPMParams:
    """Return ``params`` with ``parameter`` set to ``value``."""
    field_map: Dict[str, str] = {
        "gamma": "gamma",
        "min_size": "min_size",
        "min_support": "min_support",
        "min_epsilon": "min_epsilon",
        "min_delta": "min_delta",
        "top_k": "top_k",
    }
    if parameter not in field_map:
        raise ValueError(
            f"unknown sweep parameter {parameter!r}; expected one of {sorted(field_map)}"
        )
    if parameter in ("min_size", "min_support", "top_k"):
        value = int(value)
    return params.with_changes(**{field_map[parameter]: value})


def run_parameter_sweep(
    graph: AttributedGraph,
    base_params: SCPMParams,
    parameter: str,
    values: Sequence[float],
    algorithms: Iterable[str] = ALGORITHMS,
    timer: Callable[[], float] = time.perf_counter,
) -> List[SweepPoint]:
    """Measure runtime of each algorithm for each value of ``parameter``.

    Returns one :class:`SweepPoint` per (algorithm, value) combination, in
    the order they were run.
    """
    points: List[SweepPoint] = []
    for value in values:
        params = _apply(base_params, parameter, value)
        for algorithm in algorithms:
            started = timer()
            result = run_algorithm(graph, params, algorithm)
            elapsed = timer() - started
            points.append(
                SweepPoint(
                    algorithm=algorithm,
                    parameter=parameter,
                    value=float(value),
                    runtime_seconds=elapsed,
                    attribute_sets_evaluated=result.counters.attribute_sets_evaluated,
                    patterns_found=len(result.patterns),
                )
            )
    return points


def sweep_table(points: Sequence[SweepPoint], title: str = "") -> str:
    """Render a sweep as the text table printed by the benchmark harness."""
    return format_table(
        headers=("algorithm", "parameter", "value", "runtime_s", "attr_sets", "patterns"),
        rows=[point.as_row() for point in points],
        title=title,
    )


def runtimes_by_algorithm(points: Sequence[SweepPoint]) -> Dict[str, List[float]]:
    """Group runtimes per algorithm, preserving the sweep order."""
    grouped: Dict[str, List[float]] = {}
    for point in points:
        grouped.setdefault(point.algorithm, []).append(point.runtime_seconds)
    return grouped


def total_runtime(points: Sequence[SweepPoint], algorithm: Optional[str] = None) -> float:
    """Total runtime across a sweep, optionally for a single algorithm."""
    return sum(
        point.runtime_seconds
        for point in points
        if algorithm is None or point.algorithm == algorithm
    )

"""Parameter-sensitivity study (Figure 10 of the paper).

For each value of a swept parameter the study reports the average structural
correlation ε and the average normalized structural correlation δ of the
mining output, both over the complete output ("global") and over the top
10 % of attribute sets.  The paper's qualitative findings, asserted by the
benchmarks, are:

* raising γ_min or min_size lowers the average ε but raises the average δ
  (dense subgraphs become less expected);
* raising σ_min raises the average ε but lowers the average δ (frequent
  attribute sets also have a high expected correlation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.analysis.performance import _apply
from repro.analysis.reporting import format_table
from repro.correlation.parameters import SCPMParams
from repro.correlation.scpm import SCPM
from repro.graph.attributed_graph import AttributedGraph


@dataclass(frozen=True)
class SensitivityPoint:
    """Averages of ε and δ for one parameter value (one x-position in Fig. 10)."""

    parameter: str
    value: float
    average_epsilon: float
    average_epsilon_top10: float
    average_delta: float
    average_delta_top10: float
    attribute_sets: int

    def as_row(self) -> tuple:
        """Return the measurement as a table row."""
        return (
            self.parameter,
            self.value,
            self.average_epsilon,
            self.average_epsilon_top10,
            self.average_delta,
            self.average_delta_top10,
            self.attribute_sets,
        )


def run_sensitivity_sweep(
    graph: AttributedGraph,
    base_params: SCPMParams,
    parameter: str,
    values: Sequence[float],
    top_fraction: float = 0.1,
) -> List[SensitivityPoint]:
    """Measure the Figure-10 averages for each value of ``parameter``.

    The mining is run with ε_min = δ_min = 0 so the output is the complete
    set of frequent attribute sets, exactly as required to average over
    "global" output; pattern extraction is skipped because only the
    attribute-set statistics matter here.
    """
    points: List[SensitivityPoint] = []
    for value in values:
        params = _apply(base_params, parameter, value)
        params = params.with_changes(min_epsilon=0.0, min_delta=0.0)
        result = SCPM(graph, params, collect_patterns=False).mine()
        points.append(
            SensitivityPoint(
                parameter=parameter,
                value=float(value),
                average_epsilon=result.average_epsilon(),
                average_epsilon_top10=result.average_epsilon(top_fraction),
                average_delta=result.average_delta(),
                average_delta_top10=result.average_delta(top_fraction),
                attribute_sets=len(result.evaluated),
            )
        )
    return points


def sensitivity_table(points: Sequence[SensitivityPoint], title: str = "") -> str:
    """Render a sensitivity sweep as the text table printed by the harness."""
    return format_table(
        headers=(
            "parameter",
            "value",
            "avg_epsilon",
            "avg_epsilon_top10",
            "avg_delta",
            "avg_delta_top10",
            "attr_sets",
        ),
        rows=[point.as_row() for point in points],
        title=title,
    )

"""Plain-text table rendering used by the examples, CLI and benchmarks.

The benchmark harness prints the same rows the paper reports (Tables 1–4,
the series behind Figures 4–10); this module keeps that formatting in one
place so every consumer produces identical output.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render ``rows`` as a fixed-width text table.

    Floats are shown with four significant decimals, other values with
    ``str``.  Column widths adapt to the content.
    """
    rendered_rows: List[List[str]] = [[_render(cell) for cell in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))

    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rendered_rows:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def _render(cell: object) -> str:
    if isinstance(cell, bool):
        return str(cell)
    if isinstance(cell, float):
        if cell == float("inf"):
            return "inf"
        if cell != 0 and (abs(cell) < 1e-3 or abs(cell) >= 1e6):
            return f"{cell:.3e}"
        return f"{cell:.4f}".rstrip("0").rstrip(".") or "0"
    return str(cell)


def format_number(value: float) -> str:
    """Render a single numeric value the same way the tables do."""
    return _render(float(value))

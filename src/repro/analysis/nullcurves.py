"""Expected structural correlation curves (Figures 4, 7 and 9 of the paper).

For a sweep of support values, compute the simulation estimate ``sim-exp``
(mean ± std over ``runs`` random vertex samples) and the analytical upper
bound ``max-exp``.  The paper's claims, asserted by the benchmarks:

* ``max-exp ≥ sim-exp`` for every support (it is an upper bound);
* both curves grow monotonically with the support;
* the bound is not tight but has a similar growth, so it can be used to
  normalise structural correlations of attribute sets of different supports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.analysis.reporting import format_table
from repro.correlation.null_models import AnalyticalNullModel, SimulationNullModel
from repro.graph.attributed_graph import AttributedGraph
from repro.quasiclique.definitions import QuasiCliqueParams


@dataclass(frozen=True)
class NullCurvePoint:
    """One support value of the expected-ε curve."""

    support: int
    sim_exp_mean: float
    sim_exp_std: float
    max_exp: float

    def as_row(self) -> tuple:
        """Return the point as a table row."""
        return (self.support, self.sim_exp_mean, self.sim_exp_std, self.max_exp)


def expected_epsilon_curve(
    graph: AttributedGraph,
    params: QuasiCliqueParams,
    supports: Sequence[int],
    runs: int = 20,
    seed: int = 7,
) -> List[NullCurvePoint]:
    """Compute ``sim-exp`` and ``max-exp`` for each support value."""
    analytical = AnalyticalNullModel(graph, params)
    simulation = SimulationNullModel(graph, params, runs=runs, seed=seed)
    points: List[NullCurvePoint] = []
    for support in supports:
        estimate = simulation.estimate(support)
        points.append(
            NullCurvePoint(
                support=int(support),
                sim_exp_mean=estimate.mean,
                sim_exp_std=estimate.std,
                max_exp=analytical.expected_epsilon(int(support)),
            )
        )
    return points


def null_curve_table(points: Sequence[NullCurvePoint], title: str = "") -> str:
    """Render an expected-ε curve as the text table printed by the harness."""
    return format_table(
        headers=("support", "sim_exp_mean", "sim_exp_std", "max_exp"),
        rows=[point.as_row() for point in points],
        title=title,
    )

"""Structural Correlation Pattern Mining (SCPM) for large attributed graphs.

Reproduction of Silva, Meira Jr. and Zaki, *Mining Attribute-structure
Correlated Patterns in Large Attributed Graphs*, PVLDB 5(5), 2012.

The most common entry points are re-exported here:

>>> from repro import AttributedGraph, SCPM, SCPMParams, paper_example_graph
>>> graph = paper_example_graph()
>>> params = SCPMParams(min_support=3, gamma=0.6, min_size=4, min_epsilon=0.5)
>>> result = SCPM(graph, params).mine()
>>> len(result.qualified)
3
"""

from repro.correlation.naive import NaiveMiner, mine_naive
from repro.correlation.null_models import AnalyticalNullModel, SimulationNullModel
from repro.correlation.parameters import SCPMParams
from repro.correlation.patterns import (
    AttributeSetResult,
    MiningResult,
    StructuralCorrelationPattern,
)
from repro.correlation.scpm import SCPM, mine_scpm, mine_scpm_files
from repro.correlation.structural import structural_correlation, top_k_patterns
from repro.datasets.example import paper_example_graph
from repro.datasets.profiles import (
    citeseer_like,
    dblp_like,
    lastfm_like,
    load_profile,
    small_dblp_like,
)
from repro.graph.attributed_graph import AttributedGraph
from repro.graph.streaming import StreamedGraphHandle, stream_attributed_graph
from repro.parallel import PayloadTransfer, WorkStealingScheduler
from repro.quasiclique.definitions import QuasiCliqueParams
from repro.quasiclique.search import (
    QuasiCliqueSearch,
    find_quasi_cliques,
    top_k_quasi_cliques,
    vertices_in_quasi_cliques,
)
from repro.serve import PatternStoreReader
from repro.store import PatternStore, save_result

__version__ = "1.0.0"

__all__ = [
    "AnalyticalNullModel",
    "AttributeSetResult",
    "AttributedGraph",
    "MiningResult",
    "NaiveMiner",
    "PatternStore",
    "PatternStoreReader",
    "PayloadTransfer",
    "QuasiCliqueParams",
    "QuasiCliqueSearch",
    "SCPM",
    "SCPMParams",
    "SimulationNullModel",
    "StreamedGraphHandle",
    "StructuralCorrelationPattern",
    "WorkStealingScheduler",
    "__version__",
    "citeseer_like",
    "dblp_like",
    "find_quasi_cliques",
    "lastfm_like",
    "load_profile",
    "mine_naive",
    "mine_scpm",
    "mine_scpm_files",
    "paper_example_graph",
    "save_result",
    "stream_attributed_graph",
    "small_dblp_like",
    "structural_correlation",
    "top_k_patterns",
    "top_k_quasi_cliques",
    "vertices_in_quasi_cliques",
]

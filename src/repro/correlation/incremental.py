"""Incremental SCPM — delta re-evaluation over an evolving graph.

A one-shot :class:`~repro.correlation.scpm.SCPM` run answers for a
frozen graph; when edges and attributes keep arriving, re-mining from
scratch costs the full lattice walk no matter how small the change.
:class:`IncrementalSCPM` keeps the structured output of the last run —
per-root records, per-branch subtrees, the engine-native tidsets they
were mined from — and, given an edit batch, recomputes **only the work
whose inputs changed**, while guaranteeing the patched
:class:`~repro.correlation.patterns.MiningResult` is *byte-identical* to
a full re-mine of the evolved graph (the differential harness in
``tests/evolve/`` enforces this across engines × schedules × n_jobs).

The invalidation logic rests on the chunk footprint of
:mod:`repro.graph.evolve` and the soundness argument of
:mod:`repro.quasiclique.delta`:

* **Coverage memo** — entries whose working set intersects a touched
  chunk are evicted; survivors answer for bit-identical subgraphs.
* **Roots** (frequent 1-attribute sets) — a root is *dirty* iff its
  attribute was edited or its tidset intersects a touched chunk.  A
  clean root's record is reused verbatim: its support is unchanged (the
  holder container was not replaced) and its coverage search ran over
  ``V({a})``, whose induced subgraph did not change.  Dirty, new and
  vanished roots are re-evaluated, dropped in, or dropped.
* **Branches** (the per-root subtrees of Algorithm 3) — a branch joins
  its root against the *suffix* of the extendable-root list, so it can
  be reused only where old and new lists agree.  The reuse rule is the
  longest common suffix: a clean extendable root inside it sees exactly
  the sibling tidsets and covered sets it saw before (clean tidsets are
  disjoint from every touched chunk, and a brand-new root's tidset
  cannot join a clean branch above ``min_support`` — their intersection
  lies inside the clean tidset, which the old run already measured below
  threshold for any removed sibling).  Everything before the common
  suffix re-runs through the existing work-stealing scheduler, one
  ``"roots"`` task per dirty position, merged by key exactly like a
  parallel full mine.
* **Null model** — degree distributions change with |V| or |E|, so a
  structural edit rebuilds the model (via ``null_model_factory``) and
  every retained record is *patched* (``dataclasses.replace``) with the
  new ``expected_epsilon``/``delta`` — pure functions of the support.
  A record whose ``qualified`` or Theorem-4/5 extendability would flip
  under the new expectation invalidates its root or branch instead:
  flips change pattern extraction and subtree shape, which reuse cannot
  patch.

``frequent_items`` orders roots by ``(support, type, repr)``, not
insertion order — a support change can therefore reorder the candidate
list and change every join to the *right* of the moved root.  The
common-suffix rule is what makes reuse correct under reordering, not
just under in-place change.

The evolved graph must expose ``apply_edge_batch`` /
``apply_attribute_batch`` — a
:class:`~repro.graph.streaming.StreamedGraphHandle` (or a raw
:class:`~repro.graph.sparseset.SparseGraphBitsetIndex` wrapped in one).
The persistent half lives in :meth:`repro.store.PatternStore.apply_delta`,
which swaps the patched result under a stored run in one transaction.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.correlation.null_models import (
    AnalyticalNullModel,
    normalized_structural_correlation,
)
from repro.correlation.parameters import SCPMParams
from repro.correlation.patterns import (
    AttributeSetResult,
    MiningCounters,
    MiningResult,
)
from repro.correlation.scpm import (
    SCPM,
    _BranchPayload,
    _Candidate,
    _accumulate_counters,
    _branch_task,
    _candidate_state,
)
from repro.errors import DeltaError
from repro.graph.evolve import AttributeEdit, DeltaReport, EdgeEdit
from repro.graph.streaming import GraphLike
from repro.graph.vertexset import VertexBitset
from repro.itemsets.transactions import bitset_vertical_database, frequent_items
from repro.parallel.scheduler import WorkStealingScheduler
from repro.quasiclique.delta import invalidate_memo, native_touches

Attribute = Hashable


def _native(view) -> Any:
    """Engine-native set behind an indexer-bound view."""
    return view.bits if isinstance(view, VertexBitset) else view.chunks


def _may_extend_static(
    epsilon: float, support: int, params: SCPMParams, expected_at_min: float
) -> bool:
    """Theorems 4/5 as a pure function — mirrors :meth:`SCPM._may_extend`.

    Taking ``expected_at_min`` as an argument lets the update pass ask
    "would this record's extendability differ under the *old* vs *new*
    null model?" without keeping the old model alive.
    """
    mass = epsilon * support
    if mass < params.min_epsilon * params.min_support:
        return False
    if mass < params.min_delta * expected_at_min * params.min_support:
        return False
    return True


@dataclass
class _RootState:
    """Retained state of one frequent 1-attribute root between updates."""

    attribute: Attribute
    record: AttributeSetResult
    tidset_native: Any
    covered_native: Optional[Any]
    extendable: bool


@dataclass
class UpdateStats:
    """Work accounting of one :meth:`IncrementalSCPM.update` call."""

    touched_chunks: int = 0
    memo_evicted: int = 0
    roots_total: int = 0
    roots_reused: int = 0
    roots_reevaluated: int = 0
    branches_total: int = 0
    branches_reused: int = 0
    branches_rerun: int = 0
    records_patched: int = 0
    elapsed_seconds: float = 0.0


class IncrementalSCPM:
    """SCPM with an :meth:`update` path for evolving graphs.

    Parameters
    ----------
    graph:
        An evolvable graph — must expose ``apply_edge_batch`` /
        ``apply_attribute_batch`` (a
        :class:`~repro.graph.streaming.StreamedGraphHandle`).
    params:
        The usual :class:`~repro.correlation.parameters.SCPMParams`;
        ``n_jobs``/``schedule`` govern both the initial mine and the
        dirty-branch re-runs.
    null_model_factory:
        ``(graph, qc_params) -> null model``; called once at
        construction and again after every structural edit (|V| or |E|
        changed), because both bundled models are functions of the
        degree distribution.  Defaults to
        :class:`~repro.correlation.null_models.AnalyticalNullModel`.
    collect_patterns:
        Forwarded to the underlying miner.

    Examples
    --------
    >>> from repro.graph.streaming import StreamingGraphBuilder
    >>> from repro.graph.evolve import EdgeEdit
    >>> builder = StreamingGraphBuilder()
    >>> for u, v in [(0, 1), (1, 2), (0, 2), (2, 3)]:
    ...     builder.add_edge(u, v)
    >>> for v in range(4):
    ...     builder.add_attributes(v, ["a"])
    >>> handle = builder.finish()
    >>> params = SCPMParams(min_support=2, gamma=0.5, min_size=3)
    >>> miner = IncrementalSCPM(handle, params)
    >>> initial = miner.mine()
    >>> updated = miner.update(edge_edits=[EdgeEdit(1, 3)])
    >>> updated.fingerprint() == SCPM(handle, params).mine().fingerprint()
    True
    """

    def __init__(
        self,
        graph: GraphLike,
        params: SCPMParams,
        null_model_factory=None,
        collect_patterns: bool = True,
    ) -> None:
        if not hasattr(graph, "apply_edge_batch"):
            raise DeltaError(
                "IncrementalSCPM needs an evolvable graph (apply_edge_batch/"
                "apply_attribute_batch) — stream it into a "
                "StreamedGraphHandle first"
            )
        self.graph = graph
        self.params = params
        self._factory = null_model_factory or (
            lambda g, qc: AnalyticalNullModel(g, qc)
        )
        self._miner = SCPM(
            graph,
            params,
            null_model=self._factory(graph, params.quasi_clique_params()),
            collect_patterns=collect_patterns,
        )
        self._algorithm = f"scpm-{params.order}"
        #: Structured state of the last run, in frequent-item order.
        self._roots: List[_RootState] = []
        #: Per-root branch records keyed by the root attribute.
        self._branches: Dict[Attribute, List[AttributeSetResult]] = {}
        #: Extendable-root attributes, in candidate-list order.
        self._extendable: List[Attribute] = []
        self._expected_at_min: Optional[float] = None
        #: The currently valid mining result (assembled, patched in place).
        self.result: Optional[MiningResult] = None
        #: Accounting of the most recent update() call.
        self.last_update_stats: Optional[UpdateStats] = None

    # ------------------------------------------------------------------
    # initial mine
    # ------------------------------------------------------------------
    def mine(self) -> MiningResult:
        """Run the initial full mine, capturing the reusable structure.

        The output is byte-identical to ``SCPM(graph, params).mine()``:
        the base pass calls the very same ``_evaluate`` in the same
        order, and branches run through ``_extend_branch`` (sequential)
        or one scheduler task per root — the keyed merge the parallel
        determinism suite already pins to the sequential order.
        """
        params = self.params
        counters = MiningCounters()
        result = MiningResult(algorithm=self._algorithm, counters=counters)
        started = time.perf_counter()

        vertical = bitset_vertical_database(self.graph, params.engine)
        base = frequent_items(vertical, params.min_support)

        roots: List[_RootState] = []
        candidates: List[_Candidate] = []
        scratch = MiningResult(algorithm=self._algorithm, counters=counters)
        for attribute, tidset in base:
            candidate = self._miner._evaluate(
                items=(attribute,),
                tidset=tidset,
                candidate_vertices=None,
                result=scratch,
            )
            record = scratch.evaluated[-1]
            roots.append(
                _RootState(
                    attribute=attribute,
                    record=record,
                    tidset_native=_native(tidset),
                    covered_native=(
                        _native(candidate.covered) if candidate else None
                    ),
                    extendable=candidate is not None,
                )
            )
            if candidate is not None:
                candidates.append(candidate)

        branch_lists = self._run_branches(
            candidates, list(range(len(candidates))), counters
        )
        result.evaluated.extend(scratch.evaluated)
        for records in branch_lists:
            result.evaluated.extend(records)

        self._roots = roots
        self._extendable = [c.items[0] for c in candidates]
        self._branches = {
            c.items[0]: records
            for c, records in zip(candidates, branch_lists)
        }
        self._expected_at_min = self._miner.null_model.expected_epsilon(
            params.min_support
        )
        counters.elapsed_seconds = time.perf_counter() - started
        self.result = result
        return result

    # ------------------------------------------------------------------
    # delta update
    # ------------------------------------------------------------------
    def update(
        self,
        edge_edits: Sequence[EdgeEdit] = (),
        attribute_edits: Sequence[AttributeEdit] = (),
    ) -> MiningResult:
        """Apply the edits to the graph and patch the mining result.

        Returns the new :class:`MiningResult` (also stored on
        :attr:`result`), byte-identical to a full re-mine of the evolved
        graph.  :attr:`last_update_stats` records how much work the
        delta actually did.
        """
        if self.result is None:
            raise DeltaError("update() before mine() — run the initial mine first")
        params = self.params
        miner = self._miner
        stats = UpdateStats()
        started = time.perf_counter()

        report = DeltaReport()
        if edge_edits:
            report = report.merge(self.graph.apply_edge_batch(edge_edits))
        if attribute_edits:
            report = report.merge(
                self.graph.apply_attribute_batch(attribute_edits)
            )
        touched = report.touched_chunks
        stats.touched_chunks = len(touched)

        # 1. Stale caches out: the miner's own memo is the only live one.
        stats.memo_evicted = invalidate_memo(miner.coverage_memo, touched)

        # 2. Null model: degree structure changed → rebuild and re-derive
        #    the Theorem-5 expectation used for extendability flips.
        null_changed = report.structural_change
        old_expected_at_min = self._expected_at_min
        if null_changed:
            miner.null_model = self._factory(
                self.graph, params.quasi_clique_params()
            )
        new_expected_at_min = miner.null_model.expected_epsilon(
            params.min_support
        )

        counters = MiningCounters()
        result = MiningResult(algorithm=self._algorithm, counters=counters)

        # 3. Base pass: walk the *new* frequent-item order, reusing clean
        #    roots and re-evaluating dirty/new ones through the miner.
        vertical = bitset_vertical_database(self.graph, params.engine)
        base = frequent_items(vertical, params.min_support)
        index = self.graph.bitset_index(params.engine)

        old_roots = {state.attribute: state for state in self._roots}
        edited = report.edited_attributes

        roots: List[_RootState] = []
        candidates: List[_Candidate] = []
        clean_roots: Dict[Attribute, bool] = {}
        scratch = MiningResult(algorithm=self._algorithm, counters=counters)
        for attribute, tidset in base:
            old = old_roots.get(attribute)
            clean = (
                old is not None
                and attribute not in edited
                and not native_touches(old.tidset_native, touched)
            )
            record = old.record if clean else None
            if clean and null_changed:
                expected = miner.null_model.expected_epsilon(record.support)
                delta = normalized_structural_correlation(
                    record.epsilon, expected
                )
                qualified = (
                    record.epsilon >= params.min_epsilon
                    and delta >= params.min_delta
                )
                if qualified != record.qualified:
                    # A qualification flip changes pattern extraction —
                    # patching cannot reproduce it, so re-evaluate.
                    clean = False
                elif (
                    expected != record.expected_epsilon
                    or delta != record.delta
                ):
                    record = replace(
                        record, expected_epsilon=expected, delta=delta
                    )
                    stats.records_patched += 1
            if clean:
                stats.roots_reused += 1
                extendable = miner._may_extend(record.epsilon, record.support)
                covered_native = old.covered_native
                if extendable and covered_native is None:
                    # The root was pruned before but the new expectation
                    # admits it: rebuild its covered native from the record.
                    covered_native = index.working_mask(
                        record.covered_vertices
                    )
                candidate = (
                    _Candidate(
                        items=(attribute,),
                        tidset=tidset,
                        covered=index.bitset(covered_native),
                    )
                    if extendable
                    else None
                )
            else:
                stats.roots_reevaluated += 1
                candidate = miner._evaluate(
                    items=(attribute,),
                    tidset=tidset,
                    candidate_vertices=None,
                    result=scratch,
                )
                record = scratch.evaluated[-1]
                extendable = candidate is not None
                covered_native = (
                    _native(candidate.covered) if candidate else None
                )
            roots.append(
                _RootState(
                    attribute=attribute,
                    record=record,
                    tidset_native=_native(tidset),
                    covered_native=covered_native,
                    extendable=extendable,
                )
            )
            clean_roots[attribute] = clean
            if candidate is not None:
                candidates.append(candidate)
        stats.roots_total = len(roots)

        # 4. Branch reuse: positions inside the longest common suffix of
        #    the old/new extendable lists join exactly the siblings they
        #    joined before; everything else re-runs.
        old_ext = self._extendable
        new_ext = [c.items[0] for c in candidates]
        suffix = 0
        limit = min(len(old_ext), len(new_ext))
        while (
            suffix < limit
            and old_ext[-1 - suffix] == new_ext[-1 - suffix]
        ):
            suffix += 1
        suffix_start = len(new_ext) - suffix

        branch_lists: List[Optional[List[AttributeSetResult]]] = [
            None
        ] * len(candidates)
        rerun: List[int] = []
        for position, candidate in enumerate(candidates):
            attribute = candidate.items[0]
            reusable = (
                position >= suffix_start
                and clean_roots.get(attribute, False)
                and attribute in self._branches
            )
            records = self._branches.get(attribute)
            if reusable and null_changed:
                records, reusable = self._patch_branch(
                    records,
                    old_expected_at_min,
                    new_expected_at_min,
                    stats,
                )
            if reusable:
                stats.branches_reused += 1
                branch_lists[position] = records
            else:
                rerun.append(position)
        stats.branches_total = len(candidates)
        stats.branches_rerun = len(rerun)

        for position, records in zip(
            rerun, self._run_branches(candidates, rerun, counters)
        ):
            branch_lists[position] = records

        # 5. Assembly in full-mine order: base records (new frequent-item
        #    order), then each extendable root's whole subtree.
        result.evaluated.extend(state.record for state in roots)
        for records in branch_lists:
            result.evaluated.extend(records)

        self._roots = roots
        self._extendable = new_ext
        self._branches = {
            attribute: branch_lists[position]
            for position, attribute in enumerate(new_ext)
        }
        self._expected_at_min = new_expected_at_min
        counters.elapsed_seconds = time.perf_counter() - started
        stats.elapsed_seconds = counters.elapsed_seconds
        self.result = result
        self.last_update_stats = stats
        return result

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _patch_branch(
        self,
        records: List[AttributeSetResult],
        old_expected_at_min: float,
        new_expected_at_min: float,
        stats: UpdateStats,
    ) -> Tuple[Optional[List[AttributeSetResult]], bool]:
        """Re-derive a clean branch's null-dependent fields, or refuse.

        Every record's ε and support are unchanged (the subtree's inputs
        are), but ``expected_epsilon``/``delta`` follow the new model.
        If any record's ``qualified`` verdict or Theorem-4/5
        extendability flips, the branch *shape* would differ from a full
        re-mine and the caller must re-run it instead.
        """
        params = self.params
        null = self._miner.null_model
        patched: List[AttributeSetResult] = []
        for record in records:
            if _may_extend_static(
                record.epsilon, record.support, params, old_expected_at_min
            ) != _may_extend_static(
                record.epsilon, record.support, params, new_expected_at_min
            ):
                return None, False
            expected = null.expected_epsilon(record.support)
            delta = normalized_structural_correlation(record.epsilon, expected)
            qualified = (
                record.epsilon >= params.min_epsilon
                and delta >= params.min_delta
            )
            if qualified != record.qualified:
                return None, False
            if (
                expected != record.expected_epsilon
                or delta != record.delta
            ):
                record = replace(
                    record, expected_epsilon=expected, delta=delta
                )
                stats.records_patched += 1
            patched.append(record)
        return patched, True

    def _run_branches(
        self,
        candidates: List[_Candidate],
        positions: List[int],
        counters: MiningCounters,
    ) -> List[List[AttributeSetResult]]:
        """Mine the subtree of each requested candidate position.

        Returns the per-position record lists aligned with ``positions``.
        Sequential when ``n_jobs == 1`` (sharing the live coverage memo,
        exactly like ``SCPM._extend``); otherwise one ``"roots"`` task
        per position through the work-stealing scheduler with a
        post-invalidation memo snapshot — the keyed merge reproduces the
        sequential record order for any worker count.
        """
        if not positions:
            return []
        params = self.params
        miner = self._miner
        jobs = params.resolved_jobs() if params.n_jobs != 1 else 1
        jobs = min(jobs, len(positions))
        if jobs <= 1:
            out: List[List[AttributeSetResult]] = []
            for position in positions:
                branch = MiningResult(
                    algorithm=self._algorithm, counters=counters
                )
                miner._extend_branch(candidates, position, branch)
                out.append(branch.evaluated)
            return out
        payload = _BranchPayload(
            graph=self.graph,
            params=params,
            null_model=miner.null_model,
            collect_patterns=miner.collect_patterns,
            candidate_states=[_candidate_state(c) for c in candidates],
            memo_snapshot=(
                miner.coverage_memo.snapshot()
                if miner.coverage_memo is not None
                else None
            ),
        )
        merged: Dict[int, Tuple[List[AttributeSetResult], MiningCounters]] = {}
        with WorkStealingScheduler(
            payload,
            _branch_task,
            jobs,
            transfer=params.transfer,
            batch_size=params.task_batch_size,
        ) as scheduler:
            for position in positions:
                scheduler.submit(
                    (position, 0, 0),
                    "roots",
                    (position,),
                    weight=len(candidates[position].tidset),
                )
            for _, value in scheduler.drain():
                for root, records, task_counters in value:
                    merged[root] = (records, task_counters)
        out = []
        for position in positions:
            records, task_counters = merged[position]
            _accumulate_counters(counters, task_counters)
            out.append(records)
        return out


__all__ = ["IncrementalSCPM", "UpdateStats"]

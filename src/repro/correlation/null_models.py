"""Null models for the expected structural correlation (Section 2.1.3).

Two models are provided:

* :class:`AnalyticalNullModel` — the closed-form upper bound ``max-exp`` of
  Theorem 2: the probability that a random vertex of a random σ-vertex
  subgraph keeps degree at least ``ceil(γ (min_size - 1))``, computed from
  the binomial thinning of the population degree distribution (Theorem 1).
* :class:`SimulationNullModel` — the sampling estimate ``sim-exp``: draw
  random σ-vertex subsets, run the quasi-clique coverage search on each, and
  average the covered fraction.

Both expose ``expected_epsilon(support)`` and are monotonically
non-decreasing in the support, which is what the Theorem-5 pruning rule
relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import stats

from repro.errors import ParameterError
from repro.graph.attributed_graph import AttributedGraph
from repro.graph.statistics import DegreeDistribution, degree_distribution
from repro.parallel.scheduler import (
    WorkStealingScheduler,
    resolve_jobs,
    validate_jobs,
)
from repro.parallel.transfer import in_worker, resolve_transfer
from repro.correlation.structural import covered_native
from repro.quasiclique.definitions import QuasiCliqueParams
from repro.quasiclique.memo import CoverageMemo
from repro.quasiclique.search import DFS, QuasiCliqueSearch


def binomial_degree_probability(alpha: int, beta: int, rho: float) -> float:
    """Theorem 1: probability that a degree-α vertex keeps degree β in the sample.

    ``F(α, β, ρ) = C(α, β) ρ^β (1-ρ)^(α-β)`` where ρ is the inclusion
    probability of each remaining vertex.
    """
    if beta < 0 or beta > alpha:
        return 0.0
    return float(stats.binom.pmf(beta, alpha, rho))


def inclusion_probability(support: int, num_vertices: int) -> float:
    """Equation 4: ``ρ = (σ(S) - 1) / (|V| - 1)``, clipped to [0, 1]."""
    if num_vertices <= 1:
        return 0.0
    rho = (support - 1) / (num_vertices - 1)
    return float(min(max(rho, 0.0), 1.0))


def max_expected_epsilon(
    distribution: DegreeDistribution,
    num_vertices: int,
    support: int,
    params: QuasiCliqueParams,
) -> float:
    """Theorem 2: analytical upper bound ``max-exp`` on the expected ε.

    ``max-exp(σ) = Σ_{α ≥ z} p(α) · P[Bin(α, ρ) ≥ z]`` with
    ``z = ceil(γ (min_size - 1))`` and ``ρ = (σ-1)/(|V|-1)``.
    """
    if support < 0:
        raise ParameterError(f"support must be >= 0, got {support}")
    if num_vertices <= 1 or len(distribution.degrees) == 0:
        return 0.0
    z = params.base_degree_threshold
    rho = inclusion_probability(support, num_vertices)
    if rho <= 0.0:
        return 0.0
    mask = distribution.degrees >= z
    if not np.any(mask):
        return 0.0
    degrees = distribution.degrees[mask]
    probabilities = distribution.probabilities[mask]
    # P[Bin(α, ρ) >= z] for each eligible degree α
    tail = stats.binom.sf(z - 1, degrees, rho)
    return float(np.dot(probabilities, tail))


class AnalyticalNullModel:
    """``max-exp`` null model with per-support caching.

    Parameters
    ----------
    graph:
        The population graph G.
    params:
        The quasi-clique parameters used for mining.
    """

    name = "max-exp"

    def __init__(self, graph: AttributedGraph, params: QuasiCliqueParams) -> None:
        self.params = params
        self.num_vertices = graph.num_vertices
        self.distribution = degree_distribution(graph)
        self._cache: Dict[int, float] = {}

    def expected_epsilon(self, support: int) -> float:
        """Return ``max-exp(support)`` (cached)."""
        cached = self._cache.get(support)
        if cached is None:
            cached = max_expected_epsilon(
                self.distribution, self.num_vertices, support, self.params
            )
            self._cache[support] = cached
        return cached

    def curve(self, supports: Sequence[int]) -> List[Tuple[int, float]]:
        """Return ``[(σ, max-exp(σ)), ...]`` for plotting (Figures 4, 7, 9)."""
        return [(s, self.expected_epsilon(s)) for s in supports]


@dataclass(frozen=True)
class SimulationEstimate:
    """Mean and standard deviation of the simulated expected ε."""

    support: int
    mean: float
    std: float
    runs: int


class _SamplePayload:
    """Read-only worker payload for parallel sample evaluation.

    The worker-side context (vertex table in the parent's iteration order)
    is rebuilt lazily per process and excluded from pickling.
    """

    def __init__(self, graph: AttributedGraph, params: QuasiCliqueParams, order: str) -> None:
        self.graph = graph
        self.params = params
        self.order = order
        self._vertices: Optional[List] = None

    def vertices(self) -> List:
        if self._vertices is None:
            self._vertices = list(self.graph.vertices())
        return self._vertices

    def __getstate__(self):
        return (self.graph, self.params, self.order)

    def __setstate__(self, state) -> None:
        self.graph, self.params, self.order = state
        self._vertices = None


def _sample_coverage_task(payload: _SamplePayload, indices: Tuple[int, ...]) -> int:
    """Scheduler task: covered-vertex count of one random σ-vertex sample."""
    table = payload.vertices()
    search = QuasiCliqueSearch(
        payload.graph,
        payload.params,
        vertices=[table[i] for i in indices],
        order=payload.order,
    )
    return len(search.covered_vertices())


#: Largest graph whose null-model sample searches are always memoized.
#: Above it, distinct σ-subsets essentially never collide unless σ is
#: clamped at |V| — memoizing every sample would only grow the memo by
#: one |V|-wide covered native per draw with a ~zero hit rate.
_MEMO_ALL_SAMPLES_MAX_VERTICES = 1024


def _sample_covered_count(
    payload: _SamplePayload, index, indices: Tuple[int, ...], memo: CoverageMemo
) -> int:
    """Memo-aware twin of :func:`_sample_coverage_task` (sequential path).

    The covered count of a sample is a pure function of the sampled
    working set and the quasi-clique parameters, so repeated draws of
    the same vertex set — guaranteed for supports clamped at |V|, likely
    for supports near it — hit the
    :class:`~repro.quasiclique.memo.CoverageMemo` instead of re-running
    the search (through the shared
    :func:`repro.correlation.structural.covered_native` wrapper).  Hit
    or miss, the count is byte-identical to the plain task's.
    """
    table = payload.vertices()
    working = index.working_mask([table[i] for i in indices])
    covered, _ = covered_native(
        payload.graph,
        payload.params,
        index,
        working,
        order=payload.order,
        memo=memo,
    )
    return covered.bit_count()


class SimulationNullModel:
    """``sim-exp`` null model: Monte-Carlo estimate over random vertex samples.

    Every support value draws from its **own child random stream**, derived
    from the model seed and the support (``SeedSequence(seed,
    spawn_key=(support,))``), and all ``runs`` index samples are drawn
    vectorized up front.  The estimate is therefore a pure function of
    ``(graph, params, runs, seed, order, support)`` — independent of the
    order in which supports are evaluated — which is what lets SCPM's
    parallel schedules reproduce the sequential output byte-for-byte with
    this model plugged in.

    Parameters
    ----------
    graph:
        The population graph G.
    params:
        Quasi-clique parameters.
    runs:
        Number of random samples per support value (``r`` in the paper).
    seed:
        Seed for the per-support child streams; ``None`` draws fresh
        entropy once (the instance stays self-consistent, but two
        instances differ).
    order:
        Traversal order of the coverage search on each sample.
    n_jobs:
        Worker processes for evaluating the per-sample coverage searches
        through the work-stealing scheduler
        (:mod:`repro.parallel.scheduler`).  ``1`` (default) evaluates
        in-process; any value yields identical estimates.  The pool and
        its one-time graph transfer are opened lazily on the first
        parallel estimate and **kept alive for the model's lifetime**
        (every support value reuses them); call :meth:`close` — or use
        the model as a context manager — to release the workers
        deterministically.  Inside a pool worker the model always runs
        sequentially (nested pools are forbidden).
    transfer:
        Payload transfer strategy for ``n_jobs > 1`` (see
        :mod:`repro.parallel.transfer`).
    use_coverage_memo:
        ``True`` (default) caches per-sample coverage results in a
        :class:`~repro.quasiclique.memo.CoverageMemo` keyed by the
        sampled working set.  Memoization applies where collisions are
        real: every sample on graphs up to
        :data:`_MEMO_ALL_SAMPLES_MAX_VERTICES` vertices, and supports
        clamped at |V| (which draw the identical sample every run) on
        bigger ones — so the memo never hoards large covered sets with a
        zero hit rate.  Only the in-process evaluation path consults it
        (pool workers each see too few samples to amortise a shared
        memo); estimates are byte-identical either way.
    """

    name = "sim-exp"

    def __init__(
        self,
        graph: AttributedGraph,
        params: QuasiCliqueParams,
        runs: int = 30,
        seed: Optional[int] = 7,
        order: str = DFS,
        n_jobs: int = 1,
        transfer: str = "auto",
        use_coverage_memo: bool = True,
    ) -> None:
        if runs < 1:
            raise ParameterError(f"runs must be >= 1, got {runs}")
        validate_jobs(n_jobs)
        resolve_transfer(transfer)  # fail fast, not on the first estimate
        self.graph = graph
        self.params = params
        self.runs = runs
        self.order = order
        self.n_jobs = n_jobs
        self.transfer = transfer
        self.coverage_memo: Optional[CoverageMemo] = (
            CoverageMemo() if use_coverage_memo else None
        )
        self._entropy = (
            seed if seed is not None else np.random.SeedSequence().entropy
        )
        self._vertices = list(graph.vertices())
        self._cache: Dict[int, SimulationEstimate] = {}
        self._scheduler: Optional[WorkStealingScheduler] = None
        # Monotonic submission-wave counter: scheduler keys are unique for
        # the scheduler's whole lifetime, and the pool outlives many
        # _materialize calls, so keys carry the wave to stay collision-free
        # even if a support is ever re-evaluated (e.g. after cache
        # invalidation).
        self._wave = 0
        #: Number of coverage searches this model has executed — the
        #: cache-regression tests assert repeated estimates don't re-run
        #: the Monte-Carlo loop.
        self.searches_run = 0

    def _sample_indices(self, support: int) -> np.ndarray:
        """All ``runs`` σ-vertex samples from the child stream of ``support``.

        Rows are without-replacement samples drawn with Floyd's algorithm:
        all ``runs × support`` random draws come from the generator in one
        vectorized call and the per-row work is O(support) — never a full
        O(|V|) permutation, which matters when SCPM probes many supports
        on a 100k-vertex graph.  (Rows are member *sets*; their internal
        order is irrelevant to the vertex-restricted coverage search.)
        """
        rng = np.random.default_rng(
            np.random.SeedSequence(entropy=self._entropy, spawn_key=(support,))
        )
        population = len(self._vertices)
        first = population - support
        # draw t_j ~ U[0, j] for j = first..population-1, for every row
        bounds = np.arange(first + 1, population + 1)
        draws = rng.integers(0, bounds, size=(self.runs, support))
        rows = np.empty((self.runs, support), dtype=np.int64)
        for run in range(self.runs):
            chosen = set()
            for offset in range(support):
                candidate = int(draws[run, offset])
                if candidate in chosen:
                    candidate = first + offset
                chosen.add(candidate)
                rows[run, offset] = candidate
        return rows

    def _open_scheduler(self) -> WorkStealingScheduler:
        """The persistent worker pool (opened lazily, reused across calls)."""
        if self._scheduler is None:
            scheduler = WorkStealingScheduler(
                _SamplePayload(self.graph, self.params, self.order),
                _sample_coverage_task,
                resolve_jobs(self.n_jobs),
                transfer=self.transfer,
            )
            scheduler.__enter__()
            self._scheduler = scheduler
        return self._scheduler

    def close(self) -> None:
        """Release the persistent worker pool and its payload transfer."""
        if self._scheduler is not None:
            self._scheduler.__exit__(None, None, None)
            self._scheduler = None

    def __enter__(self) -> "SimulationNullModel":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass  # interpreter-shutdown teardown must never raise

    def __getstate__(self):
        # The live pool cannot cross process boundaries (the model is
        # pickled into SCPM worker payloads); everything else can.
        state = dict(self.__dict__)
        state["_scheduler"] = None
        return state

    def _materialize(self, supports: Sequence[int]) -> None:
        """Compute and cache the estimates for (clamped) support values.

        All samples of every uncached support are evaluated through the
        model's persistent scheduler when ``n_jobs > 1`` — the pool is
        started and the graph payload transferred once per model, not
        once per support.
        """
        pending = [
            s for s in dict.fromkeys(supports) if s not in self._cache
        ]
        if not pending:
            return
        rows_by_support: Dict[int, List[Tuple[int, ...]]] = {}
        for support in pending:
            if support >= self.params.min_size:
                rows_by_support[support] = [
                    tuple(int(i) for i in row)
                    for row in self._sample_indices(support)
                ]
        total_rows = sum(len(rows) for rows in rows_by_support.values())
        self.searches_run += total_rows

        wave = self._wave
        self._wave += 1
        counts: Dict[Tuple[int, int, int], int] = {}
        if resolve_jobs(self.n_jobs) > 1 and total_rows > 1 and not in_worker():
            scheduler = self._open_scheduler()
            for support, rows in rows_by_support.items():
                for run, row in enumerate(rows):
                    scheduler.submit((wave, support, run), row, weight=support)
            for _ in scheduler.drain():
                pass
            counts = dict(scheduler.results)
            # keep the persistent pool O(1) in memory across waves (key
            # uniqueness is carried by the wave counter)
            scheduler.release_results()
        else:
            payload = _SamplePayload(self.graph, self.params, self.order)
            payload._vertices = self._vertices  # already computed parent-side
            memo = self.coverage_memo
            population = len(self._vertices)
            index = (
                self.graph.bitset_index() if memo is not None else None
            )
            for support, rows in rows_by_support.items():
                # Memoize only where samples can actually collide: every
                # draw on small graphs, and σ clamped at |V| (identical
                # sample each run) on big ones — unbounded big-graph
                # memoization would hoard |V|-wide covered sets that are
                # never hit.
                use_memo = memo is not None and (
                    support >= population
                    or population <= _MEMO_ALL_SAMPLES_MAX_VERTICES
                )
                for run, row in enumerate(rows):
                    if use_memo:
                        counts[(wave, support, run)] = _sample_covered_count(
                            payload, index, row, memo
                        )
                    else:
                        counts[(wave, support, run)] = _sample_coverage_task(
                            payload, row
                        )

        for support in pending:
            fractions = np.zeros(self.runs, dtype=np.float64)
            if support in rows_by_support:
                fractions = (
                    np.asarray(
                        [
                            counts[(wave, support, run)]
                            for run in range(self.runs)
                        ],
                        dtype=np.float64,
                    )
                    / support
                )
            self._cache[support] = SimulationEstimate(
                support=support,
                mean=float(fractions.mean()),
                std=float(fractions.std()),
                runs=self.runs,
            )

    def _clamp(self, support: int) -> int:
        return min(max(support, 0), len(self._vertices))

    def estimate(self, support: int) -> SimulationEstimate:
        """Return the Monte-Carlo estimate for one support value (cached).

        The support is clamped to ``[0, |V|]`` *before* the cache lookup,
        so repeated out-of-range supports hit the cache instead of
        re-running the full Monte-Carlo estimate each call.
        """
        support = self._clamp(support)
        cached = self._cache.get(support)
        if cached is not None:
            return cached
        self._materialize([support])
        return self._cache[support]

    def expected_epsilon(self, support: int) -> float:
        """Return the simulated mean expected ε for ``support``."""
        return self.estimate(support).mean

    def curve(self, supports: Sequence[int]) -> List[SimulationEstimate]:
        """Return the estimates for a sweep of support values.

        The sweep's samples are all submitted to the model's persistent
        worker pool in one wave (see :meth:`_materialize`).
        """
        self._materialize([self._clamp(s) for s in supports])
        return [self.estimate(s) for s in supports]


def normalized_structural_correlation(epsilon: float, expected_epsilon: float) -> float:
    """Definition 5: ``δ = ε / exp``.

    A zero expectation with a positive ε yields ``inf`` (the observation is
    infinitely more correlated than the null model predicts); a zero
    expectation with zero ε yields 0.
    """
    if expected_epsilon > 0.0:
        return epsilon / expected_epsilon
    return float("inf") if epsilon > 0.0 else 0.0

"""Null models for the expected structural correlation (Section 2.1.3).

Two models are provided:

* :class:`AnalyticalNullModel` — the closed-form upper bound ``max-exp`` of
  Theorem 2: the probability that a random vertex of a random σ-vertex
  subgraph keeps degree at least ``ceil(γ (min_size - 1))``, computed from
  the binomial thinning of the population degree distribution (Theorem 1).
* :class:`SimulationNullModel` — the sampling estimate ``sim-exp``: draw
  random σ-vertex subsets, run the quasi-clique coverage search on each, and
  average the covered fraction.

Both expose ``expected_epsilon(support)`` and are monotonically
non-decreasing in the support, which is what the Theorem-5 pruning rule
relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import stats

from repro.errors import ParameterError
from repro.graph.attributed_graph import AttributedGraph
from repro.graph.statistics import DegreeDistribution, degree_distribution
from repro.quasiclique.definitions import QuasiCliqueParams
from repro.quasiclique.search import DFS, QuasiCliqueSearch


def binomial_degree_probability(alpha: int, beta: int, rho: float) -> float:
    """Theorem 1: probability that a degree-α vertex keeps degree β in the sample.

    ``F(α, β, ρ) = C(α, β) ρ^β (1-ρ)^(α-β)`` where ρ is the inclusion
    probability of each remaining vertex.
    """
    if beta < 0 or beta > alpha:
        return 0.0
    return float(stats.binom.pmf(beta, alpha, rho))


def inclusion_probability(support: int, num_vertices: int) -> float:
    """Equation 4: ``ρ = (σ(S) - 1) / (|V| - 1)``, clipped to [0, 1]."""
    if num_vertices <= 1:
        return 0.0
    rho = (support - 1) / (num_vertices - 1)
    return float(min(max(rho, 0.0), 1.0))


def max_expected_epsilon(
    distribution: DegreeDistribution,
    num_vertices: int,
    support: int,
    params: QuasiCliqueParams,
) -> float:
    """Theorem 2: analytical upper bound ``max-exp`` on the expected ε.

    ``max-exp(σ) = Σ_{α ≥ z} p(α) · P[Bin(α, ρ) ≥ z]`` with
    ``z = ceil(γ (min_size - 1))`` and ``ρ = (σ-1)/(|V|-1)``.
    """
    if support < 0:
        raise ParameterError(f"support must be >= 0, got {support}")
    if num_vertices <= 1 or len(distribution.degrees) == 0:
        return 0.0
    z = params.base_degree_threshold
    rho = inclusion_probability(support, num_vertices)
    if rho <= 0.0:
        return 0.0
    mask = distribution.degrees >= z
    if not np.any(mask):
        return 0.0
    degrees = distribution.degrees[mask]
    probabilities = distribution.probabilities[mask]
    # P[Bin(α, ρ) >= z] for each eligible degree α
    tail = stats.binom.sf(z - 1, degrees, rho)
    return float(np.dot(probabilities, tail))


class AnalyticalNullModel:
    """``max-exp`` null model with per-support caching.

    Parameters
    ----------
    graph:
        The population graph G.
    params:
        The quasi-clique parameters used for mining.
    """

    name = "max-exp"

    def __init__(self, graph: AttributedGraph, params: QuasiCliqueParams) -> None:
        self.params = params
        self.num_vertices = graph.num_vertices
        self.distribution = degree_distribution(graph)
        self._cache: Dict[int, float] = {}

    def expected_epsilon(self, support: int) -> float:
        """Return ``max-exp(support)`` (cached)."""
        cached = self._cache.get(support)
        if cached is None:
            cached = max_expected_epsilon(
                self.distribution, self.num_vertices, support, self.params
            )
            self._cache[support] = cached
        return cached

    def curve(self, supports: Sequence[int]) -> List[Tuple[int, float]]:
        """Return ``[(σ, max-exp(σ)), ...]`` for plotting (Figures 4, 7, 9)."""
        return [(s, self.expected_epsilon(s)) for s in supports]


@dataclass(frozen=True)
class SimulationEstimate:
    """Mean and standard deviation of the simulated expected ε."""

    support: int
    mean: float
    std: float
    runs: int


class SimulationNullModel:
    """``sim-exp`` null model: Monte-Carlo estimate over random vertex samples.

    Parameters
    ----------
    graph:
        The population graph G.
    params:
        Quasi-clique parameters.
    runs:
        Number of random samples per support value (``r`` in the paper).
    seed:
        Seed for the random generator, for reproducible experiments.
    order:
        Traversal order of the coverage search on each sample.
    """

    name = "sim-exp"

    def __init__(
        self,
        graph: AttributedGraph,
        params: QuasiCliqueParams,
        runs: int = 30,
        seed: Optional[int] = 7,
        order: str = DFS,
    ) -> None:
        if runs < 1:
            raise ParameterError(f"runs must be >= 1, got {runs}")
        self.graph = graph
        self.params = params
        self.runs = runs
        self.order = order
        self._rng = np.random.default_rng(seed)
        self._vertices = list(graph.vertices())
        self._cache: Dict[int, SimulationEstimate] = {}

    def estimate(self, support: int) -> SimulationEstimate:
        """Return the Monte-Carlo estimate for one support value (cached)."""
        cached = self._cache.get(support)
        if cached is not None:
            return cached
        support = min(max(support, 0), len(self._vertices))
        fractions = np.zeros(self.runs, dtype=np.float64)
        if support >= self.params.min_size:
            for run in range(self.runs):
                indices = self._rng.choice(
                    len(self._vertices), size=support, replace=False
                )
                sample_vertices = [self._vertices[i] for i in indices]
                search = QuasiCliqueSearch(
                    self.graph,
                    self.params,
                    vertices=sample_vertices,
                    order=self.order,
                )
                covered = search.covered_vertices()
                fractions[run] = len(covered) / support
        estimate = SimulationEstimate(
            support=support,
            mean=float(fractions.mean()),
            std=float(fractions.std()),
            runs=self.runs,
        )
        self._cache[support] = estimate
        return estimate

    def expected_epsilon(self, support: int) -> float:
        """Return the simulated mean expected ε for ``support``."""
        return self.estimate(support).mean

    def curve(self, supports: Sequence[int]) -> List[SimulationEstimate]:
        """Return the estimates for a sweep of support values."""
        return [self.estimate(s) for s in supports]


def normalized_structural_correlation(epsilon: float, expected_epsilon: float) -> float:
    """Definition 5: ``δ = ε / exp``.

    A zero expectation with a positive ε yields ``inf`` (the observation is
    infinitely more correlated than the null model predicts); a zero
    expectation with zero ε yields 0.
    """
    if expected_epsilon > 0.0:
        return epsilon / expected_epsilon
    return float("inf") if epsilon > 0.0 else 0.0

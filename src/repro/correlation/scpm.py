"""The SCPM algorithm (Algorithms 2 and 3 of the paper).

SCPM enumerates attribute sets in an Eclat-style depth-first traversal over
tidset intersections and, for each attribute set that survives the support
threshold, evaluates the structural correlation with the coverage-oriented
quasi-clique search.  Three ideas distinguish it from the naive baseline:

* **Vertex pruning (Theorem 3)** — quasi-cliques of ``G(S_i ∪ S_j)`` can only
  contain vertices covered in both parents, so the coverage search for an
  extended attribute set is restricted to ``K_{S_i} ∩ K_{S_j} ∩ V(S)``.
* **Attribute-set pruning (Theorems 4 and 5)** — an attribute set is extended
  only if ``ε(S)·σ(S) ≥ ε_min·σ_min`` and
  ``ε(S)·σ(S) ≥ δ_min·exp(σ_min)·σ_min``; no superset can reach the
  thresholds otherwise.
* **Top-k patterns (Section 3.2.3)** — for qualifying attribute sets only the
  k largest/densest patterns are extracted, with the dynamically raised size
  threshold.

The enumeration state lives on the bitset vertex-set engine
(:mod:`repro.graph.vertexset`): tidsets and covered sets are
:class:`~repro.graph.vertexset.VertexBitset` masks, so the Eclat join and the
Theorem-3 intersection are single integer ``&`` operations.  Results are
converted to plain ``frozenset`` objects at the :class:`MiningResult`
boundary, keeping the public API identical to the frozenset implementation.

With ``SCPMParams.n_jobs > 1`` the independent attribute branches (the
subtrees rooted at each frequent 1-attribute set, Algorithm 3) are fanned
out over worker processes through the
:class:`~repro.parallel.scheduler.WorkStealingScheduler`.  Two schedules
exist behind ``SCPMParams.schedule``:

* ``"steal"`` (default) — every first-level branch (and, at
  ``fanout_depth=2``, every second-level prefix class) becomes one task in
  a shared queue that idle workers pull from, with small tasks batched by
  tidset size; a skewed subtree therefore spreads over all workers instead
  of serializing one of them.
* ``"stripe"`` — the PR-1 static striping (one coarse root-stripe task per
  worker), kept as the benchmark baseline.

The read-only payload (graph, cached bitset index, candidate states)
travels **once per worker** via :mod:`repro.parallel.transfer` — fork
inheritance or one pickle into a shared-memory segment — never per task.
Candidates cross the process boundary as indexer-free native masks and are
rebound to the worker's own index on arrival, so every bitset inside one
worker shares a single indexer (the invariant the engines enforce with
:class:`~repro.errors.IndexerMismatchError`).  Results are keyed by
``(root, phase, position)`` and merged in sorted key order, so the output —
record order included — is byte-identical to the sequential run for any
worker count and either schedule.  Both bundled null models qualify: the
analytical model is closed-form, and
:class:`~repro.correlation.null_models.SimulationNullModel` derives an
independent child seed per support value, making its estimates pure
functions of the support regardless of evaluation order.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, fields
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.errors import ParallelError
from repro.graph.streaming import GraphLike
from repro.graph.vertexset import VertexBitset
from repro.itemsets.itemset import canonical_itemset
from repro.itemsets.transactions import bitset_vertical_database, frequent_items
from repro.correlation.null_models import (
    AnalyticalNullModel,
    normalized_structural_correlation,
)
from repro.correlation.parameters import SCPMParams, STRIPE
from repro.parallel.scheduler import WorkStealingScheduler
from repro.correlation.patterns import (
    AttributeSetResult,
    MiningCounters,
    MiningResult,
    StructuralCorrelationPattern,
)
from repro.correlation.structural import (
    structural_correlation_bitset,
    top_k_patterns,
)
from repro.quasiclique.definitions import QuasiCliqueParams
from repro.quasiclique.memo import CoverageMemo

Attribute = Hashable
Vertex = Hashable


@dataclass
class _Candidate:
    """Internal per-attribute-set state carried through the enumeration.

    ``tidset`` (``V(S)``) and ``covered`` (``K_S``) are bitsets over the
    graph's dense vertex ids.
    """

    items: Tuple[Attribute, ...]
    tidset: VertexBitset
    covered: VertexBitset


class SCPM:
    """Structural Correlation Pattern Mining.

    Parameters
    ----------
    graph:
        The attributed graph to mine — an
        :class:`~repro.graph.attributed_graph.AttributedGraph` or a
        file-backed :class:`~repro.graph.streaming.StreamedGraphHandle`
        (see :meth:`from_files`); both expose the query/index surface the
        miner consumes and yield byte-identical results.
    params:
        The :class:`SCPMParams` bundle (σ_min, γ, min_size, ε_min, δ_min, k,
        search order, attribute-set size limits, ``n_jobs``).
    null_model:
        Object with an ``expected_epsilon(support)`` method.  Defaults to the
        analytical :class:`AnalyticalNullModel` (δ_lb); pass a
        :class:`~repro.correlation.null_models.SimulationNullModel` for δ_sim.
        With ``n_jobs > 1`` the null model must be picklable, and results are
        reproducible across worker counts only when ``expected_epsilon`` is a
        pure function of the support (true for the analytical model).
    collect_patterns:
        When ``False`` the top-k pattern extraction is skipped and only the
        attribute-set statistics (σ, ε, δ) are produced.  Useful for the
        parameter-sensitivity study.
    measure_task_bytes:
        When ``True`` the parallel scheduler additionally records the
        pickled size of every task batch it submits
        (``last_scheduler_stats.max_batch_bytes``).  Benchmark
        instrumentation — costs one extra serialization per batch, so it
        is off by default.

    Examples
    --------
    >>> from repro.datasets import paper_example_graph
    >>> graph = paper_example_graph()
    >>> params = SCPMParams(min_support=3, gamma=0.6, min_size=4,
    ...                     min_epsilon=0.5, top_k=10)
    >>> result = SCPM(graph, params).mine()
    >>> sorted(r.label() for r in result.qualified)
    ['A', 'A B', 'B']
    """

    def __init__(
        self,
        graph: GraphLike,
        params: SCPMParams,
        null_model: Optional[object] = None,
        collect_patterns: bool = True,
        measure_task_bytes: bool = False,
    ) -> None:
        self.graph = graph
        self.params = params
        self.qc_params: QuasiCliqueParams = params.quasi_clique_params()
        self.null_model = (
            null_model
            if null_model is not None
            else AnalyticalNullModel(graph, self.qc_params)
        )
        self.collect_patterns = collect_patterns
        self.measure_task_bytes = measure_task_bytes
        #: Lattice-wide coverage memo (None when ``params.coverage_memo``
        #: is off).  Sequential runs share it across the whole mining
        #: run; parallel runs snapshot it at fan-out time into the worker
        #: payload (see :class:`_BranchPayload`).
        self.coverage_memo: Optional[CoverageMemo] = (
            CoverageMemo() if params.coverage_memo else None
        )
        #: Introspection of the last parallel run (None after sequential
        #: runs): the scheduler's SchedulerStats, the per-task wall
        #: durations keyed by (root, phase, position), and the wall time of
        #: the parallel extension phase.  The parallel benchmark reads
        #: these to prove transfer-once behaviour and to replay the
        #: schedule through its makespan simulator.
        self.last_scheduler_stats = None
        self.last_task_durations: Optional[Dict[Tuple, float]] = None
        self.last_parallel_seconds: Optional[float] = None

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    @classmethod
    def from_files(
        cls,
        edge_path,
        attribute_path,
        params: SCPMParams,
        streaming: bool = True,
        null_model: Optional[object] = None,
        collect_patterns: bool = True,
        measure_task_bytes: bool = False,
    ) -> "SCPM":
        """Build a miner directly from an edge file plus an attribute file.

        With ``streaming=True`` (default) the files are ingested through
        :func:`repro.graph.streaming.stream_attributed_graph` — the sparse
        bitset index is built in bounded memory and no in-memory
        ``AttributedGraph`` ever exists; ``streaming=False`` uses the
        classic :func:`repro.graph.io.read_attributed_graph` loader.  The
        mined output is byte-identical either way (differential grid in
        ``tests/graph/test_streaming.py``).
        """
        if streaming:
            from repro.graph.streaming import stream_attributed_graph

            graph: GraphLike = stream_attributed_graph(edge_path, attribute_path)
        else:
            from repro.graph.io import read_attributed_graph

            graph = read_attributed_graph(edge_path, attribute_path)
        return cls(
            graph,
            params,
            null_model=null_model,
            collect_patterns=collect_patterns,
            measure_task_bytes=measure_task_bytes,
        )

    def mine(self) -> MiningResult:
        """Run the mining and return a :class:`MiningResult`."""
        params = self.params
        counters = MiningCounters()
        result = MiningResult(algorithm=f"scpm-{params.order}", counters=counters)
        started = time.perf_counter()

        # Algorithm 2, line 3: frequent size-1 attribute sets.
        vertical = bitset_vertical_database(self.graph, params.engine)
        base = frequent_items(vertical, params.min_support)

        extendable: List[_Candidate] = []
        for attribute, tidset in base:
            candidate = self._evaluate(
                items=(attribute,),
                tidset=tidset,
                candidate_vertices=None,
                result=result,
            )
            if candidate is not None:
                extendable.append(candidate)

        # Algorithm 3: recursive extension of the surviving attribute sets.
        if params.n_jobs != 1 and len(extendable) > 1:
            self._extend_parallel(extendable, result)
        else:
            self._extend(extendable, result)

        counters.elapsed_seconds = time.perf_counter() - started
        return result

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _extend(self, candidates: List[_Candidate], result: MiningResult) -> None:
        """Recursive prefix-class extension (Algorithm 3)."""
        for index in range(len(candidates)):
            self._extend_branch(candidates, index, result)

    def _extend_branch(
        self, candidates: Sequence[_Candidate], index: int, result: MiningResult
    ) -> None:
        """Explore the subtree rooted at ``candidates[index]``.

        Branches are independent given the (already evaluated) prefix class,
        which is what the ``n_jobs`` fan-out exploits.
        """
        extensions = self._evaluate_level(candidates, index, result)
        if extensions:
            self._extend(extensions, result)

    def _evaluate_level(
        self, candidates: Sequence[_Candidate], index: int, result: MiningResult
    ) -> List[_Candidate]:
        """Evaluate every one-attribute extension of ``candidates[index]``.

        Returns the surviving extensions (the next prefix class) without
        recursing into them — the seam the ``fanout_depth=2`` schedule cuts
        at: each returned extension's subtree is an independent task.
        """
        params = self.params
        max_size = params.max_attribute_set_size
        first = candidates[index]
        if max_size is not None and len(first.items) >= max_size:
            return []
        extensions: List[_Candidate] = []
        for second in candidates[index + 1 :]:
            tidset = first.tidset & second.tidset
            if len(tidset) < params.min_support:
                continue
            items = first.items + (second.items[-1],)
            # Theorem 3: quasi-cliques of the union live inside both
            # parents' covered sets.
            candidate_vertices = first.covered & second.covered & tidset
            candidate = self._evaluate(
                items=items,
                tidset=tidset,
                candidate_vertices=candidate_vertices,
                result=result,
            )
            if candidate is not None:
                extensions.append(candidate)
        return extensions

    def _extend_parallel(
        self, candidates: List[_Candidate], result: MiningResult
    ) -> None:
        """Fan the attribute branches out over the work-stealing scheduler.

        The graph (with its cached index) and the candidate states form the
        per-worker payload, transferred once per worker; tasks carry only
        root indices (plus extension states for second-level subtrees).
        Results come back keyed ``(root, phase, position)`` and are merged
        in sorted key order, reproducing the sequential output exactly for
        either schedule.
        """
        params = self.params
        jobs = params.resolved_jobs()
        if params.schedule == STRIPE or params.fanout_depth == 1:
            # one task per root at most — extra workers could never be fed
            jobs = min(jobs, len(candidates))
        if jobs <= 1:
            self._extend(candidates, result)
            return
        payload = _BranchPayload(
            graph=self.graph,
            params=params,
            null_model=self.null_model,
            collect_patterns=self.collect_patterns,
            candidate_states=[_candidate_state(c) for c in candidates],
            # Everything the first-level evaluations learned travels once
            # per worker as a read-only snapshot; workers keep their own
            # additions task-local (see _branch_task).
            memo_snapshot=(
                self.coverage_memo.snapshot()
                if self.coverage_memo is not None
                else None
            ),
        )
        weights = [len(candidate.tidset) for candidate in candidates]
        merged: Dict[Tuple[int, int, int], Tuple[List[AttributeSetResult], MiningCounters]] = {}
        phase_started = time.perf_counter()
        with WorkStealingScheduler(
            payload,
            _branch_task,
            jobs,
            transfer=params.transfer,
            batch_size=params.task_batch_size,
            measure_task_bytes=self.measure_task_bytes,
        ) as scheduler:
            if params.schedule == STRIPE:
                stripes = [
                    tuple(range(worker, len(candidates), jobs))
                    for worker in range(jobs)
                ]
                for worker, stripe in enumerate(stripes):
                    if stripe:
                        scheduler.submit(
                            ("stripe", worker),
                            "roots",
                            stripe,
                            weight=sum(weights[root] for root in stripe),
                        )
                for value in scheduler.run().values():
                    for root, records, counters in value:
                        merged[(root, 0, 0)] = (records, counters)
            elif params.fanout_depth == 1:
                for root in range(len(candidates)):
                    scheduler.submit(
                        (root, 0, 0), "roots", (root,), weight=weights[root]
                    )
                for _, value in scheduler.drain():
                    for root, records, counters in value:
                        merged[(root, 0, 0)] = (records, counters)
            else:
                for root in range(len(candidates)):
                    scheduler.submit(
                        (root, 0, 0), "level", root, weight=weights[root]
                    )
                for key, value in scheduler.drain():
                    root, phase, position = key
                    if phase == 0:
                        records, extension_states, counters = value
                        merged[key] = (records, counters)
                        for sub in range(len(extension_states)):
                            # Ship only the suffix the subtree joins
                            # against: branch `sub` never reads its
                            # preceding siblings, and the full tuple per
                            # task would be O(k²) state transfer.
                            scheduler.submit(
                                (root, 1, sub),
                                "subtree",
                                tuple(extension_states[sub:]),
                                weight=extension_states[sub].tidset.bit_count(),
                            )
                    else:
                        records, counters = value
                        merged[key] = (records, counters)
            self.last_scheduler_stats = scheduler.stats
            self.last_task_durations = dict(scheduler.task_durations)
        self.last_parallel_seconds = time.perf_counter() - phase_started
        for key in sorted(merged):
            records, counters = merged[key]
            result.evaluated.extend(records)
            _accumulate_counters(result.counters, counters)

    def _evaluate(
        self,
        items: Tuple[Attribute, ...],
        tidset: VertexBitset,
        candidate_vertices: Optional[VertexBitset],
        result: MiningResult,
    ) -> Optional[_Candidate]:
        """Measure one attribute set; return it if it may still be extended."""
        params = self.params
        counters = result.counters
        counters.attribute_sets_evaluated += 1

        support = len(tidset)
        epsilon, covered = structural_correlation_bitset(
            self.graph,
            items,
            self.qc_params,
            order=params.order,
            candidate_vertices=candidate_vertices,
            engine=params.engine,
            kernel_backend=params.kernel_backend,
            memo=self.coverage_memo,
            counters=counters,
        )
        expected = self.null_model.expected_epsilon(support)
        delta = normalized_structural_correlation(epsilon, expected)

        qualified = epsilon >= params.min_epsilon and delta >= params.min_delta
        patterns: Tuple[StructuralCorrelationPattern, ...] = ()
        if (
            qualified
            and self.collect_patterns
            and len(items) >= params.min_attribute_set_size
        ):
            patterns = tuple(
                top_k_patterns(
                    self.graph,
                    items,
                    self.qc_params,
                    params.top_k,
                    order=params.order,
                    candidate_vertices=covered,
                    engine=params.engine,
                    kernel_backend=params.kernel_backend,
                )
            )

        record = AttributeSetResult(
            attributes=canonical_itemset(items),
            support=support,
            epsilon=epsilon,
            expected_epsilon=expected,
            delta=delta,
            covered_vertices=covered.to_frozenset(),
            patterns=patterns,
            qualified=qualified,
        )
        result.evaluated.append(record)
        if qualified:
            counters.attribute_sets_qualified += 1

        if self._may_extend(epsilon, support):
            counters.attribute_sets_extended += 1
            return _Candidate(items=items, tidset=tidset, covered=covered)
        counters.attribute_sets_pruned += 1
        return None

    def _may_extend(self, epsilon: float, support: int) -> bool:
        """Theorems 4 and 5: can any superset still reach the thresholds?"""
        params = self.params
        mass = epsilon * support
        if mass < params.min_epsilon * params.min_support:
            return False
        expected_at_min = self.null_model.expected_epsilon(params.min_support)
        if mass < params.min_delta * expected_at_min * params.min_support:
            return False
        return True


def _accumulate_counters(target: MiningCounters, source: MiningCounters) -> None:
    """Add every work counter of ``source`` into ``target`` (not the wall time)."""
    for field in fields(MiningCounters):
        if field.name == "elapsed_seconds":
            continue
        if field.name == "kernel_backends":
            for label, count in source.kernel_backends.items():
                target.kernel_backends[label] = (
                    target.kernel_backends.get(label, 0) + count
                )
            continue
        setattr(target, field.name, getattr(target, field.name) + getattr(source, field.name))


@dataclass(frozen=True)
class _CandidateState:
    """Indexer-free transfer form of a :class:`_Candidate`.

    ``tidset`` and ``covered`` are the engine's *native* sets (an int mask
    on the dense engine, a :class:`~repro.graph.sparseset.SparseBitset` on
    the sparse one) — no indexer reference, so a state can cross process
    boundaries and be rebound to the receiving worker's own index.
    """

    items: Tuple[Attribute, ...]
    tidset: Any
    covered: Any


def _candidate_state(candidate: _Candidate) -> _CandidateState:
    """Strip a candidate down to natives for transfer."""
    tidset, covered = candidate.tidset, candidate.covered
    return _CandidateState(
        items=candidate.items,
        tidset=tidset.bits if isinstance(tidset, VertexBitset) else tidset.chunks,
        covered=covered.bits if isinstance(covered, VertexBitset) else covered.chunks,
    )


def _bind_candidate(state: _CandidateState, index) -> _Candidate:
    """Rebind a transferred state to the local graph index."""
    return _Candidate(
        items=state.items,
        tidset=index.bitset(state.tidset),
        covered=index.bitset(state.covered),
    )


class _BranchPayload:
    """Read-only per-worker payload of the parallel mining run.

    Travels once per worker through :mod:`repro.parallel.transfer`.  The
    lazily built context (miner + candidates bound to this process's
    index) is cached on the instance and excluded from pickling, so every
    task a worker executes reuses one miner and one indexer.
    """

    def __init__(
        self,
        graph: GraphLike,
        params: SCPMParams,
        null_model: object,
        collect_patterns: bool,
        candidate_states: List[_CandidateState],
        memo_snapshot: Optional[dict] = None,
    ) -> None:
        self.graph = graph
        self.params = params
        self.null_model = null_model
        self.collect_patterns = collect_patterns
        self.candidate_states = candidate_states
        self.memo_snapshot = memo_snapshot
        self._context: Optional[Tuple[SCPM, List[_Candidate], Any]] = None

    def context(self) -> Tuple[SCPM, List[_Candidate], Any]:
        """Build (once per process) the miner and locally bound candidates."""
        if self._context is None:
            miner = SCPM(
                self.graph,
                self.params,
                null_model=self.null_model,
                collect_patterns=self.collect_patterns,
            )
            if self.memo_snapshot is not None:
                # The shared layer is the fan-out snapshot; the local
                # layer is reset at every task boundary so each task's
                # results (hit counts included) are a pure function of
                # (payload, task args) — the scheduler's determinism
                # contract.
                miner.coverage_memo = CoverageMemo(shared=self.memo_snapshot)
            index = self.graph.bitset_index(self.params.engine)
            candidates = [
                _bind_candidate(state, index) for state in self.candidate_states
            ]
            self._context = (miner, candidates, index)
        return self._context

    def __getstate__(self):
        return (
            self.graph,
            self.params,
            self.null_model,
            self.collect_patterns,
            self.candidate_states,
            self.memo_snapshot,
        )

    def __setstate__(self, state) -> None:
        (
            self.graph,
            self.params,
            self.null_model,
            self.collect_patterns,
            self.candidate_states,
            self.memo_snapshot,
        ) = state
        self._context = None


def _branch_task(payload: _BranchPayload, kind: str, *args):
    """Scheduler task entry point — dispatches on the task kind.

    ``"roots"`` mines whole first-level subtrees (stripe mode and
    ``fanout_depth=1``), ``"level"`` evaluates one root's first-level
    joins and returns the surviving extensions as transfer states, and
    ``"subtree"`` mines one second-level prefix class.  Every kind is a
    pure function of ``(payload, args)``, which is what makes the merged
    output independent of scheduling order.
    """
    miner, candidates, index = payload.context()
    algorithm = f"scpm-{payload.params.order}"
    memo = miner.coverage_memo
    if kind == "roots":
        (roots,) = args
        output: List[Tuple[int, List[AttributeSetResult], MiningCounters]] = []
        for root in roots:
            if memo is not None:
                # per-root scoping: a root's counters must not depend on
                # which other roots happened to share this worker/batch
                memo.reset_local()
            branch = MiningResult(algorithm=algorithm, counters=MiningCounters())
            miner._extend_branch(candidates, root, branch)
            output.append((root, branch.evaluated, branch.counters))
        return output
    if kind == "level":
        (root,) = args
        if memo is not None:
            memo.reset_local()
        branch = MiningResult(algorithm=algorithm, counters=MiningCounters())
        extensions = miner._evaluate_level(candidates, root, branch)
        return (
            branch.evaluated,
            [_candidate_state(extension) for extension in extensions],
            branch.counters,
        )
    if kind == "subtree":
        (extension_states,) = args
        if memo is not None:
            memo.reset_local()
        # The states are the suffix of the prefix class starting at this
        # subtree's own branch, so the branch to explore is position 0.
        extensions = [_bind_candidate(state, index) for state in extension_states]
        branch = MiningResult(algorithm=algorithm, counters=MiningCounters())
        miner._extend_branch(extensions, 0, branch)
        return (branch.evaluated, branch.counters)
    raise ParallelError(f"unknown branch task kind {kind!r}")


def mine_scpm(
    graph: GraphLike,
    params: SCPMParams,
    null_model: Optional[object] = None,
    collect_patterns: bool = True,
) -> MiningResult:
    """Convenience wrapper around :class:`SCPM`."""
    return SCPM(
        graph, params, null_model=null_model, collect_patterns=collect_patterns
    ).mine()


def mine_scpm_files(
    edge_path,
    attribute_path,
    params: SCPMParams,
    streaming: bool = True,
    null_model: Optional[object] = None,
    collect_patterns: bool = True,
) -> MiningResult:
    """Mine straight from an edge file plus an attribute file.

    The file→stream→scheduler→results path of the CLI as a library call:
    with ``streaming=True`` the graph never exists as hashed Python sets —
    the sparse index is built in bounded memory and, when
    ``params.n_jobs > 1``, ships once per worker through the parallel
    transfer layer exactly like an in-memory graph.
    """
    return SCPM.from_files(
        edge_path,
        attribute_path,
        params,
        streaming=streaming,
        null_model=null_model,
        collect_patterns=collect_patterns,
    ).mine()

"""The SCPM algorithm (Algorithms 2 and 3 of the paper).

SCPM enumerates attribute sets in an Eclat-style depth-first traversal over
tidset intersections and, for each attribute set that survives the support
threshold, evaluates the structural correlation with the coverage-oriented
quasi-clique search.  Three ideas distinguish it from the naive baseline:

* **Vertex pruning (Theorem 3)** — quasi-cliques of ``G(S_i ∪ S_j)`` can only
  contain vertices covered in both parents, so the coverage search for an
  extended attribute set is restricted to ``K_{S_i} ∩ K_{S_j} ∩ V(S)``.
* **Attribute-set pruning (Theorems 4 and 5)** — an attribute set is extended
  only if ``ε(S)·σ(S) ≥ ε_min·σ_min`` and
  ``ε(S)·σ(S) ≥ δ_min·exp(σ_min)·σ_min``; no superset can reach the
  thresholds otherwise.
* **Top-k patterns (Section 3.2.3)** — for qualifying attribute sets only the
  k largest/densest patterns are extracted, with the dynamically raised size
  threshold.

The enumeration state lives on the bitset vertex-set engine
(:mod:`repro.graph.vertexset`): tidsets and covered sets are
:class:`~repro.graph.vertexset.VertexBitset` masks, so the Eclat join and the
Theorem-3 intersection are single integer ``&`` operations.  Results are
converted to plain ``frozenset`` objects at the :class:`MiningResult`
boundary, keeping the public API identical to the frozenset implementation.

With ``SCPMParams.n_jobs > 1`` the independent first-level attribute
branches (the subtrees rooted at each frequent 1-attribute set, Algorithm 3)
are fanned out over a :class:`concurrent.futures.ProcessPoolExecutor`.
Branches are striped over the workers and the per-branch results are merged
back in root order, so the output — record order included — is identical to
the sequential run for any worker count (assuming a deterministic null model
such as the default :class:`AnalyticalNullModel`; the Monte-Carlo
:class:`~repro.correlation.null_models.SimulationNullModel` draws its samples
in a different order under parallel scheduling).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, fields
from typing import Hashable, List, Optional, Sequence, Tuple

from repro.graph.attributed_graph import AttributedGraph
from repro.graph.vertexset import VertexBitset
from repro.itemsets.itemset import canonical_itemset
from repro.itemsets.transactions import bitset_vertical_database, frequent_items
from repro.correlation.null_models import (
    AnalyticalNullModel,
    normalized_structural_correlation,
)
from repro.correlation.parameters import SCPMParams
from repro.correlation.patterns import (
    AttributeSetResult,
    MiningCounters,
    MiningResult,
    StructuralCorrelationPattern,
)
from repro.correlation.structural import (
    structural_correlation_bitset,
    top_k_patterns,
)
from repro.quasiclique.definitions import QuasiCliqueParams

Attribute = Hashable
Vertex = Hashable


@dataclass
class _Candidate:
    """Internal per-attribute-set state carried through the enumeration.

    ``tidset`` (``V(S)``) and ``covered`` (``K_S``) are bitsets over the
    graph's dense vertex ids.
    """

    items: Tuple[Attribute, ...]
    tidset: VertexBitset
    covered: VertexBitset


class SCPM:
    """Structural Correlation Pattern Mining.

    Parameters
    ----------
    graph:
        The attributed graph to mine.
    params:
        The :class:`SCPMParams` bundle (σ_min, γ, min_size, ε_min, δ_min, k,
        search order, attribute-set size limits, ``n_jobs``).
    null_model:
        Object with an ``expected_epsilon(support)`` method.  Defaults to the
        analytical :class:`AnalyticalNullModel` (δ_lb); pass a
        :class:`~repro.correlation.null_models.SimulationNullModel` for δ_sim.
        With ``n_jobs > 1`` the null model must be picklable, and results are
        reproducible across worker counts only when ``expected_epsilon`` is a
        pure function of the support (true for the analytical model).
    collect_patterns:
        When ``False`` the top-k pattern extraction is skipped and only the
        attribute-set statistics (σ, ε, δ) are produced.  Useful for the
        parameter-sensitivity study.

    Examples
    --------
    >>> from repro.datasets import paper_example_graph
    >>> graph = paper_example_graph()
    >>> params = SCPMParams(min_support=3, gamma=0.6, min_size=4,
    ...                     min_epsilon=0.5, top_k=10)
    >>> result = SCPM(graph, params).mine()
    >>> sorted(r.label() for r in result.qualified)
    ['A', 'A B', 'B']
    """

    def __init__(
        self,
        graph: AttributedGraph,
        params: SCPMParams,
        null_model: Optional[object] = None,
        collect_patterns: bool = True,
    ) -> None:
        self.graph = graph
        self.params = params
        self.qc_params: QuasiCliqueParams = params.quasi_clique_params()
        self.null_model = (
            null_model
            if null_model is not None
            else AnalyticalNullModel(graph, self.qc_params)
        )
        self.collect_patterns = collect_patterns

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def mine(self) -> MiningResult:
        """Run the mining and return a :class:`MiningResult`."""
        params = self.params
        counters = MiningCounters()
        result = MiningResult(algorithm=f"scpm-{params.order}", counters=counters)
        started = time.perf_counter()

        # Algorithm 2, line 3: frequent size-1 attribute sets.
        vertical = bitset_vertical_database(self.graph, params.engine)
        base = frequent_items(vertical, params.min_support)

        extendable: List[_Candidate] = []
        for attribute, tidset in base:
            candidate = self._evaluate(
                items=(attribute,),
                tidset=tidset,
                candidate_vertices=None,
                result=result,
            )
            if candidate is not None:
                extendable.append(candidate)

        # Algorithm 3: recursive extension of the surviving attribute sets.
        if params.n_jobs != 1 and len(extendable) > 1:
            self._extend_parallel(extendable, result)
        else:
            self._extend(extendable, result)

        counters.elapsed_seconds = time.perf_counter() - started
        return result

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _extend(self, candidates: List[_Candidate], result: MiningResult) -> None:
        """Recursive prefix-class extension (Algorithm 3)."""
        for index in range(len(candidates)):
            self._extend_branch(candidates, index, result)

    def _extend_branch(
        self, candidates: Sequence[_Candidate], index: int, result: MiningResult
    ) -> None:
        """Explore the subtree rooted at ``candidates[index]``.

        Branches are independent given the (already evaluated) prefix class,
        which is what the ``n_jobs`` fan-out exploits.
        """
        params = self.params
        max_size = params.max_attribute_set_size
        first = candidates[index]
        if max_size is not None and len(first.items) >= max_size:
            return
        extensions: List[_Candidate] = []
        for second in candidates[index + 1 :]:
            tidset = first.tidset & second.tidset
            if len(tidset) < params.min_support:
                continue
            items = first.items + (second.items[-1],)
            # Theorem 3: quasi-cliques of the union live inside both
            # parents' covered sets.
            candidate_vertices = first.covered & second.covered & tidset
            candidate = self._evaluate(
                items=items,
                tidset=tidset,
                candidate_vertices=candidate_vertices,
                result=result,
            )
            if candidate is not None:
                extensions.append(candidate)
        if extensions:
            self._extend(extensions, result)

    def _extend_parallel(
        self, candidates: List[_Candidate], result: MiningResult
    ) -> None:
        """Fan the first-level branches out over a process pool.

        Each worker receives the full prefix class (branch ``i`` joins
        against ``candidates[i+1:]``) and a stripe of root indices; the
        evaluation records come back per root and are merged in root order,
        reproducing the sequential output exactly.
        """
        jobs = self.params.resolved_jobs()
        jobs = min(jobs, len(candidates))
        if jobs <= 1:
            self._extend(candidates, result)
            return
        try:
            from concurrent.futures import ProcessPoolExecutor

            pool = ProcessPoolExecutor(max_workers=jobs)
        except (ImportError, NotImplementedError, OSError):
            # No usable multiprocessing on this platform — mine sequentially.
            self._extend(candidates, result)
            return
        stripes = [
            list(range(worker, len(candidates), jobs)) for worker in range(jobs)
        ]
        merged = {}
        try:
            # INVARIANT: graph and candidates must travel in the SAME submit()
            # args tuple.  Pickle's memo then keeps the graph's cached
            # index indexer and every candidate bitset's indexer as one
            # object in the worker; splitting them into separate transfers
            # (or rebuilding the index worker-side) would make
            # `first.covered & second.covered` raise IndexerMismatchError
            # at extension depth >= 2.
            futures = [
                pool.submit(
                    _mine_branches_worker,
                    self.graph,
                    self.params,
                    self.null_model,
                    self.collect_patterns,
                    candidates,
                    stripe,
                )
                for stripe in stripes
                if stripe
            ]
            for future in futures:
                for root, evaluated, counters in future.result():
                    merged[root] = (evaluated, counters)
        finally:
            pool.shutdown()
        for root in sorted(merged):
            evaluated, counters = merged[root]
            result.evaluated.extend(evaluated)
            _accumulate_counters(result.counters, counters)

    def _evaluate(
        self,
        items: Tuple[Attribute, ...],
        tidset: VertexBitset,
        candidate_vertices: Optional[VertexBitset],
        result: MiningResult,
    ) -> Optional[_Candidate]:
        """Measure one attribute set; return it if it may still be extended."""
        params = self.params
        counters = result.counters
        counters.attribute_sets_evaluated += 1

        support = len(tidset)
        epsilon, covered = structural_correlation_bitset(
            self.graph,
            items,
            self.qc_params,
            order=params.order,
            candidate_vertices=candidate_vertices,
            engine=params.engine,
        )
        expected = self.null_model.expected_epsilon(support)
        delta = normalized_structural_correlation(epsilon, expected)

        qualified = epsilon >= params.min_epsilon and delta >= params.min_delta
        patterns: Tuple[StructuralCorrelationPattern, ...] = ()
        if (
            qualified
            and self.collect_patterns
            and len(items) >= params.min_attribute_set_size
        ):
            patterns = tuple(
                top_k_patterns(
                    self.graph,
                    items,
                    self.qc_params,
                    params.top_k,
                    order=params.order,
                    candidate_vertices=covered,
                    engine=params.engine,
                )
            )

        record = AttributeSetResult(
            attributes=canonical_itemset(items),
            support=support,
            epsilon=epsilon,
            expected_epsilon=expected,
            delta=delta,
            covered_vertices=covered.to_frozenset(),
            patterns=patterns,
            qualified=qualified,
        )
        result.evaluated.append(record)
        if qualified:
            counters.attribute_sets_qualified += 1

        if self._may_extend(epsilon, support):
            counters.attribute_sets_extended += 1
            return _Candidate(items=items, tidset=tidset, covered=covered)
        counters.attribute_sets_pruned += 1
        return None

    def _may_extend(self, epsilon: float, support: int) -> bool:
        """Theorems 4 and 5: can any superset still reach the thresholds?"""
        params = self.params
        mass = epsilon * support
        if mass < params.min_epsilon * params.min_support:
            return False
        expected_at_min = self.null_model.expected_epsilon(params.min_support)
        if mass < params.min_delta * expected_at_min * params.min_support:
            return False
        return True


def _accumulate_counters(target: MiningCounters, source: MiningCounters) -> None:
    """Add every work counter of ``source`` into ``target`` (not the wall time)."""
    for field in fields(MiningCounters):
        if field.name == "elapsed_seconds":
            continue
        setattr(target, field.name, getattr(target, field.name) + getattr(source, field.name))


def _mine_branches_worker(
    graph: AttributedGraph,
    params: SCPMParams,
    null_model: object,
    collect_patterns: bool,
    candidates: Sequence[_Candidate],
    roots: Sequence[int],
) -> List[Tuple[int, List[AttributeSetResult], MiningCounters]]:
    """Process-pool entry point: mine a stripe of first-level branches.

    Returns one ``(root_index, evaluation records, counters)`` triple per
    branch so the parent can merge deterministically in root order.
    """
    miner = SCPM(
        graph, params, null_model=null_model, collect_patterns=collect_patterns
    )
    output: List[Tuple[int, List[AttributeSetResult], MiningCounters]] = []
    for root in roots:
        branch = MiningResult(
            algorithm=f"scpm-{params.order}", counters=MiningCounters()
        )
        miner._extend_branch(candidates, root, branch)
        output.append((root, branch.evaluated, branch.counters))
    return output


def mine_scpm(
    graph: AttributedGraph,
    params: SCPMParams,
    null_model: Optional[object] = None,
    collect_patterns: bool = True,
) -> MiningResult:
    """Convenience wrapper around :class:`SCPM`."""
    return SCPM(
        graph, params, null_model=null_model, collect_patterns=collect_patterns
    ).mine()

"""The SCPM algorithm (Algorithms 2 and 3 of the paper).

SCPM enumerates attribute sets in an Eclat-style depth-first traversal over
tidset intersections and, for each attribute set that survives the support
threshold, evaluates the structural correlation with the coverage-oriented
quasi-clique search.  Three ideas distinguish it from the naive baseline:

* **Vertex pruning (Theorem 3)** — quasi-cliques of ``G(S_i ∪ S_j)`` can only
  contain vertices covered in both parents, so the coverage search for an
  extended attribute set is restricted to ``K_{S_i} ∩ K_{S_j} ∩ V(S)``.
* **Attribute-set pruning (Theorems 4 and 5)** — an attribute set is extended
  only if ``ε(S)·σ(S) ≥ ε_min·σ_min`` and
  ``ε(S)·σ(S) ≥ δ_min·exp(σ_min)·σ_min``; no superset can reach the
  thresholds otherwise.
* **Top-k patterns (Section 3.2.3)** — for qualifying attribute sets only the
  k largest/densest patterns are extracted, with the dynamically raised size
  threshold.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import FrozenSet, Hashable, List, Optional, Tuple

from repro.graph.attributed_graph import AttributedGraph
from repro.itemsets.itemset import canonical_itemset
from repro.itemsets.transactions import frequent_items, vertical_database
from repro.correlation.null_models import (
    AnalyticalNullModel,
    normalized_structural_correlation,
)
from repro.correlation.parameters import SCPMParams
from repro.correlation.patterns import (
    AttributeSetResult,
    MiningCounters,
    MiningResult,
    StructuralCorrelationPattern,
)
from repro.correlation.structural import structural_correlation, top_k_patterns
from repro.quasiclique.definitions import QuasiCliqueParams

Attribute = Hashable
Vertex = Hashable


@dataclass
class _Candidate:
    """Internal per-attribute-set state carried through the enumeration."""

    items: Tuple[Attribute, ...]
    tidset: FrozenSet[Vertex]
    covered: FrozenSet[Vertex]


class SCPM:
    """Structural Correlation Pattern Mining.

    Parameters
    ----------
    graph:
        The attributed graph to mine.
    params:
        The :class:`SCPMParams` bundle (σ_min, γ, min_size, ε_min, δ_min, k,
        search order, attribute-set size limits).
    null_model:
        Object with an ``expected_epsilon(support)`` method.  Defaults to the
        analytical :class:`AnalyticalNullModel` (δ_lb); pass a
        :class:`~repro.correlation.null_models.SimulationNullModel` for δ_sim.
    collect_patterns:
        When ``False`` the top-k pattern extraction is skipped and only the
        attribute-set statistics (σ, ε, δ) are produced.  Useful for the
        parameter-sensitivity study.

    Examples
    --------
    >>> from repro.datasets import paper_example_graph
    >>> graph = paper_example_graph()
    >>> params = SCPMParams(min_support=3, gamma=0.6, min_size=4,
    ...                     min_epsilon=0.5, top_k=10)
    >>> result = SCPM(graph, params).mine()
    >>> sorted(r.label() for r in result.qualified)
    ['A', 'A B', 'B']
    """

    def __init__(
        self,
        graph: AttributedGraph,
        params: SCPMParams,
        null_model: Optional[object] = None,
        collect_patterns: bool = True,
    ) -> None:
        self.graph = graph
        self.params = params
        self.qc_params: QuasiCliqueParams = params.quasi_clique_params()
        self.null_model = (
            null_model
            if null_model is not None
            else AnalyticalNullModel(graph, self.qc_params)
        )
        self.collect_patterns = collect_patterns

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def mine(self) -> MiningResult:
        """Run the mining and return a :class:`MiningResult`."""
        params = self.params
        counters = MiningCounters()
        result = MiningResult(algorithm=f"scpm-{params.order}", counters=counters)
        started = time.perf_counter()

        # Algorithm 2, line 3: frequent size-1 attribute sets.
        vertical = vertical_database(self.graph)
        base = frequent_items(vertical, params.min_support)

        extendable: List[_Candidate] = []
        for attribute, tidset in base:
            candidate = self._evaluate(
                items=(attribute,),
                tidset=tidset,
                candidate_vertices=None,
                result=result,
            )
            if candidate is not None:
                extendable.append(candidate)

        # Algorithm 3: recursive extension of the surviving attribute sets.
        self._extend(extendable, result)

        counters.elapsed_seconds = time.perf_counter() - started
        return result

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _extend(self, candidates: List[_Candidate], result: MiningResult) -> None:
        """Recursive prefix-class extension (Algorithm 3)."""
        params = self.params
        max_size = params.max_attribute_set_size
        for index, first in enumerate(candidates):
            if max_size is not None and len(first.items) >= max_size:
                continue
            extensions: List[_Candidate] = []
            for second in candidates[index + 1 :]:
                tidset = first.tidset & second.tidset
                if len(tidset) < params.min_support:
                    continue
                items = first.items + (second.items[-1],)
                # Theorem 3: quasi-cliques of the union live inside both
                # parents' covered sets.
                candidate_vertices = first.covered & second.covered & tidset
                candidate = self._evaluate(
                    items=items,
                    tidset=tidset,
                    candidate_vertices=candidate_vertices,
                    result=result,
                )
                if candidate is not None:
                    extensions.append(candidate)
            if extensions:
                self._extend(extensions, result)

    def _evaluate(
        self,
        items: Tuple[Attribute, ...],
        tidset: FrozenSet[Vertex],
        candidate_vertices: Optional[FrozenSet[Vertex]],
        result: MiningResult,
    ) -> Optional[_Candidate]:
        """Measure one attribute set; return it if it may still be extended."""
        params = self.params
        counters = result.counters
        counters.attribute_sets_evaluated += 1

        support = len(tidset)
        epsilon, covered = structural_correlation(
            self.graph,
            items,
            self.qc_params,
            order=params.order,
            candidate_vertices=candidate_vertices,
        )
        expected = self.null_model.expected_epsilon(support)
        delta = normalized_structural_correlation(epsilon, expected)

        qualified = epsilon >= params.min_epsilon and delta >= params.min_delta
        patterns: Tuple[StructuralCorrelationPattern, ...] = ()
        if (
            qualified
            and self.collect_patterns
            and len(items) >= params.min_attribute_set_size
        ):
            patterns = tuple(
                top_k_patterns(
                    self.graph,
                    items,
                    self.qc_params,
                    params.top_k,
                    order=params.order,
                    candidate_vertices=covered,
                )
            )

        record = AttributeSetResult(
            attributes=canonical_itemset(items),
            support=support,
            epsilon=epsilon,
            expected_epsilon=expected,
            delta=delta,
            covered_vertices=covered,
            patterns=patterns,
            qualified=qualified,
        )
        result.evaluated.append(record)
        if qualified:
            counters.attribute_sets_qualified += 1

        if self._may_extend(epsilon, support):
            counters.attribute_sets_extended += 1
            return _Candidate(items=items, tidset=tidset, covered=covered)
        counters.attribute_sets_pruned += 1
        return None

    def _may_extend(self, epsilon: float, support: int) -> bool:
        """Theorems 4 and 5: can any superset still reach the thresholds?"""
        params = self.params
        mass = epsilon * support
        if mass < params.min_epsilon * params.min_support:
            return False
        expected_at_min = self.null_model.expected_epsilon(params.min_support)
        if mass < params.min_delta * expected_at_min * params.min_support:
            return False
        return True


def mine_scpm(
    graph: AttributedGraph,
    params: SCPMParams,
    null_model: Optional[object] = None,
    collect_patterns: bool = True,
) -> MiningResult:
    """Convenience wrapper around :class:`SCPM`."""
    return SCPM(
        graph, params, null_model=null_model, collect_patterns=collect_patterns
    ).mine()

"""Core layer: structural correlation, null models, the SCPM, Naive and
incremental miners."""

from repro.correlation.incremental import IncrementalSCPM, UpdateStats
from repro.correlation.naive import NaiveMiner, mine_naive
from repro.correlation.null_models import (
    AnalyticalNullModel,
    SimulationEstimate,
    SimulationNullModel,
    binomial_degree_probability,
    inclusion_probability,
    max_expected_epsilon,
    normalized_structural_correlation,
)
from repro.correlation.parameters import SCPMParams
from repro.correlation.patterns import (
    AttributeSetResult,
    MiningCounters,
    MiningResult,
    StructuralCorrelationPattern,
)
from repro.correlation.scpm import SCPM, mine_scpm
from repro.correlation.structural import (
    all_patterns,
    coverage_search,
    structural_correlation,
    structural_correlation_bitset,
    top_k_patterns,
)

__all__ = [
    "AnalyticalNullModel",
    "AttributeSetResult",
    "IncrementalSCPM",
    "MiningCounters",
    "MiningResult",
    "NaiveMiner",
    "SCPM",
    "SCPMParams",
    "SimulationEstimate",
    "SimulationNullModel",
    "StructuralCorrelationPattern",
    "UpdateStats",
    "all_patterns",
    "binomial_degree_probability",
    "coverage_search",
    "inclusion_probability",
    "max_expected_epsilon",
    "mine_naive",
    "mine_scpm",
    "normalized_structural_correlation",
    "structural_correlation",
    "structural_correlation_bitset",
    "top_k_patterns",
]

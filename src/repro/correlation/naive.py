"""The naive baseline algorithm (Section 3.1 of the paper).

The naive approach chains two off-the-shelf miners with no cross-cutting
pruning: first the complete set of frequent attribute sets is produced with
Eclat, then the *complete* set of maximal quasi-cliques of each induced
graph is enumerated (the role the Quick algorithm plays in the paper), and
only afterwards are the structural correlation and the thresholds applied.
It is the comparison baseline of the performance study (Figure 8).

The tidsets flow through as bitsets (``EclatMiner(use_bitsets=True)``) and
each per-attribute-set quasi-clique enumeration runs as a vertex-restricted
search on the original graph, so no induced subgraph is materialised — but
the *algorithmic* naivety (no Theorem 3/4/5 pruning, full enumeration) is
untouched, keeping it an honest baseline.
"""

from __future__ import annotations

import time
from typing import Hashable, Optional

from repro.graph.streaming import GraphLike
from repro.itemsets.eclat import EclatConfig, EclatMiner
from repro.itemsets.itemset import canonical_itemset
from repro.correlation.null_models import (
    AnalyticalNullModel,
    normalized_structural_correlation,
)
from repro.correlation.parameters import SCPMParams
from repro.correlation.patterns import (
    AttributeSetResult,
    MiningCounters,
    MiningResult,
    StructuralCorrelationPattern,
)
from repro.quasiclique.definitions import gamma_of
from repro.quasiclique.search import QuasiCliqueSearch

Attribute = Hashable


class NaiveMiner:
    """Frequent itemsets + full quasi-clique enumeration, no shared pruning.

    Parameters mirror :class:`repro.correlation.scpm.SCPM`; the ε_min/δ_min
    thresholds and ``top_k`` only filter the *output* — they never prune the
    search, which is exactly what makes the algorithm naive.
    """

    def __init__(
        self,
        graph: GraphLike,
        params: SCPMParams,
        null_model: Optional[object] = None,
    ) -> None:
        self.graph = graph
        self.params = params
        self.qc_params = params.quasi_clique_params()
        self.null_model = (
            null_model
            if null_model is not None
            else AnalyticalNullModel(graph, self.qc_params)
        )

    def mine(self) -> MiningResult:
        """Run the naive pipeline and return a :class:`MiningResult`."""
        params = self.params
        counters = MiningCounters()
        result = MiningResult(algorithm="naive", counters=counters)
        started = time.perf_counter()

        eclat = EclatMiner(
            EclatConfig(
                min_support=params.min_support,
                min_size=1,
                max_size=params.max_attribute_set_size,
            ),
            use_bitsets=True,
            engine=params.engine,
        )
        for itemset in eclat.mine_graph(self.graph):
            counters.attribute_sets_evaluated += 1
            members = itemset.tidset
            support = len(members)
            search = QuasiCliqueSearch(
                self.graph,
                self.qc_params,
                vertices=members,
                order=params.order,
                engine=params.engine,
                kernel_backend=params.kernel_backend,
            )
            quasi_cliques = search.enumerate_maximal()
            counters.coverage_nodes_expanded += search.stats.nodes_expanded
            counters.kernel_counter_updates += search.stats.counter_updates
            label = search.stats.kernel_backend_label()
            if label:
                counters.kernel_backends[label] = (
                    counters.kernel_backends.get(label, 0) + 1
                )

            covered = frozenset().union(*quasi_cliques) if quasi_cliques else frozenset()
            epsilon = len(covered) / support if support else 0.0
            expected = self.null_model.expected_epsilon(support)
            delta = normalized_structural_correlation(epsilon, expected)
            qualified = epsilon >= params.min_epsilon and delta >= params.min_delta

            patterns = ()
            if qualified and len(itemset.items) >= params.min_attribute_set_size:
                member_set = members.to_frozenset()
                adjacency = {
                    v: self.graph.neighbor_set(v) & member_set for v in member_set
                }
                ranked = sorted(
                    quasi_cliques,
                    key=lambda q: (-len(q), -gamma_of(adjacency, q), sorted(map(repr, q))),
                )
                patterns = tuple(
                    StructuralCorrelationPattern(
                        attributes=canonical_itemset(itemset.items),
                        vertices=vertex_set,
                        gamma=gamma_of(adjacency, vertex_set),
                    )
                    for vertex_set in ranked[: params.top_k]
                )

            result.evaluated.append(
                AttributeSetResult(
                    attributes=canonical_itemset(itemset.items),
                    support=support,
                    epsilon=epsilon,
                    expected_epsilon=expected,
                    delta=delta,
                    covered_vertices=covered,
                    patterns=patterns,
                    qualified=qualified,
                )
            )
            if qualified:
                counters.attribute_sets_qualified += 1

        counters.elapsed_seconds = time.perf_counter() - started
        return result


def mine_naive(
    graph: GraphLike,
    params: SCPMParams,
    null_model: Optional[object] = None,
) -> MiningResult:
    """Convenience wrapper around :class:`NaiveMiner`."""
    return NaiveMiner(graph, params, null_model=null_model).mine()

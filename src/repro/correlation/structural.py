"""Structural correlation of attribute sets (Definition 2).

``epsilon(S)`` is the fraction of vertices of the induced graph ``G(S)``
that belong to at least one γ-quasi-clique of ``G(S)``.  The functions here
wrap the coverage and top-k modes of the quasi-clique search for a given
attribute set and expose the Theorem-3 vertex restriction used by SCPM.

Everything runs on the graph's cached bitset index
(:meth:`~repro.graph.attributed_graph.AttributedGraph.bitset_index`):
``V(S)`` is an ``&`` over attribute holder masks and the quasi-clique search
is vertex-restricted to it, so no induced subgraph is ever materialised.
The ``*_bitset`` variants keep the covered set as a
:class:`~repro.graph.vertexset.VertexBitset` for the SCPM hot path; the
classic entry points convert to ``frozenset`` at the boundary.
"""

from __future__ import annotations

from typing import FrozenSet, Hashable, Iterable, List, Optional, Tuple, Union

from repro.graph.attributed_graph import AttributedGraph
from repro.graph.vertexset import VertexBitset
from repro.itemsets.itemset import canonical_itemset
from repro.quasiclique.definitions import QuasiCliqueParams
from repro.quasiclique.memo import CoverageMemo
from repro.quasiclique.search import DFS, QuasiCliqueSearch
from repro.correlation.patterns import StructuralCorrelationPattern

Attribute = Hashable
Vertex = Hashable
VertexRestriction = Union[Iterable[Vertex], VertexBitset, None]


def structural_correlation_bitset(
    graph: AttributedGraph,
    attributes: Iterable[Attribute],
    params: QuasiCliqueParams,
    order: str = DFS,
    candidate_vertices: VertexRestriction = None,
    engine: str = "auto",
    kernel_backend: str = "auto",
    memo: Optional[CoverageMemo] = None,
    counters=None,
) -> Tuple[float, VertexBitset]:
    """Return ``(ε(S), K_S)`` with the covered set as a bitset view.

    This is the hot-path variant used inside SCPM: the covered set stays in
    the graph's dense id space so the Theorem-3 intersection for extended
    attribute sets is one native ``&`` — an integer AND on the dense engine,
    a chunk-wise AND on the sparse one (``engine`` selects, see
    :mod:`repro.graph.engine`).

    ``memo`` optionally short-circuits the coverage search through a
    :class:`~repro.quasiclique.memo.CoverageMemo`: identical working sets
    recur across the attribute lattice (Theorem-3 siblings), and the
    covered set is a pure function of ``(working set, γ, min_size)``, so
    a hit returns byte-identical output without constructing a search.
    ``counters`` (a :class:`~repro.correlation.patterns.MiningCounters`)
    receives the memo hit/miss and kernel instrumentation, including a
    per-backend tally of kernel-driven coverage searches keyed by
    ``"bigint"`` / ``"numpy(uint8)"`` / ``"numpy(uint16)"`` labels;
    ``kernel_backend`` selects the counter-lane backend (see
    :func:`repro.quasiclique.kernel.resolve_kernel_backend`).
    """
    index = graph.bitset_index(engine)
    members = index.members_mask(attributes)
    if not members:
        return 0.0, index.bitset(0)
    if candidate_vertices is None:
        working = members
    else:
        working = index.working_mask(candidate_vertices) & members
    if working.bit_count() < params.min_size:
        return 0.0, index.bitset(0)
    covered, search = covered_native(
        graph,
        params,
        index,
        working,
        order=order,
        engine=engine,
        kernel_backend=kernel_backend,
        memo=memo,
    )
    if counters is not None:
        if search is None:
            counters.coverage_memo_hits += 1
        else:
            if memo is not None:
                counters.coverage_memo_misses += 1
            counters.kernel_counter_updates += search.stats.counter_updates
            label = search.stats.kernel_backend_label()
            if label:
                counters.kernel_backends[label] = (
                    counters.kernel_backends.get(label, 0) + 1
                )
    return covered.bit_count() / members.bit_count(), index.bitset(covered)


def covered_native(
    graph: AttributedGraph,
    params: QuasiCliqueParams,
    index,
    working,
    order: str = DFS,
    engine: str = "auto",
    kernel_backend: str = "auto",
    memo: Optional[CoverageMemo] = None,
):
    """Covered set of one working set as an engine native, memo-aware.

    The single place the memo consult/search/populate sequence lives —
    SCPM's ε evaluation and the simulation null model's per-sample
    searches both go through it, so the key shape and the covered-native
    representation can never drift apart between them.  Returns
    ``(covered_native, search)`` where ``search`` is ``None`` on a memo
    hit (callers account hit/miss/kernel statistics off it).
    """
    if memo is not None:
        key = memo.key(working, params.gamma, params.min_size)
        cached = memo.get(key)
        if cached is not None:
            return cached, None
    search = QuasiCliqueSearch(
        graph,
        params,
        vertices=index.bitset(working),
        order=order,
        engine=engine,
        kernel_backend=kernel_backend,
    )
    covered = search.covered_to_global(search.covered_mask(), index)
    if memo is not None:
        search.stats.memo_misses += 1
        memo.put(key, covered)
    return covered, search


def structural_correlation(
    graph: AttributedGraph,
    attributes: Iterable[Attribute],
    params: QuasiCliqueParams,
    order: str = DFS,
    candidate_vertices: VertexRestriction = None,
    engine: str = "auto",
    memo: Optional[CoverageMemo] = None,
) -> Tuple[float, FrozenSet[Vertex]]:
    """Return ``(ε(S), K_S)`` for the attribute set ``attributes``.

    Parameters
    ----------
    graph:
        The attributed graph G.
    attributes:
        The attribute set S.
    params:
        Quasi-clique parameters ``(γ, min_size)``.
    order:
        Traversal order of the coverage search (``"dfs"`` or ``"bfs"``).
    candidate_vertices:
        Optional restriction of the vertices that may appear in quasi-cliques
        of ``G(S)``.  SCPM passes the intersection of the parents' covered
        sets here (Theorem 3): vertices outside it cannot be covered, so the
        search works on a smaller graph.
    memo:
        Optional :class:`~repro.quasiclique.memo.CoverageMemo` consulted
        before (and populated after) the coverage search.

    Examples
    --------
    >>> from repro.datasets import paper_example_graph
    >>> graph = paper_example_graph()
    >>> params = QuasiCliqueParams(gamma=0.6, min_size=4)
    >>> epsilon, covered = structural_correlation(graph, ["A"], params)
    >>> round(epsilon, 2), len(covered)
    (0.82, 9)
    """
    epsilon, covered = structural_correlation_bitset(
        graph,
        attributes,
        params,
        order=order,
        candidate_vertices=candidate_vertices,
        engine=engine,
        memo=memo,
    )
    return epsilon, covered.to_frozenset()


def coverage_search(
    graph: AttributedGraph,
    attributes: Iterable[Attribute],
    params: QuasiCliqueParams,
    order: str = DFS,
    candidate_vertices: VertexRestriction = None,
    engine: str = "auto",
    kernel_backend: str = "auto",
) -> QuasiCliqueSearch:
    """Build (without running) the coverage search object for ``G(S)``.

    Exposed so callers (benchmarks, tests) can inspect
    :class:`repro.quasiclique.search.SearchStats` after running a mode.
    """
    index = graph.bitset_index(engine)
    members = index.members_mask(attributes)
    working = (
        members
        if candidate_vertices is None
        else index.working_mask(candidate_vertices) & members
    )
    return QuasiCliqueSearch(
        graph,
        params,
        vertices=index.bitset(working),
        order=order,
        engine=engine,
        kernel_backend=kernel_backend,
    )


def top_k_patterns(
    graph: AttributedGraph,
    attributes: Iterable[Attribute],
    params: QuasiCliqueParams,
    k: int,
    order: str = DFS,
    candidate_vertices: VertexRestriction = None,
    engine: str = "auto",
    kernel_backend: str = "auto",
) -> List[StructuralCorrelationPattern]:
    """Return the top-``k`` structural correlation patterns induced by ``S``.

    Patterns are ranked by size (primary) then density (secondary), exactly
    as in Section 3.2.3 of the paper.
    """
    canonical = canonical_itemset(attributes)
    index = graph.bitset_index(engine)
    members = index.members_mask(canonical)
    if members.bit_count() < params.min_size:
        return []
    working = (
        members
        if candidate_vertices is None
        else index.working_mask(candidate_vertices) & members
    )
    search = QuasiCliqueSearch(
        graph,
        params,
        vertices=index.bitset(working),
        order=order,
        engine=engine,
        kernel_backend=kernel_backend,
    )
    return [
        StructuralCorrelationPattern(
            attributes=canonical, vertices=vertex_set, gamma=gamma
        )
        for vertex_set, gamma in search.top_k(k)
    ]


def all_patterns(
    graph: AttributedGraph,
    attributes: Iterable[Attribute],
    params: QuasiCliqueParams,
    order: str = DFS,
    engine: str = "auto",
) -> List[StructuralCorrelationPattern]:
    """Return *every* maximal pattern induced by ``S`` (naive enumeration)."""
    canonical = canonical_itemset(attributes)
    index = graph.bitset_index(engine)
    members = index.members_mask(canonical)
    if members.bit_count() < params.min_size:
        return []
    search = QuasiCliqueSearch(
        graph, params, vertices=index.bitset(members), order=order, engine=engine
    )
    member_set = index.bitset(members).to_frozenset()
    adjacency = {v: graph.neighbor_set(v) & member_set for v in member_set}
    patterns = []
    for vertex_set in search.enumerate_maximal():
        min_degree = min(len(adjacency[v] & vertex_set) for v in vertex_set)
        gamma = min_degree / (len(vertex_set) - 1)
        patterns.append(
            StructuralCorrelationPattern(
                attributes=canonical, vertices=vertex_set, gamma=gamma
            )
        )
    patterns.sort(key=lambda p: (-p.size, -p.gamma, sorted(map(repr, p.vertices))))
    return patterns

"""Structural correlation of attribute sets (Definition 2).

``epsilon(S)`` is the fraction of vertices of the induced graph ``G(S)``
that belong to at least one γ-quasi-clique of ``G(S)``.  The functions here
wrap the coverage and top-k modes of the quasi-clique search for a given
attribute set and expose the Theorem-3 vertex restriction used by SCPM.
"""

from __future__ import annotations

from typing import FrozenSet, Hashable, Iterable, List, Optional, Tuple

from repro.graph.attributed_graph import AttributedGraph
from repro.itemsets.itemset import canonical_itemset
from repro.quasiclique.definitions import QuasiCliqueParams
from repro.quasiclique.search import DFS, QuasiCliqueSearch
from repro.correlation.patterns import StructuralCorrelationPattern

Attribute = Hashable
Vertex = Hashable


def structural_correlation(
    graph: AttributedGraph,
    attributes: Iterable[Attribute],
    params: QuasiCliqueParams,
    order: str = DFS,
    candidate_vertices: Optional[Iterable[Vertex]] = None,
) -> Tuple[float, FrozenSet[Vertex]]:
    """Return ``(ε(S), K_S)`` for the attribute set ``attributes``.

    Parameters
    ----------
    graph:
        The attributed graph G.
    attributes:
        The attribute set S.
    params:
        Quasi-clique parameters ``(γ, min_size)``.
    order:
        Traversal order of the coverage search (``"dfs"`` or ``"bfs"``).
    candidate_vertices:
        Optional restriction of the vertices that may appear in quasi-cliques
        of ``G(S)``.  SCPM passes the intersection of the parents' covered
        sets here (Theorem 3): vertices outside it cannot be covered, so the
        search works on a smaller graph.

    Examples
    --------
    >>> from repro.datasets import paper_example_graph
    >>> graph = paper_example_graph()
    >>> params = QuasiCliqueParams(gamma=0.6, min_size=4)
    >>> epsilon, covered = structural_correlation(graph, ["A"], params)
    >>> round(epsilon, 2), len(covered)
    (0.82, 9)
    """
    members = graph.vertices_with_all(attributes)
    if not members:
        return 0.0, frozenset()
    if candidate_vertices is None:
        working = members
    else:
        working = frozenset(candidate_vertices) & members
    if len(working) < params.min_size:
        return 0.0, frozenset()
    induced = graph.subgraph(members)
    search = QuasiCliqueSearch(induced, params, vertices=working, order=order)
    covered = search.covered_vertices()
    return len(covered) / len(members), covered


def coverage_search(
    graph: AttributedGraph,
    attributes: Iterable[Attribute],
    params: QuasiCliqueParams,
    order: str = DFS,
    candidate_vertices: Optional[Iterable[Vertex]] = None,
) -> QuasiCliqueSearch:
    """Build (without running) the coverage search object for ``G(S)``.

    Exposed so callers (benchmarks, tests) can inspect
    :class:`repro.quasiclique.search.SearchStats` after running a mode.
    """
    members = graph.vertices_with_all(attributes)
    working = (
        members
        if candidate_vertices is None
        else frozenset(candidate_vertices) & members
    )
    induced = graph.subgraph(members)
    return QuasiCliqueSearch(induced, params, vertices=working, order=order)


def top_k_patterns(
    graph: AttributedGraph,
    attributes: Iterable[Attribute],
    params: QuasiCliqueParams,
    k: int,
    order: str = DFS,
    candidate_vertices: Optional[Iterable[Vertex]] = None,
) -> List[StructuralCorrelationPattern]:
    """Return the top-``k`` structural correlation patterns induced by ``S``.

    Patterns are ranked by size (primary) then density (secondary), exactly
    as in Section 3.2.3 of the paper.
    """
    canonical = canonical_itemset(attributes)
    members = graph.vertices_with_all(canonical)
    if len(members) < params.min_size:
        return []
    working = (
        members
        if candidate_vertices is None
        else frozenset(candidate_vertices) & members
    )
    induced = graph.subgraph(members)
    search = QuasiCliqueSearch(induced, params, vertices=working, order=order)
    return [
        StructuralCorrelationPattern(
            attributes=canonical, vertices=vertex_set, gamma=gamma
        )
        for vertex_set, gamma in search.top_k(k)
    ]


def all_patterns(
    graph: AttributedGraph,
    attributes: Iterable[Attribute],
    params: QuasiCliqueParams,
    order: str = DFS,
) -> List[StructuralCorrelationPattern]:
    """Return *every* maximal pattern induced by ``S`` (naive enumeration)."""
    canonical = canonical_itemset(attributes)
    members = graph.vertices_with_all(canonical)
    if len(members) < params.min_size:
        return []
    induced = graph.subgraph(members)
    search = QuasiCliqueSearch(induced, params, order=order)
    adjacency = {v: set(induced.neighbor_set(v)) for v in induced.vertices()}
    patterns = []
    for vertex_set in search.enumerate_maximal():
        min_degree = min(len(adjacency[v] & vertex_set) for v in vertex_set)
        gamma = min_degree / (len(vertex_set) - 1)
        patterns.append(
            StructuralCorrelationPattern(
                attributes=canonical, vertices=vertex_set, gamma=gamma
            )
        )
    patterns.sort(key=lambda p: (-p.size, -p.gamma, sorted(map(repr, p.vertices))))
    return patterns

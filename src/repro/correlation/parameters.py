"""Parameter bundle for structural correlation pattern mining.

Collects every threshold of Definition 4 plus the extensions introduced in
Sections 2.1.3 (δ_min) and 3.2.3 (top-k), and the search-strategy switches
evaluated in the performance study (BFS vs DFS).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.errors import ParameterError
from repro.graph.engine import resolve_engine
from repro.quasiclique.definitions import QuasiCliqueParams
from repro.quasiclique.search import BFS, DFS


@dataclass(frozen=True)
class SCPMParams:
    """All thresholds of the structural correlation pattern mining problem.

    Attributes
    ----------
    min_support:
        ``σ_min`` — minimum number of vertices carrying the attribute set.
    gamma:
        ``γ_min`` — quasi-clique density threshold.
    min_size:
        Quasi-clique minimum size.
    min_epsilon:
        ``ε_min`` — minimum structural correlation for an attribute set to be
        reported (and, via Theorem 4, to be extended).
    min_delta:
        ``δ_min`` — minimum normalized structural correlation (Theorem 5).
    top_k:
        Number of patterns reported per qualifying attribute set.
    min_attribute_set_size:
        Report only attribute sets with at least this many attributes (the
        paper's case studies use 2); smaller sets are still evaluated and
        extended.
    max_attribute_set_size:
        Optional cap on the attribute-set size explored.
    order:
        ``"dfs"`` or ``"bfs"`` — traversal strategy of the quasi-clique search
        (the SCPM-DFS / SCPM-BFS variants of the paper).
    n_jobs:
        Number of worker processes for the first-level attribute-branch
        fan-out of SCPM.  ``1`` (default) mines sequentially, ``-1`` uses
        every available CPU.  The merged result is identical to the
        sequential run for any worker count (deterministic null models).
    engine:
        Vertex-set engine backing tidsets, covered sets and the
        quasi-clique search: ``"dense"`` (full-width int masks),
        ``"sparse"`` (chunked containers, memory tracks edges) or
        ``"auto"`` (default — picked per graph by |V| and edge density, see
        :mod:`repro.graph.engine`).  Both engines produce byte-identical
        mining results.
    """

    min_support: int
    gamma: float
    min_size: int
    min_epsilon: float = 0.0
    min_delta: float = 0.0
    top_k: int = 5
    min_attribute_set_size: int = 1
    max_attribute_set_size: Optional[int] = None
    order: str = field(default=DFS)
    n_jobs: int = 1
    engine: str = "auto"

    def __post_init__(self) -> None:
        if self.min_support < 1:
            raise ParameterError(f"min_support must be >= 1, got {self.min_support}")
        if not 0.0 < self.gamma <= 1.0:
            raise ParameterError(f"gamma must be in (0, 1], got {self.gamma}")
        if self.min_size < 2:
            raise ParameterError(f"min_size must be >= 2, got {self.min_size}")
        if self.min_epsilon < 0.0 or self.min_epsilon > 1.0:
            raise ParameterError(
                f"min_epsilon must be in [0, 1], got {self.min_epsilon}"
            )
        if self.min_delta < 0.0:
            raise ParameterError(f"min_delta must be >= 0, got {self.min_delta}")
        if self.top_k < 1:
            raise ParameterError(f"top_k must be >= 1, got {self.top_k}")
        if self.min_attribute_set_size < 1:
            raise ParameterError(
                f"min_attribute_set_size must be >= 1, got {self.min_attribute_set_size}"
            )
        if (
            self.max_attribute_set_size is not None
            and self.max_attribute_set_size < self.min_attribute_set_size
        ):
            raise ParameterError(
                "max_attribute_set_size must be >= min_attribute_set_size"
            )
        if self.order not in (BFS, DFS):
            raise ParameterError(f"order must be 'bfs' or 'dfs', got {self.order!r}")
        if self.n_jobs < 1 and self.n_jobs != -1:
            raise ParameterError(
                f"n_jobs must be >= 1 or -1 (all CPUs), got {self.n_jobs}"
            )
        # Raises EngineError (a ParameterError) on unknown names; the
        # resolved result for this placeholder shape is discarded.
        resolve_engine(self.engine, 0, 0)

    def resolved_jobs(self) -> int:
        """Return the effective worker count (``-1`` → CPU count)."""
        if self.n_jobs == -1:
            import os

            return os.cpu_count() or 1
        return self.n_jobs

    def quasi_clique_params(self) -> QuasiCliqueParams:
        """Return the quasi-clique sub-parameters ``(γ, min_size)``."""
        return QuasiCliqueParams(gamma=self.gamma, min_size=self.min_size)

    def with_changes(self, **changes: object) -> "SCPMParams":
        """Return a copy with some fields replaced (used by parameter sweeps)."""
        return replace(self, **changes)

"""Parameter bundle for structural correlation pattern mining.

Collects every threshold of Definition 4 plus the extensions introduced in
Sections 2.1.3 (δ_min) and 3.2.3 (top-k), and the search-strategy switches
evaluated in the performance study (BFS vs DFS).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.errors import ParameterError
from repro.graph.engine import resolve_engine
from repro.parallel.scheduler import DEFAULT_TASK_BATCH_SIZE, validate_jobs
from repro.parallel.transfer import resolve_transfer
from repro.quasiclique.definitions import QuasiCliqueParams
from repro.quasiclique.kernel import resolve_kernel_backend
from repro.quasiclique.search import BFS, DFS

STRIPE = "stripe"
STEAL = "steal"
SCHEDULES = (STRIPE, STEAL)


@dataclass(frozen=True)
class SCPMParams:
    """All thresholds of the structural correlation pattern mining problem.

    Attributes
    ----------
    min_support:
        ``σ_min`` — minimum number of vertices carrying the attribute set.
    gamma:
        ``γ_min`` — quasi-clique density threshold.
    min_size:
        Quasi-clique minimum size.
    min_epsilon:
        ``ε_min`` — minimum structural correlation for an attribute set to be
        reported (and, via Theorem 4, to be extended).
    min_delta:
        ``δ_min`` — minimum normalized structural correlation (Theorem 5).
    top_k:
        Number of patterns reported per qualifying attribute set.
    min_attribute_set_size:
        Report only attribute sets with at least this many attributes (the
        paper's case studies use 2); smaller sets are still evaluated and
        extended.
    max_attribute_set_size:
        Optional cap on the attribute-set size explored.
    order:
        ``"dfs"`` or ``"bfs"`` — traversal strategy of the quasi-clique search
        (the SCPM-DFS / SCPM-BFS variants of the paper).
    n_jobs:
        Number of worker processes for the attribute-branch fan-out of
        SCPM.  ``1`` (default) mines sequentially, ``-1`` uses every
        available CPU.  The merged result is identical to the sequential
        run for any worker count and either schedule (deterministic null
        models; :class:`~repro.correlation.null_models.SimulationNullModel`
        qualifies through its per-support child seeds).
    schedule:
        Parallel scheduling policy: ``"steal"`` (default) runs branch
        tasks through the work-stealing scheduler
        (:mod:`repro.parallel.scheduler`) — one shared queue idle workers
        pull from, so a skewed subtree no longer serializes the run;
        ``"stripe"`` reproduces the PR-1 static striping (one coarse task
        per worker) and exists as the benchmark baseline.
    fanout_depth:
        Task granularity of the ``"steal"`` schedule: ``1`` makes each
        first-level branch one task, ``2`` (default) additionally splits
        every first-level branch into its second-level prefix-class
        subtrees, so even a single dominant branch spreads over all
        workers.
    task_batch_size:
        Maximum number of small branch tasks packed into one pool
        submission (cost estimated by tidset size; see
        :func:`repro.parallel.scheduler.pack_batches`).
    transfer:
        Payload transfer strategy for worker processes:
        ``"fork"``/``"shared_memory"``/``"pickle"``/``"auto"`` (default —
        fork inheritance where available, else one pickle into a
        shared-memory segment; see :mod:`repro.parallel.transfer`).  The
        graph travels once per worker, never per task.
    engine:
        Vertex-set engine backing tidsets, covered sets and the
        quasi-clique search: ``"dense"`` (full-width int masks),
        ``"sparse"`` (chunked containers, memory tracks edges) or
        ``"auto"`` (default — picked per graph by |V| and edge density, see
        :mod:`repro.graph.engine`).  Both engines produce byte-identical
        mining results.
    kernel_backend:
        Counter-lane backend of the incremental search kernel:
        ``"bigint"`` (SWAR lanes in one Python int — the differential
        oracle), ``"numpy"`` (lanes in a ``uint8``/``uint16`` array,
        vectorised retirement and threshold rules) or ``"auto"``
        (default — consults the ``REPRO_KERNEL_BACKEND`` environment
        variable, then picks numpy for working sets of at least
        :data:`~repro.quasiclique.kernel.NUMPY_AUTO_MIN_VERTICES`
        vertices when numpy is importable).  All backends produce
        byte-identical mining results; see
        :func:`repro.quasiclique.kernel.resolve_kernel_backend`.
    coverage_memo:
        ``True`` (default) caches coverage-search results across the
        attribute lattice in a
        :class:`~repro.quasiclique.memo.CoverageMemo` — Theorem-3 sibling
        extensions frequently induce identical working vertex sets, whose
        covered set is a pure function of ``(working set, γ, min_size)``.
        Mined output is byte-identical with the memo on or off (enforced
        by the differential suite); only
        :class:`~repro.correlation.patterns.MiningCounters` memo
        instrumentation and wall time change.  With ``n_jobs > 1`` the
        memo built during first-level evaluation ships once per worker as
        a read-only snapshot and worker-side additions stay task-local,
        keeping per-task results pure functions of the task.
    """

    min_support: int
    gamma: float
    min_size: int
    min_epsilon: float = 0.0
    min_delta: float = 0.0
    top_k: int = 5
    min_attribute_set_size: int = 1
    max_attribute_set_size: Optional[int] = None
    order: str = field(default=DFS)
    n_jobs: int = 1
    engine: str = "auto"
    kernel_backend: str = "auto"
    schedule: str = STEAL
    fanout_depth: int = 2
    task_batch_size: int = DEFAULT_TASK_BATCH_SIZE
    transfer: str = "auto"
    coverage_memo: bool = True

    def __post_init__(self) -> None:
        if self.min_support < 1:
            raise ParameterError(f"min_support must be >= 1, got {self.min_support}")
        if not 0.0 < self.gamma <= 1.0:
            raise ParameterError(f"gamma must be in (0, 1], got {self.gamma}")
        if self.min_size < 2:
            raise ParameterError(f"min_size must be >= 2, got {self.min_size}")
        if self.min_epsilon < 0.0 or self.min_epsilon > 1.0:
            raise ParameterError(
                f"min_epsilon must be in [0, 1], got {self.min_epsilon}"
            )
        if self.min_delta < 0.0:
            raise ParameterError(f"min_delta must be >= 0, got {self.min_delta}")
        if self.top_k < 1:
            raise ParameterError(f"top_k must be >= 1, got {self.top_k}")
        if self.min_attribute_set_size < 1:
            raise ParameterError(
                f"min_attribute_set_size must be >= 1, got {self.min_attribute_set_size}"
            )
        if (
            self.max_attribute_set_size is not None
            and self.max_attribute_set_size < self.min_attribute_set_size
        ):
            raise ParameterError(
                "max_attribute_set_size must be >= min_attribute_set_size"
            )
        if self.order not in (BFS, DFS):
            raise ParameterError(f"order must be 'bfs' or 'dfs', got {self.order!r}")
        validate_jobs(self.n_jobs)
        if self.schedule not in SCHEDULES:
            raise ParameterError(
                f"schedule must be one of {SCHEDULES}, got {self.schedule!r}"
            )
        if self.fanout_depth not in (1, 2):
            raise ParameterError(
                f"fanout_depth must be 1 or 2, got {self.fanout_depth}"
            )
        if self.task_batch_size < 1:
            raise ParameterError(
                f"task_batch_size must be >= 1, got {self.task_batch_size}"
            )
        # Raises EngineError (a ParameterError) on unknown names; the
        # resolved result for this placeholder shape is discarded.
        resolve_engine(self.engine, 0, 0)
        resolve_kernel_backend(self.kernel_backend, 0)
        resolve_transfer(self.transfer)

    def resolved_jobs(self) -> int:
        """Return the effective worker count (``-1`` → CPU count)."""
        from repro.parallel.scheduler import resolve_jobs

        return resolve_jobs(self.n_jobs)

    def quasi_clique_params(self) -> QuasiCliqueParams:
        """Return the quasi-clique sub-parameters ``(γ, min_size)``."""
        return QuasiCliqueParams(gamma=self.gamma, min_size=self.min_size)

    def with_changes(self, **changes: object) -> "SCPMParams":
        """Return a copy with some fields replaced (used by parameter sweeps)."""
        return replace(self, **changes)

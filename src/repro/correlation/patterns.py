"""Result containers for structural correlation pattern mining.

Three levels of result are produced by the miners:

* :class:`StructuralCorrelationPattern` — one pattern ``(S, Q)``;
* :class:`AttributeSetResult` — everything measured for one attribute set
  (support, ε, expected ε, δ, covered vertices, its patterns);
* :class:`MiningResult` — the full output of a mining run, with the ranking
  helpers used to rebuild the paper's Tables 2–4.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Tuple

Attribute = Hashable
Vertex = Hashable


@dataclass(frozen=True)
class StructuralCorrelationPattern:
    """A structural correlation pattern ``(S, Q)`` (Definition 3).

    Attributes
    ----------
    attributes:
        The attribute set ``S`` (canonically ordered tuple).
    vertices:
        The quasi-clique ``Q`` inside ``G(S)``.
    gamma:
        The density of ``Q`` — ``min_v deg_Q(v) / (|Q|-1)`` — reported as the
        γ column in the paper's tables.
    """

    attributes: Tuple[Attribute, ...]
    vertices: FrozenSet[Vertex]
    gamma: float

    @property
    def size(self) -> int:
        """Number of vertices of the pattern."""
        return len(self.vertices)

    def sort_key(self) -> Tuple[int, float]:
        """Primary/secondary ranking key of Section 3.2.3 (size, density)."""
        return (self.size, self.gamma)

    def __str__(self) -> str:
        attrs = ", ".join(map(str, self.attributes))
        verts = ", ".join(sorted(map(str, self.vertices)))
        return f"({{{attrs}}}, {{{verts}}}) size={self.size} gamma={self.gamma:.2f}"


@dataclass(frozen=True)
class AttributeSetResult:
    """Everything the miners measure for one attribute set ``S``.

    ``patterns`` holds the (top-k or complete, depending on the algorithm)
    quasi-cliques of ``G(S)`` when the attribute set met the reporting
    thresholds, otherwise it is empty.
    """

    attributes: Tuple[Attribute, ...]
    support: int
    epsilon: float
    expected_epsilon: float
    delta: float
    covered_vertices: FrozenSet[Vertex]
    patterns: Tuple[StructuralCorrelationPattern, ...] = ()
    qualified: bool = False

    @property
    def size(self) -> int:
        """Number of attributes in the set."""
        return len(self.attributes)

    @property
    def num_covered(self) -> int:
        """``|K_S|`` — vertices of ``G(S)`` covered by quasi-cliques."""
        return len(self.covered_vertices)

    def label(self) -> str:
        """Human-readable attribute-set label used in the report tables."""
        return " ".join(map(str, self.attributes))


@dataclass
class MiningCounters:
    """Work counters collected during a mining run (used by Figure 8).

    ``coverage_memo_hits``/``coverage_memo_misses`` count the
    :class:`~repro.quasiclique.memo.CoverageMemo` consultations of the
    run and ``kernel_counter_updates`` the incremental-kernel bookkeeping
    (:mod:`repro.quasiclique.kernel`).  Unlike the other counters these
    are *instrumentation*, not algorithm output: memo hit totals depend
    on how the run was partitioned into tasks (sequential runs share one
    memo across the whole lattice; parallel workers see the fan-out
    snapshot plus task-local entries), so they may legitimately differ
    between ``n_jobs``/schedule configurations while the mined records
    stay byte-identical.

    ``kernel_backends`` tallies kernel-driven coverage searches per
    counter-lane backend, keyed by label (``"bigint"``,
    ``"numpy(uint8)"``, ``"numpy(uint16)"``) — the attribution the CLI's
    ``--verbose`` counters and the benchmark rows report.
    """

    attribute_sets_evaluated: int = 0
    attribute_sets_qualified: int = 0
    attribute_sets_extended: int = 0
    attribute_sets_pruned: int = 0
    coverage_nodes_expanded: int = 0
    pattern_nodes_expanded: int = 0
    coverage_memo_hits: int = 0
    coverage_memo_misses: int = 0
    kernel_counter_updates: int = 0
    kernel_backends: Dict[str, int] = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    # ------------------------------------------------------------------
    # serialization hooks (used by the persistent pattern store)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain field dict — JSON-safe, loses nothing."""
        data = {f.name: getattr(self, f.name) for f in fields(self)}
        data["kernel_backends"] = dict(self.kernel_backends)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "MiningCounters":
        """Rebuild counters from :meth:`to_dict` output.

        Unknown keys are ignored so stores written by a future version
        with extra counters still load (the known fields round-trip).
        """
        known = {f.name for f in fields(cls)}
        payload = {k: v for k, v in data.items() if k in known}
        if "kernel_backends" in payload:
            payload["kernel_backends"] = dict(payload["kernel_backends"])
        return cls(**payload)


@dataclass
class MiningResult:
    """Complete output of a structural correlation pattern mining run."""

    algorithm: str
    evaluated: List[AttributeSetResult] = field(default_factory=list)
    counters: MiningCounters = field(default_factory=MiningCounters)

    @property
    def qualified(self) -> List[AttributeSetResult]:
        """Attribute sets meeting the ε_min / δ_min reporting thresholds."""
        return [result for result in self.evaluated if result.qualified]

    @property
    def patterns(self) -> List[StructuralCorrelationPattern]:
        """All patterns across all qualifying attribute sets."""
        return [
            pattern for result in self.qualified for pattern in result.patterns
        ]

    # ------------------------------------------------------------------
    # ranking helpers for the paper's tables
    # ------------------------------------------------------------------
    def _reportable(
        self, min_set_size: Optional[int]
    ) -> List[AttributeSetResult]:
        results = self.evaluated
        if min_set_size is not None:
            results = [r for r in results if r.size >= min_set_size]
        return results

    def top_by_support(
        self, n: int = 10, min_set_size: Optional[int] = None
    ) -> List[AttributeSetResult]:
        """Top-σ attribute sets (first column group of Tables 2–4)."""
        return sorted(
            self._reportable(min_set_size),
            key=lambda r: (-r.support, r.label()),
        )[:n]

    def top_by_epsilon(
        self, n: int = 10, min_set_size: Optional[int] = None
    ) -> List[AttributeSetResult]:
        """Top-ε attribute sets (second column group of Tables 2–4)."""
        return sorted(
            self._reportable(min_set_size),
            key=lambda r: (-r.epsilon, -r.support, r.label()),
        )[:n]

    def top_by_delta(
        self, n: int = 10, min_set_size: Optional[int] = None
    ) -> List[AttributeSetResult]:
        """Top-δ attribute sets (third column group of Tables 2–4)."""
        return sorted(
            self._reportable(min_set_size),
            key=lambda r: (-r.delta, -r.epsilon, r.label()),
        )[:n]

    def top_patterns(self, n: int = 10) -> List[StructuralCorrelationPattern]:
        """Largest/densest patterns overall."""
        return sorted(
            self.patterns, key=lambda p: (-p.size, -p.gamma, p.attributes)
        )[:n]

    def fingerprint(self) -> List[Tuple]:
        """Every observable record field, bit-for-bit comparable.

        The canonical form the differential suites (memo on/off,
        parallel determinism, store round-trip) compare: two runs are
        "byte-identical" exactly when their fingerprints — record order
        included — are equal.  Floats are compared as-is (no rounding),
        so this only holds for genuinely identical computations.
        """
        return [
            (
                r.attributes,
                r.support,
                r.epsilon,
                r.expected_epsilon,
                r.delta,
                r.covered_vertices,
                r.qualified,
                tuple((p.attributes, p.vertices, p.gamma) for p in r.patterns),
            )
            for r in self.evaluated
        ]

    def find(self, attributes: Iterable[Attribute]) -> Optional[AttributeSetResult]:
        """Return the result for one attribute set, if it was evaluated."""
        target = frozenset(attributes)
        for result in self.evaluated:
            if frozenset(result.attributes) == target:
                return result
        return None

    def average_epsilon(self, top_fraction: Optional[float] = None) -> float:
        """Average ε over the output (optionally over the top fraction by ε).

        This is the quantity plotted in Figure 10(a–c): ``global`` uses the
        complete output, ``top-10%`` uses ``top_fraction=0.1``.
        """
        return _average(
            [r.epsilon for r in self.evaluated], key_sorted=True, top_fraction=top_fraction
        )

    def average_delta(self, top_fraction: Optional[float] = None) -> float:
        """Average δ over the output (Figure 10(d–f))."""
        finite = [r.delta for r in self.evaluated if r.delta != float("inf")]
        return _average(finite, key_sorted=True, top_fraction=top_fraction)


def _average(
    values: List[float], key_sorted: bool, top_fraction: Optional[float]
) -> float:
    if not values:
        return 0.0
    if top_fraction is not None:
        if not 0.0 < top_fraction <= 1.0:
            raise ValueError(f"top_fraction must be in (0, 1], got {top_fraction}")
        ordered = sorted(values, reverse=True) if key_sorted else values
        count = max(1, int(round(len(ordered) * top_fraction)))
        values = ordered[:count]
    return sum(values) / len(values)

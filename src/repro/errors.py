"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch a single base class.  The subclasses map to the layers of the
system: graph construction, mining parameters, and data loading.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """Raised when an attributed graph is constructed or used incorrectly."""


class UnknownVertexError(GraphError, KeyError):
    """Raised when an operation references a vertex that is not in the graph."""

    def __init__(self, vertex: object) -> None:
        super().__init__(f"vertex {vertex!r} is not in the graph")
        self.vertex = vertex


class UnknownAttributeError(GraphError, KeyError):
    """Raised when an operation references an attribute that no vertex carries."""

    def __init__(self, attribute: object) -> None:
        super().__init__(f"attribute {attribute!r} is not in the graph")
        self.attribute = attribute


class ParameterError(ReproError, ValueError):
    """Raised when mining parameters are outside their valid domain."""


class DatasetError(ReproError):
    """Raised when a dataset cannot be generated or parsed."""


class FormatError(DatasetError, ValueError):
    """Raised when a graph file does not follow the expected format."""

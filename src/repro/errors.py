"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch a single base class.  The subclasses map to the layers of the
system: graph construction, mining parameters, and data loading.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """Raised when an attributed graph is constructed or used incorrectly."""


class UnknownVertexError(GraphError, KeyError):
    """Raised when an operation references a vertex that is not in the graph."""

    def __init__(self, vertex: object) -> None:
        super().__init__(f"vertex {vertex!r} is not in the graph")
        self.vertex = vertex


class UnknownAttributeError(GraphError, KeyError):
    """Raised when an operation references an attribute that no vertex carries."""

    def __init__(self, attribute: object) -> None:
        super().__init__(f"attribute {attribute!r} is not in the graph")
        self.attribute = attribute


class IndexerMismatchError(GraphError, ValueError):
    """Raised when two bitsets bound to *different* vertex indexers meet.

    Bit positions are only meaningful relative to one indexer; combining or
    comparing masks across indexers would silently misalign vertices, so
    every such operation raises instead.  Derives from :class:`ValueError`
    for backward compatibility with callers that caught the old untyped
    error.
    """

    def __init__(self, operation: str) -> None:
        super().__init__(
            f"cannot {operation} vertex sets bound to different indexers"
        )
        self.operation = operation


class StreamingError(GraphError):
    """Raised when a streamed graph handle is mutated or misused.

    :class:`repro.graph.streaming.StreamedGraphHandle` is an immutable,
    index-backed view — the mutating half of the
    :class:`~repro.graph.attributed_graph.AttributedGraph` API raises this
    instead of silently desynchronising the underlying sparse index.
    """


class ParameterError(ReproError, ValueError):
    """Raised when mining parameters are outside their valid domain."""


class EngineError(ParameterError):
    """Raised when an unknown vertex-set engine name is requested."""


class KernelCapacityError(ParameterError):
    """Raised when a working set exceeds a search-kernel backend's capacity.

    Every kernel backend bounds the local id space of one search: the
    big-int SWAR kernel by its 16-bit counter lanes
    (:data:`repro.quasiclique.kernel.KERNEL_MAX_VERTICES`), the numpy
    backend by the dtype its counter array uses (``uint8`` up to
    :data:`repro.quasiclique.kernel.NUMPY_UINT8_MAX_VERTICES` vertices,
    ``uint16`` up to the same 32767-vertex lane bound).  Forcing a kernel
    onto a larger working set raises this instead of silently falling back
    to the oracle loop; automatic selection still falls back cleanly.
    The offending size and the limit are carried as attributes.
    """

    def __init__(self, working_set_size: int, limit: int, backend: str) -> None:
        super().__init__(
            f"the {backend} search kernel supports at most {limit} working "
            f"vertices, got {working_set_size} (per-dtype numpy limits: "
            f"uint8 lanes up to 127 vertices, uint16 lanes up to 32767)"
        )
        self.working_set_size = working_set_size
        self.limit = limit
        self.backend = backend


class DeltaError(ReproError):
    """Raised when the incremental mining layer is misused.

    Covers lifecycle mistakes of
    :class:`repro.correlation.incremental.IncrementalSCPM` — updating
    before the initial mine, or constructing it over a graph that does
    not support batched evolution (no ``apply_edge_batch``).
    """


class ParallelError(ReproError):
    """Raised when the parallel execution layer is misused or unavailable."""


class TransferError(ParallelError):
    """Raised when a worker payload cannot be transferred or attached."""


class PoisonTaskError(ParallelError):
    """Raised when tasks repeatedly killed their workers and were quarantined.

    The work-stealing scheduler re-executes tasks lost to a worker death a
    bounded number of times (see
    ``WorkStealingScheduler.max_task_retries``).  A task that keeps taking
    workers down with it is *poison* — retrying it forever would livelock
    the drain — so after the retry budget it is quarantined and, once every
    healthy task finished, the drain raises this error naming the culprits.
    Results of the healthy tasks are still available on
    ``scheduler.results``.
    """

    def __init__(self, keys) -> None:
        self.keys = tuple(keys)
        listed = ", ".join(sorted(repr(key) for key in self.keys))
        super().__init__(
            f"{len(self.keys)} task(s) repeatedly killed their worker and "
            f"were quarantined: {listed}"
        )


class FaultInjectionError(ReproError):
    """Raised when a fault-injection plan is malformed or misused.

    This is an error in the *test harness configuration* (unknown action,
    unknown error kind, unserialisable rule) — never one of the injected
    faults themselves, which raise the exception type the rule names.
    """


class StoreError(ReproError):
    """Raised when the persistent pattern store is misused or corrupt.

    Covers both halves of the persistence layer: writing
    (:mod:`repro.store` — unsupported value types, schema mismatches)
    and serving (:mod:`repro.serve` — opening a store that does not
    exist, referencing unknown runs or pattern ids).
    """


class QueryError(StoreError, ValueError):
    """Raised when a read-path query is malformed (bad mode, empty filter)."""


class PoolExhaustedError(StoreError):
    """Raised when no pooled reader became free within the lease timeout.

    The serving tier's load-shedding signal: a bounded
    :class:`~repro.serve.pool.ReaderPool` raises this instead of queueing
    a lease forever, and the HTTP front end maps it to ``503`` with a
    ``Retry-After`` header rather than letting requests pile up.
    """


class DeadlineExceededError(StoreError):
    """Raised when a request ran past its per-request deadline.

    Cooperative: the serving tier checks the deadline at its blocking
    points (handler entry, reader-lease acquisition) and sheds the request
    with ``503`` + ``Retry-After`` instead of serving a response nobody is
    still waiting for.
    """


class OverloadedError(StoreError):
    """Raised when the server already holds its maximum in-flight requests.

    The accept-queue-depth half of load shedding: past
    ``max_inflight`` concurrent requests the HTTP front end answers
    ``503`` + ``Retry-After`` immediately instead of spawning unbounded
    handler work.
    """


class NotFoundError(StoreError, LookupError):
    """Raised when a lookup names a run or pattern the store does not hold.

    Splits "you asked for something that is not there" from the rest of
    :class:`StoreError` ("the store itself is broken / misused"), so the
    serving front ends can map lookups onto their own error vocabulary —
    the HTTP tier answers 404 for this class and 500 for any other
    ``StoreError``.  Catching :class:`StoreError` still covers both.
    """


class DatasetError(ReproError):
    """Raised when a dataset cannot be generated or parsed."""


class FormatError(DatasetError, ValueError):
    """Raised when a graph file does not follow the expected format."""

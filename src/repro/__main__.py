"""Allow ``python -m repro`` as an alias for the ``scpm`` command."""

import sys

from repro.cli.main import main

if __name__ == "__main__":
    sys.exit(main())

"""Vertex-set engine selection — the seam between dense and sparse indexes.

The mining stack runs on a per-graph *vertex-set index*: the bijection
between vertices and dense integer ids plus per-vertex adjacency and
per-attribute holder sets in some machine representation.  Two engines
implement that contract:

* ``"dense"`` — :class:`repro.graph.vertexset.GraphBitsetIndex`.  One
  full-width int mask per vertex: O(|V|²/8) bytes regardless of sparsity,
  unbeatable constant factors below ~100k vertices.
* ``"sparse"`` — :class:`repro.graph.sparseset.SparseGraphBitsetIndex`.
  Roaring-style chunked containers (:class:`repro.graph.sparseset.SparseBitset`):
  memory tracks *edges*, not |V|², so million-vertex sparse graphs fit.

``"auto"`` (the default everywhere) picks per graph: dense while the dense
index stays cheap (small |V|) or the graph is dense enough that chunked
containers degenerate into bitmaps anyway; sparse otherwise.  Every public
entry point of the miners accepts an ``engine`` argument and threads it down
to :meth:`repro.graph.attributed_graph.AttributedGraph.bitset_index`, and
both engines produce byte-identical :class:`~repro.correlation.patterns.MiningResult`
output (enforced by the differential suite in
``tests/graph/test_sparse_differential.py``).

:class:`VertexSetEngine` is the structural protocol both index classes
satisfy; code that consumes an index should depend on it, not on a concrete
class.

Orthogonal to the dense/sparse *engine* choice, the sparse engine's chunk
algebra has its own swappable *chunk-op backend* (big-int reference loops
vs the vectorised numpy path) — see :mod:`repro.graph.chunkops`, whose
selection helpers are re-exported here for discoverability.
"""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from repro.errors import EngineError
from repro.graph.chunkops import (
    CHUNK_BACKENDS,
    CHUNK_BACKEND_ENV,
    resolve_chunk_backend,
    set_chunk_backend,
)

Vertex = Hashable
Attribute = Hashable

DENSE = "dense"
SPARSE = "sparse"
AUTO = "auto"
ENGINES = (DENSE, SPARSE, AUTO)

#: Below this vertex count the dense index costs at most a few MB and its
#: constant factors win; ``auto`` never picks sparse under it.
SPARSE_VERTEX_THRESHOLD = 8192

#: Edge density ``|E| / (|V| choose 2)`` at (or above) which a big graph is
#: treated as dense anyway: most 1024-bit chunks would be populated, so the
#: chunked containers only add overhead.
SPARSE_DENSITY_THRESHOLD = 1.0 / 64.0

#: Working sets at or below this size take the dense fast path inside the
#: sparse engine's ``local_adjacency``: the dense local masks being built
#: are tiny, so per-chunk container intersections and the chunked
#: low-degree pre-pass cost more than they save — the projection walks
#: plain neighbour ids against a position table instead, and the caller's
#: own dense pruning reaches the identical fixpoint.
LOCAL_DENSE_FAST_PATH_MAX = 2048


def resolve_engine(engine: str, num_vertices: int, num_edges: int) -> str:
    """Resolve an engine request to ``"dense"`` or ``"sparse"``.

    ``"auto"`` chooses by graph shape: dense below
    :data:`SPARSE_VERTEX_THRESHOLD` vertices or at edge density ≥
    :data:`SPARSE_DENSITY_THRESHOLD`, sparse for the remaining big-and-sparse
    graphs.  Unknown names raise :class:`repro.errors.EngineError`.
    """
    if engine not in ENGINES:
        raise EngineError(
            f"engine must be one of {ENGINES}, got {engine!r}"
        )
    if engine != AUTO:
        return engine
    if num_vertices < SPARSE_VERTEX_THRESHOLD:
        return DENSE
    possible = num_vertices * (num_vertices - 1) / 2.0
    density = num_edges / possible if possible else 0.0
    return SPARSE if density < SPARSE_DENSITY_THRESHOLD else DENSE


@runtime_checkable
class VertexSetEngine(Protocol):
    """Structural contract of a per-graph vertex-set index.

    *Native* sets are the engine's raw representation — int masks for the
    dense engine, :class:`~repro.graph.sparseset.SparseBitset` containers
    for the sparse one.  Natives of one engine support ``&``, ``|``,
    ``bit_count()`` and truth testing among themselves, so the callers in
    :mod:`repro.correlation.structural` stay engine-agnostic; ``bitset()``
    wraps a native into the engine's set-protocol view for code written
    against ``frozenset``.
    """

    indexer: Any
    attribute_masks: Dict[Attribute, Any]

    @property
    def full_mask(self) -> Any:
        """Native set of the whole vertex universe ``V``."""
        ...

    def adjacency_mask(self, vertex: Vertex) -> Any:
        """Native neighbour set of ``vertex``."""
        ...

    def attribute_mask(self, attribute: Attribute) -> Any:
        """Native holder set of ``attribute`` (empty when unknown)."""
        ...

    def members_mask(self, attributes: Iterable[Attribute]) -> Any:
        """Native ``V(S)`` — vertices carrying every attribute of ``S``."""
        ...

    def bitset(self, native: Any) -> Any:
        """Wrap a native set into the engine's set-protocol view."""
        ...

    def working_mask(self, vertices: Any) -> Any:
        """Normalise a vertex restriction (``None``/iterable/view) to a native."""
        ...

    def native_from_ids(self, ids: Iterable[int]) -> Any:
        """Build a native set from dense vertex ids."""
        ...

    def local_adjacency(
        self, working: Any, min_degree: int = 0
    ) -> Tuple[List[int], List[int]]:
        """Project adjacency into a compact local id space over ``working``.

        Returns ``(global_ids, local_masks)``: the (ascending) dense ids of
        the working vertices and, for each, its neighbour set within the
        working set as a plain int mask over *positions in global_ids* —
        the only place a dense representation is ever materialised on the
        sparse engine, and it is bounded by one search's working set, not
        |V|.  Engines may use ``min_degree`` to pre-drop vertices whose
        working degree provably stays below it (the quasi-clique search
        passes ``params.base_degree_threshold``); the caller must therefore
        apply its own pruning to a fixpoint afterwards, which the search
        already does.
        """
        ...

    def nbytes(self) -> int:
        """Estimated memory footprint of the index payload in bytes."""
        ...


def dense_index_payload_bytes(num_vertices: int) -> int:
    """Bytes the dense engine's adjacency masks occupy at ``num_vertices``.

    One full-width int per vertex, measured with ``sys.getsizeof`` on an
    actual |V|-bit int so CPython's per-object overhead is included.  Used
    by the memory regression tests and benchmarks as the quadratic baseline
    the sparse engine is compared against (building the real dense index at
    100k vertices would itself cost > 1 GB).
    """
    import sys

    return num_vertices * sys.getsizeof((1 << num_vertices) - 1)


__all__ = [
    "AUTO",
    "CHUNK_BACKENDS",
    "CHUNK_BACKEND_ENV",
    "DENSE",
    "ENGINES",
    "LOCAL_DENSE_FAST_PATH_MAX",
    "SPARSE",
    "SPARSE_DENSITY_THRESHOLD",
    "SPARSE_VERTEX_THRESHOLD",
    "VertexSetEngine",
    "dense_index_payload_bytes",
    "resolve_chunk_backend",
    "resolve_engine",
    "set_chunk_backend",
]

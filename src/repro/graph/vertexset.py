"""Bitset-backed vertex sets — the fast set engine under the mining stack.

The innermost operation of every miner in this repository is a set
intersection: Eclat joins tidsets, Theorem-3 vertex pruning intersects
covered sets, and the quasi-clique search intersects adjacency lists with
candidate sets thousands of times per attribute set.  Hashed ``frozenset``
intersections pay a per-element cost; this module replaces them with dense
bitsets over Python's arbitrary-precision integers, where ``&``, ``|`` and
popcount run over machine words in C.

Three pieces:

* :class:`VertexIndexer` — a stable bijection between (hashable) vertices
  and dense integer ids ``0..n-1``; the id of a vertex is its bit position.
* :class:`VertexBitset` — an immutable, set-like wrapper around one mask
  bound to an indexer.  It supports the operators the miners use
  (``& | - ^``, subset tests, iteration, ``len``) so it can flow through
  code written against ``frozenset`` unchanged; ``to_frozenset`` converts
  back at public API boundaries.
* :class:`GraphBitsetIndex` — the per-graph bundle of masks the engines
  consume: the indexer, one adjacency mask per vertex and one holder mask
  per attribute.  :meth:`repro.graph.attributed_graph.AttributedGraph.bitset_index`
  builds and caches it (the cache is invalidated on mutation).

Low-level helpers (:func:`popcount`, :func:`iter_bits`) work on raw ``int``
masks and are what the quasi-clique inner loops call directly.

Memory model: adjacency masks are *dense* — one ``|V|``-bit int per vertex,
O(|V|²/8) bytes regardless of sparsity.  That is the right trade below
~100k vertices (the scale of this repository's benchmarks); bigger sparse
graphs use the chunked-container twin in :mod:`repro.graph.sparseset`,
selected through the ``engine`` seam in :mod:`repro.graph.engine`.
"""

from __future__ import annotations

import sys
from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Tuple, Union

from repro.errors import IndexerMismatchError, UnknownVertexError

Vertex = Hashable
Attribute = Hashable


def popcount(mask: int) -> int:
    """Number of set bits of ``mask`` (``|S|`` for a bitset ``S``)."""
    return mask.bit_count()


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the set bit positions of ``mask`` in ascending order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class VertexIndexer:
    """Bijection between vertices and dense integer ids (bit positions).

    Ids are assigned in first-seen order and never change, so masks built
    against one indexer stay comparable for the indexer's lifetime.

    Examples
    --------
    >>> indexer = VertexIndexer(["u", "v", "w"])
    >>> indexer.id_of("v")
    1
    >>> sorted(indexer.vertices_of(0b101))
    ['u', 'w']
    """

    __slots__ = ("_ids", "_vertices")

    def __init__(self, vertices: Iterable[Vertex] = ()) -> None:
        self._ids: Dict[Vertex, int] = {}
        self._vertices: List[Vertex] = []
        for vertex in vertices:
            self.add(vertex)

    def add(self, vertex: Vertex) -> int:
        """Register ``vertex`` (idempotent) and return its id."""
        existing = self._ids.get(vertex)
        if existing is not None:
            return existing
        index = len(self._vertices)
        self._ids[vertex] = index
        self._vertices.append(vertex)
        return index

    def id_of(self, vertex: Vertex) -> int:
        """Return the dense id of ``vertex``."""
        try:
            return self._ids[vertex]
        except KeyError:
            raise UnknownVertexError(vertex) from None

    def vertex_of(self, index: int) -> Vertex:
        """Return the vertex with dense id ``index``."""
        return self._vertices[index]

    def mask_of(self, vertices: Iterable[Vertex]) -> int:
        """Return the mask with the bit of every vertex in ``vertices`` set.

        Unknown vertices raise :class:`UnknownVertexError`.
        """
        ids = self._ids
        mask = 0
        try:
            for vertex in vertices:
                mask |= 1 << ids[vertex]
        except KeyError as exc:
            raise UnknownVertexError(exc.args[0]) from None
        return mask

    def mask_of_known(self, vertices: Iterable[Vertex]) -> int:
        """Like :meth:`mask_of` but silently skips unknown vertices."""
        ids = self._ids
        mask = 0
        for vertex in vertices:
            index = ids.get(vertex)
            if index is not None:
                mask |= 1 << index
        return mask

    def vertices_of(self, mask: int) -> FrozenSet[Vertex]:
        """Return the frozen set of vertices whose bits are set in ``mask``."""
        table = self._vertices
        return frozenset(table[i] for i in iter_bits(mask))

    def iter_vertices(self, mask: int) -> Iterator[Vertex]:
        """Iterate the vertices of ``mask`` in ascending id order."""
        table = self._vertices
        return (table[i] for i in iter_bits(mask))

    def bitset(self, vertices: Iterable[Vertex] = ()) -> "VertexBitset":
        """Build a :class:`VertexBitset` over this indexer from vertices."""
        return VertexBitset(self, self.mask_of(vertices))

    def __getstate__(self):
        # The id table is a bijection: the vertex list alone determines it.
        # Dropping the dict roughly halves the serialized indexer, which
        # matters because the parallel transfer layer ships the indexer to
        # every worker (once) inside the graph payload.
        return self._vertices

    def __setstate__(self, state) -> None:
        self._vertices = list(state)
        self._ids = {vertex: index for index, vertex in enumerate(self._vertices)}

    @property
    def full_mask(self) -> int:
        """Mask with every registered vertex's bit set."""
        return (1 << len(self._vertices)) - 1

    def __len__(self) -> int:
        return len(self._vertices)

    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self._ids

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._vertices)

    def __repr__(self) -> str:
        return f"VertexIndexer(num_vertices={len(self._vertices)})"


class VertexBitset:
    """An immutable vertex set stored as one integer mask.

    Binary operators and equality require both operands to share the *same*
    indexer object — mixing universes would silently misalign bit
    positions, so it is a :class:`repro.errors.IndexerMismatchError`
    (a :class:`ValueError` subclass) instead.

    Examples
    --------
    >>> indexer = VertexIndexer([1, 2, 3, 4])
    >>> a = indexer.bitset([1, 2, 3])
    >>> b = indexer.bitset([2, 3, 4])
    >>> sorted(a & b)
    [2, 3]
    >>> len(a | b)
    4
    """

    __slots__ = ("indexer", "bits")

    def __init__(self, indexer: VertexIndexer, bits: int = 0) -> None:
        self.indexer = indexer
        self.bits = bits

    @classmethod
    def from_vertices(
        cls, indexer: VertexIndexer, vertices: Iterable[Vertex]
    ) -> "VertexBitset":
        """Build a bitset from an iterable of (known) vertices."""
        return cls(indexer, indexer.mask_of(vertices))

    # -- set protocol --------------------------------------------------
    def __len__(self) -> int:
        return self.bits.bit_count()

    def __bool__(self) -> bool:
        return self.bits != 0

    def __iter__(self) -> Iterator[Vertex]:
        return self.indexer.iter_vertices(self.bits)

    def __contains__(self, vertex: Vertex) -> bool:
        ids = self.indexer._ids
        index = ids.get(vertex)
        return index is not None and (self.bits >> index) & 1 == 1

    def _coerce(self, other: object, operation: str = "combine") -> int:
        if isinstance(other, VertexBitset):
            if other.indexer is not self.indexer:
                raise IndexerMismatchError(operation)
            return other.bits
        if isinstance(other, int):
            # Raw masks are trusted to be over this indexer (internal use).
            return other
        return NotImplemented  # type: ignore[return-value]

    def __and__(self, other: object) -> "VertexBitset":
        bits = self._coerce(other)
        if bits is NotImplemented:
            return NotImplemented
        return VertexBitset(self.indexer, self.bits & bits)

    def __or__(self, other: object) -> "VertexBitset":
        bits = self._coerce(other)
        if bits is NotImplemented:
            return NotImplemented
        return VertexBitset(self.indexer, self.bits | bits)

    def __sub__(self, other: object) -> "VertexBitset":
        bits = self._coerce(other)
        if bits is NotImplemented:
            return NotImplemented
        return VertexBitset(self.indexer, self.bits & ~bits)

    def __xor__(self, other: object) -> "VertexBitset":
        bits = self._coerce(other)
        if bits is NotImplemented:
            return NotImplemented
        return VertexBitset(self.indexer, self.bits ^ bits)

    __rand__ = __and__
    __ror__ = __or__

    def __le__(self, other: object) -> bool:
        bits = self._coerce(other)
        if bits is NotImplemented:
            return NotImplemented
        return self.bits & ~bits == 0

    def __lt__(self, other: object) -> bool:
        bits = self._coerce(other)
        if bits is NotImplemented:
            return NotImplemented
        return self.bits != bits and self.bits & ~bits == 0

    def __ge__(self, other: object) -> bool:
        bits = self._coerce(other)
        if bits is NotImplemented:
            return NotImplemented
        return bits & ~self.bits == 0

    def __gt__(self, other: object) -> bool:
        bits = self._coerce(other)
        if bits is NotImplemented:
            return NotImplemented
        return self.bits != bits and bits & ~self.bits == 0

    def __eq__(self, other: object) -> bool:
        if isinstance(other, VertexBitset):
            if self.indexer is not other.indexer:
                # Comparing raw bits across indexers would silently equate
                # (or distinguish) unrelated vertex sets.
                raise IndexerMismatchError("compare")
            return self.bits == other.bits
        if isinstance(other, (set, frozenset)):
            return self.to_frozenset() == other
        return NotImplemented

    def __hash__(self) -> int:
        # Content-based so a bitset hashes like the frozenset it equals.
        # The eq/hash contract therefore only holds within one indexer (and
        # with plain frozensets): hash-container lookups mixing bitsets of
        # different indexers propagate IndexerMismatchError from __eq__ —
        # deliberately, since silently treating them as distinct keys would
        # hide the same universe-mixing bug the operators refuse.
        return hash(self.to_frozenset())

    def _coerce_vertices(self, other) -> int:
        """Coerce a bitset, mask, or iterable of vertices to a mask.

        Vertices unknown to the indexer are dropped: they cannot be in
        ``self``, so subset/disjointness answers are unaffected.
        """
        bits = self._coerce(other)
        if bits is NotImplemented:
            return self.indexer.mask_of_known(other)
        return bits

    def isdisjoint(self, other) -> bool:
        """Return ``True`` when the two sets share no vertex.

        Accepts another :class:`VertexBitset`, a raw mask, or any iterable
        of vertices.
        """
        return self.bits & self._coerce_vertices(other) == 0

    def issubset(self, other) -> bool:
        """Return ``True`` when every vertex of ``self`` is in ``other``.

        Accepts another :class:`VertexBitset`, a raw mask, or any iterable
        of vertices.
        """
        return self.bits & ~self._coerce_vertices(other) == 0

    # -- conversions ---------------------------------------------------
    def to_frozenset(self) -> FrozenSet[Vertex]:
        """Materialise the plain ``frozenset`` (public-API boundary)."""
        return self.indexer.vertices_of(self.bits)

    def __repr__(self) -> str:
        preview = sorted(map(repr, self))
        if len(preview) > 8:
            preview = preview[:8] + ["..."]
        return f"VertexBitset({{{', '.join(preview)}}})"


class GraphBitsetIndex:
    """Precomputed bitset view of an attributed graph.

    Holds the :class:`VertexIndexer` over the graph's vertices plus

    * ``adjacency_masks[i]`` — the neighbour mask of the vertex with id
      ``i`` (the quasi-clique engine's degree checks are one ``&`` and one
      popcount against these), and
    * one holder mask per attribute — the vertical database of Eclat, so a
      tidset join ``V(S_i) ∩ V(S_j)`` is a single integer ``&``.
    """

    __slots__ = ("indexer", "adjacency_masks", "attribute_masks")

    def __init__(
        self,
        indexer: VertexIndexer,
        adjacency_masks: List[int],
        attribute_masks: Dict[Attribute, int],
    ) -> None:
        self.indexer = indexer
        self.adjacency_masks = adjacency_masks
        self.attribute_masks = attribute_masks

    @classmethod
    def build(cls, graph) -> "GraphBitsetIndex":
        """Build the index from any graph exposing the AttributedGraph API."""
        indexer = VertexIndexer(graph.vertices())
        adjacency_masks = [
            indexer.mask_of(graph.neighbor_set(vertex)) for vertex in indexer
        ]
        attribute_masks = {
            attribute: indexer.mask_of(graph.vertices_with(attribute))
            for attribute in graph.attributes()
        }
        return cls(indexer, adjacency_masks, attribute_masks)

    @property
    def full_mask(self) -> int:
        """Mask of the whole vertex set ``V``."""
        return self.indexer.full_mask

    def adjacency_mask(self, vertex: Vertex) -> int:
        """Neighbour mask of ``vertex``."""
        return self.adjacency_masks[self.indexer.id_of(vertex)]

    def attribute_mask(self, attribute: Attribute) -> int:
        """Holder mask of ``attribute`` (0 when no vertex carries it)."""
        return self.attribute_masks.get(attribute, 0)

    def members_mask(self, attributes: Iterable[Attribute]) -> int:
        """Mask of ``V(S)`` — vertices carrying *every* attribute of ``S``.

        Mirrors :meth:`AttributedGraph.vertices_with_all`: the empty
        attribute set induces the full vertex set.
        """
        masks = [self.attribute_masks.get(a, 0) for a in attributes]
        if not masks:
            return self.full_mask
        result = masks[0]
        for mask in masks[1:]:
            result &= mask
            if not result:
                break
        return result

    def bitset(self, mask: int) -> VertexBitset:
        """Wrap a raw mask into a :class:`VertexBitset` over this indexer."""
        return VertexBitset(self.indexer, mask)

    def working_mask(
        self, vertices: Union[VertexBitset, Iterable[Vertex], None]
    ) -> int:
        """Normalise a vertex restriction to a mask over this index.

        ``None`` means the whole graph; a :class:`VertexBitset` bound to the
        same indexer is used verbatim; any other iterable is converted,
        silently dropping vertices that are not in the graph (matching the
        historical behaviour of the search engine's ``vertices=`` filter).
        """
        if vertices is None:
            return self.full_mask
        if isinstance(vertices, VertexBitset) and vertices.indexer is self.indexer:
            return vertices.bits & self.full_mask
        return self.indexer.mask_of_known(vertices)

    def native_from_ids(self, ids: Iterable[int]) -> int:
        """Build a native mask from dense vertex ids (engine protocol)."""
        mask = 0
        for index in ids:
            mask |= 1 << index
        return mask

    def local_adjacency(
        self, working: int, min_degree: int = 0
    ) -> Tuple[List[int], List[int]]:
        """Project adjacency into a compact local id space over ``working``.

        Returns ``(global_ids, local_masks)`` per the
        :class:`repro.graph.engine.VertexSetEngine` contract.  The dense
        engine ignores ``min_degree``: its masks already exist, and the
        quasi-clique search prunes low-degree vertices to a fixpoint right
        after this call anyway.
        """
        global_ids = list(iter_bits(working))
        position = {g: i for i, g in enumerate(global_ids)}
        adjacency_masks = self.adjacency_masks
        masks: List[int] = []
        for g in global_ids:
            local = 0
            for h in iter_bits(adjacency_masks[g] & working):
                local |= 1 << position[h]
            masks.append(local)
        return global_ids, masks

    def nbytes(self) -> int:
        """Estimated memory footprint of the adjacency + attribute payload."""
        total = sum(sys.getsizeof(mask) for mask in self.adjacency_masks)
        total += sum(sys.getsizeof(mask) for mask in self.attribute_masks.values())
        total += sys.getsizeof(self.adjacency_masks)
        total += sys.getsizeof(self.attribute_masks)
        return total

    def __getstate__(self):
        # Serialization hook for the parallel transfer layer: the whole
        # index travels as one tuple so pickle's memo keeps the indexer
        # object shared with every bitset serialized alongside it (the
        # single-indexer invariant the miners rely on).
        return (self.indexer, self.adjacency_masks, self.attribute_masks)

    def __setstate__(self, state) -> None:
        self.indexer, self.adjacency_masks, self.attribute_masks = state

"""Structural validation helpers for attributed graphs.

These checks are used by the dataset generators and by the CLI to fail fast
on malformed inputs before a long mining run starts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.graph.attributed_graph import AttributedGraph


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_graph`.

    ``issues`` lists human-readable problems; an empty list means the graph
    passed every check.
    """

    issues: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """``True`` when no issues were found."""
        return not self.issues

    def add(self, message: str) -> None:
        """Record an issue."""
        self.issues.append(message)

    def __bool__(self) -> bool:
        return self.ok


def validate_graph(
    graph: AttributedGraph,
    require_attributes: bool = False,
    require_edges: bool = False,
) -> ValidationReport:
    """Check internal consistency of ``graph``.

    Verifies adjacency symmetry, the inverted attribute index, and —
    optionally — that the graph has at least one edge and that every vertex
    has at least one attribute.
    """
    report = ValidationReport()
    if graph.num_vertices == 0:
        report.add("graph has no vertices")
        return report

    for vertex in graph.vertices():
        for neighbor in graph.neighbor_set(vertex):
            if vertex not in graph.neighbor_set(neighbor):
                report.add(f"asymmetric adjacency between {vertex!r} and {neighbor!r}")
            if neighbor == vertex:
                report.add(f"self-loop on {vertex!r}")

    index = graph.attribute_support_index()
    for attribute, holders in index.items():
        for vertex in holders:
            if attribute not in graph.attributes_of(vertex):
                report.add(
                    f"attribute index lists {attribute!r} on {vertex!r} "
                    "but the vertex does not carry it"
                )
    for vertex in graph.vertices():
        for attribute in graph.attributes_of(vertex):
            if vertex not in index.get(attribute, frozenset()):
                report.add(
                    f"vertex {vertex!r} carries {attribute!r} "
                    "but the attribute index does not list it"
                )

    if require_edges and graph.num_edges == 0:
        report.add("graph has no edges")
    if require_attributes:
        bare = [v for v in graph.vertices() if not graph.attributes_of(v)]
        if bare:
            report.add(f"{len(bare)} vertices have no attributes")
    return report

"""Chunked (roaring-style) vertex sets — the sparse twin of :mod:`vertexset`.

The dense engine stores every vertex set as one |V|-bit integer, which makes
the *index* O(|V|²/8) bytes: one full-width adjacency mask per vertex, no
matter how few edges exist.  This module stores a vertex set as a dictionary
of fixed-width **chunks** — only the non-empty ones — so memory tracks the
number of elements (edges, for adjacency) instead of the universe size.

Container layout, after Roaring bitmaps (Chambi et al.):

* the id space is split into :data:`CHUNK_BITS`-wide blocks;
* a block holding at most :data:`ARRAY_MAX` ids is an **array container** —
  a sorted tuple of in-chunk offsets;
* a denser block is a **bitmap container** — one :data:`CHUNK_BITS`-bit int.

Containers are kept *canonical* (array iff cardinality ≤ :data:`ARRAY_MAX`,
no empty chunks), so structural equality of the chunk dictionaries is set
equality.  All binary operations work chunk-wise and never touch blocks that
are absent from both operands.

Three layers mirror :mod:`repro.graph.vertexset` exactly:

* :class:`SparseBitset` — the raw container (the sparse engine's *native*
  set).  It deliberately mimics the fraction of the ``int`` mask API the
  mining stack uses (``& | ^``, ``bit_count()``, truthiness, ascending-id
  iteration), so engine-agnostic callers can hold either native.
* :class:`SparseVertexBitset` — the indexer-bound, ``frozenset``-compatible
  view (the sparse twin of :class:`~repro.graph.vertexset.VertexBitset`).
* :class:`SparseGraphBitsetIndex` — the per-graph index satisfying
  :class:`repro.graph.engine.VertexSetEngine`; per-vertex adjacency and
  per-attribute holder sets are chunked containers, and dense masks are
  materialised only inside the degree-ranked local id space of a single
  quasi-clique search (:meth:`SparseGraphBitsetIndex.local_adjacency`).

The bulk set algebra (``& | ^``, and-not, intersection counts, subset and
disjointness tests) is delegated to a swappable *chunk-op backend* in
:mod:`repro.graph.chunkops`: the big-int reference loops, or a vectorised
numpy path that stacks shared 1024-bit chunks into ``uint64`` matrices.
Both backends emit identical canonical containers, so everything above
this module is backend-oblivious; selection is process-global via the
``REPRO_CHUNK_BACKEND`` environment variable (see
:func:`repro.graph.chunkops.resolve_chunk_backend`).
"""

from __future__ import annotations

import sys
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

from repro.errors import IndexerMismatchError
from repro.graph.chunkops import (
    ARRAY_MAX,
    CHUNK_BITS,
    Container,
    canonical as _canonical,
    container_bits as _container_bits,
    container_count as _container_count,
    get_chunk_backend,
)
from repro.graph.engine import LOCAL_DENSE_FAST_PATH_MAX
from repro.graph.vertexset import VertexIndexer, iter_bits

Vertex = Hashable
Attribute = Hashable

_CHUNK_MASK = (1 << CHUNK_BITS) - 1


class SparseBitset:
    """An immutable set of non-negative ints stored in chunked containers.

    Supports the operators the mining stack applies to raw int masks
    (``& | ^``, ``bit_count``, ``bool``, ascending iteration) plus the
    explicit :meth:`andnot` difference — chunked containers have no cheap
    infinite complement, so ``~`` is intentionally absent.

    Examples
    --------
    >>> a = SparseBitset.from_iterable([1, 2, 70000])
    >>> b = SparseBitset.from_iterable([2, 70000, 90000])
    >>> sorted(a & b)
    [2, 70000]
    >>> (a | b).bit_count()
    4
    """

    __slots__ = ("_chunks", "_count")

    def __init__(self, chunks: Optional[Dict[int, Container]] = None) -> None:
        self._chunks: Dict[int, Container] = chunks if chunks is not None else {}
        self._count = sum(_container_count(c) for c in self._chunks.values())

    # -- construction ---------------------------------------------------
    @classmethod
    def from_iterable(cls, ids: Iterable[int]) -> "SparseBitset":
        """Build a set from arbitrary (possibly unsorted, repeated) ids."""
        raw: Dict[int, int] = {}
        for value in ids:
            raw[value // CHUNK_BITS] = raw.get(value // CHUNK_BITS, 0) | (
                1 << (value % CHUNK_BITS)
            )
        return cls({chunk: _canonical(bits) for chunk, bits in raw.items()})

    @classmethod
    def from_chunk_bits(cls, raw: Dict[int, int]) -> "SparseBitset":
        """Build a set from raw per-chunk bitmaps ``{chunk: bits}``.

        This is the constructor the streaming ingest accumulators use:
        they collect plain chunk→bitmap dictionaries while a file is being
        read and canonicalise (array/bitmap promotion, empty-chunk
        dropping) only once, here.  Chunks whose bitmap is 0 are ignored.
        """
        return cls(
            {chunk: _canonical(bits) for chunk, bits in raw.items() if bits}
        )

    @classmethod
    def from_mask(cls, mask: int) -> "SparseBitset":
        """Build a set from a dense int mask (bit position = id)."""
        chunks: Dict[int, Container] = {}
        chunk = 0
        while mask:
            bits = mask & _CHUNK_MASK
            if bits:
                chunks[chunk] = _canonical(bits)
            mask >>= CHUNK_BITS
            chunk += 1
        return cls(chunks)

    def to_mask(self) -> int:
        """Dense int mask with exactly this set's bits (interop/testing)."""
        mask = 0
        for chunk, container in self._chunks.items():
            mask |= _container_bits(container) << (chunk * CHUNK_BITS)
        return mask

    # -- int-mask-compatible surface ------------------------------------
    def bit_count(self) -> int:
        """Cardinality — name mirrors ``int.bit_count`` so natives swap."""
        return self._count

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count != 0

    def __iter__(self) -> Iterator[int]:
        """Yield member ids in ascending order."""
        for chunk in sorted(self._chunks):
            base = chunk * CHUNK_BITS
            container = self._chunks[chunk]
            if isinstance(container, int):
                for offset in iter_bits(container):
                    yield base + offset
            else:
                for offset in container:
                    yield base + offset

    def __contains__(self, value: int) -> bool:
        container = self._chunks.get(value // CHUNK_BITS)
        if container is None:
            return False
        offset = value % CHUNK_BITS
        if isinstance(container, int):
            return (container >> offset) & 1 == 1
        return offset in container

    # -- algebra --------------------------------------------------------
    # Every bulk operation delegates to the process-global chunk-op
    # backend (repro.graph.chunkops): either the big-int reference loops
    # or the vectorised numpy path.  Backends return canonical containers,
    # so the results wrap straight into SparseBitset.
    def __and__(self, other: "SparseBitset") -> "SparseBitset":
        if not isinstance(other, SparseBitset):
            return NotImplemented
        return SparseBitset(
            get_chunk_backend().and_chunks(self._chunks, other._chunks)
        )

    def __or__(self, other: "SparseBitset") -> "SparseBitset":
        if not isinstance(other, SparseBitset):
            return NotImplemented
        return SparseBitset(
            get_chunk_backend().or_chunks(self._chunks, other._chunks)
        )

    def __xor__(self, other: "SparseBitset") -> "SparseBitset":
        if not isinstance(other, SparseBitset):
            return NotImplemented
        return SparseBitset(
            get_chunk_backend().xor_chunks(self._chunks, other._chunks)
        )

    def andnot(self, other: "SparseBitset") -> "SparseBitset":
        """Set difference ``self \\ other`` (the chunked twin of ``a & ~b``)."""
        if not isinstance(other, SparseBitset):
            raise TypeError(
                f"andnot expects a SparseBitset, got {type(other).__name__}"
            )
        return SparseBitset(
            get_chunk_backend().andnot_chunks(self._chunks, other._chunks)
        )

    def __sub__(self, other: object) -> "SparseBitset":
        if not isinstance(other, SparseBitset):
            return NotImplemented
        return self.andnot(other)

    def intersection_count(self, other: "SparseBitset") -> int:
        """``|self ∩ other|`` without materialising the intersection."""
        return get_chunk_backend().intersection_count(
            self._chunks, other._chunks
        )

    def isdisjoint(self, other: "SparseBitset") -> bool:
        """``True`` when the two sets share no element."""
        return get_chunk_backend().isdisjoint(self._chunks, other._chunks)

    def issubset(self, other: "SparseBitset") -> bool:
        """``True`` when every element of ``self`` is in ``other``."""
        return get_chunk_backend().issubset(self._chunks, other._chunks)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SparseBitset):
            return self._chunks == other._chunks
        return NotImplemented

    def __hash__(self) -> int:
        return hash(frozenset(self._chunks.items()))

    def nbytes(self) -> int:
        """Estimated heap footprint of this container in bytes."""
        total = sys.getsizeof(self) + sys.getsizeof(self._chunks)
        for chunk, container in self._chunks.items():
            total += sys.getsizeof(chunk) + sys.getsizeof(container)
            if isinstance(container, tuple):
                total += sum(sys.getsizeof(offset) for offset in container)
        return total

    def __getstate__(self):
        # The cardinality is recomputable; only the chunk dictionary needs
        # to travel through the parallel transfer layer.
        return self._chunks

    def __setstate__(self, state) -> None:
        self._chunks = state
        self._count = sum(_container_count(c) for c in state.values())

    def __repr__(self) -> str:
        preview = []
        for value in self:
            if len(preview) == 8:
                preview.append("...")
                break
            preview.append(str(value))
        return f"SparseBitset({{{', '.join(preview)}}}, n={self._count})"


_EMPTY = SparseBitset()


class SparseVertexBitset:
    """Indexer-bound view of a :class:`SparseBitset` — sparse twin of
    :class:`~repro.graph.vertexset.VertexBitset`.

    Behaves like a ``frozenset`` of vertices for the operations the miners
    use; binary operators require both operands bound to the *same*
    :class:`~repro.graph.vertexset.VertexIndexer` and raise
    :class:`repro.errors.IndexerMismatchError` otherwise, exactly like the
    dense view.
    """

    __slots__ = ("indexer", "chunks")

    def __init__(self, indexer: VertexIndexer, chunks: SparseBitset) -> None:
        self.indexer = indexer
        self.chunks = chunks

    @classmethod
    def from_vertices(
        cls, indexer: VertexIndexer, vertices: Iterable[Vertex]
    ) -> "SparseVertexBitset":
        """Build a sparse bitset from an iterable of (known) vertices."""
        return cls(
            indexer,
            SparseBitset.from_iterable(indexer.id_of(v) for v in vertices),
        )

    # -- set protocol ---------------------------------------------------
    def __len__(self) -> int:
        return self.chunks.bit_count()

    def __bool__(self) -> bool:
        return bool(self.chunks)

    def __iter__(self) -> Iterator[Vertex]:
        vertex_of = self.indexer.vertex_of
        return (vertex_of(i) for i in self.chunks)

    def __contains__(self, vertex: Vertex) -> bool:
        index = self.indexer._ids.get(vertex)
        return index is not None and index in self.chunks

    def _coerce(self, other: object, operation: str) -> SparseBitset:
        if isinstance(other, SparseVertexBitset):
            if other.indexer is not self.indexer:
                raise IndexerMismatchError(operation)
            return other.chunks
        if isinstance(other, SparseBitset):
            return other
        return NotImplemented  # type: ignore[return-value]

    def __and__(self, other: object) -> "SparseVertexBitset":
        chunks = self._coerce(other, "intersect")
        if chunks is NotImplemented:
            return NotImplemented
        return SparseVertexBitset(self.indexer, self.chunks & chunks)

    def __or__(self, other: object) -> "SparseVertexBitset":
        chunks = self._coerce(other, "union")
        if chunks is NotImplemented:
            return NotImplemented
        return SparseVertexBitset(self.indexer, self.chunks | chunks)

    def __sub__(self, other: object) -> "SparseVertexBitset":
        chunks = self._coerce(other, "subtract")
        if chunks is NotImplemented:
            return NotImplemented
        return SparseVertexBitset(self.indexer, self.chunks.andnot(chunks))

    def __xor__(self, other: object) -> "SparseVertexBitset":
        chunks = self._coerce(other, "xor")
        if chunks is NotImplemented:
            return NotImplemented
        return SparseVertexBitset(self.indexer, self.chunks ^ chunks)

    __rand__ = __and__
    __ror__ = __or__

    def __le__(self, other: object) -> bool:
        chunks = self._coerce(other, "order-compare")
        if chunks is NotImplemented:
            return NotImplemented
        return self.chunks.issubset(chunks)

    def __lt__(self, other: object) -> bool:
        chunks = self._coerce(other, "order-compare")
        if chunks is NotImplemented:
            return NotImplemented
        return self.chunks != chunks and self.chunks.issubset(chunks)

    def __ge__(self, other: object) -> bool:
        chunks = self._coerce(other, "order-compare")
        if chunks is NotImplemented:
            return NotImplemented
        return chunks.issubset(self.chunks)

    def __gt__(self, other: object) -> bool:
        chunks = self._coerce(other, "order-compare")
        if chunks is NotImplemented:
            return NotImplemented
        return self.chunks != chunks and chunks.issubset(self.chunks)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SparseVertexBitset):
            if other.indexer is not self.indexer:
                raise IndexerMismatchError("compare")
            return self.chunks == other.chunks
        if isinstance(other, (set, frozenset)):
            return self.to_frozenset() == other
        return NotImplemented

    def __hash__(self) -> int:
        # Content-based, like the dense view: the eq/hash contract holds
        # within one indexer and with plain frozensets; mixed-indexer
        # hash-container lookups propagate IndexerMismatchError from __eq__.
        return hash(self.to_frozenset())

    def _coerce_vertices(self, other) -> SparseBitset:
        """Coerce a view, container, or vertex iterable to a container.

        Vertices unknown to the indexer are dropped: they cannot be in
        ``self``, so subset/disjointness answers are unaffected.
        """
        chunks = self._coerce(other, "combine")
        if chunks is NotImplemented:
            ids = self.indexer._ids
            known = (ids.get(v) for v in other)
            return SparseBitset.from_iterable(i for i in known if i is not None)
        return chunks

    def isdisjoint(self, other) -> bool:
        """``True`` when the two sets share no vertex (iterables accepted)."""
        return self.chunks.isdisjoint(self._coerce_vertices(other))

    def issubset(self, other) -> bool:
        """``True`` when every vertex of ``self`` is in ``other``."""
        return self.chunks.issubset(self._coerce_vertices(other))

    # -- conversions ----------------------------------------------------
    def to_frozenset(self) -> FrozenSet[Vertex]:
        """Materialise the plain ``frozenset`` (public-API boundary)."""
        vertex_of = self.indexer.vertex_of
        return frozenset(vertex_of(i) for i in self.chunks)

    def __repr__(self) -> str:
        preview = sorted(map(repr, self))
        if len(preview) > 8:
            preview = preview[:8] + ["..."]
        return f"SparseVertexBitset({{{', '.join(preview)}}})"


class SparseGraphBitsetIndex:
    """Chunked-container view of an attributed graph.

    The sparse implementation of the
    :class:`repro.graph.engine.VertexSetEngine` contract: the indexer plus
    one :class:`SparseBitset` adjacency container per vertex and one holder
    container per attribute.  Memory is proportional to ``|V| + |E| +
    Σ|V(a)|`` — edges and attribute incidences, never |V|².
    """

    __slots__ = ("indexer", "adjacency_sets", "attribute_masks", "_full")

    def __init__(
        self,
        indexer: VertexIndexer,
        adjacency_sets: List[SparseBitset],
        attribute_masks: Dict[Attribute, SparseBitset],
    ) -> None:
        self.indexer = indexer
        self.adjacency_sets = adjacency_sets
        self.attribute_masks = attribute_masks
        self._full: Optional[SparseBitset] = None

    @classmethod
    def build(cls, graph) -> "SparseGraphBitsetIndex":
        """Build the index from any graph exposing the AttributedGraph API."""
        indexer = VertexIndexer(graph.vertices())
        id_of = indexer.id_of
        adjacency_sets = [
            SparseBitset.from_iterable(
                id_of(u) for u in graph.neighbor_set(vertex)
            )
            for vertex in indexer
        ]
        attribute_masks = {
            attribute: SparseBitset.from_iterable(
                id_of(v) for v in graph.vertices_with(attribute)
            )
            for attribute in graph.attributes()
        }
        return cls(indexer, adjacency_sets, attribute_masks)

    # -- VertexSetEngine surface ----------------------------------------
    @property
    def full_mask(self) -> SparseBitset:
        """Container of the whole vertex set ``V`` (built lazily, cached)."""
        if self._full is None:
            self._full = SparseBitset.from_iterable(range(len(self.indexer)))
        return self._full

    def adjacency_mask(self, vertex: Vertex) -> SparseBitset:
        """Neighbour container of ``vertex``."""
        return self.adjacency_sets[self.indexer.id_of(vertex)]

    def attribute_mask(self, attribute: Attribute) -> SparseBitset:
        """Holder container of ``attribute`` (empty when no vertex has it)."""
        return self.attribute_masks.get(attribute, _EMPTY)

    def members_mask(self, attributes: Iterable[Attribute]) -> SparseBitset:
        """Container of ``V(S)`` — vertices carrying *every* attribute of S.

        Mirrors :meth:`AttributedGraph.vertices_with_all`: the empty
        attribute set induces the full vertex set.
        """
        containers = [self.attribute_masks.get(a, _EMPTY) for a in attributes]
        if not containers:
            return self.full_mask
        containers.sort(key=len)
        result = containers[0]
        for container in containers[1:]:
            result &= container
            if not result:
                break
        return result

    def bitset(self, native: Union[SparseBitset, int]) -> SparseVertexBitset:
        """Wrap a native container (or a dense int mask) into a view."""
        if isinstance(native, int):
            native = SparseBitset.from_mask(native)
        return SparseVertexBitset(self.indexer, native)

    def working_mask(
        self, vertices: Union[SparseVertexBitset, Iterable[Vertex], None]
    ) -> SparseBitset:
        """Normalise a vertex restriction to a container over this index.

        ``None`` means the whole graph; a :class:`SparseVertexBitset` bound
        to the same indexer is used verbatim (zero-copy); any other iterable
        is converted, silently dropping vertices not in the graph (matching
        the dense engine and the historical ``vertices=`` filter).
        """
        if vertices is None:
            return self.full_mask
        if (
            isinstance(vertices, SparseVertexBitset)
            and vertices.indexer is self.indexer
        ):
            return vertices.chunks
        ids = self.indexer._ids
        known = (ids.get(v) for v in vertices)
        return SparseBitset.from_iterable(i for i in known if i is not None)

    def native_from_ids(self, ids: Iterable[int]) -> SparseBitset:
        """Build a native container from dense vertex ids."""
        return SparseBitset.from_iterable(ids)

    def local_adjacency(
        self, working: Union[SparseBitset, int], min_degree: int = 0
    ) -> Tuple[List[int], List[int]]:
        """Dense local masks over the working set — see the engine protocol.

        This is the single place the sparse engine materialises dense
        masks, and they live in the local id space of one quasi-clique
        search, whose width is the working set (typically ``V(S)``), not
        |V|.  When ``min_degree > 0`` the iterative sparse low-degree
        pre-pass (:func:`repro.quasiclique.pruning.prune_low_degree_sparse`)
        drops hopeless vertices *before* any dense mask exists; the
        fixpoint is unique, so the caller's own pruning sees identical
        survivors and degrees and the mined output is byte-identical to the
        dense engine's.  Working sets up to
        :data:`repro.graph.engine.LOCAL_DENSE_FAST_PATH_MAX` vertices
        skip the container algebra (and the pre-pass) entirely — see the
        fast path below.
        """
        if isinstance(working, int):
            working = SparseBitset.from_mask(working)
        adjacency_sets = self.adjacency_sets
        if working.bit_count() <= LOCAL_DENSE_FAST_PATH_MAX:
            # Small working set: chunk-wise container intersections (and
            # the sparse low-degree pre-pass) cost more than the dense
            # masks they feed.  Project each vertex's raw neighbour list
            # against a position table instead; skipping the pre-pass is
            # sound because the caller prunes to the same unique fixpoint
            # on the dense masks (see prune_low_degree_sparse).
            global_ids = list(working)
            position = {g: i for i, g in enumerate(global_ids)}
            masks = []
            for g in global_ids:
                local = 0
                for h in adjacency_sets[g]:
                    offset = position.get(h)
                    if offset is not None:
                        local |= 1 << offset
                masks.append(local)
            return global_ids, masks
        restricted = {g: adjacency_sets[g] & working for g in working}
        if min_degree > 0:
            from repro.quasiclique.pruning import prune_low_degree_sparse

            global_ids = prune_low_degree_sparse(restricted, min_degree)
        else:
            global_ids = sorted(restricted)
        position = {g: i for i, g in enumerate(global_ids)}
        masks: List[int] = []
        for g in global_ids:
            local = 0
            for h in restricted[g]:
                offset = position.get(h)
                if offset is not None:
                    local |= 1 << offset
            masks.append(local)
        return global_ids, masks

    # -- evolution (see repro.graph.evolve) -----------------------------
    def apply_edge_batch(self, edits) -> "DeltaReport":
        """Apply a batch of :class:`~repro.graph.evolve.EdgeEdit`\\ s.

        Containers are replaced, never mutated, so outstanding references
        (memo keys, candidate natives) keep their pre-edit snapshot; see
        :func:`repro.graph.evolve.apply_edge_batch` for the contract and
        the returned :class:`~repro.graph.evolve.DeltaReport`.
        """
        from repro.graph.evolve import apply_edge_batch

        return apply_edge_batch(self, edits)

    def apply_attribute_batch(self, edits) -> "DeltaReport":
        """Apply a batch of :class:`~repro.graph.evolve.AttributeEdit`\\ s."""
        from repro.graph.evolve import apply_attribute_batch

        return apply_attribute_batch(self, edits)

    def nbytes(self) -> int:
        """Estimated memory footprint of the adjacency + attribute payload."""
        total = sum(container.nbytes() for container in self.adjacency_sets)
        total += sum(
            container.nbytes() for container in self.attribute_masks.values()
        )
        total += sys.getsizeof(self.adjacency_sets)
        total += sys.getsizeof(self.attribute_masks)
        return total

    def __getstate__(self):
        # Serialization hook for the parallel transfer layer — see
        # GraphBitsetIndex.__getstate__.  The lazy full-universe container
        # is recomputable and stays local to each process.
        return (self.indexer, self.adjacency_sets, self.attribute_masks)

    def __setstate__(self, state) -> None:
        self.indexer, self.adjacency_sets, self.attribute_masks = state
        self._full = None


__all__ = [
    "ARRAY_MAX",
    "CHUNK_BITS",
    "SparseBitset",
    "SparseGraphBitsetIndex",
    "SparseVertexBitset",
]

"""Chunk-level kernels behind :class:`repro.graph.sparseset.SparseBitset`.

The sparse engine stores a vertex set as a dictionary of 1024-bit chunks
(see :mod:`repro.graph.sparseset` for the container layout).  This module
owns the chunk vocabulary (:data:`CHUNK_BITS`, :data:`ARRAY_MAX`, the
array/bitmap canonical form) and provides two interchangeable *chunk-op
backends* that execute the bulk set algebra over those dictionaries:

* :class:`BigintChunkOps` — the reference path: per-chunk Python big-int
  ``& | ^ ~`` and ``bit_count``.  This is the differential oracle every
  other backend must match container-for-container.
* :class:`NumpyChunkOps` — the vectorised path: the chunks common to both
  operands are stacked into a ``(k, 16)`` ``uint64`` matrix (one row per
  1024-bit chunk) so AND/OR/XOR/ANDNOT and popcounts run through numpy's
  bulk bitwise kernels and ``np.bitwise_count`` instead of the
  interpreter loop.  Operations touching fewer than
  :data:`NUMPY_MIN_COMMON_CHUNKS` shared chunks delegate to the big-int
  path — matrix setup costs more than it saves on tiny overlaps.

Both backends produce *identical canonical containers* (array iff
cardinality ≤ :data:`ARRAY_MAX`, Python-int bitmaps otherwise, no empty
chunks), so :class:`~repro.graph.sparseset.SparseBitset` equality, hashing
and pickling are backend-independent and the differential fuzz suite in
``tests/graph/test_chunkops.py`` can assert byte-identity.

The active backend is process-global: resolved once from the
``REPRO_CHUNK_BACKEND`` environment variable (``auto`` picks numpy when
importable), overridable in tests via :func:`set_chunk_backend`.  The
backend surface is a plain class of static methods over ``{chunk: container}``
dictionaries, shaped so a C/Cython extension can register a third
implementation without touching :mod:`repro.graph.sparseset`.
"""

from __future__ import annotations

import os
from typing import Dict, Iterator, Tuple, Union

from repro.errors import ParameterError
from repro.graph.vertexset import iter_bits

try:  # numpy is an optional accelerator, never a hard dependency
    import numpy as _np
except Exception:  # pragma: no cover - exercised only on numpy-less hosts
    _np = None

HAVE_NUMPY = _np is not None

#: Width of one chunk in bits.  1024 keeps bitmap containers at 16 machine
#: words — small enough that a single populated block wastes little, large
#: enough that dense regions collapse into a handful of int (or one numpy
#: row) operations.
CHUNK_BITS = 1024

#: Array/bitmap promotion boundary: a chunk with at most this many ids is
#: stored as a sorted offset tuple, above it as a CHUNK_BITS-bit int.
ARRAY_MAX = 32

#: 64-bit words per chunk row in the numpy backend.
WORDS_PER_CHUNK = CHUNK_BITS // 64

_CHUNK_BYTES = CHUNK_BITS // 8
_CHUNK_MASK = (1 << CHUNK_BITS) - 1

#: Below this many *shared* chunks the numpy backend delegates to the
#: big-int loop: building two (k, 16) matrices costs more than k big-int
#: ops until the overlap is a few chunks wide.
NUMPY_MIN_COMMON_CHUNKS = 4

BIGINT_CHUNKS = "bigint"
NUMPY_CHUNKS = "numpy"
CHUNK_BACKENDS = ("auto", BIGINT_CHUNKS, NUMPY_CHUNKS)

#: Environment variable consulted when the backend request is ``auto``.
CHUNK_BACKEND_ENV = "REPRO_CHUNK_BACKEND"

# A container is either a sorted tuple of offsets (array) or an int (bitmap).
Container = Union[int, Tuple[int, ...]]
Chunks = Dict[int, Container]


def container_bits(container: Container) -> int:
    """Bitmap form of a container (chunk-local)."""
    if isinstance(container, int):
        return container
    bits = 0
    for offset in container:
        bits |= 1 << offset
    return bits


def canonical(bits: int) -> Container:
    """Canonical container for a non-zero chunk bitmap."""
    if bits.bit_count() <= ARRAY_MAX:
        return tuple(iter_bits(bits))
    return bits


def container_count(container: Container) -> int:
    """Cardinality of a container without materialising anything."""
    if isinstance(container, int):
        return container.bit_count()
    return len(container)


class BigintChunkOps:
    """Reference chunk-op backend: per-chunk Python big-int arithmetic.

    Every method is a static function over ``{chunk: container}``
    dictionaries and returns canonical containers, so results can be fed
    straight into ``SparseBitset`` without re-normalisation.  This backend
    is the differential oracle for :class:`NumpyChunkOps` (and any future
    native extension).
    """

    name = BIGINT_CHUNKS

    @staticmethod
    def and_chunks(a: Chunks, b: Chunks) -> Chunks:
        """Chunk dictionary of the intersection ``a ∩ b``."""
        if len(b) < len(a):
            a, b = b, a
        out: Chunks = {}
        for chunk, container in a.items():
            other = b.get(chunk)
            if other is None:
                continue
            bits = container_bits(container) & container_bits(other)
            if bits:
                out[chunk] = canonical(bits)
        return out

    @staticmethod
    def or_chunks(a: Chunks, b: Chunks) -> Chunks:
        """Chunk dictionary of the union ``a ∪ b``."""
        out: Chunks = dict(a)
        for chunk, container in b.items():
            existing = out.get(chunk)
            if existing is None:
                out[chunk] = container
            else:
                out[chunk] = canonical(
                    container_bits(existing) | container_bits(container)
                )
        return out

    @staticmethod
    def xor_chunks(a: Chunks, b: Chunks) -> Chunks:
        """Chunk dictionary of the symmetric difference ``a ⊕ b``."""
        out: Chunks = dict(a)
        for chunk, container in b.items():
            existing = out.get(chunk)
            if existing is None:
                out[chunk] = container
            else:
                bits = container_bits(existing) ^ container_bits(container)
                if bits:
                    out[chunk] = canonical(bits)
                else:
                    del out[chunk]
        return out

    @staticmethod
    def andnot_chunks(a: Chunks, b: Chunks) -> Chunks:
        """Chunk dictionary of the difference ``a \\ b``."""
        out: Chunks = {}
        for chunk, container in a.items():
            other = b.get(chunk)
            if other is None:
                out[chunk] = container
                continue
            bits = container_bits(container) & ~container_bits(other)
            if bits:
                out[chunk] = canonical(bits)
        return out

    @staticmethod
    def intersection_count(a: Chunks, b: Chunks) -> int:
        """``|a ∩ b|`` without materialising the intersection."""
        if len(b) < len(a):
            a, b = b, a
        count = 0
        for chunk, container in a.items():
            other = b.get(chunk)
            if other is not None:
                count += (
                    container_bits(container) & container_bits(other)
                ).bit_count()
        return count

    @staticmethod
    def isdisjoint(a: Chunks, b: Chunks) -> bool:
        """``True`` when the two chunk dictionaries share no id."""
        if len(b) < len(a):
            a, b = b, a
        for chunk, container in a.items():
            other = b.get(chunk)
            if other is not None and container_bits(container) & container_bits(
                other
            ):
                return False
        return True

    @staticmethod
    def issubset(a: Chunks, b: Chunks) -> bool:
        """``True`` when every id of ``a`` is in ``b``."""
        for chunk, container in a.items():
            other = b.get(chunk)
            if other is None:
                return False
            if container_bits(container) & ~container_bits(other):
                return False
        return True


def _rows(bits_list) -> "_np.ndarray":
    """Stack chunk bitmaps into a ``(k, WORDS_PER_CHUNK)`` uint64 matrix."""
    buf = b"".join(bits.to_bytes(_CHUNK_BYTES, "little") for bits in bits_list)
    return _np.frombuffer(buf, dtype="<u8").reshape(
        len(bits_list), WORDS_PER_CHUNK
    )


def _row_bits(row) -> int:
    """Python-int bitmap of one uint64 chunk row."""
    return int.from_bytes(_np.ascontiguousarray(row).tobytes(), "little")


class NumpyChunkOps(BigintChunkOps):
    """Vectorised chunk-op backend over ``(k, 16)`` uint64 chunk matrices.

    Inherits the big-int reference implementations and overrides the
    chunk-parallel parts: shared chunks are stacked into uint64 matrices,
    combined with one numpy bitwise op, popcounted with
    ``np.bitwise_count``, and converted back to *canonical* containers
    (Python-int bitmaps / offset tuples), so results are
    indistinguishable from the oracle's.  Overlaps narrower than
    :data:`NUMPY_MIN_COMMON_CHUNKS` fall through to the inherited loops.
    """

    name = NUMPY_CHUNKS

    @staticmethod
    def _common(a: Chunks, b: Chunks):
        if len(b) < len(a):
            a, b = b, a
        return [chunk for chunk in a if chunk in b]

    @staticmethod
    def and_chunks(a: Chunks, b: Chunks) -> Chunks:
        """Chunk dictionary of ``a ∩ b`` (vectorised over shared chunks)."""
        keys = NumpyChunkOps._common(a, b)
        if len(keys) < NUMPY_MIN_COMMON_CHUNKS:
            return BigintChunkOps.and_chunks(a, b)
        rows = _rows([container_bits(a[k]) for k in keys]) & _rows(
            [container_bits(b[k]) for k in keys]
        )
        counts = _np.bitwise_count(rows).sum(axis=1)
        out: Chunks = {}
        for i, chunk in enumerate(keys):
            count = int(counts[i])
            if count == 0:
                continue
            bits = _row_bits(rows[i])
            out[chunk] = tuple(iter_bits(bits)) if count <= ARRAY_MAX else bits
        return out

    @staticmethod
    def or_chunks(a: Chunks, b: Chunks) -> Chunks:
        """Chunk dictionary of ``a ∪ b`` (vectorised over shared chunks)."""
        keys = NumpyChunkOps._common(a, b)
        if len(keys) < NUMPY_MIN_COMMON_CHUNKS:
            return BigintChunkOps.or_chunks(a, b)
        out: Chunks = dict(a)
        for chunk, container in b.items():
            if chunk not in out:
                out[chunk] = container
        rows = _rows([container_bits(a[k]) for k in keys]) | _rows(
            [container_bits(b[k]) for k in keys]
        )
        counts = _np.bitwise_count(rows).sum(axis=1)
        for i, chunk in enumerate(keys):
            count = int(counts[i])
            bits = _row_bits(rows[i])
            out[chunk] = tuple(iter_bits(bits)) if count <= ARRAY_MAX else bits
        return out

    @staticmethod
    def xor_chunks(a: Chunks, b: Chunks) -> Chunks:
        """Chunk dictionary of ``a ⊕ b`` (vectorised over shared chunks)."""
        keys = NumpyChunkOps._common(a, b)
        if len(keys) < NUMPY_MIN_COMMON_CHUNKS:
            return BigintChunkOps.xor_chunks(a, b)
        out: Chunks = dict(a)
        for chunk, container in b.items():
            if chunk not in out:
                out[chunk] = container
        rows = _rows([container_bits(a[k]) for k in keys]) ^ _rows(
            [container_bits(b[k]) for k in keys]
        )
        counts = _np.bitwise_count(rows).sum(axis=1)
        for i, chunk in enumerate(keys):
            count = int(counts[i])
            if count == 0:
                del out[chunk]
                continue
            bits = _row_bits(rows[i])
            out[chunk] = tuple(iter_bits(bits)) if count <= ARRAY_MAX else bits
        return out

    @staticmethod
    def andnot_chunks(a: Chunks, b: Chunks) -> Chunks:
        """Chunk dictionary of ``a \\ b`` (vectorised over shared chunks)."""
        keys = [chunk for chunk in a if chunk in b]
        if len(keys) < NUMPY_MIN_COMMON_CHUNKS:
            return BigintChunkOps.andnot_chunks(a, b)
        out: Chunks = {
            chunk: container for chunk, container in a.items() if chunk not in b
        }
        rows = _rows([container_bits(a[k]) for k in keys]) & ~_rows(
            [container_bits(b[k]) for k in keys]
        )
        counts = _np.bitwise_count(rows).sum(axis=1)
        for i, chunk in enumerate(keys):
            count = int(counts[i])
            if count == 0:
                continue
            bits = _row_bits(rows[i])
            out[chunk] = tuple(iter_bits(bits)) if count <= ARRAY_MAX else bits
        return out

    @staticmethod
    def intersection_count(a: Chunks, b: Chunks) -> int:
        """``|a ∩ b|`` via one bulk popcount over the shared chunks."""
        keys = NumpyChunkOps._common(a, b)
        if len(keys) < NUMPY_MIN_COMMON_CHUNKS:
            return BigintChunkOps.intersection_count(a, b)
        rows = _rows([container_bits(a[k]) for k in keys]) & _rows(
            [container_bits(b[k]) for k in keys]
        )
        return int(_np.bitwise_count(rows).sum())

    @staticmethod
    def isdisjoint(a: Chunks, b: Chunks) -> bool:
        """``True`` when no shared chunk intersects (one bulk AND)."""
        keys = NumpyChunkOps._common(a, b)
        if len(keys) < NUMPY_MIN_COMMON_CHUNKS:
            return BigintChunkOps.isdisjoint(a, b)
        rows = _rows([container_bits(a[k]) for k in keys]) & _rows(
            [container_bits(b[k]) for k in keys]
        )
        return not bool(rows.any())

    @staticmethod
    def issubset(a: Chunks, b: Chunks) -> bool:
        """``True`` when ``a \\ b`` is empty (one bulk AND-NOT)."""
        if len(a) < NUMPY_MIN_COMMON_CHUNKS:
            return BigintChunkOps.issubset(a, b)
        bits_a = []
        bits_b = []
        for chunk, container in a.items():
            other = b.get(chunk)
            if other is None:
                return False
            bits_a.append(container_bits(container))
            bits_b.append(container_bits(other))
        rows = _rows(bits_a) & ~_rows(bits_b)
        return not bool(rows.any())


def iter_chunk_ids(chunk: int, container: Container) -> Iterator[int]:
    """Yield the global ids of one container in ascending order."""
    base = chunk * CHUNK_BITS
    if isinstance(container, int):
        for offset in iter_bits(container):
            yield base + offset
    else:
        for offset in container:
            yield base + offset


def numpy_available() -> bool:
    """``True`` when the numpy chunk backend can be used in this process."""
    return HAVE_NUMPY


def resolve_chunk_backend(backend: str = "auto") -> str:
    """Resolve a chunk-backend request to ``"bigint"`` or ``"numpy"``.

    ``"auto"`` consults the :data:`CHUNK_BACKEND_ENV` environment variable
    first (same vocabulary), then picks numpy when importable.  Unknown
    names raise :class:`repro.errors.ParameterError`; forcing ``"numpy"``
    without numpy importable raises too, rather than silently degrading.
    """
    if backend not in CHUNK_BACKENDS:
        raise ParameterError(
            f"chunk backend must be one of {CHUNK_BACKENDS}, got {backend!r}"
        )
    if backend == "auto":
        env = os.environ.get(CHUNK_BACKEND_ENV, "").strip()
        if env and env != "auto":
            if env not in CHUNK_BACKENDS:
                raise ParameterError(
                    f"{CHUNK_BACKEND_ENV} must be one of {CHUNK_BACKENDS}, "
                    f"got {env!r}"
                )
            backend = env
    if backend == "auto":
        return NUMPY_CHUNKS if HAVE_NUMPY else BIGINT_CHUNKS
    if backend == NUMPY_CHUNKS and not HAVE_NUMPY:
        raise ParameterError(
            "chunk backend 'numpy' requested but numpy is not importable"
        )
    return backend


_BACKENDS = {BIGINT_CHUNKS: BigintChunkOps, NUMPY_CHUNKS: NumpyChunkOps}

_active = None


def get_chunk_backend():
    """The process-global chunk-op backend class (resolved lazily once)."""
    global _active
    if _active is None:
        _active = _BACKENDS[resolve_chunk_backend("auto")]
    return _active


def set_chunk_backend(backend: str):
    """Set the process-global chunk backend; returns the backend class.

    Accepts the same vocabulary as :func:`resolve_chunk_backend`
    (``"auto"`` re-runs env/availability resolution).  Tests use this to
    pin a backend; worker processes inherit the choice through the
    :data:`CHUNK_BACKEND_ENV` environment variable instead, since module
    globals do not survive a ``spawn``.
    """
    global _active
    _active = _BACKENDS[resolve_chunk_backend(backend)]
    return _active


__all__ = [
    "ARRAY_MAX",
    "BIGINT_CHUNKS",
    "BigintChunkOps",
    "CHUNK_BACKENDS",
    "CHUNK_BACKEND_ENV",
    "CHUNK_BITS",
    "Container",
    "HAVE_NUMPY",
    "NUMPY_CHUNKS",
    "NUMPY_MIN_COMMON_CHUNKS",
    "NumpyChunkOps",
    "WORDS_PER_CHUNK",
    "canonical",
    "container_bits",
    "container_count",
    "get_chunk_backend",
    "iter_chunk_ids",
    "numpy_available",
    "resolve_chunk_backend",
    "set_chunk_backend",
]

"""Batched evolution of sparse graph indexes — the write path of
incremental mining.

A mined graph rarely stays still: edges arrive and disappear, vertices
gain and lose attributes.  Rebuilding the
:class:`~repro.graph.sparseset.SparseGraphBitsetIndex` (or the whole
hashed graph) for every batch would cost O(|V| + |E|) per update no
matter how small the batch.  This module applies an **edit batch**
directly to an existing sparse index and reports exactly which
:data:`~repro.graph.sparseset.CHUNK_BITS`-wide id blocks it touched:

* :class:`EdgeEdit` / :class:`AttributeEdit` — one undirected edge or one
  (vertex, attribute) incidence, added or removed.
* :func:`apply_edge_batch` / :func:`apply_attribute_batch` — fold a batch
  into the index.  Containers are **copied on write**, never mutated:
  :class:`~repro.graph.sparseset.SparseBitset` is immutable and hashable,
  and live references (coverage-memo keys, candidate natives, tidset
  views) may alias the index's own containers — replacing the container
  object keeps every outstanding reference a consistent snapshot of the
  pre-edit graph.
* :class:`DeltaReport` — the summary consumed by the delta re-evaluation
  pass (:mod:`repro.quasiclique.delta`,
  :mod:`repro.correlation.incremental`): the set of touched chunk ids,
  the attributes whose holder sets changed, and edit counts.

Touched chunks are a *conservative* footprint: an edge edit ``(u, v)``
marks the chunks of both endpoint ids — any working set disjoint from
both chunks has an unchanged induced subgraph, because every adjacency
container changed only at the bits of ``u`` and ``v``.  An attribute
edit marks the chunk of the edited vertex *and* records the attribute
name; removals need the name because the post-edit holder set may no
longer intersect the touched chunk at all.

Batches are idempotent per edit: adding an existing edge (or removing an
absent one) is a no-op that touches nothing, matching the duplicate-edge
semantics of :class:`~repro.graph.attributed_graph.AttributedGraph` and
the streaming builder.  New vertices are registered in first-seen order,
exactly as an :class:`AttributedGraph` replaying the same edit script
would assign them — the id spaces stay aligned, which is what the
delta-vs-full differential harness (``tests/evolve/``) relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Tuple,
)

from repro.errors import FormatError, GraphError
from repro.graph.io import PathLike, READ_BUFFER_BYTES, parse_vertex_token
from repro.graph.sparseset import (
    CHUNK_BITS,
    SparseBitset,
    SparseGraphBitsetIndex,
    _canonical,
    _container_bits,
)

Vertex = Hashable
Attribute = Hashable


@dataclass(frozen=True)
class EdgeEdit:
    """One undirected edge to add (``add=True``) or remove."""

    u: Vertex
    v: Vertex
    add: bool = True


@dataclass(frozen=True)
class AttributeEdit:
    """One (vertex, attribute) incidence to add or remove."""

    vertex: Vertex
    attribute: Attribute
    add: bool = True


@dataclass(frozen=True)
class DeltaReport:
    """Footprint of one edit batch over a sparse index.

    ``touched_chunks`` holds the ids of every CHUNK_BITS-wide block in
    which some adjacency or holder bit changed; any vertex set whose
    members avoid all touched chunks saw neither its induced subgraph
    nor its membership change.  ``edited_attributes`` lists the
    attributes whose holder containers were replaced — needed on top of
    the chunks because removing an attribute's last holder in a chunk
    leaves a *new* holder set that no longer intersects it.
    """

    touched_chunks: FrozenSet[int] = frozenset()
    edited_attributes: FrozenSet[Attribute] = frozenset()
    edges_added: int = 0
    edges_removed: int = 0
    attributes_added: int = 0
    attributes_removed: int = 0
    vertices_added: int = 0

    @property
    def structural_change(self) -> bool:
        """Did |V| or the edge multiset change (degree distribution)?

        Null models are functions of the degree structure, so the delta
        pass must rebuild them exactly when this is true.
        """
        return bool(self.edges_added or self.edges_removed or self.vertices_added)

    @property
    def empty(self) -> bool:
        """``True`` when the batch changed nothing at all."""
        return not (
            self.touched_chunks
            or self.edited_attributes
            or self.vertices_added
        )

    def merge(self, other: "DeltaReport") -> "DeltaReport":
        """Union of two consecutive reports over the same index."""
        return DeltaReport(
            touched_chunks=self.touched_chunks | other.touched_chunks,
            edited_attributes=self.edited_attributes | other.edited_attributes,
            edges_added=self.edges_added + other.edges_added,
            edges_removed=self.edges_removed + other.edges_removed,
            attributes_added=self.attributes_added + other.attributes_added,
            attributes_removed=self.attributes_removed + other.attributes_removed,
            vertices_added=self.vertices_added + other.vertices_added,
        )


# ----------------------------------------------------------------------
# copy-on-write container edits
# ----------------------------------------------------------------------
def _set_bit(container: SparseBitset, value: int) -> Tuple[SparseBitset, bool]:
    """Return ``(container | {value}, changed)`` without mutating input."""
    chunk, offset = divmod(value, CHUNK_BITS)
    old = container._chunks.get(chunk)
    bits = _container_bits(old) if old is not None else 0
    if (bits >> offset) & 1:
        return container, False
    chunks = dict(container._chunks)
    chunks[chunk] = _canonical(bits | (1 << offset))
    return SparseBitset(chunks), True


def _clear_bit(container: SparseBitset, value: int) -> Tuple[SparseBitset, bool]:
    """Return ``(container - {value}, changed)`` without mutating input."""
    chunk, offset = divmod(value, CHUNK_BITS)
    old = container._chunks.get(chunk)
    if old is None:
        return container, False
    bits = _container_bits(old)
    if not (bits >> offset) & 1:
        return container, False
    bits &= ~(1 << offset)
    chunks = dict(container._chunks)
    if bits:
        chunks[chunk] = _canonical(bits)
    else:
        del chunks[chunk]
    return SparseBitset(chunks), True


def _ensure_vertex(index: SparseGraphBitsetIndex, vertex: Vertex) -> Tuple[int, bool]:
    """Register ``vertex`` if new; return ``(id, was_new)``.

    A new vertex appends an empty adjacency container and invalidates the
    cached full-universe mask, which no longer covers it.
    """
    indexer = index.indexer
    before = len(indexer)
    vid = indexer.add(vertex)
    if vid == before:
        index.adjacency_sets.append(SparseBitset())
        index._full = None
        return vid, True
    return vid, False


# ----------------------------------------------------------------------
# batch application
# ----------------------------------------------------------------------
def apply_edge_batch(
    index: SparseGraphBitsetIndex, edits: Iterable[EdgeEdit]
) -> DeltaReport:
    """Apply edge edits to ``index`` in order; return the touched footprint.

    Additions register unknown endpoints (first-seen id order); removals
    of unknown endpoints or absent edges are no-ops.  Self-loops raise
    :class:`~repro.errors.GraphError` like every other construction path.
    """
    touched = set()
    added = removed = new_vertices = 0
    indexer = index.indexer
    adjacency = index.adjacency_sets
    for edit in edits:
        if edit.u == edit.v:
            raise GraphError(f"self-loop on vertex {edit.u!r} is not allowed")
        if edit.add:
            uid, u_new = _ensure_vertex(index, edit.u)
            vid, v_new = _ensure_vertex(index, edit.v)
            new_vertices += u_new + v_new
            forward, changed = _set_bit(adjacency[uid], vid)
            if not changed:
                continue
            adjacency[uid] = forward
            adjacency[vid], _ = _set_bit(adjacency[vid], uid)
            added += 1
        else:
            if edit.u not in indexer or edit.v not in indexer:
                continue
            uid, vid = indexer.id_of(edit.u), indexer.id_of(edit.v)
            forward, changed = _clear_bit(adjacency[uid], vid)
            if not changed:
                continue
            adjacency[uid] = forward
            adjacency[vid], _ = _clear_bit(adjacency[vid], uid)
            removed += 1
        touched.add(uid // CHUNK_BITS)
        touched.add(vid // CHUNK_BITS)
    return DeltaReport(
        touched_chunks=frozenset(touched),
        edges_added=added,
        edges_removed=removed,
        vertices_added=new_vertices,
    )


def apply_attribute_batch(
    index: SparseGraphBitsetIndex, edits: Iterable[AttributeEdit]
) -> DeltaReport:
    """Apply attribute edits to ``index`` in order; return the footprint.

    An attribute whose last holder is removed disappears from
    ``attribute_masks`` entirely, matching the ``AttributedGraph``
    convention that the attribute universe is "attributes on some
    vertex"; a later re-add re-registers it (at the end of the dict,
    which is invisible to mining — frequent-item order is sorted, not
    insertion order).
    """
    touched = set()
    added = removed = new_vertices = 0
    edited = set()
    indexer = index.indexer
    masks = index.attribute_masks
    for edit in edits:
        if edit.add:
            vid, was_new = _ensure_vertex(index, edit.vertex)
            new_vertices += was_new
            container = masks.get(edit.attribute)
            if container is None:
                container = SparseBitset()
            holders, changed = _set_bit(container, vid)
            if not changed:
                continue
            masks[edit.attribute] = holders
            added += 1
        else:
            if edit.vertex not in indexer:
                continue
            container = masks.get(edit.attribute)
            if container is None:
                continue
            vid = indexer.id_of(edit.vertex)
            holders, changed = _clear_bit(container, vid)
            if not changed:
                continue
            if holders:
                masks[edit.attribute] = holders
            else:
                del masks[edit.attribute]
            removed += 1
        touched.add(vid // CHUNK_BITS)
        edited.add(edit.attribute)
    return DeltaReport(
        touched_chunks=frozenset(touched),
        edited_attributes=frozenset(edited),
        attributes_added=added,
        attributes_removed=removed,
        vertices_added=new_vertices,
    )


# ----------------------------------------------------------------------
# edit-script files (the `scpm update` grammar)
# ----------------------------------------------------------------------
_EDIT_OPS = {"add": True, "remove": False}


def _iter_edit_lines(path: PathLike):
    with open(path, "r", encoding="utf-8", buffering=READ_BUFFER_BYTES) as handle:
        for number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            yield number, line.split()


def read_edge_edits(path: PathLike) -> List[EdgeEdit]:
    """Parse an edge edit script: ``add u v`` / ``remove u v`` per line.

    Comments (``#``) and blank lines are skipped; vertex tokens follow
    :func:`repro.graph.io.parse_vertex_token` (int when possible), the
    single token rule of every graph file in this repository.
    """
    edits: List[EdgeEdit] = []
    for number, parts in _iter_edit_lines(path):
        if len(parts) != 3 or parts[0] not in _EDIT_OPS:
            raise FormatError(
                f"{path}:{number}: expected 'add u v' or 'remove u v', "
                f"got {' '.join(parts)!r}"
            )
        edits.append(
            EdgeEdit(
                u=parse_vertex_token(parts[1]),
                v=parse_vertex_token(parts[2]),
                add=_EDIT_OPS[parts[0]],
            )
        )
    return edits


def read_attribute_edits(path: PathLike) -> List[AttributeEdit]:
    """Parse an attribute edit script: ``add v attr`` / ``remove v attr``.

    Attribute tokens stay strings, matching the attribute-file grammar.
    """
    edits: List[AttributeEdit] = []
    for number, parts in _iter_edit_lines(path):
        if len(parts) != 3 or parts[0] not in _EDIT_OPS:
            raise FormatError(
                f"{path}:{number}: expected 'add vertex attribute' or "
                f"'remove vertex attribute', got {' '.join(parts)!r}"
            )
        edits.append(
            AttributeEdit(
                vertex=parse_vertex_token(parts[1]),
                attribute=parts[2],
                add=_EDIT_OPS[parts[0]],
            )
        )
    return edits


__all__ = [
    "AttributeEdit",
    "DeltaReport",
    "EdgeEdit",
    "apply_attribute_batch",
    "apply_edge_batch",
    "read_attribute_edits",
    "read_edge_edits",
]

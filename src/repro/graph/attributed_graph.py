"""Core attributed-graph data structure.

An attributed graph is the 4-tuple ``G = (V, E, A, F)`` of the paper:
vertices, undirected edges, an attribute universe, and a function mapping
every vertex to the subset of attributes it carries.  The class below keeps
three indexes that the mining algorithms rely on:

* adjacency sets (``neighbors``) for O(1) edge tests and degree queries;
* vertex → attribute set (``attributes_of``);
* attribute → vertex set (``vertices_with``), the *inverted index* used by
  the Eclat miner and by induced-subgraph construction.

Vertices and attributes can be any hashable objects (integers, strings,
tuples).  The structure is mutable while it is being built and is cheap to
snapshot into induced subgraphs.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, Mapping, Optional, Set, Tuple

from repro.errors import GraphError, UnknownAttributeError, UnknownVertexError

Vertex = Hashable
Attribute = Hashable
Edge = Tuple[Vertex, Vertex]


class AttributedGraph:
    """Undirected graph whose vertices carry sets of attributes.

    Parameters
    ----------
    vertices:
        Optional iterable of vertices to add up front.
    edges:
        Optional iterable of ``(u, v)`` pairs.  Endpoints that are not yet
        vertices are added automatically.
    attributes:
        Optional mapping ``vertex -> iterable of attributes``.

    Examples
    --------
    >>> graph = AttributedGraph()
    >>> graph.add_edge(1, 2)
    >>> graph.add_attributes(1, ["a", "b"])
    >>> graph.degree(1)
    1
    >>> sorted(graph.attributes_of(1))
    ['a', 'b']
    """

    def __init__(
        self,
        vertices: Optional[Iterable[Vertex]] = None,
        edges: Optional[Iterable[Edge]] = None,
        attributes: Optional[Mapping[Vertex, Iterable[Attribute]]] = None,
    ) -> None:
        self._adjacency: Dict[Vertex, Set[Vertex]] = {}
        self._vertex_attributes: Dict[Vertex, Set[Attribute]] = {}
        self._attribute_vertices: Dict[Attribute, Set[Vertex]] = {}
        self._edge_count = 0
        # One cached bitset index per resolved engine name ("dense"/"sparse");
        # every mutation clears the whole cache.
        self._bitset_indexes: Dict[str, object] = {}

        if vertices is not None:
            for vertex in vertices:
                self.add_vertex(vertex)
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)
        if attributes is not None:
            for vertex, attrs in attributes.items():
                self.add_attributes(vertex, attrs)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_vertex(self, vertex: Vertex) -> None:
        """Add ``vertex`` to the graph (no effect if it already exists)."""
        if vertex not in self._adjacency:
            self._adjacency[vertex] = set()
            self._vertex_attributes[vertex] = set()
            self._bitset_indexes.clear()

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        """Add the undirected edge ``(u, v)``, creating endpoints as needed.

        Self-loops are rejected because quasi-clique degrees are defined on
        simple graphs.
        """
        if u == v:
            raise GraphError(f"self-loop on vertex {u!r} is not allowed")
        self.add_vertex(u)
        self.add_vertex(v)
        if v not in self._adjacency[u]:
            self._adjacency[u].add(v)
            self._adjacency[v].add(u)
            self._edge_count += 1
            self._bitset_indexes.clear()

    def add_attribute(self, vertex: Vertex, attribute: Attribute) -> None:
        """Attach ``attribute`` to ``vertex``, creating the vertex if needed."""
        self.add_vertex(vertex)
        if attribute not in self._vertex_attributes[vertex]:
            self._vertex_attributes[vertex].add(attribute)
            self._attribute_vertices.setdefault(attribute, set()).add(vertex)
            self._bitset_indexes.clear()

    def add_attributes(self, vertex: Vertex, attributes: Iterable[Attribute]) -> None:
        """Attach every attribute in ``attributes`` to ``vertex``."""
        for attribute in attributes:
            self.add_attribute(vertex, attribute)

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove the undirected edge ``(u, v)``; absent edges are a no-op.

        The endpoints stay in the graph (possibly isolated), mirroring
        the batched :class:`~repro.graph.evolve.EdgeEdit` semantics so an
        edit script replays identically on either representation.
        """
        if u not in self._adjacency or v not in self._adjacency[u]:
            return
        self._adjacency[u].discard(v)
        self._adjacency[v].discard(u)
        self._edge_count -= 1
        self._bitset_indexes.clear()

    def remove_attribute(self, vertex: Vertex, attribute: Attribute) -> None:
        """Detach ``attribute`` from ``vertex``; absent links are a no-op.

        An attribute whose last holder disappears leaves the attribute
        universe entirely (as in :meth:`remove_vertex`): ``attributes()``
        only reports attributes carried by some vertex.
        """
        holders = self._vertex_attributes.get(vertex)
        if holders is None or attribute not in holders:
            return
        holders.discard(attribute)
        attribute_holders = self._attribute_vertices[attribute]
        attribute_holders.discard(vertex)
        if not attribute_holders:
            del self._attribute_vertices[attribute]
        self._bitset_indexes.clear()

    def remove_vertex(self, vertex: Vertex) -> None:
        """Remove ``vertex``, its incident edges and its attribute links."""
        if vertex not in self._adjacency:
            raise UnknownVertexError(vertex)
        for neighbor in self._adjacency[vertex]:
            self._adjacency[neighbor].discard(vertex)
            self._edge_count -= 1
        del self._adjacency[vertex]
        for attribute in self._vertex_attributes[vertex]:
            holders = self._attribute_vertices[attribute]
            holders.discard(vertex)
            if not holders:
                del self._attribute_vertices[attribute]
        del self._vertex_attributes[vertex]
        self._bitset_indexes.clear()

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``|V|``."""
        return len(self._adjacency)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``|E|``."""
        return self._edge_count

    @property
    def num_attributes(self) -> int:
        """Number of distinct attributes ``|A|`` that appear on some vertex."""
        return len(self._attribute_vertices)

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over the vertices."""
        return iter(self._adjacency)

    def edges(self) -> Iterator[Edge]:
        """Iterate over each undirected edge exactly once."""
        seen: Set[Vertex] = set()
        for u, neighbors in self._adjacency.items():
            for v in neighbors:
                if v not in seen:
                    yield (u, v)
            seen.add(u)

    def attributes(self) -> Iterator[Attribute]:
        """Iterate over the attribute universe (attributes on ≥ 1 vertex)."""
        return iter(self._attribute_vertices)

    def has_vertex(self, vertex: Vertex) -> bool:
        """Return ``True`` if ``vertex`` is in the graph."""
        return vertex in self._adjacency

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """Return ``True`` if the undirected edge ``(u, v)`` exists."""
        return u in self._adjacency and v in self._adjacency[u]

    def neighbors(self, vertex: Vertex) -> FrozenSet[Vertex]:
        """Return the neighbor set of ``vertex`` as a frozen set."""
        try:
            return frozenset(self._adjacency[vertex])
        except KeyError:
            raise UnknownVertexError(vertex) from None

    def neighbor_set(self, vertex: Vertex) -> Set[Vertex]:
        """Return the *internal* neighbor set (not a copy).

        This is the hot path used by the quasi-clique engine; callers must
        not mutate the returned set.
        """
        try:
            return self._adjacency[vertex]
        except KeyError:
            raise UnknownVertexError(vertex) from None

    def degree(self, vertex: Vertex) -> int:
        """Return the degree of ``vertex``."""
        try:
            return len(self._adjacency[vertex])
        except KeyError:
            raise UnknownVertexError(vertex) from None

    def attributes_of(self, vertex: Vertex) -> FrozenSet[Attribute]:
        """Return ``F(vertex)``, the attribute set of a vertex."""
        try:
            return frozenset(self._vertex_attributes[vertex])
        except KeyError:
            raise UnknownVertexError(vertex) from None

    def vertices_with(self, attribute: Attribute) -> FrozenSet[Vertex]:
        """Return the set of vertices carrying ``attribute``.

        Unknown attributes raise :class:`UnknownAttributeError`; use
        :meth:`support` for a forgiving count.
        """
        try:
            return frozenset(self._attribute_vertices[attribute])
        except KeyError:
            raise UnknownAttributeError(attribute) from None

    def vertices_with_all(self, attributes: Iterable[Attribute]) -> FrozenSet[Vertex]:
        """Return ``V(S)``: vertices carrying *every* attribute in ``attributes``.

        An empty attribute set induces the whole vertex set, mirroring the
        paper's convention that the empty set is carried by every vertex.
        """
        attrs = list(attributes)
        if not attrs:
            return frozenset(self._adjacency)
        holder_sets = []
        for attribute in attrs:
            holders = self._attribute_vertices.get(attribute)
            if not holders:
                return frozenset()
            holder_sets.append(holders)
        holder_sets.sort(key=len)
        result = set(holder_sets[0])
        for holders in holder_sets[1:]:
            result &= holders
            if not result:
                break
        return frozenset(result)

    def support(self, attributes: Iterable[Attribute]) -> int:
        """Return ``σ(S) = |V(S)|`` for the attribute set ``attributes``."""
        return len(self.vertices_with_all(attributes))

    def attribute_support_index(self) -> Dict[Attribute, FrozenSet[Vertex]]:
        """Return a copy of the inverted index ``attribute -> vertex set``."""
        return {a: frozenset(vs) for a, vs in self._attribute_vertices.items()}

    def bitset_index(self, engine: str = "auto"):
        """Return the cached bitset view of the graph (building it lazily).

        ``engine`` selects the vertex-set representation (see
        :mod:`repro.graph.engine`): ``"dense"`` returns a
        :class:`repro.graph.vertexset.GraphBitsetIndex` (one |V|-bit mask
        per vertex), ``"sparse"`` a
        :class:`repro.graph.sparseset.SparseGraphBitsetIndex` (chunked
        containers, memory proportional to edges), and ``"auto"`` (default)
        picks by |V| and edge density.  One index per resolved engine is
        cached; any mutation of the graph invalidates the cache, so callers
        must not hold on to an index across mutations.
        """
        from repro.graph.engine import DENSE, resolve_engine

        resolved = resolve_engine(engine, self.num_vertices, self.num_edges)
        index = self._bitset_indexes.get(resolved)
        if index is None:
            if resolved == DENSE:
                from repro.graph.vertexset import GraphBitsetIndex

                index = GraphBitsetIndex.build(self)
            else:
                from repro.graph.sparseset import SparseGraphBitsetIndex

                index = SparseGraphBitsetIndex.build(self)
            self._bitset_indexes[resolved] = index
        return index

    # ------------------------------------------------------------------
    # subgraphs
    # ------------------------------------------------------------------
    def subgraph(self, vertices: Iterable[Vertex]) -> "AttributedGraph":
        """Return the vertex-induced subgraph on ``vertices``.

        Vertex attributes are preserved.  Unknown vertices raise
        :class:`UnknownVertexError`.
        """
        keep = set(vertices)
        for vertex in keep:
            if vertex not in self._adjacency:
                raise UnknownVertexError(vertex)
        sub = AttributedGraph()
        for vertex in keep:
            sub.add_vertex(vertex)
            sub.add_attributes(vertex, self._vertex_attributes[vertex])
        for vertex in keep:
            for neighbor in self._adjacency[vertex]:
                if neighbor in keep and not sub.has_edge(vertex, neighbor):
                    sub.add_edge(vertex, neighbor)
        return sub

    def induced_by(self, attributes: Iterable[Attribute]) -> "AttributedGraph":
        """Return ``G(S)``, the subgraph induced by the attribute set."""
        return self.subgraph(self.vertices_with_all(attributes))

    def copy(self) -> "AttributedGraph":
        """Return a deep copy of the graph."""
        return self.subgraph(self._adjacency)

    # ------------------------------------------------------------------
    # dunder helpers
    # ------------------------------------------------------------------
    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self._adjacency

    def __len__(self) -> int:
        return len(self._adjacency)

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._adjacency)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AttributedGraph):
            return NotImplemented
        return (
            self._adjacency == other._adjacency
            and self._vertex_attributes == other._vertex_attributes
        )

    def __repr__(self) -> str:
        return (
            f"AttributedGraph(num_vertices={self.num_vertices}, "
            f"num_edges={self.num_edges}, num_attributes={self.num_attributes})"
        )

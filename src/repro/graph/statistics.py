"""Graph-level statistics used by the null models and the analysis layer.

The analytical null model of the paper (Theorem 2) needs the empirical
degree distribution of the population graph; the dataset reports in
EXPERIMENTS.md additionally use density, attribute-support histograms and
component structure.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Hashable, List, Set, Tuple

import numpy as np

from repro.graph.attributed_graph import AttributedGraph, Vertex


@dataclass(frozen=True)
class DegreeDistribution:
    """Empirical degree distribution ``p(α)`` of a graph.

    Attributes
    ----------
    degrees:
        Sorted array of distinct degrees that occur in the graph.
    probabilities:
        ``probabilities[i]`` is the fraction of vertices with degree
        ``degrees[i]``.  The probabilities sum to 1 for a non-empty graph.
    max_degree:
        Largest degree ``m`` in the graph (0 for an empty graph).
    """

    degrees: np.ndarray
    probabilities: np.ndarray
    max_degree: int

    def probability(self, degree: int) -> float:
        """Return ``p(degree)``, the fraction of vertices with that degree."""
        index = np.searchsorted(self.degrees, degree)
        if index < len(self.degrees) and self.degrees[index] == degree:
            return float(self.probabilities[index])
        return 0.0

    def mean(self) -> float:
        """Return the mean degree of the graph."""
        if len(self.degrees) == 0:
            return 0.0
        return float(np.dot(self.degrees, self.probabilities))


def degree_distribution(graph: AttributedGraph) -> DegreeDistribution:
    """Compute the empirical degree distribution of ``graph``."""
    if graph.num_vertices == 0:
        return DegreeDistribution(
            degrees=np.array([], dtype=np.int64),
            probabilities=np.array([], dtype=np.float64),
            max_degree=0,
        )
    counts = Counter(graph.degree(v) for v in graph.vertices())
    degrees = np.array(sorted(counts), dtype=np.int64)
    probabilities = np.array(
        [counts[d] / graph.num_vertices for d in degrees], dtype=np.float64
    )
    return DegreeDistribution(
        degrees=degrees,
        probabilities=probabilities,
        max_degree=int(degrees[-1]),
    )


def edge_density(graph: AttributedGraph) -> float:
    """Return ``|E| / (|V| choose 2)``; 0 for graphs with < 2 vertices."""
    n = graph.num_vertices
    if n < 2:
        return 0.0
    return 2.0 * graph.num_edges / (n * (n - 1))


def minimum_degree_ratio(graph: AttributedGraph, vertex_set: Set[Vertex]) -> float:
    """Return the quasi-clique γ of ``vertex_set`` inside ``graph``.

    This is ``min_v deg_Q(v) / (|Q| - 1)``, the largest γ for which the set
    satisfies the quasi-clique degree condition.  Sets with fewer than two
    vertices have ratio 0.
    """
    members = set(vertex_set)
    if len(members) < 2:
        return 0.0
    min_degree = min(len(graph.neighbor_set(v) & members) for v in members)
    return min_degree / (len(members) - 1)


def attribute_support_histogram(graph: AttributedGraph) -> Dict[Hashable, int]:
    """Return ``attribute -> σ({attribute})`` for every attribute."""
    return {a: len(graph.vertices_with(a)) for a in graph.attributes()}


def connected_components(graph: AttributedGraph) -> List[Set[Vertex]]:
    """Return the connected components as a list of vertex sets."""
    remaining = set(graph.vertices())
    components: List[Set[Vertex]] = []
    while remaining:
        seed = next(iter(remaining))
        component = {seed}
        frontier = [seed]
        while frontier:
            vertex = frontier.pop()
            for neighbor in graph.neighbor_set(vertex):
                if neighbor not in component:
                    component.add(neighbor)
                    frontier.append(neighbor)
        components.append(component)
        remaining -= component
    return components


@dataclass(frozen=True)
class GraphSummary:
    """Compact description of an attributed graph for reports and logging."""

    num_vertices: int
    num_edges: int
    num_attributes: int
    mean_degree: float
    max_degree: int
    edge_density: float
    num_components: int

    def as_row(self) -> Tuple[int, int, int, float, int, float, int]:
        """Return the summary as a plain tuple (for table rendering)."""
        return (
            self.num_vertices,
            self.num_edges,
            self.num_attributes,
            self.mean_degree,
            self.max_degree,
            self.edge_density,
            self.num_components,
        )


def summarize(graph: AttributedGraph) -> GraphSummary:
    """Build a :class:`GraphSummary` for ``graph``."""
    distribution = degree_distribution(graph)
    return GraphSummary(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        num_attributes=graph.num_attributes,
        mean_degree=distribution.mean(),
        max_degree=distribution.max_degree,
        edge_density=edge_density(graph),
        num_components=len(connected_components(graph)),
    )

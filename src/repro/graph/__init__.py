"""Attributed-graph substrate: data structure, engines, statistics, I/O,
streaming ingestion, converters."""

from repro.graph.attributed_graph import AttributedGraph
from repro.graph.converters import from_networkx, to_networkx
from repro.graph.io import (
    from_json,
    read_attributed_graph,
    read_attributes,
    read_edge_list,
    read_json,
    to_json,
    write_attributed_graph,
    write_attributes,
    write_edge_list,
    write_json,
)
from repro.graph.statistics import (
    DegreeDistribution,
    GraphSummary,
    attribute_support_histogram,
    connected_components,
    degree_distribution,
    edge_density,
    minimum_degree_ratio,
    summarize,
)
from repro.graph.validation import ValidationReport, validate_graph
from repro.graph.vertexset import (
    GraphBitsetIndex,
    VertexBitset,
    VertexIndexer,
    iter_bits,
    popcount,
)
from repro.graph.engine import (
    AUTO,
    DENSE,
    ENGINES,
    SPARSE,
    VertexSetEngine,
    resolve_engine,
)
from repro.graph.sparseset import (
    SparseBitset,
    SparseGraphBitsetIndex,
    SparseVertexBitset,
)
from repro.graph.streaming import (
    GraphLike,
    StreamedGraphHandle,
    StreamingGraphBuilder,
    stream_attributed_graph,
    stream_attributes,
    stream_edge_list,
)

__all__ = [
    "AttributedGraph",
    "GraphLike",
    "StreamedGraphHandle",
    "StreamingGraphBuilder",
    "stream_attributed_graph",
    "stream_attributes",
    "stream_edge_list",
    "AUTO",
    "DENSE",
    "ENGINES",
    "GraphBitsetIndex",
    "SPARSE",
    "SparseBitset",
    "SparseGraphBitsetIndex",
    "SparseVertexBitset",
    "VertexBitset",
    "VertexIndexer",
    "VertexSetEngine",
    "iter_bits",
    "popcount",
    "resolve_engine",
    "DegreeDistribution",
    "GraphSummary",
    "ValidationReport",
    "attribute_support_histogram",
    "connected_components",
    "degree_distribution",
    "edge_density",
    "from_json",
    "from_networkx",
    "minimum_degree_ratio",
    "read_attributed_graph",
    "read_attributes",
    "read_edge_list",
    "read_json",
    "summarize",
    "to_json",
    "to_networkx",
    "validate_graph",
    "write_attributed_graph",
    "write_attributes",
    "write_edge_list",
    "write_json",
]

"""Streaming ingestion — file → sparse index without an in-memory graph.

The classic loader (:func:`repro.graph.io.read_attributed_graph`)
materialises a full :class:`~repro.graph.attributed_graph.AttributedGraph`
— Python dicts of sets for adjacency, per-vertex attribute sets and the
inverted attribute index — before any bitset index exists.  At the
DBLP/LastFM/CiteSeer scales the paper evaluates, those hash structures
dominate peak memory several times over the chunked index the miners
actually run on.  This module goes from the same edge/attribute files
straight to a :class:`~repro.graph.sparseset.SparseGraphBitsetIndex`:

* :class:`StreamingGraphBuilder` — an incremental builder that assigns
  dense vertex ids on first sight and accumulates adjacency and
  attribute-holder sets as raw chunk→bitmap dictionaries (the canonical
  chunked containers' mutable precursor).  No adjacency ``set`` or
  ``frozenset`` is ever created; per-edge cost is two dictionary bit-OR
  updates.
* :func:`stream_edge_list` / :func:`stream_attributes` — file passes that
  feed a builder through the shared record iterators of
  :mod:`repro.graph.io` (``iter_edge_records`` / ``iter_attribute_records``),
  so parsing — comments, blank lines, self-loop skipping, vertex-token
  rules, error messages — is byte-identical to the in-memory readers by
  construction.
* :class:`StreamedGraphHandle` — the read-only result: it satisfies the
  slice of the ``AttributedGraph`` surface the mining stack consumes
  (``bitset_index``/``num_vertices``/``degree``/``neighbor_set``/
  ``vertices_with``/…), so SCPM, the naive baseline, Eclat and the
  quasi-clique search run on it unchanged and produce mining results
  byte-identical to the in-memory path (asserted on the randomized
  differential grid in ``tests/graph/test_streaming.py``).

Memory model: peak ingestion memory is the final sparse index plus small
per-line parsing transients — it tracks ``|V| + |E| + Σ|V(a)|`` like the
index itself, never the hashed-graph footprint.
``benchmarks/bench_streaming_ingest.py`` pins the ratio against the
in-memory loader.

The handle rejects per-element mutators (they raise
:class:`repro.errors.StreamingError`; batched evolution goes through
:meth:`StreamedGraphHandle.apply_edge_batch` /
:meth:`~StreamedGraphHandle.apply_attribute_batch` from
:mod:`repro.graph.evolve`) and is picklable: the parallel transfer
layer ships it to workers exactly like an ``AttributedGraph`` with a warm
index cache, so ``SCPMParams(n_jobs=...)`` works unchanged on streamed
inputs.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

from repro.errors import StreamingError, UnknownAttributeError
from repro.graph.attributed_graph import AttributedGraph
from repro.graph.engine import DENSE, resolve_engine
from repro.graph.io import (
    PathLike,
    iter_attribute_records,
    iter_edge_records,
)
from repro.graph.sparseset import (
    CHUNK_BITS,
    SparseBitset,
    SparseGraphBitsetIndex,
)
from repro.graph.vertexset import GraphBitsetIndex, VertexIndexer

Vertex = Hashable
Attribute = Hashable

#: Anything the miners accept as "the graph": the mutable in-memory
#: structure or a read-only streamed handle.  The two expose the same
#: query/index surface; only ``AttributedGraph`` supports mutation.
GraphLike = Union[AttributedGraph, "StreamedGraphHandle"]


class StreamingGraphBuilder:
    """Incremental bounded-memory builder of a :class:`StreamedGraphHandle`.

    Edges and attribute incidences arrive one at a time (from a file pass,
    a generator, a socket — any source) and are folded directly into raw
    chunk→bitmap accumulators, the mutable precursor of the canonical
    :class:`~repro.graph.sparseset.SparseBitset` containers.  Vertex ids
    are assigned on first sight and never change, matching the
    first-seen-order indexer the in-memory path builds, so downstream
    masks are comparable across the two ingestion routes.

    :meth:`finish` canonicalises the accumulators (freeing each raw
    dictionary as its container is produced, so raw and canonical forms
    never fully coexist) and returns the handle; the builder is then
    exhausted and refuses further input.

    Examples
    --------
    >>> builder = StreamingGraphBuilder()
    >>> builder.add_edge(1, 2)
    >>> builder.add_edge(2, 3)
    >>> builder.add_attributes(1, ["a"])
    >>> handle = builder.finish()
    >>> handle.num_vertices, handle.num_edges
    (3, 2)
    """

    def __init__(self) -> None:
        self._indexer = VertexIndexer()
        # One raw {chunk: bits} accumulator per vertex id / per attribute.
        self._adjacency_raw: List[Dict[int, int]] = []
        self._attribute_raw: Dict[Attribute, Dict[int, int]] = {}
        self._num_edges = 0
        self._finished = False

    # -- ingestion ------------------------------------------------------
    def _vertex_id(self, vertex: Vertex) -> int:
        index = self._indexer.add(vertex)
        if index == len(self._adjacency_raw):
            self._adjacency_raw.append({})
        return index

    def _check_open(self) -> None:
        if self._finished:
            raise StreamingError(
                "StreamingGraphBuilder already finished — build a new one"
            )

    def add_vertex(self, vertex: Vertex) -> None:
        """Register ``vertex`` (idempotent), e.g. an isolated vertex."""
        self._check_open()
        self._vertex_id(vertex)

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        """Add the undirected edge ``(u, v)``; self-loops are rejected.

        Duplicate edges (either orientation) are collapsed, exactly like
        :meth:`AttributedGraph.add_edge`.
        """
        self._check_open()
        if u == v:
            raise StreamingError(f"self-loop on vertex {u!r} is not allowed")
        uid, vid = self._vertex_id(u), self._vertex_id(v)
        chunks = self._adjacency_raw[uid]
        chunk, offset = vid // CHUNK_BITS, vid % CHUNK_BITS
        bits = chunks.get(chunk, 0)
        if (bits >> offset) & 1:
            return  # duplicate edge
        chunks[chunk] = bits | (1 << offset)
        back = self._adjacency_raw[vid]
        back_chunk = uid // CHUNK_BITS
        back[back_chunk] = back.get(back_chunk, 0) | (1 << (uid % CHUNK_BITS))
        self._num_edges += 1

    def add_attributes(self, vertex: Vertex, attributes: Iterable[str]) -> None:
        """Attach every attribute in ``attributes`` to ``vertex``.

        The vertex is registered if new (attribute files may introduce
        isolated vertices); repeats of an attribute are idempotent.
        """
        self._check_open()
        index = self._vertex_id(vertex)
        chunk, bit = index // CHUNK_BITS, 1 << (index % CHUNK_BITS)
        raw = self._attribute_raw
        for attribute in attributes:
            holders = raw.get(attribute)
            if holders is None:
                holders = raw[attribute] = {}
            holders[chunk] = holders.get(chunk, 0) | bit

    # -- completion -----------------------------------------------------
    def finish(self) -> "StreamedGraphHandle":
        """Canonicalise the accumulators and return the immutable handle."""
        self._check_open()
        self._finished = True
        adjacency_sets: List[SparseBitset] = []
        raws = self._adjacency_raw
        for index in range(len(raws)):
            adjacency_sets.append(SparseBitset.from_chunk_bits(raws[index]))
            raws[index] = None  # free the raw form as we go
        attribute_masks = {
            attribute: SparseBitset.from_chunk_bits(raw)
            for attribute, raw in self._attribute_raw.items()
        }
        self._adjacency_raw = []
        self._attribute_raw = {}
        index = SparseGraphBitsetIndex(
            self._indexer, adjacency_sets, attribute_masks
        )
        return StreamedGraphHandle(index, self._num_edges)


def stream_edge_list(
    path: PathLike, builder: Optional[StreamingGraphBuilder] = None
) -> StreamingGraphBuilder:
    """Stream an edge-list file into ``builder`` (a new one when omitted).

    The grammar is exactly :func:`repro.graph.io.iter_edge_records` —
    the same comment/blank-line handling, self-loop skipping,
    :class:`repro.errors.FormatError` messages and vertex-token parsing as
    the in-memory :func:`~repro.graph.io.read_edge_list`.
    """
    if builder is None:
        builder = StreamingGraphBuilder()
    for _, u, v in iter_edge_records(path):
        builder.add_edge(u, v)
    return builder


def stream_attributes(
    path: PathLike, builder: Optional[StreamingGraphBuilder] = None
) -> StreamingGraphBuilder:
    """Stream an attribute file into ``builder`` (a new one when omitted)."""
    if builder is None:
        builder = StreamingGraphBuilder()
    for _, vertex, attributes in iter_attribute_records(path):
        builder.add_vertex(vertex)
        builder.add_attributes(vertex, attributes)
    return builder


def stream_attributed_graph(
    edge_path: PathLike, attribute_path: Optional[PathLike] = None
) -> "StreamedGraphHandle":
    """Build a :class:`StreamedGraphHandle` from an edge file (+ attributes).

    The streaming twin of :func:`repro.graph.io.read_attributed_graph`:
    one pass over the edge file, one over the optional attribute file,
    peak memory of the final sparse index plus per-line transients.  The
    loaded graph — vertices, edges, attributes, supports — is identical
    to the in-memory loader's for the same files.

    Examples
    --------
    >>> import tempfile, os
    >>> d = tempfile.mkdtemp()
    >>> _ = open(os.path.join(d, "g.edges"), "w").write("1 2\\n2 3\\n")
    >>> _ = open(os.path.join(d, "g.attrs"), "w").write("1 a\\n2 a\\n3 b\\n")
    >>> handle = stream_attributed_graph(
    ...     os.path.join(d, "g.edges"), os.path.join(d, "g.attrs"))
    >>> handle.num_vertices, handle.num_edges, handle.support(["a"])
    (3, 2, 2)
    """
    builder = stream_edge_list(edge_path)
    if attribute_path is not None:
        stream_attributes(attribute_path, builder)
    return builder.finish()


class StreamedGraphHandle:
    """Read-only attributed graph backed directly by a sparse bitset index.

    Exposes the query surface of
    :class:`~repro.graph.attributed_graph.AttributedGraph` that the mining
    stack consumes — so :class:`~repro.correlation.scpm.SCPM`,
    :class:`~repro.correlation.naive.NaiveMiner`,
    :class:`~repro.itemsets.eclat.EclatMiner` and
    :class:`~repro.quasiclique.search.QuasiCliqueSearch` accept a handle
    anywhere they accept a graph — while storing nothing but the
    :class:`~repro.graph.sparseset.SparseGraphBitsetIndex` itself.  There
    is no dict-of-sets adjacency and no per-vertex attribute hash: answers
    are computed from the chunked containers, and ``frozenset`` objects
    are materialised only at the public API boundary of each call.

    Engine selection mirrors ``AttributedGraph.bitset_index``: the handle
    is born with its sparse index; ``bitset_index("dense")`` (or an
    ``"auto"`` resolution that picks dense — small streamed graphs) builds
    the dense twin lazily *from the containers*, sharing the indexer, and
    caches it.  Building the dense index on a huge streamed graph costs
    O(|V|²/8) bytes, exactly like the in-memory dense engine — ``"auto"``
    avoids it at scale.

    Per-element mutation is not supported: the mutating
    ``AttributedGraph`` methods raise
    :class:`repro.errors.StreamingError`.  The one write path is batched
    evolution — :meth:`apply_edge_batch` / :meth:`apply_attribute_batch`
    (:mod:`repro.graph.evolve`) fold an edit batch into the sparse index
    copy-on-write and report the touched chunk footprint for delta
    re-evaluation.  Use :meth:`to_attributed_graph` (or :meth:`subgraph`
    for a slice) to materialise a mutable hashed copy.
    """

    __slots__ = ("_sparse", "_num_edges", "_indexes")

    def __init__(self, index: SparseGraphBitsetIndex, num_edges: int) -> None:
        self._sparse = index
        self._num_edges = num_edges
        self._indexes: Dict[str, object] = {"sparse": index}

    # ------------------------------------------------------------------
    # basic queries (AttributedGraph surface)
    # ------------------------------------------------------------------
    @property
    def indexer(self) -> VertexIndexer:
        """The vertex ↔ dense-id bijection shared by every cached index."""
        return self._sparse.indexer

    @property
    def num_vertices(self) -> int:
        """Number of vertices ``|V|``."""
        return len(self._sparse.indexer)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``|E|``."""
        return self._num_edges

    @property
    def num_attributes(self) -> int:
        """Number of distinct attributes ``|A|`` that appear on some vertex."""
        return len(self._sparse.attribute_masks)

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over the vertices in first-seen (dense-id) order."""
        return iter(self._sparse.indexer)

    def edges(self) -> Iterator[Tuple[Vertex, Vertex]]:
        """Iterate over each undirected edge exactly once."""
        indexer = self._sparse.indexer
        for uid, container in enumerate(self._sparse.adjacency_sets):
            u = indexer.vertex_of(uid)
            for vid in container:
                if vid > uid:
                    yield (u, indexer.vertex_of(vid))

    def attributes(self) -> Iterator[Attribute]:
        """Iterate over the attribute universe (first-seen order)."""
        return iter(self._sparse.attribute_masks)

    def has_vertex(self, vertex: Vertex) -> bool:
        """Return ``True`` if ``vertex`` is in the graph."""
        return vertex in self._sparse.indexer

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """Return ``True`` if the undirected edge ``(u, v)`` exists."""
        indexer = self._sparse.indexer
        if u not in indexer or v not in indexer:
            return False
        return indexer.id_of(v) in self._sparse.adjacency_sets[indexer.id_of(u)]

    def _id_of(self, vertex: Vertex) -> int:
        """Dense id of ``vertex`` (:class:`UnknownVertexError` when absent)."""
        return self._sparse.indexer.id_of(vertex)

    def neighbors(self, vertex: Vertex) -> FrozenSet[Vertex]:
        """Return the neighbor set of ``vertex`` as a frozen set.

        Materialised per call from the chunked container — O(degree), not
        cached; hot paths should go through :meth:`bitset_index` instead.
        """
        vertex_of = self._sparse.indexer.vertex_of
        return frozenset(
            vertex_of(i) for i in self._sparse.adjacency_sets[self._id_of(vertex)]
        )

    # The streamed handle has no internal set to share, so the "no-copy"
    # variant and the copying one coincide.
    neighbor_set = neighbors

    def degree(self, vertex: Vertex) -> int:
        """Return the degree of ``vertex`` (a container popcount)."""
        return self._sparse.adjacency_sets[self._id_of(vertex)].bit_count()

    def attributes_of(self, vertex: Vertex) -> FrozenSet[Attribute]:
        """Return ``F(vertex)``, the attribute set of a vertex.

        The handle keeps only the inverted (attribute → holders) index, so
        this scans every attribute container: O(|A|) membership tests per
        call.  Fine at API boundaries and in reports; not a hot path.
        """
        index = self._id_of(vertex)
        return frozenset(
            attribute
            for attribute, holders in self._sparse.attribute_masks.items()
            if index in holders
        )

    def vertices_with(self, attribute: Attribute) -> FrozenSet[Vertex]:
        """Return the set of vertices carrying ``attribute``.

        Unknown attributes raise :class:`repro.errors.UnknownAttributeError`,
        matching :meth:`AttributedGraph.vertices_with`.
        """
        holders = self._sparse.attribute_masks.get(attribute)
        if holders is None:
            raise UnknownAttributeError(attribute)
        vertex_of = self._sparse.indexer.vertex_of
        return frozenset(vertex_of(i) for i in holders)

    def vertices_with_all(self, attributes: Iterable[Attribute]) -> FrozenSet[Vertex]:
        """Return ``V(S)``: vertices carrying *every* attribute in ``attributes``.

        The empty attribute set induces the whole vertex set, mirroring the
        paper's convention (and ``AttributedGraph``).
        """
        members = self._sparse.members_mask(attributes)
        vertex_of = self._sparse.indexer.vertex_of
        return frozenset(vertex_of(i) for i in members)

    def support(self, attributes: Iterable[Attribute]) -> int:
        """Return ``σ(S) = |V(S)|`` without materialising the frozen set."""
        return self._sparse.members_mask(attributes).bit_count()

    def attribute_support_index(self) -> Dict[Attribute, FrozenSet[Vertex]]:
        """Return ``attribute -> frozenset(holders)`` (API-boundary copy).

        Materialises one frozenset per attribute; the bitset-native
        equivalent is ``bitset_index().attribute_masks``.
        """
        return {a: self.vertices_with(a) for a in self._sparse.attribute_masks}

    # ------------------------------------------------------------------
    # index access
    # ------------------------------------------------------------------
    def bitset_index(self, engine: str = "auto"):
        """Return the bitset view of the graph for ``engine``.

        Mirrors :meth:`AttributedGraph.bitset_index`: ``"auto"`` resolves
        through :func:`repro.graph.engine.resolve_engine` on |V| and |E|.
        The sparse index is the handle's own storage (returned as-is);
        the dense index is derived lazily from the containers — sharing
        the indexer — and cached.  The cache is valid until the next
        :meth:`apply_edge_batch` / :meth:`apply_attribute_batch`, which
        drop the derived dense twin.
        """
        resolved = resolve_engine(engine, self.num_vertices, self.num_edges)
        index = self._indexes.get(resolved)
        if index is None:  # only ever the dense twin
            assert resolved == DENSE
            sparse = self._sparse
            index = GraphBitsetIndex(
                sparse.indexer,
                [container.to_mask() for container in sparse.adjacency_sets],
                {
                    attribute: holders.to_mask()
                    for attribute, holders in sparse.attribute_masks.items()
                },
            )
            self._indexes[resolved] = index
        return index

    # ------------------------------------------------------------------
    # materialisation
    # ------------------------------------------------------------------
    def to_attributed_graph(self) -> AttributedGraph:
        """Materialise a mutable :class:`AttributedGraph` copy of the handle.

        Costs the full hashed-graph footprint the streaming path avoided —
        intended for small graphs or analysis slices.
        """
        graph = AttributedGraph(vertices=self.vertices(), edges=self.edges())
        vertex_of = self._sparse.indexer.vertex_of
        for attribute, holders in self._sparse.attribute_masks.items():
            for index in holders:
                graph.add_attribute(vertex_of(index), attribute)
        return graph

    def subgraph(self, vertices: Iterable[Vertex]) -> AttributedGraph:
        """Return the vertex-induced subgraph as a mutable ``AttributedGraph``.

        Unknown vertices raise :class:`repro.errors.UnknownVertexError`.
        """
        keep = list(vertices)
        keep_ids = self._sparse.native_from_ids(self._id_of(v) for v in keep)
        vertex_of = self._sparse.indexer.vertex_of
        sub = AttributedGraph(vertices=keep)
        for uid in keep_ids:
            for vid in self._sparse.adjacency_sets[uid] & keep_ids:
                if vid > uid:
                    sub.add_edge(vertex_of(uid), vertex_of(vid))
        for attribute, holders in self._sparse.attribute_masks.items():
            for index in holders & keep_ids:
                sub.add_attribute(vertex_of(index), attribute)
        return sub

    def induced_by(self, attributes: Iterable[Attribute]) -> AttributedGraph:
        """Return ``G(S)``, the subgraph induced by the attribute set."""
        return self.subgraph(self.vertices_with_all(attributes))

    # ------------------------------------------------------------------
    # batched evolution (the only supported mutation path)
    # ------------------------------------------------------------------
    def apply_edge_batch(self, edits):
        """Apply a batch of :class:`~repro.graph.evolve.EdgeEdit`\\ s.

        Delegates to :func:`repro.graph.evolve.apply_edge_batch` on the
        sparse index (copy-on-write per container), keeps the edge count
        in step, and drops the cached derived dense index — the sparse
        index *is* the handle's storage and stays valid.  Returns the
        :class:`~repro.graph.evolve.DeltaReport`.
        """
        report = self._sparse.apply_edge_batch(edits)
        self._num_edges += report.edges_added - report.edges_removed
        self._indexes = {"sparse": self._sparse}
        return report

    def apply_attribute_batch(self, edits):
        """Apply a batch of :class:`~repro.graph.evolve.AttributeEdit`\\ s."""
        report = self._sparse.apply_attribute_batch(edits)
        self._indexes = {"sparse": self._sparse}
        return report

    # ------------------------------------------------------------------
    # immutability guard (per-element mutators)
    # ------------------------------------------------------------------
    def _immutable(self, *_args, **_kwargs):
        raise StreamingError(
            "StreamedGraphHandle only mutates through apply_edge_batch / "
            "apply_attribute_batch — materialise a mutable copy with "
            "to_attributed_graph() for the per-element AttributedGraph API"
        )

    add_vertex = _immutable
    add_edge = _immutable
    add_attribute = _immutable
    add_attributes = _immutable
    remove_vertex = _immutable

    # ------------------------------------------------------------------
    # dunder helpers / serialization
    # ------------------------------------------------------------------
    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self._sparse.indexer

    def __len__(self) -> int:
        return len(self._sparse.indexer)

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._sparse.indexer)

    def __getstate__(self):
        # The sparse index is the whole payload (its own __getstate__ drops
        # recomputable parts); the dense cache stays process-local.
        return (self._sparse, self._num_edges)

    def __setstate__(self, state) -> None:
        self._sparse, self._num_edges = state
        self._indexes = {"sparse": self._sparse}

    def __repr__(self) -> str:
        return (
            f"StreamedGraphHandle(num_vertices={self.num_vertices}, "
            f"num_edges={self.num_edges}, num_attributes={self.num_attributes})"
        )


__all__ = [
    "GraphLike",
    "StreamedGraphHandle",
    "StreamingGraphBuilder",
    "stream_attributed_graph",
    "stream_attributes",
    "stream_edge_list",
]

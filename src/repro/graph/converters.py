"""Converters between :class:`AttributedGraph` and :mod:`networkx` graphs.

networkx is used only at the boundary (dataset generation and optional
visualisation); the mining algorithms operate on the native structure.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping, Optional

import networkx as nx

from repro.errors import GraphError
from repro.graph.attributed_graph import AttributedGraph

ATTRIBUTE_KEY = "attributes"


def to_networkx(graph: AttributedGraph) -> nx.Graph:
    """Convert to an undirected :class:`networkx.Graph`.

    Vertex attribute sets are stored under the node-data key
    ``"attributes"`` as sorted tuples so the result is hashable and stable.
    """
    result = nx.Graph()
    for vertex in graph.vertices():
        result.add_node(vertex, **{ATTRIBUTE_KEY: tuple(sorted(map(str, graph.attributes_of(vertex))))})
    result.add_edges_from(graph.edges())
    return result


def from_networkx(
    source: nx.Graph,
    attributes: Optional[Mapping[Hashable, Iterable[Hashable]]] = None,
    attribute_key: str = ATTRIBUTE_KEY,
) -> AttributedGraph:
    """Convert a networkx graph into an :class:`AttributedGraph`.

    Attribute sets are taken from ``attributes`` when given, otherwise from
    the node-data entry ``attribute_key`` (missing entries mean "no
    attributes").  Directed and multi-graphs are rejected to avoid silently
    collapsing edge multiplicities.
    """
    if source.is_directed():
        raise GraphError("directed graphs are not supported; convert to undirected first")
    if source.is_multigraph():
        raise GraphError("multigraphs are not supported; collapse parallel edges first")
    graph = AttributedGraph()
    for node, data in source.nodes(data=True):
        graph.add_vertex(node)
        if attributes is not None:
            graph.add_attributes(node, attributes.get(node, ()))
        else:
            graph.add_attributes(node, data.get(attribute_key, ()))
    for u, v in source.edges():
        if u != v:
            graph.add_edge(u, v)
    return graph

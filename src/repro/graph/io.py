"""Reading and writing attributed graphs.

Two plain-text formats are supported, matching the layout used by the
original SCPM release (one edge file plus one attribute file), and a
single-file JSON format convenient for snapshots.  The exact grammar —
delimiters, comment rules, vertex-token parsing, self-loop and duplicate
handling — is documented in ``docs/FILE_FORMATS.md``; the record iterators
:func:`iter_edge_records` and :func:`iter_attribute_records` are the single
implementation of that grammar, shared by the in-memory readers below and
by the bounded-memory streaming ingest in :mod:`repro.graph.streaming`.

Edge-list format (``.edges``)
    One edge per line: two whitespace-separated vertex tokens ``u v``
    (any run of spaces/tabs separates; tokens beyond the second are
    ignored).  Blank lines and lines whose first non-whitespace character
    is ``#`` are skipped.  Self-loop lines (``u u``) are silently skipped
    — neither endpoint is added.  Repeated edges (in either orientation)
    collapse into one undirected edge.

Attribute format (``.attrs``)
    One record per line: ``vertex attr1 attr2 ...`` (whitespace-separated).
    A vertex listed with no attributes is still added to the graph, and a
    vertex may appear on several lines — its attribute sets merge.
    Vertices that never appeared in the edge file are added as isolated
    vertices.  Blank lines and ``#`` comment lines are skipped.

JSON format
    ``{"vertices": {...}, "edges": [[u, v], ...]}`` where ``vertices`` maps
    each vertex id to its attribute list.

Vertex tokens are parsed with :func:`parse_vertex_token`: a token that
``int()`` accepts becomes an integer vertex, anything else stays a string —
so ``42`` in a file and the Python vertex ``42`` are the same vertex.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Hashable, Iterator, List, Tuple, Union

from repro.errors import FormatError
from repro.graph.attributed_graph import AttributedGraph

PathLike = Union[str, Path]

#: Buffer size for line-oriented graph-file readers (64 KiB keeps syscall
#: counts low without holding more than a sliver of the file in memory).
READ_BUFFER_BYTES = 1 << 16


def parse_vertex_token(token: str) -> Hashable:
    """Interpret a vertex token as an ``int`` when possible, else a string.

    This is the single token-parsing rule of every plain-text reader (in
    the JSON format it also applies to the string keys of ``vertices``),
    so ``"42"`` in any file always denotes the integer vertex ``42``.
    """
    try:
        return int(token)
    except ValueError:
        return token


# Backward-compatible alias (the helper predates its public naming).
_parse_vertex = parse_vertex_token


def iter_edge_records(path: PathLike) -> Iterator[Tuple[int, Hashable, Hashable]]:
    """Yield ``(line_number, u, v)`` for every usable edge line of ``path``.

    Applies the full edge-list grammar: blank/comment lines are skipped,
    lines with fewer than two tokens raise :class:`repro.errors.FormatError`
    (with file and line number), tokens are parsed with
    :func:`parse_vertex_token`, extra tokens beyond the second are ignored,
    and self-loop lines are skipped entirely.  Duplicate edges are *not*
    collapsed here — that is the consumer's job (both the in-memory graph
    and the streaming index builder are idempotent under repeats).
    """
    with open(path, "r", encoding="utf-8", buffering=READ_BUFFER_BYTES) as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            parts = stripped.split()
            if len(parts) < 2:
                raise FormatError(
                    f"{path}:{line_number}: expected 'u v', got {stripped!r}"
                )
            u, v = parse_vertex_token(parts[0]), parse_vertex_token(parts[1])
            if u == v:
                continue
            yield line_number, u, v


def iter_attribute_records(
    path: PathLike,
) -> Iterator[Tuple[int, Hashable, List[str]]]:
    """Yield ``(line_number, vertex, attributes)`` for every record of ``path``.

    Blank/comment lines are skipped; the first token is the vertex (parsed
    with :func:`parse_vertex_token`), every following token one attribute
    (kept as a string, duplicates preserved — consumers deduplicate).  A
    line with only a vertex token yields an empty attribute list.
    """
    with open(path, "r", encoding="utf-8", buffering=READ_BUFFER_BYTES) as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            parts = stripped.split()
            yield line_number, parse_vertex_token(parts[0]), parts[1:]


def read_edge_list(path: PathLike, graph: AttributedGraph = None) -> AttributedGraph:
    """Read an edge-list file into ``graph`` (a new graph when omitted).

    Follows the edge-list grammar of :func:`iter_edge_records`: comment and
    blank lines are skipped, self-loop lines are ignored without adding
    their endpoint, duplicate edges collapse, tokens after the second are
    ignored, and short lines raise :class:`repro.errors.FormatError`.
    """
    if graph is None:
        graph = AttributedGraph()
    for _, u, v in iter_edge_records(path):
        graph.add_edge(u, v)
    return graph


def read_attributes(path: PathLike, graph: AttributedGraph = None) -> AttributedGraph:
    """Read an attribute file into ``graph`` (a new graph when omitted).

    Every record's vertex is added to the graph (so the attribute file may
    introduce vertices absent from the edge file — they become isolated
    vertices); a record with no attribute tokens still adds its vertex.
    Repeated records for one vertex merge their attribute sets.
    """
    if graph is None:
        graph = AttributedGraph()
    for _, vertex, attributes in iter_attribute_records(path):
        graph.add_vertex(vertex)
        graph.add_attributes(vertex, attributes)
    return graph


def read_attributed_graph(edge_path: PathLike, attribute_path: PathLike) -> AttributedGraph:
    """Read an attributed graph from an edge file plus an attribute file.

    This is the in-memory loader: it materialises the full
    :class:`AttributedGraph` (Python dicts of sets) before any index is
    built.  For graphs too large for that, use
    :func:`repro.graph.streaming.stream_attributed_graph`, which builds the
    sparse bitset index directly from the same files in bounded memory.
    """
    graph = read_edge_list(edge_path)
    return read_attributes(attribute_path, graph)


def write_edge_list(graph: AttributedGraph, path: PathLike) -> None:
    """Write the edges of ``graph`` in edge-list format."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("# u v\n")
        for u, v in sorted(graph.edges(), key=lambda edge: (str(edge[0]), str(edge[1]))):
            handle.write(f"{u} {v}\n")


def write_attributes(graph: AttributedGraph, path: PathLike) -> None:
    """Write the vertex attributes of ``graph`` in attribute format."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("# vertex attr1 attr2 ...\n")
        for vertex in sorted(graph.vertices(), key=str):
            attrs = " ".join(sorted(map(str, graph.attributes_of(vertex))))
            handle.write(f"{vertex} {attrs}\n".rstrip() + "\n")


def write_attributed_graph(
    graph: AttributedGraph, edge_path: PathLike, attribute_path: PathLike
) -> None:
    """Write ``graph`` as an edge file plus an attribute file."""
    write_edge_list(graph, edge_path)
    write_attributes(graph, attribute_path)


def to_json(graph: AttributedGraph) -> str:
    """Serialise ``graph`` to a JSON string (vertex ids become strings)."""
    payload = {
        "vertices": {
            str(v): sorted(map(str, graph.attributes_of(v))) for v in graph.vertices()
        },
        "edges": [[str(u), str(v)] for u, v in graph.edges()],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def from_json(text: str) -> AttributedGraph:
    """Parse a graph serialised by :func:`to_json`."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise FormatError(f"invalid JSON graph: {exc}") from exc
    if "vertices" not in payload or "edges" not in payload:
        raise FormatError("JSON graph must have 'vertices' and 'edges' keys")
    graph = AttributedGraph()
    for vertex, attrs in payload["vertices"].items():
        graph.add_vertex(parse_vertex_token(vertex))
        graph.add_attributes(parse_vertex_token(vertex), attrs)
    for edge in payload["edges"]:
        if len(edge) != 2:
            raise FormatError(f"edge {edge!r} must have exactly two endpoints")
        graph.add_edge(parse_vertex_token(edge[0]), parse_vertex_token(edge[1]))
    return graph


def write_json(graph: AttributedGraph, path: PathLike) -> None:
    """Write ``graph`` to ``path`` in the JSON format."""
    Path(path).write_text(to_json(graph), encoding="utf-8")


def read_json(path: PathLike) -> AttributedGraph:
    """Read a JSON graph from ``path``."""
    return from_json(Path(path).read_text(encoding="utf-8"))

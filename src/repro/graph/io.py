"""Reading and writing attributed graphs.

Two plain-text formats are supported, matching the layout used by the
original SCPM release (one edge file plus one attribute file), and a
single-file JSON format convenient for snapshots.

Edge-list format (``.edges``)
    One edge per line: ``u v`` separated by whitespace.  Lines starting with
    ``#`` are comments.

Attribute format (``.attrs``)
    One vertex per line: ``vertex attr1 attr2 ...``.  A vertex listed with no
    attributes is still added to the graph.

JSON format
    ``{"vertices": {...}, "edges": [[u, v], ...]}`` where ``vertices`` maps
    each vertex id to its attribute list.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.errors import FormatError
from repro.graph.attributed_graph import AttributedGraph

PathLike = Union[str, Path]


def _parse_vertex(token: str) -> object:
    """Interpret a vertex token as an int when possible, else a string."""
    try:
        return int(token)
    except ValueError:
        return token


def read_edge_list(path: PathLike, graph: AttributedGraph = None) -> AttributedGraph:
    """Read an edge-list file into ``graph`` (a new graph when omitted)."""
    if graph is None:
        graph = AttributedGraph()
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            parts = stripped.split()
            if len(parts) < 2:
                raise FormatError(
                    f"{path}:{line_number}: expected 'u v', got {stripped!r}"
                )
            u, v = _parse_vertex(parts[0]), _parse_vertex(parts[1])
            if u == v:
                continue
            graph.add_edge(u, v)
    return graph


def read_attributes(path: PathLike, graph: AttributedGraph = None) -> AttributedGraph:
    """Read an attribute file into ``graph`` (a new graph when omitted)."""
    if graph is None:
        graph = AttributedGraph()
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            parts = stripped.split()
            vertex = _parse_vertex(parts[0])
            graph.add_vertex(vertex)
            graph.add_attributes(vertex, parts[1:])
    return graph


def read_attributed_graph(edge_path: PathLike, attribute_path: PathLike) -> AttributedGraph:
    """Read an attributed graph from an edge file plus an attribute file."""
    graph = read_edge_list(edge_path)
    return read_attributes(attribute_path, graph)


def write_edge_list(graph: AttributedGraph, path: PathLike) -> None:
    """Write the edges of ``graph`` in edge-list format."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("# u v\n")
        for u, v in sorted(graph.edges(), key=lambda edge: (str(edge[0]), str(edge[1]))):
            handle.write(f"{u} {v}\n")


def write_attributes(graph: AttributedGraph, path: PathLike) -> None:
    """Write the vertex attributes of ``graph`` in attribute format."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("# vertex attr1 attr2 ...\n")
        for vertex in sorted(graph.vertices(), key=str):
            attrs = " ".join(sorted(map(str, graph.attributes_of(vertex))))
            handle.write(f"{vertex} {attrs}\n".rstrip() + "\n")


def write_attributed_graph(
    graph: AttributedGraph, edge_path: PathLike, attribute_path: PathLike
) -> None:
    """Write ``graph`` as an edge file plus an attribute file."""
    write_edge_list(graph, edge_path)
    write_attributes(graph, attribute_path)


def to_json(graph: AttributedGraph) -> str:
    """Serialise ``graph`` to a JSON string (vertex ids become strings)."""
    payload = {
        "vertices": {
            str(v): sorted(map(str, graph.attributes_of(v))) for v in graph.vertices()
        },
        "edges": [[str(u), str(v)] for u, v in graph.edges()],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def from_json(text: str) -> AttributedGraph:
    """Parse a graph serialised by :func:`to_json`."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise FormatError(f"invalid JSON graph: {exc}") from exc
    if "vertices" not in payload or "edges" not in payload:
        raise FormatError("JSON graph must have 'vertices' and 'edges' keys")
    graph = AttributedGraph()
    for vertex, attrs in payload["vertices"].items():
        graph.add_vertex(_parse_vertex(vertex))
        graph.add_attributes(_parse_vertex(vertex), attrs)
    for edge in payload["edges"]:
        if len(edge) != 2:
            raise FormatError(f"edge {edge!r} must have exactly two endpoints")
        graph.add_edge(_parse_vertex(edge[0]), _parse_vertex(edge[1]))
    return graph


def write_json(graph: AttributedGraph, path: PathLike) -> None:
    """Write ``graph`` to ``path`` in the JSON format."""
    Path(path).write_text(to_json(graph), encoding="utf-8")


def read_json(path: PathLike) -> AttributedGraph:
    """Read a JSON graph from ``path``."""
    return from_json(Path(path).read_text(encoding="utf-8"))

"""Command-line interface for the SCPM reproduction."""

from repro.cli.main import build_parser, main

__all__ = ["build_parser", "main"]

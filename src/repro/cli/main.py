"""Command-line interface for structural correlation pattern mining.

Two sub-commands are provided::

    scpm mine  --edges g.edges --attributes g.attrs --min-support 100 ...
    scpm demo  --profile dblp  [--scale 0.5]

``mine`` runs SCPM (or the naive baseline) on a graph read from disk and
prints the ranking tables; ``demo`` generates one of the built-in synthetic
profiles and does the same, which is the quickest way to see the library end
to end without any input files.

``mine --streaming`` swaps the in-memory loader for the bounded-memory
streaming ingest (:mod:`repro.graph.streaming`): the files are folded
straight into the sparse bitset index, so the whole
file → stream → (parallel) scheduler → results path never materialises a
hashed ``AttributedGraph``.  ``--engine`` and ``--jobs`` select the
vertex-set engine and the worker-process count on either path; the mined
output is byte-identical regardless of loader, engine or job count.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.ranking import render_case_study_table, render_pattern_table
from repro.correlation.naive import NaiveMiner
from repro.correlation.parameters import SCPMParams
from repro.correlation.scpm import SCPM
from repro.datasets.profiles import PROFILES, load_profile
from repro.graph.engine import ENGINES
from repro.graph.io import read_attributed_graph
from repro.graph.statistics import summarize
from repro.graph.streaming import stream_attributed_graph
from repro.quasiclique.search import BFS, DFS


def build_parser() -> argparse.ArgumentParser:
    """Create the argument parser for the ``scpm`` command."""
    parser = argparse.ArgumentParser(
        prog="scpm",
        description="Structural correlation pattern mining for attributed graphs.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    mine = subparsers.add_parser("mine", help="mine a graph read from disk")
    mine.add_argument("--edges", required=True, help="edge-list file (u v per line)")
    mine.add_argument(
        "--attributes", required=True, help="attribute file (vertex attr1 attr2 ...)"
    )
    mine.add_argument(
        "--streaming",
        action="store_true",
        help=(
            "stream the files straight into the sparse bitset index "
            "(bounded memory, no in-memory graph) — results are identical "
            "to the default in-memory loader"
        ),
    )
    _add_mining_arguments(mine)

    demo = subparsers.add_parser("demo", help="mine a built-in synthetic profile")
    demo.add_argument(
        "--profile",
        default="small-dblp",
        choices=sorted(PROFILES),
        help="synthetic dataset profile to generate",
    )
    demo.add_argument(
        "--scale", type=float, default=1.0, help="size multiplier for the profile"
    )
    _add_mining_arguments(demo, required=False)
    return parser


def _add_mining_arguments(
    parser: argparse.ArgumentParser, required: bool = True
) -> None:
    parser.add_argument("--min-support", type=int, required=required, default=None)
    parser.add_argument("--gamma", type=float, default=None)
    parser.add_argument("--min-size", type=int, default=None)
    parser.add_argument("--min-epsilon", type=float, default=None)
    parser.add_argument("--min-delta", type=float, default=None)
    parser.add_argument("--top-k", type=int, default=None)
    parser.add_argument("--min-attribute-set-size", type=int, default=None)
    parser.add_argument("--max-attribute-set-size", type=int, default=None)
    parser.add_argument(
        "--algorithm",
        choices=("scpm", "naive"),
        default="scpm",
        help="mining algorithm (default: scpm)",
    )
    parser.add_argument(
        "--order", choices=(DFS, BFS), default=DFS, help="search order for SCPM"
    )
    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default=None,
        help="vertex-set engine: dense masks, sparse chunked containers, "
        "or auto selection by graph shape (default: auto, or the profile's)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for the parallel scheduler "
        "(-1 = all CPUs; default: 1 = sequential, or the profile's)",
    )
    parser.add_argument(
        "--rows", type=int, default=10, help="rows per ranking table (default: 10)"
    )
    parser.add_argument(
        "--show-patterns",
        action="store_true",
        help="also print the individual structural correlation patterns",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="also print the work counters (attribute-set pruning, "
        "coverage-memo hits/misses, incremental-kernel counter updates)",
    )


def _params_from_args(args: argparse.Namespace, defaults: Optional[SCPMParams]) -> SCPMParams:
    """Combine CLI overrides with profile defaults (CLI wins)."""
    def pick(name: str, fallback):
        value = getattr(args, name, None)
        return fallback if value is None else value

    base = defaults or SCPMParams(min_support=1, gamma=0.5, min_size=4)
    return SCPMParams(
        min_support=pick("min_support", base.min_support),
        gamma=pick("gamma", base.gamma),
        min_size=pick("min_size", base.min_size),
        min_epsilon=pick("min_epsilon", base.min_epsilon),
        min_delta=pick("min_delta", base.min_delta),
        top_k=pick("top_k", base.top_k),
        min_attribute_set_size=pick(
            "min_attribute_set_size", base.min_attribute_set_size
        ),
        max_attribute_set_size=pick(
            "max_attribute_set_size", base.max_attribute_set_size
        ),
        order=args.order,
        engine=pick("engine", base.engine),
        n_jobs=pick("jobs", base.n_jobs),
    )


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``scpm`` command."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "mine":
        if args.streaming:
            graph = stream_attributed_graph(args.edges, args.attributes)
        else:
            graph = read_attributed_graph(args.edges, args.attributes)
        params = _params_from_args(args, defaults=None)
        title = "input graph"
    else:
        profile = load_profile(args.profile, scale=args.scale)
        graph = profile.build()
        params = _params_from_args(args, defaults=profile.params)
        title = profile.name

    if args.command == "mine" and args.streaming:
        # Streamed handles answer the counters straight off the index; the
        # full summary (components walk) would traverse the whole graph
        # the streaming path deliberately avoids hashing.
        counts = graph
    else:
        counts = summarize(graph)
    print(
        f"graph: {counts.num_vertices} vertices, {counts.num_edges} edges, "
        f"{counts.num_attributes} attributes"
    )
    print(
        f"parameters: sigma_min={params.min_support} gamma={params.gamma} "
        f"min_size={params.min_size} epsilon_min={params.min_epsilon} "
        f"delta_min={params.min_delta} k={params.top_k}"
    )

    miner = (
        SCPM(graph, params)
        if args.algorithm == "scpm"
        else NaiveMiner(graph, params)
    )
    result = miner.mine()
    print(
        f"{result.algorithm}: evaluated {result.counters.attribute_sets_evaluated} "
        f"attribute sets in {result.counters.elapsed_seconds:.2f}s"
    )
    if args.verbose:
        c = result.counters
        print(
            f"counters: qualified={c.attribute_sets_qualified} "
            f"extended={c.attribute_sets_extended} pruned={c.attribute_sets_pruned}"
        )
        print(
            f"kernel: counter_updates={c.kernel_counter_updates}  "
            f"coverage memo: hits={c.coverage_memo_hits} "
            f"misses={c.coverage_memo_misses}"
        )
    print()
    print(render_case_study_table(result, title, n=args.rows))
    if args.show_patterns:
        print()
        print(render_pattern_table(result, title=f"{title} — patterns"))
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Command-line interface for structural correlation pattern mining.

Six sub-commands are provided::

    scpm mine         --edges g.edges --attributes g.attrs --min-support 100 ...
    scpm update       --edges g.edges --attributes g.attrs \
                      --edge-edits day1.edits --store patterns.sqlite ...
    scpm demo         --profile dblp  [--scale 0.5]
    scpm query        --store patterns.sqlite --vertex 42
    scpm serve        --store patterns.sqlite --port 8765
    scpm verify-store --store patterns.sqlite

``mine`` runs SCPM (or the naive baseline) on a graph read from disk and
prints the ranking tables; ``demo`` generates one of the built-in synthetic
profiles and does the same, which is the quickest way to see the library end
to end without any input files.

``mine --store out.sqlite`` (also on ``demo``) additionally persists the
complete mining run into a pattern store (:mod:`repro.store` — SQLite in
WAL mode), and ``query`` serves a stored run back without re-mining
anything (:mod:`repro.serve`): one pattern by id, patterns containing a
vertex, patterns whose attribute set matches a filter (``--mode all|any``),
or the materialised top-k-by-ε ranking.  Exactly one of the four lookups
must be chosen per invocation.  ``serve`` keeps the same four lookups up
as a threaded HTTP/JSON server (:mod:`repro.serve.http`) until
interrupted — ``GET /patterns/<id>``, ``/patterns?vertex=`` /
``?attributes=&mode=``, ``/top?k=``, plus ``/runs``, ``/healthz`` and
``/metrics`` — so a store mined once can take concurrent read traffic
while later ``mine --store`` runs append to it.  Its degradation knobs
(``--max-readers``, ``--max-inflight``, ``--request-deadline``,
``--lease-timeout``) bound queueing and shed overload as 503s; on
shutdown, ``--shutdown-timeout`` bounds the drain and exits nonzero
when leases had to be force-closed.  ``verify-store`` runs the
integrity checks of :mod:`repro.store.verify` against a store file and
exits 0 (clean), 1 (corrupt/torn) or 2 (usage error) — the post-crash
triage command.

``update`` is the evolving-graph path (:mod:`repro.graph.evolve` +
:class:`repro.correlation.incremental.IncrementalSCPM`): it streams the
base graph, mines it once, applies edit-script files
(``--edge-edits`` / ``--attribute-edits``, ``add u v`` / ``remove u v``
per line) as one batched delta, re-evaluates only the branches whose
chunk footprint the edits touched, and patches the stored run in place
through :meth:`repro.store.writer.PatternStore.apply_delta` — the
patched run is byte-identical to a full re-mine of the edited graph.
By default the base run is saved first and then patched; ``--run``
patches an existing stored run instead.

``mine --streaming`` swaps the in-memory loader for the bounded-memory
streaming ingest (:mod:`repro.graph.streaming`): the files are folded
straight into the sparse bitset index, so the whole
file → stream → (parallel) scheduler → results path never materialises a
hashed ``AttributedGraph``.  ``--engine``, ``--kernel-backend`` and
``--jobs`` select the vertex-set engine, the search-kernel counter-lane
backend and the worker-process count on either path; the mined output is
byte-identical regardless of loader, engine, kernel backend or job count.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.ranking import render_case_study_table, render_pattern_table
from repro.correlation.naive import NaiveMiner
from repro.correlation.parameters import SCPMParams
from repro.correlation.scpm import SCPM
from repro.datasets.profiles import PROFILES, load_profile
from repro.graph.engine import ENGINES
from repro.graph.io import read_attributed_graph
from repro.graph.statistics import summarize
from repro.graph.streaming import stream_attributed_graph
from repro.quasiclique.kernel import KERNEL_BACKENDS
from repro.quasiclique.search import BFS, DFS


def build_parser() -> argparse.ArgumentParser:
    """Create the argument parser for the ``scpm`` command."""
    parser = argparse.ArgumentParser(
        prog="scpm",
        description="Structural correlation pattern mining for attributed graphs.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    mine = subparsers.add_parser("mine", help="mine a graph read from disk")
    mine.add_argument("--edges", required=True, help="edge-list file (u v per line)")
    mine.add_argument(
        "--attributes", required=True, help="attribute file (vertex attr1 attr2 ...)"
    )
    mine.add_argument(
        "--streaming",
        action="store_true",
        help=(
            "stream the files straight into the sparse bitset index "
            "(bounded memory, no in-memory graph) — results are identical "
            "to the default in-memory loader"
        ),
    )
    _add_mining_arguments(mine)

    update = subparsers.add_parser(
        "update",
        help="incrementally re-mine an evolving graph and patch its stored run",
    )
    update.add_argument(
        "--edges", required=True, help="base edge-list file (u v per line)"
    )
    update.add_argument(
        "--attributes",
        required=True,
        help="base attribute file (vertex attr1 attr2 ...)",
    )
    update.add_argument(
        "--edge-edits",
        default=None,
        help="edge edit script (`add u v` / `remove u v` per line)",
    )
    update.add_argument(
        "--attribute-edits",
        default=None,
        help="attribute edit script (`add v attr` / `remove v attr` per line)",
    )
    update.add_argument(
        "--run",
        type=int,
        default=None,
        help="patch this stored run in place instead of saving the base "
        "mine as a new run first",
    )
    _add_mining_arguments(update)

    demo = subparsers.add_parser("demo", help="mine a built-in synthetic profile")
    demo.add_argument(
        "--profile",
        default="small-dblp",
        choices=sorted(PROFILES),
        help="synthetic dataset profile to generate",
    )
    demo.add_argument(
        "--scale", type=float, default=1.0, help="size multiplier for the profile"
    )
    _add_mining_arguments(demo, required=False)

    query = subparsers.add_parser(
        "query", help="serve lookups from a stored mining run"
    )
    query.add_argument(
        "--store", required=True, help="pattern store written by mine --store"
    )
    query.add_argument(
        "--run",
        type=int,
        default=None,
        help="stored run id (default: the latest run)",
    )
    query.add_argument(
        "--pattern-id", type=int, default=None, help="fetch one pattern by id"
    )
    query.add_argument(
        "--vertex", default=None, help="patterns whose quasi-clique contains "
        "this vertex (int-like tokens are parsed as integers, like the file "
        "grammar)"
    )
    query.add_argument(
        "--attributes",
        nargs="+",
        default=None,
        help="patterns whose attribute set matches these attributes",
    )
    query.add_argument(
        "--mode",
        choices=("all", "any"),
        default=None,
        help="attribute filter mode: all = set contains every attribute "
        "(default), any = at least one; only valid with --attributes",
    )
    query.add_argument(
        "--top-k",
        type=int,
        default=None,
        help="top-k attribute sets by epsilon from the materialised listing",
    )

    serve = subparsers.add_parser(
        "serve", help="serve a pattern store over HTTP (JSON endpoints)"
    )
    serve.add_argument(
        "--store", required=True, help="pattern store written by mine --store"
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface to bind (default: 127.0.0.1)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8765,
        help="TCP port to bind; 0 picks a free ephemeral port "
        "(default: 8765)",
    )
    serve.add_argument(
        "--cache-size",
        type=int,
        default=256,
        help="LRU capacity of each pooled reader (default: 256; "
        "0 disables caching)",
    )
    serve.add_argument(
        "--max-readers",
        type=int,
        default=16,
        help="reader-pool concurrency bound; requests past it wait for "
        "a lease and then get 503 (default: 16; 0 = unbounded)",
    )
    serve.add_argument(
        "--lease-timeout",
        type=float,
        default=5.0,
        help="seconds a request waits for a pooled reader before being "
        "shed with 503 + Retry-After (default: 5.0; 0 = wait forever)",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        help="admission bound on concurrent data requests; excess is "
        "shed immediately with 503 (default: 64; 0 = unbounded; "
        "/healthz and /metrics are always exempt)",
    )
    serve.add_argument(
        "--request-deadline",
        type=float,
        default=30.0,
        help="per-request wall-clock budget in seconds; requests that "
        "cannot start work in time get 503 (default: 30.0; 0 = none)",
    )
    serve.add_argument(
        "--shutdown-timeout",
        type=float,
        default=10.0,
        help="seconds to drain in-flight requests on shutdown before "
        "force-closing leases and exiting nonzero (default: 10.0; "
        "0 = drain without bound)",
    )

    verify = subparsers.add_parser(
        "verify-store",
        help="check a pattern store for corruption (exit 0 clean, 1 corrupt)",
    )
    verify.add_argument(
        "--store", required=True, help="pattern store file to verify"
    )
    verify.add_argument(
        "--quiet",
        action="store_true",
        help="print only the final verdict line",
    )
    return parser


def _add_mining_arguments(
    parser: argparse.ArgumentParser, required: bool = True
) -> None:
    parser.add_argument("--min-support", type=int, required=required, default=None)
    parser.add_argument("--gamma", type=float, default=None)
    parser.add_argument("--min-size", type=int, default=None)
    parser.add_argument("--min-epsilon", type=float, default=None)
    parser.add_argument("--min-delta", type=float, default=None)
    parser.add_argument("--top-k", type=int, default=None)
    parser.add_argument("--min-attribute-set-size", type=int, default=None)
    parser.add_argument("--max-attribute-set-size", type=int, default=None)
    parser.add_argument(
        "--algorithm",
        choices=("scpm", "naive"),
        default="scpm",
        help="mining algorithm (default: scpm)",
    )
    parser.add_argument(
        "--order", choices=(DFS, BFS), default=DFS, help="search order for SCPM"
    )
    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default=None,
        help="vertex-set engine: dense masks, sparse chunked containers, "
        "or auto selection by graph shape (default: auto, or the profile's)",
    )
    parser.add_argument(
        "--kernel-backend",
        choices=KERNEL_BACKENDS,
        default=None,
        help="counter-lane backend of the incremental search kernel: "
        "big-int SWAR lanes, vectorized numpy lanes, or auto selection "
        "by working-set size (default: auto, or the profile's)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for the parallel scheduler "
        "(-1 = all CPUs; default: 1 = sequential, or the profile's)",
    )
    parser.add_argument(
        "--rows", type=int, default=10, help="rows per ranking table (default: 10)"
    )
    parser.add_argument(
        "--show-patterns",
        action="store_true",
        help="also print the individual structural correlation patterns",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="also print the work counters (attribute-set pruning, "
        "coverage-memo hits/misses, incremental-kernel counter updates "
        "and the per-backend search tally)",
    )
    parser.add_argument(
        "--store",
        default=None,
        help="also persist the complete run into this pattern store "
        "(SQLite, WAL; query it later with `scpm query`)",
    )


def _params_from_args(args: argparse.Namespace, defaults: Optional[SCPMParams]) -> SCPMParams:
    """Combine CLI overrides with profile defaults (CLI wins)."""
    def pick(name: str, fallback):
        value = getattr(args, name, None)
        return fallback if value is None else value

    base = defaults or SCPMParams(min_support=1, gamma=0.5, min_size=4)
    return SCPMParams(
        min_support=pick("min_support", base.min_support),
        gamma=pick("gamma", base.gamma),
        min_size=pick("min_size", base.min_size),
        min_epsilon=pick("min_epsilon", base.min_epsilon),
        min_delta=pick("min_delta", base.min_delta),
        top_k=pick("top_k", base.top_k),
        min_attribute_set_size=pick(
            "min_attribute_set_size", base.min_attribute_set_size
        ),
        max_attribute_set_size=pick(
            "max_attribute_set_size", base.max_attribute_set_size
        ),
        order=args.order,
        engine=pick("engine", base.engine),
        kernel_backend=pick("kernel_backend", base.kernel_backend),
        n_jobs=pick("jobs", base.n_jobs),
    )


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``scpm`` command."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "update":
        return _run_update(args, parser)

    if args.command == "query":
        return _run_query(args, parser)

    if args.command == "serve":
        return _run_serve(args)

    if args.command == "verify-store":
        return _run_verify_store(args)

    if args.command == "mine":
        if args.streaming:
            graph = stream_attributed_graph(args.edges, args.attributes)
        else:
            graph = read_attributed_graph(args.edges, args.attributes)
        params = _params_from_args(args, defaults=None)
        title = "input graph"
    else:
        profile = load_profile(args.profile, scale=args.scale)
        graph = profile.build()
        params = _params_from_args(args, defaults=profile.params)
        title = profile.name

    if args.command == "mine" and args.streaming:
        # Streamed handles answer the counters straight off the index; the
        # full summary (components walk) would traverse the whole graph
        # the streaming path deliberately avoids hashing.
        counts = graph
    else:
        counts = summarize(graph)
    print(
        f"graph: {counts.num_vertices} vertices, {counts.num_edges} edges, "
        f"{counts.num_attributes} attributes"
    )
    print(
        f"parameters: sigma_min={params.min_support} gamma={params.gamma} "
        f"min_size={params.min_size} epsilon_min={params.min_epsilon} "
        f"delta_min={params.min_delta} k={params.top_k}"
    )

    miner = (
        SCPM(graph, params)
        if args.algorithm == "scpm"
        else NaiveMiner(graph, params)
    )
    result = miner.mine()
    print(
        f"{result.algorithm}: evaluated {result.counters.attribute_sets_evaluated} "
        f"attribute sets in {result.counters.elapsed_seconds:.2f}s"
    )
    if args.verbose:
        c = result.counters
        if c.attribute_sets_evaluated == 0:
            # Nothing reached min-support: every counter is zero and the
            # kernel/memo block would be noise, so say what happened.
            print("counters: no attribute sets evaluated "
                  "(no attribute reached min-support)")
        else:
            print(
                f"counters: qualified={c.attribute_sets_qualified} "
                f"extended={c.attribute_sets_extended} pruned={c.attribute_sets_pruned}"
            )
            backends = (
                " ".join(
                    f"{label}={count}"
                    for label, count in sorted(c.kernel_backends.items())
                )
                or "none"
            )
            print(
                f"kernel: counter_updates={c.kernel_counter_updates} "
                f"backends[searches]: {backends}  "
                f"coverage memo: hits={c.coverage_memo_hits} "
                f"misses={c.coverage_memo_misses}"
            )
    if args.store:
        from repro.store import save_result

        run_id = save_result(args.store, result, params=params)
        print(
            f"stored run #{run_id} in {args.store} "
            f"({len(result.evaluated)} attribute sets, "
            f"{len(result.patterns)} patterns)"
        )
    print()
    print(render_case_study_table(result, title, n=args.rows))
    if args.show_patterns:
        print()
        print(render_pattern_table(result, title=f"{title} — patterns"))
    return 0


def _run_update(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """The ``scpm update`` subcommand: incremental re-mine + store patch.

    Streams the base graph (the evolvable representation), mines it,
    applies the edit scripts as one batched delta, and patches the
    stored run through ``PatternStore.apply_delta``.  Usage mistakes
    (no edit script, no store, a non-incremental algorithm) exit 2 via
    ``parser.error``; store- and file-level problems print to stderr
    and exit 1.
    """
    from repro.correlation.incremental import IncrementalSCPM
    from repro.errors import ReproError
    from repro.graph.evolve import read_attribute_edits, read_edge_edits
    from repro.store import PatternStore

    if args.store is None:
        parser.error("update requires --store (the run to patch lives there)")
    if args.edge_edits is None and args.attribute_edits is None:
        parser.error(
            "update needs at least one of --edge-edits / --attribute-edits"
        )
    if args.algorithm != "scpm":
        parser.error("update supports only --algorithm scpm")

    try:
        handle = stream_attributed_graph(args.edges, args.attributes)
        params = _params_from_args(args, defaults=None)
        print(
            f"graph: {handle.num_vertices} vertices, {handle.num_edges} "
            f"edges, {handle.num_attributes} attributes"
        )
        miner = IncrementalSCPM(handle, params)
        miner.mine()
        print(
            f"base mine: evaluated "
            f"{miner.result.counters.attribute_sets_evaluated} attribute "
            f"sets in {miner.result.counters.elapsed_seconds:.2f}s"
        )
        edge_edits = (
            read_edge_edits(args.edge_edits) if args.edge_edits else ()
        )
        attribute_edits = (
            read_attribute_edits(args.attribute_edits)
            if args.attribute_edits
            else ()
        )
        with PatternStore(args.store) as store:
            if args.run is None:
                run_id = store.save(miner.result, params=params)
                print(f"stored base run #{run_id} in {args.store}")
            else:
                run_id = args.run
            miner.update(
                edge_edits=edge_edits, attribute_edits=attribute_edits
            )
            store.apply_delta(run_id, miner.result, params=params)
        stats = miner.last_update_stats
        print(
            f"applied {len(edge_edits)} edge edit(s), "
            f"{len(attribute_edits)} attribute edit(s) touching "
            f"{stats.touched_chunks} chunk(s)"
        )
        print(
            f"delta: roots {stats.roots_reused} reused / "
            f"{stats.roots_reevaluated} re-evaluated, branches "
            f"{stats.branches_reused} reused / {stats.branches_rerun} "
            f"rerun, {stats.records_patched} record(s) patched, "
            f"{stats.memo_evicted} memo entr(ies) evicted "
            f"in {stats.elapsed_seconds:.2f}s"
        )
        print(
            f"patched run #{run_id} in {args.store} "
            f"({len(miner.result.evaluated)} attribute sets, "
            f"{len(miner.result.patterns)} patterns)"
        )
    except (ReproError, OSError) as error:
        print(f"scpm update: error: {error}", file=sys.stderr)
        return 1
    return 0


def _run_query(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """The ``scpm query`` subcommand: serve one lookup from a stored run.

    Usage-level mistakes (no lookup chosen, several at once, ``--mode``
    without ``--attributes``) exit 2 through ``parser.error`` like any
    other argparse problem; store-level problems (missing file, unknown
    run or pattern id) print to stderr and exit 1.
    """
    from repro.errors import StoreError
    from repro.graph.io import parse_vertex_token
    from repro.serve import PatternStoreReader

    chosen = [
        name
        for name, value in (
            ("--pattern-id", args.pattern_id),
            ("--vertex", args.vertex),
            ("--attributes", args.attributes),
            ("--top-k", args.top_k),
        )
        if value is not None
    ]
    if len(chosen) != 1:
        parser.error(
            "query needs exactly one of --pattern-id / --vertex / "
            "--attributes / --top-k"
            + (f" (got {', '.join(chosen)})" if chosen else "")
        )
    if args.mode is not None and args.attributes is None:
        parser.error("--mode is only valid together with --attributes")

    try:
        with PatternStoreReader(args.store) as reader:
            if args.pattern_id is not None:
                stored = reader.get_pattern(args.pattern_id)
                print(
                    f"pattern {stored.pattern_id} "
                    f"(run {stored.run_id}, set {stored.set_id}): "
                    f"{stored.pattern}"
                )
            elif args.vertex is not None:
                vertex = parse_vertex_token(args.vertex)
                matches = reader.patterns_with_vertex(vertex)
                if not matches and vertex != args.vertex:
                    # A store mined programmatically may key this vertex
                    # as the raw string; try the unparsed form too.
                    matches = reader.patterns_with_vertex(args.vertex)
                print(f"{len(matches)} pattern(s) contain vertex {args.vertex}")
                for stored in matches:
                    print(f"pattern {stored.pattern_id}: {stored.pattern}")
            elif args.attributes is not None:
                mode = args.mode or "all"
                matches = reader.patterns_with_attributes(
                    args.attributes, mode=mode
                )
                print(
                    f"{len(matches)} pattern(s) match "
                    f"{mode}({', '.join(args.attributes)})"
                )
                for stored in matches:
                    print(f"pattern {stored.pattern_id}: {stored.pattern}")
            else:
                entries = reader.top_k(args.top_k, run_id=args.run)
                print(f"{'rank':>5} {'epsilon':>9} {'support':>8}  label")
                for entry in entries:
                    print(
                        f"{entry.rank:>5} {entry.epsilon:>9.4f} "
                        f"{entry.support:>8}  {entry.label}"
                    )
    except StoreError as error:
        print(f"scpm query: error: {error}", file=sys.stderr)
        return 1
    return 0


def _run_verify_store(args: argparse.Namespace) -> int:
    """The ``scpm verify-store`` subcommand: integrity check, exit 0/1/2.

    Exit 0 when every check passes, 1 when any fails (corrupt, torn,
    wrong schema version, not a store), 2 for usage errors (the path is
    a directory or unreadable at the OS level).
    """
    from repro.store.verify import verify_store

    try:
        report = verify_store(args.store)
    except OSError as error:
        print(f"scpm verify-store: error: {error}", file=sys.stderr)
        return 2
    lines = report.lines()
    if args.quiet:
        lines = lines[-1:]
    stream = sys.stdout if report.ok else sys.stderr
    for line in lines:
        print(line, file=stream)
    return 0 if report.ok else 1


def _run_serve(args: argparse.Namespace) -> int:
    """The ``scpm serve`` subcommand: HTTP serving until interrupted.

    Store-level problems (missing file, not a store) and bind failures
    (port in use, bad interface) print to stderr and exit 1; Ctrl-C
    shuts down gracefully — in-flight requests drain, readers close —
    and exits 0.  When the drain outlives ``--shutdown-timeout``, leases
    are force-closed (stuck queries interrupted) and the exit code is 1:
    a supervisor can tell a clean drain from an abandoned one.
    """
    from repro.errors import StoreError
    from repro.serve.http import create_server

    def unbounded(value):  # CLI convention: 0 (or less) = no limit
        return None if value is None or value <= 0 else value

    try:
        server = create_server(
            args.store,
            host=args.host,
            port=args.port,
            cache_size=args.cache_size,
            max_readers=unbounded(args.max_readers),
            lease_timeout=unbounded(args.lease_timeout),
            max_inflight=unbounded(args.max_inflight),
            request_deadline=unbounded(args.request_deadline),
        )
    except StoreError as error:
        print(f"scpm serve: error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(
            f"scpm serve: error: cannot bind {args.host}:{args.port}: {error}",
            file=sys.stderr,
        )
        return 1
    print(f"serving pattern store {args.store} on {server.url}")
    print("endpoints: /patterns/<id>  /patterns?vertex=|attributes=&mode=  "
          "/top?k=  /runs  /healthz  /metrics")
    clean = True
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down (draining in-flight requests) ...")
    finally:
        clean = server.stop(timeout=unbounded(args.shutdown_timeout))
    if not clean:
        print(
            "scpm serve: shutdown timeout exceeded — force-closed "
            "in-flight leases",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

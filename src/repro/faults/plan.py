"""Seeded, deterministic fault injection for the mining/store/serve stack.

Production code is threaded with named **fault points** — cheap no-op
calls like ``fault_point("store.writer.commit")`` at the places where
real systems fail: task execution inside a scheduler worker
(``parallel.scheduler.task``), each step of the store writer's
transaction (``store.writer.*``), the reader's snapshot entry
(``serve.reader.query``), reader-pool checkout (``serve.pool.checkout``)
and the HTTP handler (``serve.http.handler``).  A test installs a
:class:`FaultPlan` — a list of :class:`FaultRule` keyed by **site name +
occurrence index** — and the plan decides, deterministically, which
firing of which site raises an injected error, kills the process, or
sleeps:

    plan = FaultPlan([
        FaultRule("store.writer.begin", "raise", occurrences=(0,),
                  error="locked"),
        FaultRule("parallel.scheduler.task", "kill", occurrences=(0, 1)),
        FaultRule("serve.http.handler", "delay", seconds=0.5),
    ], state_dir=tmp_path)
    with installed(plan):
        ...

Determinism model
    Occurrence indices count the firings of each *site* (0-based), so a
    rule like "``raise`` on occurrences ``(0, 1)``" is a transient fault
    that heals after two hits — exactly what retry/recovery paths need to
    be provable.  Counters live in memory by default; with ``state_dir``
    set they are claimed by atomically creating ``<site-hash>.<n>``
    marker files, which makes the numbering *shared across processes* —
    a worker killed at occurrence 0 is replaced by a worker that observes
    occurrence 1, so "kill the first two task executions, then succeed"
    means what it says even across pool rebuilds.  Only sites that have
    at least one rule consume occurrence numbers.

Cross-process activation
    :func:`install` sets a module global (inherited by forked workers)
    and, when the plan has a ``state_dir``, also serialises the plan to
    ``<state_dir>/plan.json`` and points the ``REPRO_FAULT_PLAN``
    environment variable at it — spawned workers and subprocesses load
    it lazily on their first :func:`fault_point` call.

With no plan installed, a fault point is one global read and a return;
the sites stay enabled in production builds at zero measurable cost.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Tuple, Union

from repro.errors import FaultInjectionError, StoreError

PathLike = Union[str, Path]

#: Environment variable naming the JSON file of the active plan.
ENV_PLAN = "REPRO_FAULT_PLAN"

#: Exit status used by the ``kill`` action (distinctive, so tests can
#: tell an injected kill from an ordinary crash).
KILL_EXIT_CODE = 87

ACTIONS = ("raise", "kill", "delay")

#: Error kinds the ``raise`` action can inject, chosen to match the
#: failures the production paths actually handle.
ERROR_KINDS = ("io", "locked", "busy", "store", "runtime")


def _make_error(kind: str, message: str) -> BaseException:
    if kind == "io":
        return OSError(message)
    if kind == "locked":
        return sqlite3.OperationalError(message or "database is locked")
    if kind == "busy":
        return sqlite3.OperationalError(message or "database is busy")
    if kind == "store":
        return StoreError(message)
    return RuntimeError(message)


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: *where*, *when*, and *what*.

    Parameters
    ----------
    site:
        Exact fault-site name the rule arms.
    action:
        ``"raise"`` (inject an exception of kind :attr:`error`),
        ``"kill"`` (``os._exit`` the current process — a worker crash),
        or ``"delay"`` (sleep :attr:`seconds` — a slow/stuck handler).
    occurrences:
        0-based firing indices of the site this rule matches; ``None``
        matches every firing (a *permanent* fault — for ``kill`` that is
        a poison task).
    key:
        When set, the rule additionally requires ``str(key)`` of the
        firing to equal this text (e.g. one specific scheduler task key).
    error:
        For ``raise``: one of :data:`ERROR_KINDS`.
    seconds:
        For ``delay``: sleep duration.
    message:
        Optional message of the injected exception.
    """

    site: str
    action: str
    occurrences: Optional[Tuple[int, ...]] = None
    key: Optional[str] = None
    error: str = "io"
    seconds: float = 0.0
    message: str = ""

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise FaultInjectionError(
                f"unknown fault action {self.action!r} (expected one of "
                f"{ACTIONS})"
            )
        if self.action == "raise" and self.error not in ERROR_KINDS:
            raise FaultInjectionError(
                f"unknown fault error kind {self.error!r} (expected one of "
                f"{ERROR_KINDS})"
            )
        if self.occurrences is not None:
            object.__setattr__(
                self, "occurrences", tuple(int(n) for n in self.occurrences)
            )

    def matches(self, site: str, key_text: Optional[str], occurrence: int) -> bool:
        return (
            self.site == site
            and (self.key is None or self.key == key_text)
            and (self.occurrences is None or occurrence in self.occurrences)
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "site": self.site,
            "action": self.action,
            "occurrences": (
                None if self.occurrences is None else list(self.occurrences)
            ),
            "key": self.key,
            "error": self.error,
            "seconds": self.seconds,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultRule":
        occurrences = data.get("occurrences")
        return cls(
            site=data["site"],
            action=data["action"],
            occurrences=None if occurrences is None else tuple(occurrences),
            key=data.get("key"),
            error=data.get("error", "io"),
            seconds=float(data.get("seconds", 0.0)),
            message=data.get("message", ""),
        )


class FaultPlan:
    """A set of :class:`FaultRule` plus the occurrence bookkeeping.

    With ``state_dir=None`` occurrence counters are process-local (a
    dict under a lock) — right for single-process store/serve tests.
    With a ``state_dir`` they are claimed through atomic
    ``O_CREAT | O_EXCL`` marker files, so every process sharing the
    directory observes one global, gap-free numbering per site — right
    for worker-kill tests where the firing processes keep dying.
    """

    def __init__(
        self,
        rules: Sequence[FaultRule],
        state_dir: Optional[PathLike] = None,
    ) -> None:
        self.rules: Tuple[FaultRule, ...] = tuple(rules)
        self.state_dir = None if state_dir is None else Path(state_dir)
        self._sites = frozenset(rule.site for rule in self.rules)
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {}
        if self.state_dir is not None:
            self.state_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # occurrence counting
    # ------------------------------------------------------------------
    @staticmethod
    def _site_digest(site: str) -> str:
        return hashlib.sha1(site.encode("utf-8")).hexdigest()[:16]

    def _next_occurrence(self, site: str) -> int:
        if self.state_dir is None:
            with self._lock:
                occurrence = self._counts.get(site, 0)
                self._counts[site] = occurrence + 1
                return occurrence
        digest = self._site_digest(site)
        occurrence = 0
        while True:
            marker = self.state_dir / f"{digest}.{occurrence}"
            try:
                handle = os.open(
                    str(marker), os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
            except FileExistsError:
                occurrence += 1
                continue
            os.close(handle)
            return occurrence

    def occurrences_fired(self, site: str) -> int:
        """How many times ``site`` has fired so far (all processes)."""
        if self.state_dir is None:
            with self._lock:
                return self._counts.get(site, 0)
        digest = self._site_digest(site)
        return len(list(self.state_dir.glob(f"{digest}.*")))

    # ------------------------------------------------------------------
    # firing
    # ------------------------------------------------------------------
    def fire(self, site: str, key: Any = None) -> None:
        """Evaluate one fault-point firing; executes the matching rule."""
        if site not in self._sites:
            return  # unarmed sites never consume occurrence numbers
        occurrence = self._next_occurrence(site)
        key_text = None if key is None else str(key)
        for rule in self.rules:
            if rule.matches(site, key_text, occurrence):
                self._execute(rule, site, occurrence)
                return

    @staticmethod
    def _execute(rule: FaultRule, site: str, occurrence: int) -> None:
        if rule.action == "delay":
            time.sleep(rule.seconds)
            return
        if rule.action == "kill":
            # A hard worker death: no atexit hooks, no finally blocks —
            # the same observable the pool sees for SIGKILL/segfault.
            os._exit(KILL_EXIT_CODE)
        message = rule.message or (
            f"injected {rule.error} fault at {site}[{occurrence}]"
        )
        raise _make_error(rule.error, message)

    # ------------------------------------------------------------------
    # serialisation (cross-process activation)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "rules": [rule.to_dict() for rule in self.rules],
            "state_dir": None if self.state_dir is None else str(self.state_dir),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        return cls(
            rules=[FaultRule.from_dict(item) for item in data["rules"]],
            state_dir=data.get("state_dir"),
        )

    def save(self, path: PathLike) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2))
        return path

    @classmethod
    def load(cls, path: PathLike) -> "FaultPlan":
        try:
            return cls.from_dict(json.loads(Path(path).read_text()))
        except (OSError, ValueError, KeyError) as error:
            raise FaultInjectionError(
                f"cannot load fault plan from {str(path)!r}: {error}"
            ) from error


# ----------------------------------------------------------------------
# process-wide activation
# ----------------------------------------------------------------------
_ACTIVE: Optional[FaultPlan] = None
_ENV_PATH: Optional[str] = None
_ENV_PLAN_CACHE: Optional[FaultPlan] = None


def _plan_from_env() -> Optional[FaultPlan]:
    global _ENV_PATH, _ENV_PLAN_CACHE
    path = os.environ.get(ENV_PLAN)
    if not path:
        _ENV_PATH = None
        _ENV_PLAN_CACHE = None
        return None
    if path != _ENV_PATH:
        _ENV_PATH = path
        _ENV_PLAN_CACHE = FaultPlan.load(path)
    return _ENV_PLAN_CACHE


def active_plan() -> Optional[FaultPlan]:
    """The plan consulted by :func:`fault_point`, if any."""
    return _ACTIVE if _ACTIVE is not None else _plan_from_env()


def fault_point(site: str, key: Any = None) -> None:
    """Named injection site; a no-op unless an installed plan arms it."""
    plan = _ACTIVE
    if plan is None:
        plan = _plan_from_env()
        if plan is None:
            return
    plan.fire(site, key)


def install(plan: FaultPlan) -> FaultPlan:
    """Activate ``plan`` process-wide (and for children, via the env).

    Forked workers inherit the module global directly; spawned workers
    and subprocesses pick the plan up through ``REPRO_FAULT_PLAN``, which
    requires the plan to have a ``state_dir`` to serialise into.
    """
    global _ACTIVE
    _ACTIVE = plan
    if plan.state_dir is not None:
        path = plan.save(plan.state_dir / "plan.json")
        os.environ[ENV_PLAN] = str(path)
    return plan


def uninstall() -> None:
    """Deactivate fault injection (idempotent)."""
    global _ACTIVE, _ENV_PATH, _ENV_PLAN_CACHE
    _ACTIVE = None
    _ENV_PATH = None
    _ENV_PLAN_CACHE = None
    os.environ.pop(ENV_PLAN, None)


class installed:
    """Context manager form of :func:`install`/:func:`uninstall`."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan

    def __enter__(self) -> FaultPlan:
        return install(self.plan)

    def __exit__(self, *exc_info) -> None:
        uninstall()


__all__ = [
    "ACTIONS",
    "ENV_PLAN",
    "ERROR_KINDS",
    "KILL_EXIT_CODE",
    "FaultPlan",
    "FaultRule",
    "active_plan",
    "fault_point",
    "install",
    "installed",
    "uninstall",
]

"""Deterministic fault injection and the shared retry/backoff policy.

The robustness toolkit of the repo: every layer that PRs 3–7 built under
the assumption that nothing fails — the work-stealing scheduler, the WAL
pattern store, the reader pool, the HTTP front end — is threaded with
named **fault points** from :mod:`repro.faults.plan`, and the chaos
suites (``tests/faults/``, ``benchmarks/bench_chaos.py``) install seeded
:class:`FaultPlan` instances that kill workers, inject
``database is locked``/IO errors, and stall handlers at exact,
replayable occurrence indices.  :mod:`repro.faults.retry` is the one
exponential-backoff-with-deterministic-jitter implementation those
layers share to survive the *transient* subset of what the plans inject.

Fault sites currently armed across the stack:

========================== ==================================================
``parallel.scheduler.task``  before each task body in a pool worker
``store.writer.begin``       before the save transaction's ``BEGIN IMMEDIATE``
``store.writer.run_row``     after the run header insert
``store.writer.set_row``     after each attribute-set insert
``store.writer.pattern_row`` after each pattern insert
``store.writer.listing``     after the materialised ε-listing insert
``store.writer.commit``      immediately before ``COMMIT``
``store.writer.post_commit`` immediately after ``COMMIT``
``serve.reader.query``       at each snapshot-read entry
``serve.pool.checkout``      at each reader-pool checkout
``serve.http.handler``       at HTTP handler entry, keyed by endpoint
========================== ==================================================

With no plan installed every site is a single global read — the hooks
stay compiled into production paths at no measurable cost.
"""

from repro.faults.plan import (
    ENV_PLAN,
    KILL_EXIT_CODE,
    FaultPlan,
    FaultRule,
    active_plan,
    fault_point,
    install,
    installed,
    uninstall,
)
from repro.faults.retry import (
    READ_RETRY_POLICY,
    WRITE_RETRY_POLICY,
    RetryPolicy,
    call_with_retry,
    is_transient_operational_error,
)

__all__ = [
    "ENV_PLAN",
    "KILL_EXIT_CODE",
    "FaultPlan",
    "FaultRule",
    "READ_RETRY_POLICY",
    "RetryPolicy",
    "WRITE_RETRY_POLICY",
    "active_plan",
    "call_with_retry",
    "fault_point",
    "install",
    "installed",
    "is_transient_operational_error",
    "uninstall",
]

"""Exponential backoff with deterministic jitter — the shared retry policy.

One retry implementation for every layer that faces *transient* failures:
the store writer retries ``BEGIN IMMEDIATE`` collisions, the store reader
retries ``database is locked`` snapshots (so a lock blip becomes a short
stall instead of an HTTP 500), and tests drive both through injected
faults (:mod:`repro.faults.plan`).

Two properties matter more than cleverness here:

* **Bounded**: at most ``max_attempts`` calls, with delays capped at
  ``max_delay`` — a retry loop must never become the hang it was meant to
  prevent.
* **Deterministic**: jitter comes from a :class:`random.Random` seeded by
  the policy, so a failing test replays with the exact same delays.  The
  jitter still does its real job (decorrelating concurrent retriers —
  give each retrier its own seed).

Only exceptions accepted by the ``retry_on`` predicate are retried;
everything else propagates immediately, and the last attempt always
propagates.  :func:`is_transient_operational_error` is the predicate the
SQLite paths share: ``sqlite3.OperationalError`` whose message says
locked/busy — the two shapes WAL contention actually produces — and
nothing else (a corrupt store must fail loudly, not loop).
"""

from __future__ import annotations

import random
import sqlite3
import time
from dataclasses import dataclass
from typing import Any, Callable, List, Optional

#: Message fragments that identify SQLITE_BUSY/SQLITE_LOCKED conditions.
_TRANSIENT_TOKENS = ("locked", "busy")


def is_transient_operational_error(error: BaseException) -> bool:
    """True for lock/busy ``sqlite3.OperationalError`` — and nothing else."""
    if not isinstance(error, sqlite3.OperationalError):
        return False
    message = str(error).lower()
    return any(token in message for token in _TRANSIENT_TOKENS)


@dataclass(frozen=True)
class RetryPolicy:
    """Shape of one backoff schedule (attempt count, delays, jitter).

    ``delay(n)`` for retry ``n`` (0-based) is
    ``min(base_delay * multiplier**n, max_delay)`` scaled by a random
    factor in ``[1 - jitter, 1]`` drawn from ``Random(seed)`` — fully
    deterministic for a given policy.
    """

    max_attempts: int = 5
    base_delay: float = 0.01
    multiplier: float = 2.0
    max_delay: float = 0.5
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def delays(self) -> List[float]:
        """The deterministic delay sequence (``max_attempts - 1`` entries)."""
        rng = random.Random(self.seed)
        delays = []
        delay = self.base_delay
        for _ in range(self.max_attempts - 1):
            capped = min(delay, self.max_delay)
            delays.append(capped * (1.0 - self.jitter * rng.random()))
            delay *= self.multiplier
        return delays


#: Policy of the store writer: lock collisions on a busy store are worth
#: waiting out — a failed save throws away a whole mining run.
WRITE_RETRY_POLICY = RetryPolicy(
    max_attempts=5, base_delay=0.05, multiplier=2.0, max_delay=1.0
)

#: Policy of the store reader: requests have deadlines, so the total
#: worst-case stall is kept well under a second.
READ_RETRY_POLICY = RetryPolicy(
    max_attempts=4, base_delay=0.01, multiplier=2.0, max_delay=0.25
)


def call_with_retry(
    fn: Callable[[], Any],
    policy: RetryPolicy = RetryPolicy(),
    retry_on: Callable[[BaseException], bool] = is_transient_operational_error,
    on_retry: Optional[Callable[[BaseException, int, float], None]] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> Any:
    """Call ``fn`` under ``policy``; retry while ``retry_on`` accepts.

    ``on_retry(error, attempt, delay)`` is invoked before each backoff
    sleep (``attempt`` is the 1-based attempt that just failed) — the
    metrics hook.  ``sleep`` is injectable for tests.
    """
    rng = random.Random(policy.seed)
    delay = policy.base_delay
    attempt = 0
    while True:
        attempt += 1
        try:
            return fn()
        except BaseException as error:
            if attempt >= policy.max_attempts or not retry_on(error):
                raise
            pause = min(delay, policy.max_delay)
            pause *= 1.0 - policy.jitter * rng.random()
            if on_retry is not None:
                on_retry(error, attempt, pause)
            sleep(pause)
            delay *= policy.multiplier


__all__ = [
    "READ_RETRY_POLICY",
    "RetryPolicy",
    "WRITE_RETRY_POLICY",
    "call_with_retry",
    "is_transient_operational_error",
]

"""Reader pool of the HTTP serving tier — one leased reader per thread.

SQLite connections are thread-affine in practice (one statement stream,
one transaction state), so the threaded HTTP server cannot share a
single :class:`~repro.serve.reader.PatternStoreReader` across handler
threads.  Opening a fresh reader per request would work but throws away
the per-reader LRU exactly when it matters — a hot pattern would be
deserialized again on every request.

:class:`ReaderPool` sits in between: readers are created on demand,
**leased** to one thread at a time (so no two threads ever touch the
same connection concurrently), and parked in a LIFO free list on
release so the most recently warmed LRU is handed out first.  The pool
never holds more readers than the peak number of concurrent leases —
with ``http.server.ThreadingHTTPServer`` that is the peak number of
in-flight requests, i.e. effectively one reader per busy worker thread.

The pool also owns the aggregate view the ``/metrics`` endpoint
reports: :meth:`cache_stats` sums hit/miss counters across every reader
ever created (leased or parked), which is the pool-wide cache hit
ratio, and :meth:`close` drains the whole population — the graceful-
shutdown path of :class:`~repro.serve.http.PatternStoreServer` calls it
after the in-flight requests have finished.

Degradation contract (the chaos suite's half of the story): with
``max_readers`` set the pool is a hard concurrency bound — checkouts
past capacity *wait* on a condition variable up to the lease timeout and
then raise :class:`~repro.errors.PoolExhaustedError`, which the HTTP
layer maps to ``503 Retry-After`` instead of piling more threads onto a
saturated store.  :meth:`stats` reports the wait/exhaustion counters,
and :meth:`force_close` is the past-deadline shutdown hammer: it
interrupts every leased reader mid-query so stuck handler threads
unblock, where :meth:`close` would wait for them politely.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from pathlib import Path
from time import monotonic
from typing import Dict, Iterator, List, Optional, Union

from repro.errors import PoolExhaustedError, StoreError
from repro.faults import fault_point
from repro.serve.reader import PatternStoreReader

PathLike = Union[str, Path]


class ReaderPool:
    """Bounded-by-concurrency pool of :class:`PatternStoreReader`.

    Usage::

        pool = ReaderPool("patterns.sqlite")
        with pool.lease() as reader:
            reader.top_k(5)
        ...
        pool.close()

    Leasing from a closed pool raises :class:`~repro.errors.StoreError`;
    a reader returned to a closed pool is closed on the spot instead of
    being parked (covers requests still in flight when shutdown starts).

    ``max_readers=None`` (the default) keeps the historical unbounded
    behaviour; with a bound, checkouts past capacity wait up to
    ``timeout`` (or ``lease_timeout``, the pool default) and then raise
    :class:`~repro.errors.PoolExhaustedError`.
    """

    def __init__(
        self,
        path: PathLike,
        cache_size: int = 256,
        max_readers: Optional[int] = None,
        lease_timeout: Optional[float] = None,
    ) -> None:
        if max_readers is not None and max_readers < 1:
            raise ValueError(f"max_readers must be >= 1, got {max_readers}")
        self.path = Path(path)
        self.cache_size = cache_size
        self.max_readers = max_readers
        self.lease_timeout = lease_timeout
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._free: List[PatternStoreReader] = []
        self._all: List[PatternStoreReader] = []
        self._closed = False
        self._peak_leases = 0
        self._active_leases = 0
        self._lease_waits = 0
        self._lease_wait_seconds = 0.0
        self._exhausted = 0

    # ------------------------------------------------------------------
    # leasing
    # ------------------------------------------------------------------
    @contextmanager
    def lease(
        self, timeout: Optional[float] = None
    ) -> Iterator[PatternStoreReader]:
        """Borrow a reader for the current thread, then park it again.

        ``timeout`` bounds the wait for a free slot when the pool is at
        ``max_readers`` (``None`` falls back to the pool's
        ``lease_timeout``; both ``None`` waits indefinitely).
        """
        reader = self._checkout(timeout)
        try:
            yield reader
        finally:
            self._checkin(reader)

    def _checkout(self, timeout: Optional[float] = None) -> PatternStoreReader:
        fault_point("serve.pool.checkout")
        if timeout is None:
            timeout = self.lease_timeout
        with self._available:
            if self._closed:
                raise StoreError("reader pool is closed")
            if (
                self.max_readers is not None
                and self._active_leases >= self.max_readers
            ):
                self._wait_for_slot(timeout)
            self._active_leases += 1
            self._peak_leases = max(self._peak_leases, self._active_leases)
            if self._free:
                return self._free.pop()
        # Opening the store happens outside the lock (it does real I/O).
        try:
            reader = PatternStoreReader(self.path, cache_size=self.cache_size)
        except BaseException:
            self._release_slot()
            raise
        with self._available:
            if self._closed:
                self._release_slot_locked()
                reader.close()
                raise StoreError("reader pool is closed")
            self._all.append(reader)
        return reader

    def _wait_for_slot(self, timeout: Optional[float]) -> None:
        """Block (under the lock) until a lease frees up or time runs out."""
        self._lease_waits += 1
        started = monotonic()
        deadline = None if timeout is None else started + timeout
        try:
            while (
                not self._closed
                and self._active_leases >= self.max_readers
            ):
                remaining = (
                    None if deadline is None else deadline - monotonic()
                )
                if remaining is not None and remaining <= 0:
                    self._exhausted += 1
                    raise PoolExhaustedError(
                        f"no reader lease free after {timeout:.3f}s "
                        f"(max_readers={self.max_readers}, "
                        f"active={self._active_leases})"
                    )
                self._available.wait(remaining)
        finally:
            self._lease_wait_seconds += monotonic() - started
        if self._closed:
            raise StoreError("reader pool is closed")

    def _release_slot(self) -> None:
        with self._available:
            self._release_slot_locked()

    def _release_slot_locked(self) -> None:
        self._active_leases -= 1
        self._available.notify()

    def _checkin(self, reader: PatternStoreReader) -> None:
        with self._available:
            self._release_slot_locked()
            if not self._closed:
                self._free.append(reader)
                return
        reader.close()  # pool shut down while this lease was out

    # ------------------------------------------------------------------
    # aggregate view / lifecycle
    # ------------------------------------------------------------------
    @property
    def num_readers(self) -> int:
        """Readers currently alive (parked + leased)."""
        with self._lock:
            return len(self._all)

    @property
    def peak_leases(self) -> int:
        """Most readers ever leased at once (= peak request concurrency)."""
        with self._lock:
            return self._peak_leases

    def cache_stats(self) -> Dict[str, float]:
        """Hit/miss totals and hit ratio aggregated across the pool."""
        with self._lock:
            readers = list(self._all)
            num_readers = len(readers)
        hits = misses = entries = 0
        for reader in readers:
            stats = reader.cache.stats()
            hits += stats["hits"]
            misses += stats["misses"]
            entries += stats["entries"]
        lookups = hits + misses
        return {
            "readers": num_readers,
            "hits": hits,
            "misses": misses,
            "entries": entries,
            "hit_ratio": (hits / lookups) if lookups else 0.0,
        }

    def stats(self) -> Dict[str, float]:
        """Degradation counters for ``/metrics``: waits, sheds, retries."""
        with self._lock:
            readers = list(self._all)
            out = {
                "max_readers": self.max_readers,
                "active_leases": self._active_leases,
                "peak_leases": self._peak_leases,
                "lease_waits": self._lease_waits,
                "lease_wait_seconds": self._lease_wait_seconds,
                "exhausted": self._exhausted,
            }
        out["reader_retries"] = sum(reader.retries for reader in readers)
        return out

    def close(self) -> None:
        """Close every parked reader and refuse new leases (idempotent).

        Readers still leased are closed by their ``_checkin``; callers
        coordinating shutdown should drain in-flight work first (the
        HTTP server joins its handler threads before calling this).
        """
        with self._available:
            self._closed = True
            to_close = list(self._free)
            self._free.clear()
            self._available.notify_all()  # fail waiting checkouts now
        for reader in to_close:
            reader.close()

    def force_close(self) -> None:
        """Close *now*: interrupt leased readers instead of waiting.

        The past-deadline half of shutdown: every leased reader gets
        :meth:`~repro.serve.reader.PatternStoreReader.interrupt`, so a
        handler thread blocked inside a query unblocks with
        ``OperationalError: interrupted`` and returns its lease, at
        which point ``_checkin`` closes it (the pool is marked closed
        first).  Idempotent, and a plain :meth:`close` on an already
        force-closed pool is a no-op.
        """
        with self._available:
            self._closed = True
            free = list(self._free)
            self._free.clear()
            leased = [
                reader for reader in self._all if reader not in free
            ]
            self._available.notify_all()
        for reader in leased:
            reader.interrupt()
        for reader in free:
            reader.close()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def __enter__(self) -> "ReaderPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

"""Reader pool of the HTTP serving tier — one leased reader per thread.

SQLite connections are thread-affine in practice (one statement stream,
one transaction state), so the threaded HTTP server cannot share a
single :class:`~repro.serve.reader.PatternStoreReader` across handler
threads.  Opening a fresh reader per request would work but throws away
the per-reader LRU exactly when it matters — a hot pattern would be
deserialized again on every request.

:class:`ReaderPool` sits in between: readers are created on demand,
**leased** to one thread at a time (so no two threads ever touch the
same connection concurrently), and parked in a LIFO free list on
release so the most recently warmed LRU is handed out first.  The pool
never holds more readers than the peak number of concurrent leases —
with ``http.server.ThreadingHTTPServer`` that is the peak number of
in-flight requests, i.e. effectively one reader per busy worker thread.

The pool also owns the aggregate view the ``/metrics`` endpoint
reports: :meth:`cache_stats` sums hit/miss counters across every reader
ever created (leased or parked), which is the pool-wide cache hit
ratio, and :meth:`close` drains the whole population — the graceful-
shutdown path of :class:`~repro.serve.http.PatternStoreServer` calls it
after the in-flight requests have finished.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, List, Union

from repro.errors import StoreError
from repro.serve.reader import PatternStoreReader

PathLike = Union[str, Path]


class ReaderPool:
    """Bounded-by-concurrency pool of :class:`PatternStoreReader`.

    Usage::

        pool = ReaderPool("patterns.sqlite")
        with pool.lease() as reader:
            reader.top_k(5)
        ...
        pool.close()

    Leasing from a closed pool raises :class:`~repro.errors.StoreError`;
    a reader returned to a closed pool is closed on the spot instead of
    being parked (covers requests still in flight when shutdown starts).
    """

    def __init__(self, path: PathLike, cache_size: int = 256) -> None:
        self.path = Path(path)
        self.cache_size = cache_size
        self._lock = threading.Lock()
        self._free: List[PatternStoreReader] = []
        self._all: List[PatternStoreReader] = []
        self._closed = False
        self._peak_leases = 0
        self._active_leases = 0

    # ------------------------------------------------------------------
    # leasing
    # ------------------------------------------------------------------
    @contextmanager
    def lease(self) -> Iterator[PatternStoreReader]:
        """Borrow a reader for the current thread, then park it again."""
        reader = self._checkout()
        try:
            yield reader
        finally:
            self._checkin(reader)

    def _checkout(self) -> PatternStoreReader:
        with self._lock:
            if self._closed:
                raise StoreError("reader pool is closed")
            self._active_leases += 1
            self._peak_leases = max(self._peak_leases, self._active_leases)
            if self._free:
                return self._free.pop()
        # Opening the store happens outside the lock (it does real I/O).
        reader = PatternStoreReader(self.path, cache_size=self.cache_size)
        with self._lock:
            if self._closed:
                self._active_leases -= 1
                reader.close()
                raise StoreError("reader pool is closed")
            self._all.append(reader)
        return reader

    def _checkin(self, reader: PatternStoreReader) -> None:
        with self._lock:
            self._active_leases -= 1
            if not self._closed:
                self._free.append(reader)
                return
        reader.close()  # pool shut down while this lease was out

    # ------------------------------------------------------------------
    # aggregate view / lifecycle
    # ------------------------------------------------------------------
    @property
    def num_readers(self) -> int:
        """Readers currently alive (parked + leased)."""
        with self._lock:
            return len(self._all)

    @property
    def peak_leases(self) -> int:
        """Most readers ever leased at once (= peak request concurrency)."""
        with self._lock:
            return self._peak_leases

    def cache_stats(self) -> Dict[str, float]:
        """Hit/miss totals and hit ratio aggregated across the pool."""
        with self._lock:
            readers = list(self._all)
            num_readers = len(readers)
        hits = misses = entries = 0
        for reader in readers:
            stats = reader.cache.stats()
            hits += stats["hits"]
            misses += stats["misses"]
            entries += stats["entries"]
        lookups = hits + misses
        return {
            "readers": num_readers,
            "hits": hits,
            "misses": misses,
            "entries": entries,
            "hit_ratio": (hits / lookups) if lookups else 0.0,
        }

    def close(self) -> None:
        """Close every parked reader and refuse new leases (idempotent).

        Readers still leased are closed by their ``_checkin``; callers
        coordinating shutdown should drain in-flight work first (the
        HTTP server joins its handler threads before calling this).
        """
        with self._lock:
            self._closed = True
            to_close = list(self._free)
            self._free.clear()
        for reader in to_close:
            reader.close()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def __enter__(self) -> "ReaderPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

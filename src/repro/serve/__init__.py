"""Query serving layer — the read half of mine-once / serve-many.

Serves pattern stores written by :mod:`repro.store` to concurrent
readers: :class:`~repro.serve.reader.PatternStoreReader` is the Python
API (point lookups, vertex/attribute filters, the materialised top-k-
by-ε ranking, full lossless :class:`~repro.correlation.patterns.MiningResult`
reconstruction), with a per-reader
:class:`~repro.serve.cache.LRUCache` keeping hot deserialized patterns
in memory.  The ``scpm query`` CLI subcommand
(:mod:`repro.cli.main`) fronts the same four lookups from the shell.

WAL mode means any number of these readers run against a store while
``scpm mine --store`` appends the next run — no locks, no partial runs
(``tests/store/test_concurrency.py``,
``benchmarks/bench_pattern_store.py``).
"""

from repro.serve.cache import LRUCache
from repro.serve.reader import (
    ListingEntry,
    PatternStoreReader,
    RunInfo,
    StoredPattern,
)

__all__ = [
    "PatternStoreReader",
    "StoredPattern",
    "ListingEntry",
    "RunInfo",
    "LRUCache",
]

"""Query serving layer — the read half of mine-once / serve-many.

Serves pattern stores written by :mod:`repro.store` to concurrent
readers: :class:`~repro.serve.reader.PatternStoreReader` is the Python
API (point lookups, vertex/attribute filters, the materialised top-k-
by-ε ranking, full lossless :class:`~repro.correlation.patterns.MiningResult`
reconstruction), with a per-reader
:class:`~repro.serve.cache.LRUCache` keeping hot deserialized patterns
in memory.  Two front ends share that API: the ``scpm query`` CLI
subcommand (:mod:`repro.cli.main`) for one-shot lookups from the shell,
and the ``scpm serve`` threaded HTTP/JSON server
(:mod:`repro.serve.http`) that keeps a whole
:class:`~repro.serve.pool.ReaderPool` of warm readers — one leased per
in-flight request — and reports per-endpoint request/latency counters
plus pool-wide cache hit ratios through ``/metrics``
(:mod:`repro.serve.metrics`).

WAL mode means any number of these readers run against a store while
``scpm mine --store`` appends the next run — no locks, no partial runs
(``tests/store/test_concurrency.py``,
``benchmarks/bench_pattern_store.py``,
``benchmarks/bench_http_serve.py``).
"""

from repro.serve.cache import LRUCache
from repro.serve.metrics import LatencyHistogram, ServingMetrics
from repro.serve.pool import ReaderPool
from repro.serve.reader import (
    ListingEntry,
    PatternStoreReader,
    RunInfo,
    StoredPattern,
)
from repro.serve.http import PatternStoreServer, create_server

__all__ = [
    "PatternStoreReader",
    "StoredPattern",
    "ListingEntry",
    "RunInfo",
    "LRUCache",
    "ReaderPool",
    "ServingMetrics",
    "LatencyHistogram",
    "PatternStoreServer",
    "create_server",
]

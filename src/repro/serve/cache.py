"""A small instrumented LRU cache for hot deserialized patterns.

``functools.lru_cache`` memoizes per-function, not per-store, and hides
its eviction policy behind an opaque wrapper; the serving layer instead
uses this explicit ``OrderedDict``-based cache so each
:class:`~repro.serve.reader.PatternStoreReader` owns its own bounded
working set and the benchmarks can read hit/miss counters directly
(cold-vs-warm lookup rows in ``benchmarks/bench_pattern_store.py``).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, Optional

_MISSING = object()


class LRUCache:
    """Bounded mapping with least-recently-used eviction.

    ``capacity <= 0`` disables caching entirely (every lookup misses),
    which is how the benchmarks measure the cold path without reopening
    the store.
    """

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable, default: Optional[Any] = None) -> Any:
        """Return the cached value (refreshing its recency) or ``default``."""
        value = self._entries.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return default
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/refresh ``key``, evicting the stalest entry when full."""
        if self.capacity <= 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

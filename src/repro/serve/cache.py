"""A small instrumented, thread-safe LRU cache for hot deserialized patterns.

``functools.lru_cache`` memoizes per-function, not per-store, and hides
its eviction policy behind an opaque wrapper; the serving layer instead
uses this explicit ``OrderedDict``-based cache so each
:class:`~repro.serve.reader.PatternStoreReader` owns its own bounded
working set and the benchmarks can read hit/miss counters directly
(cold-vs-warm lookup rows in ``benchmarks/bench_pattern_store.py``).

Every operation — lookup, insert, eviction, counter update — runs under
one internal lock.  The HTTP tier leases each reader to one request at a
time (:mod:`repro.serve.pool`), but the metrics endpoint reads cache
counters from *other* threads while requests are in flight; without the
lock those reads could tear an ``OrderedDict`` mid-``move_to_end`` and
the hit/miss totals could drop increments.  The lock is uncontended in
the common case (one reader = one thread), so the overhead is one
``RLock`` acquire per lookup.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional

_MISSING = object()


class LRUCache:
    """Bounded mapping with least-recently-used eviction.

    ``capacity <= 0`` disables caching entirely (every lookup misses),
    which is how the benchmarks measure the cold path without reopening
    the store.
    """

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: Hashable, default: Optional[Any] = None) -> Any:
        """Return the cached value (refreshing its recency) or ``default``."""
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                return default
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/refresh ``key``, evicting the stalest entry when full."""
        if self.capacity <= 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def stats(self) -> Dict[str, int]:
        """One consistent snapshot of the counters (for aggregation)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "entries": len(self._entries),
                "capacity": self.capacity,
            }

"""Serving-tier metrics — request/error counters and latency histograms.

The HTTP front end (:mod:`repro.serve.http`) records one observation
per request: which endpoint, which status code, how many wall seconds.
:class:`ServingMetrics` aggregates those under one lock into the shape
the ``/metrics`` endpoint reports:

* per-endpoint request totals and error totals (split 4xx vs 5xx, plus
  the exact status-code breakdown);
* per-endpoint latency histograms with fixed log-spaced bucket bounds
  (Prometheus-style ``le`` buckets, cumulative), count/total/max so the
  mean is recoverable;
* server-wide totals.

Pool-wide cache hit ratios are *not* tracked here — they live with the
readers and are aggregated by
:meth:`repro.serve.pool.ReaderPool.cache_stats`; the HTTP layer merges
both views into one ``/metrics`` document.

Everything is stdlib, counters only — no sampling, no background
threads — so the cost per request is one lock acquire and a handful of
integer increments.
"""

from __future__ import annotations

import bisect
import threading
from typing import Dict, List, Optional, Tuple

#: Log-spaced latency bucket upper bounds, in seconds (plus +inf).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class LatencyHistogram:
    """Fixed-bucket latency histogram (seconds, cumulative ``le`` form).

    Not thread-safe by itself — :class:`ServingMetrics` serialises all
    mutation under its own lock.
    """

    __slots__ = ("bounds", "counts", "count", "total_seconds", "max_seconds")

    def __init__(self, bounds: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)  # +1 = the +inf bucket
        self.count = 0
        self.total_seconds = 0.0
        self.max_seconds = 0.0

    def observe(self, seconds: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, seconds)] += 1
        self.count += 1
        self.total_seconds += seconds
        self.max_seconds = max(self.max_seconds, seconds)

    def quantile(self, q: float) -> float:
        """Upper-bound estimate of the ``q``-quantile (0 < q <= 1).

        Returns the upper bound of the bucket holding the quantile
        observation; observations above the last bound report
        ``max_seconds``.  Zero observations report 0.0.
        """
        if self.count == 0:
            return 0.0
        target = max(1, int(q * self.count + 0.5))
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= target:
                if index >= len(self.bounds):
                    return self.max_seconds
                return self.bounds[index]
        return self.max_seconds  # pragma: no cover — seen always reaches count

    def snapshot(self) -> Dict[str, object]:
        cumulative: List[Tuple[str, int]] = []
        running = 0
        for bound, bucket_count in zip(self.bounds, self.counts):
            running += bucket_count
            cumulative.append((repr(bound), running))
        cumulative.append(("+inf", self.count))
        return {
            "count": self.count,
            "total_seconds": self.total_seconds,
            "max_seconds": self.max_seconds,
            "mean_seconds": (self.total_seconds / self.count)
            if self.count
            else 0.0,
            "p50_seconds": self.quantile(0.5),
            "p99_seconds": self.quantile(0.99),
            "buckets_le": dict(cumulative),
        }


class _EndpointMetrics:
    __slots__ = ("requests", "errors_4xx", "errors_5xx", "by_status", "latency")

    def __init__(self) -> None:
        self.requests = 0
        self.errors_4xx = 0
        self.errors_5xx = 0
        self.by_status: Dict[int, int] = {}
        self.latency = LatencyHistogram()


class ServingMetrics:
    """Thread-safe per-endpoint request metrics for one server."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._endpoints: Dict[str, _EndpointMetrics] = {}
        self._counters: Dict[str, int] = {}

    def increment(self, counter: str, amount: int = 1) -> None:
        """Bump one named server-wide counter (created on first use).

        The degradation path records ``requests_shed`` (every 503 —
        pool exhausted, overloaded, past deadline) and
        ``deadline_exceeded`` here; the snapshot exports whatever
        exists, so new counters need no schema change.
        """
        with self._lock:
            self._counters[counter] = self._counters.get(counter, 0) + amount

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def observe(self, endpoint: str, status: int, seconds: float) -> None:
        """Record one finished request."""
        with self._lock:
            metrics = self._endpoints.get(endpoint)
            if metrics is None:
                metrics = self._endpoints[endpoint] = _EndpointMetrics()
            metrics.requests += 1
            if 400 <= status < 500:
                metrics.errors_4xx += 1
            elif status >= 500:
                metrics.errors_5xx += 1
            metrics.by_status[status] = metrics.by_status.get(status, 0) + 1
            metrics.latency.observe(seconds)

    def requests_total(self, endpoint: Optional[str] = None) -> int:
        with self._lock:
            if endpoint is not None:
                metrics = self._endpoints.get(endpoint)
                return metrics.requests if metrics else 0
            return sum(m.requests for m in self._endpoints.values())

    def errors_total(self, server_errors_only: bool = False) -> int:
        with self._lock:
            if server_errors_only:
                return sum(m.errors_5xx for m in self._endpoints.values())
            return sum(
                m.errors_4xx + m.errors_5xx for m in self._endpoints.values()
            )

    def snapshot(self) -> Dict[str, object]:
        """One consistent JSON-ready view of every endpoint's counters."""
        with self._lock:
            endpoints = {}
            total_requests = total_4xx = total_5xx = 0
            for name in sorted(self._endpoints):
                metrics = self._endpoints[name]
                total_requests += metrics.requests
                total_4xx += metrics.errors_4xx
                total_5xx += metrics.errors_5xx
                endpoints[name] = {
                    "requests": metrics.requests,
                    "errors_4xx": metrics.errors_4xx,
                    "errors_5xx": metrics.errors_5xx,
                    "by_status": {
                        str(status): count
                        for status, count in sorted(metrics.by_status.items())
                    },
                    "latency": metrics.latency.snapshot(),
                }
            return {
                "requests": total_requests,
                "errors_4xx": total_4xx,
                "errors_5xx": total_5xx,
                "counters": dict(sorted(self._counters.items())),
                "endpoints": endpoints,
            }

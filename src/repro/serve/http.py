"""HTTP serving front end over the pattern store — stdlib only.

:class:`PatternStoreServer` turns the four PR-6 read-path lookups into
JSON endpoints so mined patterns can be served to many clients without
linking the library::

    GET /patterns/<id>                     one pattern by id
    GET /patterns?vertex=V                 patterns containing a vertex
    GET /patterns?attributes=a,b&mode=all  attribute filter (all|any)
    GET /top?k=K[&run=R]                   materialised top-k-by-ε
    GET /runs                              stored run headers
    GET /healthz                           liveness + store reachability
    GET /metrics                           request/error/latency counters
                                           + pool-wide cache hit ratios

The server is ``http.server.ThreadingHTTPServer`` (one handler thread
per connection, HTTP/1.1 keep-alive) over a
:class:`~repro.serve.pool.ReaderPool`: each request leases a
thread-affine :class:`~repro.serve.reader.PatternStoreReader` — with
its warm LRU — for exactly the duration of the lookup, so concurrent
clients never share a SQLite connection and WAL keeps them from ever
blocking a live ``scpm mine --store`` writer
(``benchmarks/bench_http_serve.py`` gates ≥8 clients, zero 5xx, zero
lock errors).

Error contract (all bodies are JSON, ``{"error": {...}}``):

* ``400`` — the request is malformed: unknown/conflicting query
  parameters, non-integer ids, a bad ``mode`` …
  (:class:`~repro.errors.QueryError`);
* ``404`` — well-formed but naming something the store does not hold:
  unknown endpoint, unknown pattern id or run
  (:class:`~repro.errors.NotFoundError`);
* ``500`` — the store is broken or the server is mid-shutdown (any
  other :class:`~repro.errors.StoreError`, or an unexpected exception);
* ``503`` + ``Retry-After`` — the server is *shedding load* rather than
  queueing without bound: the reader pool stayed exhausted past the
  lease timeout (:class:`~repro.errors.PoolExhaustedError`), more data
  requests are in flight than ``max_inflight`` admits
  (:class:`~repro.errors.OverloadedError`), or the per-request deadline
  expired before real work started
  (:class:`~repro.errors.DeadlineExceededError`).  Shed requests are
  counted under ``counters.requests_shed`` on ``/metrics``, and
  ``/healthz`` reports ``"degraded"`` (instead of ``"ok"``) while the
  pool cannot hand out a lease promptly — load balancers get the signal
  before clients see the 503s.  ``/healthz`` and ``/metrics`` themselves
  are exempt from admission control, so the observability plane stays
  up exactly when it is needed.

:meth:`PatternStoreServer.stop` is the graceful-shutdown path: stop
accepting, join every in-flight handler thread, then close the reader
pool — in that order, so no request ever observes a closed reader.
``stop(timeout=...)`` bounds the drain: past the deadline the reader
pool is force-closed (leased readers interrupted mid-query) and the
method returns ``False`` so ``scpm serve --shutdown-timeout`` can exit
nonzero instead of hanging on a stuck handler.
"""

from __future__ import annotations

import json
import math
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from time import monotonic, perf_counter
from typing import Dict, List, Optional, Tuple, Union
from urllib.parse import parse_qs, urlsplit

from repro.errors import (
    DeadlineExceededError,
    NotFoundError,
    OverloadedError,
    PoolExhaustedError,
    QueryError,
    StoreError,
)
from repro.faults import fault_point
from repro.graph.io import parse_vertex_token
from repro.serve.metrics import ServingMetrics
from repro.serve.pool import ReaderPool
from repro.serve.reader import ListingEntry, RunInfo, StoredPattern
from repro.store.codec import encode_value

PathLike = Union[str, Path]

SERVER_NAME = "scpm-serve"

#: Seconds /healthz waits for a pool lease before reporting "degraded".
HEALTH_LEASE_TIMEOUT = 0.05

#: Retry-After header value (seconds) sent with every shed (503) response.
RETRY_AFTER_SECONDS = 1

#: Endpoints exempt from admission control and deadlines — the
#: observability plane must answer precisely when the server is drowning.
EXEMPT_ENDPOINTS = ("healthz", "metrics")

#: Grace (seconds) granted to handler threads after a force-close
#: interrupted their queries, before stop() gives up on joining them.
FORCE_CLOSE_GRACE = 1.0


# ----------------------------------------------------------------------
# JSON payload shapes
# ----------------------------------------------------------------------
def _jsonable(value):
    """Codec-supported value → JSON-native form.

    Tuples become arrays; non-finite floats (which JSON cannot carry)
    become their ``repr`` strings (``"nan"``, ``"inf"``); everything
    else the codec admits is already JSON-native.
    """
    if isinstance(value, tuple):
        return [_jsonable(item) for item in value]
    if isinstance(value, float) and not math.isfinite(value):
        return repr(value)
    return value


def _vertex_sort_key(vertex) -> Tuple[str, float, str]:
    """Deterministic total order over mixed-type vertex sets.

    Groups by codec type tag, then orders numerics numerically and
    strings lexicographically — so the common all-int case lists as
    ``6, 7, …, 10, 11`` instead of the encoded-text order.
    """
    encoded = encode_value(vertex)
    tag = encoded[0]
    if tag in "ifb":
        numeric = float(vertex)
        if math.isnan(numeric):
            return (tag, math.inf, encoded)
        # encoded text breaks ties between huge ints that collapse to
        # the same float, keeping the order total and deterministic.
        return (tag, numeric, encoded)
    if tag == "s":
        return (tag, 0.0, vertex)
    return (tag, 0.0, encoded)  # None and tuples fall back to the codec


def pattern_payload(stored: StoredPattern) -> Dict[str, object]:
    pattern = stored.pattern
    return {
        "pattern_id": stored.pattern_id,
        "set_id": stored.set_id,
        "run_id": stored.run_id,
        "attributes": [_jsonable(a) for a in pattern.attributes],
        "gamma": _jsonable(pattern.gamma),
        "size": len(pattern.vertices),
        "vertices": [
            _jsonable(v)
            for v in sorted(pattern.vertices, key=_vertex_sort_key)
        ],
    }


def listing_payload(entry: ListingEntry) -> Dict[str, object]:
    return {
        "rank": entry.rank,
        "set_id": entry.set_id,
        "label": entry.label,
        "epsilon": _jsonable(entry.epsilon),
        "support": entry.support,
    }


def run_payload(info: RunInfo) -> Dict[str, object]:
    return {
        "run_id": info.run_id,
        "algorithm": info.algorithm,
        "created_utc": info.created_utc,
        "num_evaluated": info.num_evaluated,
        "num_qualified": info.num_qualified,
        "num_patterns": info.num_patterns,
    }


def _error_payload(status: int, error: BaseException) -> Dict[str, object]:
    return {
        "error": {
            "status": status,
            "type": type(error).__name__,
            "message": str(error),
        }
    }


# ----------------------------------------------------------------------
# request handler
# ----------------------------------------------------------------------
def _single_param(
    params: Dict[str, List[str]], name: str
) -> Optional[str]:
    values = params.get(name)
    if not values:
        return None
    if len(values) > 1:
        raise QueryError(f"query parameter {name!r} given more than once")
    return values[0]


def _int_param(params: Dict[str, List[str]], name: str) -> Optional[int]:
    text = _single_param(params, name)
    if text is None:
        return None
    try:
        return int(text)
    except ValueError:
        raise QueryError(
            f"query parameter {name!r} must be an integer, got {text!r}"
        ) from None


def _reject_unknown_params(
    params: Dict[str, List[str]], allowed: Tuple[str, ...]
) -> None:
    unknown = sorted(set(params) - set(allowed))
    if unknown:
        raise QueryError(
            f"unknown query parameter(s) {', '.join(map(repr, unknown))} "
            f"(expected only {', '.join(map(repr, allowed)) or 'none'})"
        )


class PatternStoreHandler(BaseHTTPRequestHandler):
    """One GET-only JSON handler; all state lives on the server object."""

    server_version = SERVER_NAME + "/1"
    protocol_version = "HTTP/1.1"
    # Idle keep-alive connections release their handler thread after
    # this many seconds, bounding how long a graceful stop can drain.
    timeout = 10.0
    # Headers and body go out as separate writes; with Nagle on, the
    # body segment waits on the client's delayed ACK (~40ms per
    # keep-alive request on loopback).  TCP_NODELAY sends both at once.
    disable_nagle_algorithm = True

    server: "PatternStoreServer"  # narrowed from socketserver.BaseServer

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # metrics replace the default per-request stderr chatter

    def do_GET(self) -> None:  # noqa: N802 — http.server naming contract
        split = urlsplit(self.path)
        endpoint = self._endpoint_name(split.path)
        started = perf_counter()
        deadline = self.server.request_deadline
        self._deadline = (
            None
            if deadline is None or endpoint in EXEMPT_ENDPOINTS
            else monotonic() + deadline
        )
        admitted = False
        try:
            if endpoint not in EXEMPT_ENDPOINTS:
                self.server.enter_request()
                admitted = True
            # The chaos delay/error site sits inside the admission slot:
            # a "delay" rule here models a stuck handler that keeps
            # occupying the server (and trips the deadline check below).
            fault_point("serve.http.handler", key=endpoint)
            self._check_deadline()
            status, payload = self._dispatch(split.path, split.query)
        except QueryError as error:
            status, payload = 400, _error_payload(400, error)
        except NotFoundError as error:
            status, payload = 404, _error_payload(404, error)
        except (
            PoolExhaustedError, OverloadedError, DeadlineExceededError
        ) as error:
            status, payload = 503, _error_payload(503, error)
            self.server.metrics.increment("requests_shed")
            if isinstance(error, DeadlineExceededError):
                self.server.metrics.increment("deadline_exceeded")
        except StoreError as error:
            status, payload = 500, _error_payload(500, error)
        except Exception as error:  # pragma: no cover — defensive 500
            status, payload = 500, _error_payload(500, error)
        finally:
            if admitted:
                self.server.leave_request()
        elapsed = perf_counter() - started
        self.server.metrics.observe(endpoint, status, elapsed)
        try:
            body = json.dumps(payload, allow_nan=False).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            if status == 503:
                self.send_header("Retry-After", str(RETRY_AFTER_SECONDS))
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True  # client went away mid-response

    # -- degradation helpers -------------------------------------------
    def _check_deadline(self) -> None:
        """Raise :class:`DeadlineExceededError` once the budget is spent.

        Checked at admission and before each pool lease — the points
        where a request is about to *start* waiting or working.  A
        response already being computed is never abandoned: serving it
        costs less than recomputing on the client's retry.
        """
        deadline = getattr(self, "_deadline", None)
        if deadline is not None and monotonic() >= deadline:
            raise DeadlineExceededError(
                f"request exceeded its "
                f"{self.server.request_deadline:.3f}s deadline"
            )

    def _lease(self):
        """Pool lease bounded by what remains of the request deadline."""
        self._check_deadline()
        deadline = getattr(self, "_deadline", None)
        timeout = None if deadline is None else deadline - monotonic()
        pool_timeout = self.server.pool.lease_timeout
        if pool_timeout is not None:
            timeout = (
                pool_timeout if timeout is None else min(timeout, pool_timeout)
            )
        return self.server.pool.lease(timeout=timeout)

    # -- routing -------------------------------------------------------
    @staticmethod
    def _endpoint_name(path: str) -> str:
        path = path.rstrip("/") or "/"
        if path.startswith("/patterns/"):
            return "get_pattern"
        return {
            "/patterns": "patterns",
            "/top": "top_k",
            "/runs": "runs",
            "/healthz": "healthz",
            "/metrics": "metrics",
        }.get(path, "unknown")

    def _dispatch(
        self, raw_path: str, raw_query: str
    ) -> Tuple[int, Dict[str, object]]:
        path = raw_path.rstrip("/") or "/"
        params = parse_qs(raw_query, keep_blank_values=True)
        if path == "/healthz":
            return self._healthz(params)
        if path == "/metrics":
            return self._metrics(params)
        if path == "/runs":
            return self._runs(params)
        if path == "/top":
            return self._top(params)
        if path == "/patterns":
            return self._patterns(params)
        if path.startswith("/patterns/"):
            return self._pattern_by_id(path, params)
        raise NotFoundError(f"no such endpoint: {raw_path!r}")

    # -- endpoints -----------------------------------------------------
    def _healthz(self, params) -> Tuple[int, Dict[str, object]]:
        """Liveness plus degradation: ``ok`` ↔ a lease is promptly had.

        Exhaustion of the reader pool answers 200 with ``"degraded"``
        rather than queueing the probe behind the very backlog it is
        meant to detect — the prober distinguishes a drowning server
        (degraded) from a dead one (connection refused / 500).
        """
        _reject_unknown_params(params, ())
        try:
            with self.server.pool.lease(
                timeout=self.server.health_lease_timeout
            ) as reader:
                num_runs = len(reader.runs())  # store is readable
        except PoolExhaustedError as error:
            return 200, {
                "status": "degraded",
                "reason": str(error),
                "store": str(self.server.store_path),
            }
        return 200, {
            "status": "ok",
            "store": str(self.server.store_path),
            "runs": num_runs,
        }

    def _metrics(self, params) -> Tuple[int, Dict[str, object]]:
        _reject_unknown_params(params, ())
        snapshot = self.server.metrics.snapshot()
        snapshot["pool"] = self.server.pool.cache_stats()
        snapshot["pool"].update(self.server.pool.stats())
        snapshot["store"] = str(self.server.store_path)
        return 200, snapshot

    def _runs(self, params) -> Tuple[int, Dict[str, object]]:
        _reject_unknown_params(params, ())
        with self._lease() as reader:
            runs = reader.runs()
        return 200, {"runs": [run_payload(info) for info in runs]}

    def _top(self, params) -> Tuple[int, Dict[str, object]]:
        _reject_unknown_params(params, ("k", "run"))
        k = _int_param(params, "k")
        if k is None:
            raise QueryError("/top needs a k= query parameter")
        run_id = _int_param(params, "run")
        with self._lease() as reader:
            if run_id is None:
                run_id = reader.latest_run_id()
            entries = reader.top_k(k, run_id=run_id)
        return 200, {
            "run_id": run_id,
            "k": k,
            "entries": [listing_payload(entry) for entry in entries],
        }

    def _patterns(self, params) -> Tuple[int, Dict[str, object]]:
        _reject_unknown_params(params, ("vertex", "attributes", "mode"))
        vertex = _single_param(params, "vertex")
        attributes = _single_param(params, "attributes")
        if (vertex is None) == (attributes is None):
            raise QueryError(
                "/patterns needs exactly one of vertex= or attributes="
            )
        mode = _single_param(params, "mode")
        if mode is not None and attributes is None:
            raise QueryError("mode= is only valid together with attributes=")
        with self._lease() as reader:
            if vertex is not None:
                parsed = parse_vertex_token(vertex)
                matches = reader.patterns_with_vertex(parsed)
                if not matches and parsed != vertex:
                    # Mirror the CLI: a programmatic store may key this
                    # vertex as the raw string, not the parsed integer.
                    matches = reader.patterns_with_vertex(vertex)
            else:
                filters = [
                    token for token in attributes.split(",") if token != ""
                ]
                matches = reader.patterns_with_attributes(
                    filters, mode=mode or "all"
                )
        return 200, {
            "count": len(matches),
            "patterns": [pattern_payload(stored) for stored in matches],
        }

    def _pattern_by_id(self, path: str, params) -> Tuple[int, Dict[str, object]]:
        _reject_unknown_params(params, ())
        suffix = path[len("/patterns/"):]
        if "/" in suffix:
            raise NotFoundError(f"no such endpoint: {path!r}")
        try:
            pattern_id = int(suffix)
        except ValueError:
            raise QueryError(
                f"pattern id must be an integer, got {suffix!r}"
            ) from None
        with self._lease() as reader:
            stored = reader.get_pattern(pattern_id)
        return 200, pattern_payload(stored)


# ----------------------------------------------------------------------
# server
# ----------------------------------------------------------------------
class PatternStoreServer(ThreadingHTTPServer):
    """Threaded HTTP server over one pattern store file.

    ``port=0`` binds an ephemeral port (see :attr:`url`).  The store is
    opened once up front so a missing/corrupt path fails at construction
    (:class:`~repro.errors.StoreError`) instead of on the first request.

    The degradation knobs all default to *off* (``None``), keeping the
    historical accept-everything behaviour for library users;
    ``scpm serve`` turns them on with production defaults:

    * ``max_readers`` / ``lease_timeout`` — reader-pool concurrency
      bound and how long a request waits for a lease before a 503;
    * ``max_inflight`` — admission control: data requests in flight
      beyond this are shed immediately (healthz/metrics exempt);
    * ``request_deadline`` — per-request wall budget, checked at
      admission and before each lease.
    """

    # Drain semantics: stop() joins the handler threads it tracks itself
    # (bounded by its timeout), so threads are daemons — a force-closed
    # stop can abandon a stuck handler without pinning process exit —
    # and block_on_close stays False so server_close() cannot sneak in
    # an unbounded join behind stop()'s back.
    daemon_threads = True
    block_on_close = False

    def __init__(
        self,
        store_path: PathLike,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_size: int = 256,
        max_readers: Optional[int] = None,
        lease_timeout: Optional[float] = None,
        max_inflight: Optional[int] = None,
        request_deadline: Optional[float] = None,
        health_lease_timeout: float = HEALTH_LEASE_TIMEOUT,
    ) -> None:
        self.store_path = Path(store_path)
        self.pool = ReaderPool(
            self.store_path,
            cache_size=cache_size,
            max_readers=max_readers,
            lease_timeout=lease_timeout,
        )
        self.metrics = ServingMetrics()
        self.max_inflight = max_inflight
        self.request_deadline = request_deadline
        self.health_lease_timeout = health_lease_timeout
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._handler_threads: set = set()
        self._handlers_lock = threading.Lock()
        self._stopped = threading.Event()
        self._stop_lock = threading.Lock()
        self._stop_clean = True
        self._serving = threading.Event()
        try:
            with self.pool.lease() as reader:
                reader.runs()  # fail fast: not-a-store, schema mismatch …
            super().__init__((host, port), PatternStoreHandler)
        except BaseException:
            self.pool.close()
            raise

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    # -- admission control ---------------------------------------------
    def enter_request(self) -> None:
        """Claim an in-flight slot or raise :class:`OverloadedError`."""
        with self._inflight_lock:
            if (
                self.max_inflight is not None
                and self._inflight >= self.max_inflight
            ):
                raise OverloadedError(
                    f"{self._inflight} requests already in flight "
                    f"(max_inflight={self.max_inflight})"
                )
            self._inflight += 1

    def leave_request(self) -> None:
        with self._inflight_lock:
            self._inflight -= 1

    @property
    def inflight(self) -> int:
        with self._inflight_lock:
            return self._inflight

    # -- lifecycle ------------------------------------------------------
    def process_request_thread(self, request, client_address) -> None:
        """Per-connection thread body, registered for bounded joining."""
        thread = threading.current_thread()
        with self._handlers_lock:
            self._handler_threads.add(thread)
        try:
            super().process_request_thread(request, client_address)
        finally:
            with self._handlers_lock:
                self._handler_threads.discard(thread)

    def serve_forever(self, poll_interval: float = 0.5) -> None:
        self._serving.set()
        try:
            super().serve_forever(poll_interval)
        finally:
            self._serving.clear()

    def _join_handlers(self, timeout: Optional[float]) -> bool:
        """Join live handler threads; False when some outlived ``timeout``."""
        deadline = None if timeout is None else monotonic() + timeout
        with self._handlers_lock:
            threads = list(self._handler_threads)
        for thread in threads:
            remaining = None if deadline is None else deadline - monotonic()
            if remaining is not None and remaining <= 0:
                return not thread.is_alive()
            thread.join(remaining)
            if thread.is_alive():
                return False
        return True

    def stop(self, timeout: Optional[float] = None) -> bool:
        """Shut down; return True for a clean drain, False when forced.

        ``timeout=None`` drains unbounded (the historical behaviour).
        With a timeout, handler threads still alive past the deadline
        get their reader pool force-closed — in-flight queries raise
        ``OperationalError: interrupted`` — and after a short grace the
        method returns ``False``, leaving any truly stuck (daemon)
        threads behind rather than hanging shutdown on them.
        Idempotent: later calls return the first call's verdict.
        """
        with self._stop_lock:
            if self._stopped.is_set():
                return self._stop_clean
            self._stopped.set()
        if self._serving.is_set():
            # shutdown() blocks forever unless serve_forever is (or was)
            # running — guard so stop() also works on a never-started
            # or already-interrupted server.
            self.shutdown()
        self.server_close()  # stop accepting (no join: block_on_close=False)
        clean = self._join_handlers(timeout)
        if clean:
            self.pool.close()
        else:
            self.pool.force_close()
            self._join_handlers(FORCE_CLOSE_GRACE)
        self._stop_clean = clean
        return clean


def create_server(
    store_path: PathLike,
    host: str = "127.0.0.1",
    port: int = 0,
    cache_size: int = 256,
    max_readers: Optional[int] = None,
    lease_timeout: Optional[float] = None,
    max_inflight: Optional[int] = None,
    request_deadline: Optional[float] = None,
) -> PatternStoreServer:
    """Construct (but do not start) a :class:`PatternStoreServer`."""
    return PatternStoreServer(
        store_path,
        host=host,
        port=port,
        cache_size=cache_size,
        max_readers=max_readers,
        lease_timeout=lease_timeout,
        max_inflight=max_inflight,
        request_deadline=request_deadline,
    )

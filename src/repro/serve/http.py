"""HTTP serving front end over the pattern store — stdlib only.

:class:`PatternStoreServer` turns the four PR-6 read-path lookups into
JSON endpoints so mined patterns can be served to many clients without
linking the library::

    GET /patterns/<id>                     one pattern by id
    GET /patterns?vertex=V                 patterns containing a vertex
    GET /patterns?attributes=a,b&mode=all  attribute filter (all|any)
    GET /top?k=K[&run=R]                   materialised top-k-by-ε
    GET /runs                              stored run headers
    GET /healthz                           liveness + store reachability
    GET /metrics                           request/error/latency counters
                                           + pool-wide cache hit ratios

The server is ``http.server.ThreadingHTTPServer`` (one handler thread
per connection, HTTP/1.1 keep-alive) over a
:class:`~repro.serve.pool.ReaderPool`: each request leases a
thread-affine :class:`~repro.serve.reader.PatternStoreReader` — with
its warm LRU — for exactly the duration of the lookup, so concurrent
clients never share a SQLite connection and WAL keeps them from ever
blocking a live ``scpm mine --store`` writer
(``benchmarks/bench_http_serve.py`` gates ≥8 clients, zero 5xx, zero
lock errors).

Error contract (all bodies are JSON, ``{"error": {...}}``):

* ``400`` — the request is malformed: unknown/conflicting query
  parameters, non-integer ids, a bad ``mode`` …
  (:class:`~repro.errors.QueryError`);
* ``404`` — well-formed but naming something the store does not hold:
  unknown endpoint, unknown pattern id or run
  (:class:`~repro.errors.NotFoundError`);
* ``500`` — the store is broken or the server is mid-shutdown (any
  other :class:`~repro.errors.StoreError`, or an unexpected exception).

:meth:`PatternStoreServer.stop` is the graceful-shutdown path: stop
accepting, join every in-flight handler thread, then close the reader
pool — in that order, so no request ever observes a closed reader.
"""

from __future__ import annotations

import json
import math
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from time import perf_counter
from typing import Dict, List, Optional, Tuple, Union
from urllib.parse import parse_qs, urlsplit

from repro.errors import NotFoundError, QueryError, StoreError
from repro.graph.io import parse_vertex_token
from repro.serve.metrics import ServingMetrics
from repro.serve.pool import ReaderPool
from repro.serve.reader import ListingEntry, RunInfo, StoredPattern
from repro.store.codec import encode_value

PathLike = Union[str, Path]

SERVER_NAME = "scpm-serve"


# ----------------------------------------------------------------------
# JSON payload shapes
# ----------------------------------------------------------------------
def _jsonable(value):
    """Codec-supported value → JSON-native form.

    Tuples become arrays; non-finite floats (which JSON cannot carry)
    become their ``repr`` strings (``"nan"``, ``"inf"``); everything
    else the codec admits is already JSON-native.
    """
    if isinstance(value, tuple):
        return [_jsonable(item) for item in value]
    if isinstance(value, float) and not math.isfinite(value):
        return repr(value)
    return value


def _vertex_sort_key(vertex) -> Tuple[str, float, str]:
    """Deterministic total order over mixed-type vertex sets.

    Groups by codec type tag, then orders numerics numerically and
    strings lexicographically — so the common all-int case lists as
    ``6, 7, …, 10, 11`` instead of the encoded-text order.
    """
    encoded = encode_value(vertex)
    tag = encoded[0]
    if tag in "ifb":
        numeric = float(vertex)
        if math.isnan(numeric):
            return (tag, math.inf, encoded)
        # encoded text breaks ties between huge ints that collapse to
        # the same float, keeping the order total and deterministic.
        return (tag, numeric, encoded)
    if tag == "s":
        return (tag, 0.0, vertex)
    return (tag, 0.0, encoded)  # None and tuples fall back to the codec


def pattern_payload(stored: StoredPattern) -> Dict[str, object]:
    pattern = stored.pattern
    return {
        "pattern_id": stored.pattern_id,
        "set_id": stored.set_id,
        "run_id": stored.run_id,
        "attributes": [_jsonable(a) for a in pattern.attributes],
        "gamma": _jsonable(pattern.gamma),
        "size": len(pattern.vertices),
        "vertices": [
            _jsonable(v)
            for v in sorted(pattern.vertices, key=_vertex_sort_key)
        ],
    }


def listing_payload(entry: ListingEntry) -> Dict[str, object]:
    return {
        "rank": entry.rank,
        "set_id": entry.set_id,
        "label": entry.label,
        "epsilon": _jsonable(entry.epsilon),
        "support": entry.support,
    }


def run_payload(info: RunInfo) -> Dict[str, object]:
    return {
        "run_id": info.run_id,
        "algorithm": info.algorithm,
        "created_utc": info.created_utc,
        "num_evaluated": info.num_evaluated,
        "num_qualified": info.num_qualified,
        "num_patterns": info.num_patterns,
    }


def _error_payload(status: int, error: BaseException) -> Dict[str, object]:
    return {
        "error": {
            "status": status,
            "type": type(error).__name__,
            "message": str(error),
        }
    }


# ----------------------------------------------------------------------
# request handler
# ----------------------------------------------------------------------
def _single_param(
    params: Dict[str, List[str]], name: str
) -> Optional[str]:
    values = params.get(name)
    if not values:
        return None
    if len(values) > 1:
        raise QueryError(f"query parameter {name!r} given more than once")
    return values[0]


def _int_param(params: Dict[str, List[str]], name: str) -> Optional[int]:
    text = _single_param(params, name)
    if text is None:
        return None
    try:
        return int(text)
    except ValueError:
        raise QueryError(
            f"query parameter {name!r} must be an integer, got {text!r}"
        ) from None


def _reject_unknown_params(
    params: Dict[str, List[str]], allowed: Tuple[str, ...]
) -> None:
    unknown = sorted(set(params) - set(allowed))
    if unknown:
        raise QueryError(
            f"unknown query parameter(s) {', '.join(map(repr, unknown))} "
            f"(expected only {', '.join(map(repr, allowed)) or 'none'})"
        )


class PatternStoreHandler(BaseHTTPRequestHandler):
    """One GET-only JSON handler; all state lives on the server object."""

    server_version = SERVER_NAME + "/1"
    protocol_version = "HTTP/1.1"
    # Idle keep-alive connections release their handler thread after
    # this many seconds, bounding how long a graceful stop can drain.
    timeout = 10.0
    # Headers and body go out as separate writes; with Nagle on, the
    # body segment waits on the client's delayed ACK (~40ms per
    # keep-alive request on loopback).  TCP_NODELAY sends both at once.
    disable_nagle_algorithm = True

    server: "PatternStoreServer"  # narrowed from socketserver.BaseServer

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # metrics replace the default per-request stderr chatter

    def do_GET(self) -> None:  # noqa: N802 — http.server naming contract
        split = urlsplit(self.path)
        endpoint = self._endpoint_name(split.path)
        started = perf_counter()
        try:
            status, payload = self._dispatch(split.path, split.query)
        except QueryError as error:
            status, payload = 400, _error_payload(400, error)
        except NotFoundError as error:
            status, payload = 404, _error_payload(404, error)
        except StoreError as error:
            status, payload = 500, _error_payload(500, error)
        except Exception as error:  # pragma: no cover — defensive 500
            status, payload = 500, _error_payload(500, error)
        elapsed = perf_counter() - started
        self.server.metrics.observe(endpoint, status, elapsed)
        try:
            body = json.dumps(payload, allow_nan=False).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True  # client went away mid-response

    # -- routing -------------------------------------------------------
    @staticmethod
    def _endpoint_name(path: str) -> str:
        path = path.rstrip("/") or "/"
        if path.startswith("/patterns/"):
            return "get_pattern"
        return {
            "/patterns": "patterns",
            "/top": "top_k",
            "/runs": "runs",
            "/healthz": "healthz",
            "/metrics": "metrics",
        }.get(path, "unknown")

    def _dispatch(
        self, raw_path: str, raw_query: str
    ) -> Tuple[int, Dict[str, object]]:
        path = raw_path.rstrip("/") or "/"
        params = parse_qs(raw_query, keep_blank_values=True)
        if path == "/healthz":
            return self._healthz(params)
        if path == "/metrics":
            return self._metrics(params)
        if path == "/runs":
            return self._runs(params)
        if path == "/top":
            return self._top(params)
        if path == "/patterns":
            return self._patterns(params)
        if path.startswith("/patterns/"):
            return self._pattern_by_id(path, params)
        raise NotFoundError(f"no such endpoint: {raw_path!r}")

    # -- endpoints -----------------------------------------------------
    def _healthz(self, params) -> Tuple[int, Dict[str, object]]:
        _reject_unknown_params(params, ())
        with self.server.pool.lease() as reader:
            num_runs = len(reader.runs())  # proves the store is readable
        return 200, {
            "status": "ok",
            "store": str(self.server.store_path),
            "runs": num_runs,
        }

    def _metrics(self, params) -> Tuple[int, Dict[str, object]]:
        _reject_unknown_params(params, ())
        snapshot = self.server.metrics.snapshot()
        snapshot["pool"] = self.server.pool.cache_stats()
        snapshot["store"] = str(self.server.store_path)
        return 200, snapshot

    def _runs(self, params) -> Tuple[int, Dict[str, object]]:
        _reject_unknown_params(params, ())
        with self.server.pool.lease() as reader:
            runs = reader.runs()
        return 200, {"runs": [run_payload(info) for info in runs]}

    def _top(self, params) -> Tuple[int, Dict[str, object]]:
        _reject_unknown_params(params, ("k", "run"))
        k = _int_param(params, "k")
        if k is None:
            raise QueryError("/top needs a k= query parameter")
        run_id = _int_param(params, "run")
        with self.server.pool.lease() as reader:
            if run_id is None:
                run_id = reader.latest_run_id()
            entries = reader.top_k(k, run_id=run_id)
        return 200, {
            "run_id": run_id,
            "k": k,
            "entries": [listing_payload(entry) for entry in entries],
        }

    def _patterns(self, params) -> Tuple[int, Dict[str, object]]:
        _reject_unknown_params(params, ("vertex", "attributes", "mode"))
        vertex = _single_param(params, "vertex")
        attributes = _single_param(params, "attributes")
        if (vertex is None) == (attributes is None):
            raise QueryError(
                "/patterns needs exactly one of vertex= or attributes="
            )
        mode = _single_param(params, "mode")
        if mode is not None and attributes is None:
            raise QueryError("mode= is only valid together with attributes=")
        with self.server.pool.lease() as reader:
            if vertex is not None:
                parsed = parse_vertex_token(vertex)
                matches = reader.patterns_with_vertex(parsed)
                if not matches and parsed != vertex:
                    # Mirror the CLI: a programmatic store may key this
                    # vertex as the raw string, not the parsed integer.
                    matches = reader.patterns_with_vertex(vertex)
            else:
                filters = [
                    token for token in attributes.split(",") if token != ""
                ]
                matches = reader.patterns_with_attributes(
                    filters, mode=mode or "all"
                )
        return 200, {
            "count": len(matches),
            "patterns": [pattern_payload(stored) for stored in matches],
        }

    def _pattern_by_id(self, path: str, params) -> Tuple[int, Dict[str, object]]:
        _reject_unknown_params(params, ())
        suffix = path[len("/patterns/"):]
        if "/" in suffix:
            raise NotFoundError(f"no such endpoint: {path!r}")
        try:
            pattern_id = int(suffix)
        except ValueError:
            raise QueryError(
                f"pattern id must be an integer, got {suffix!r}"
            ) from None
        with self.server.pool.lease() as reader:
            stored = reader.get_pattern(pattern_id)
        return 200, pattern_payload(stored)


# ----------------------------------------------------------------------
# server
# ----------------------------------------------------------------------
class PatternStoreServer(ThreadingHTTPServer):
    """Threaded HTTP server over one pattern store file.

    ``port=0`` binds an ephemeral port (see :attr:`url`).  The store is
    opened once up front so a missing/corrupt path fails at construction
    (:class:`~repro.errors.StoreError`) instead of on the first request.
    """

    # Drain semantics: handler threads are joined by server_close(), so
    # stop() can close the reader pool only after the last request left.
    daemon_threads = False
    block_on_close = True

    def __init__(
        self,
        store_path: PathLike,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_size: int = 256,
    ) -> None:
        self.store_path = Path(store_path)
        self.pool = ReaderPool(self.store_path, cache_size=cache_size)
        self.metrics = ServingMetrics()
        self._stopped = threading.Event()
        self._serving = threading.Event()
        try:
            with self.pool.lease() as reader:
                reader.runs()  # fail fast: not-a-store, schema mismatch …
            super().__init__((host, port), PatternStoreHandler)
        except BaseException:
            self.pool.close()
            raise

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def serve_forever(self, poll_interval: float = 0.5) -> None:
        self._serving.set()
        try:
            super().serve_forever(poll_interval)
        finally:
            self._serving.clear()

    def stop(self) -> None:
        """Graceful shutdown: drain in-flight requests, close readers."""
        if self._stopped.is_set():
            return
        self._stopped.set()
        if self._serving.is_set():
            # shutdown() blocks forever unless serve_forever is (or was)
            # running — guard so stop() also works on a never-started
            # or already-interrupted server.
            self.shutdown()
        self.server_close()  # close socket + join handler threads
        self.pool.close()


def create_server(
    store_path: PathLike,
    host: str = "127.0.0.1",
    port: int = 0,
    cache_size: int = 256,
) -> PatternStoreServer:
    """Construct (but do not start) a :class:`PatternStoreServer`."""
    return PatternStoreServer(
        store_path, host=host, port=port, cache_size=cache_size
    )

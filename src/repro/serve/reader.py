"""Read path of the pattern store — point lookups, filters, rankings.

:class:`PatternStoreReader` answers the four serving queries without
re-mining anything:

* :meth:`~PatternStoreReader.get_pattern` — one pattern by id (LRU-hot);
* :meth:`~PatternStoreReader.patterns_with_vertex` — membership lookup
  through the ``pattern_vertices`` index;
* :meth:`~PatternStoreReader.patterns_with_attributes` — attribute-set
  filter, ``mode="all"`` (⊇) or ``mode="any"`` (∩ ≠ ∅), narrowed by the
  FTS5 token index when available and always verified exactly against
  the relational ``set_attributes`` table (FTS tokenization is lossy —
  it is a candidate filter, never the authority);
* :meth:`~PatternStoreReader.top_k` — the materialised ε ranking.

Every multi-statement read runs inside one deferred transaction, so a
concurrent ``scpm mine --store`` appending the next run can never show
a reader half a run: WAL gives each read transaction a stable snapshot
(pinned by ``tests/store/test_concurrency.py``).

Deserialized patterns are kept in a per-reader
:class:`~repro.serve.cache.LRUCache`; repeated hot lookups skip the
row fetch and codec work entirely (cold-vs-warm rows in
``benchmarks/bench_pattern_store.py``).

Transient ``database is locked``/busy errors — possible when a
checkpoint or an unusually long write transaction outlasts the busy
timeout — are retried with the shared backoff helper
(:data:`repro.faults.retry.READ_RETRY_POLICY`) instead of surfacing as
an HTTP 500 on first occurrence; the ``serve.reader.query`` fault point
at every query entry lets the chaos suite inject exactly those errors.
"""

from __future__ import annotations

import json
import sqlite3
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Hashable, List, Optional, Sequence, Tuple, Union

from repro.correlation.patterns import (
    AttributeSetResult,
    MiningCounters,
    MiningResult,
    StructuralCorrelationPattern,
)
from repro.errors import NotFoundError, QueryError, StoreError
from repro.faults import fault_point
from repro.faults.retry import (
    READ_RETRY_POLICY,
    RetryPolicy,
    call_with_retry,
    is_transient_operational_error,
)
from repro.store import schema
from repro.store.codec import decode_value, encode_value
from repro.serve.cache import LRUCache

PathLike = Union[str, Path]

MODES = ("all", "any")


@dataclass(frozen=True)
class RunInfo:
    """One stored mining run (header row, no records)."""

    run_id: int
    algorithm: str
    created_utc: str
    num_evaluated: int
    num_qualified: int
    num_patterns: int


@dataclass(frozen=True)
class StoredPattern:
    """A pattern row with enough context to cite it (run, set, id)."""

    pattern_id: int
    set_id: int
    run_id: int
    pattern: StructuralCorrelationPattern


@dataclass(frozen=True)
class ListingEntry:
    """One row of the materialised top-by-ε ranking."""

    rank: int
    set_id: int
    label: str
    epsilon: float
    support: int


def _decode_attributes(attributes_json: str) -> Tuple[Hashable, ...]:
    return tuple(decode_value(item) for item in json.loads(attributes_json))


def _fts_phrase(token: str) -> str:
    return '"' + token.replace('"', '""') + '"'


def _fts_tokenizable(attribute: Hashable) -> bool:
    """True when the display token yields at least one FTS5 token.

    The default ``unicode61`` tokenizer keeps Unicode letters and digits
    (categories ``L*``/``N*``) and treats everything else as a
    separator, which is exactly what :meth:`str.isalnum` tests
    character-wise.  A filter value with no token characters at all
    (``"!!!"``, ``""``, ``"--"``) tokenizes to an *empty phrase*, and an
    empty phrase silently MATCHes nothing — as a narrowing clause it
    would exclude every set the exact relational check keeps, so such
    filters must skip FTS narrowing entirely.
    """
    return any(character.isalnum() for character in str(attribute))


class PatternStoreReader:
    """Concurrent-read client of one pattern store file.

    Instances are cheap; the concurrency model is one reader (one SQLite
    connection) per thread.  Opening a path that does not exist raises
    :class:`~repro.errors.StoreError` — the read path never creates
    stores.
    """

    def __init__(
        self,
        path: PathLike,
        cache_size: int = 256,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        self.path = Path(path)
        self.cache = LRUCache(cache_size)
        self.retry_policy = retry_policy or READ_RETRY_POLICY
        #: Transient-lock retries performed over this reader's lifetime.
        self.retries = 0
        self._connection = schema.connect(self.path, create=False)
        try:
            schema.check_schema_version(self._connection)
            self.fts_enabled = (
                schema.read_meta(self._connection, "fts_enabled") == "1"
            )
        except sqlite3.OperationalError as error:
            self.close()
            raise StoreError(
                f"{str(self.path)!r} is not a pattern store: {error}"
            ) from error
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the connection (idempotent).

        After closing, *every* public method raises
        :class:`~repro.errors.StoreError` — including cache-served
        lookups, so a closed reader can never hand out stale patterns.
        """
        connection, self._connection = self._connection, None
        if connection is not None:
            connection.close()
            self.cache.clear()

    def interrupt(self) -> None:
        """Abort any statement running on this reader's connection.

        Safe to call from another thread (that is its purpose — the
        pool's force-close path uses it to unblock handler threads past
        the shutdown deadline).  The interrupted query raises
        ``sqlite3.OperationalError: interrupted`` in its own thread,
        which is *not* classified transient, so it is never retried.
        """
        connection = self._connection
        if connection is not None:
            try:
                connection.interrupt()
            except sqlite3.Error:  # pragma: no cover — already closed
                pass

    def __enter__(self) -> "PatternStoreReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _require_open(self) -> sqlite3.Connection:
        """The live connection, or :class:`StoreError` once closed.

        Returning the connection (instead of touching ``self._connection``
        again later) keeps a concurrent ``close()`` from turning in-flight
        statements into ``AttributeError: 'NoneType' ...``.
        """
        connection = self._connection
        if connection is None:
            raise StoreError("pattern store reader is closed")
        return connection

    def _read(self, operation: str, fn):
        """Run one query body under the fault point + transient retry.

        Every public lookup funnels through here: the
        ``serve.reader.query`` fault point (keyed by operation name)
        fires once per *attempt* — so a plan injecting ``locked`` at
        occurrences 0..n exercises exactly n+1 attempts — and lock/busy
        errors from the body, injected or real, retry the whole snapshot
        with the shared backoff policy.  The failed snapshot was rolled
        back by ``_snapshot``, so re-running the body is safe.
        """

        def attempt():
            fault_point("serve.reader.query", key=operation)
            return fn()

        def note_retry(error, attempt_number, delay) -> None:
            self.retries += 1

        return call_with_retry(
            attempt,
            policy=self.retry_policy,
            retry_on=is_transient_operational_error,
            on_retry=note_retry,
        )

    @contextmanager
    def _snapshot(self):
        """One stable WAL snapshot across several SELECTs.

        The deferred transaction is committed only when the body
        succeeded; when it raised, the snapshot is rolled back so the
        reader is immediately usable again (a commit attempt on a
        half-failed transaction could itself raise and mask the body's
        exception — rollback failures are swallowed for the same
        reason).
        """
        connection = self._require_open()
        fresh = connection.in_transaction is False
        if fresh:
            connection.execute("BEGIN")
        try:
            yield connection
        except BaseException:
            if fresh:
                try:
                    connection.rollback()
                except sqlite3.Error:
                    pass  # never mask the body's exception
            raise
        else:
            if fresh:
                connection.commit()

    # ------------------------------------------------------------------
    # run metadata
    # ------------------------------------------------------------------
    def runs(self) -> List[RunInfo]:
        """All stored runs, oldest first."""
        return self._read("runs", self._runs_once)

    def _runs_once(self) -> List[RunInfo]:
        with self._snapshot() as connection:
            rows = connection.execute(
                "SELECT run_id, algorithm, created_utc, num_evaluated, "
                "num_qualified, num_patterns FROM runs ORDER BY run_id"
            ).fetchall()
        return [RunInfo(*row) for row in rows]

    def latest_run_id(self) -> int:
        return self._read("latest_run_id", self._latest_run_id_once)

    def _latest_run_id_once(self) -> int:
        with self._snapshot() as connection:
            row = connection.execute("SELECT MAX(run_id) FROM runs").fetchone()
        if row[0] is None:
            raise NotFoundError(
                f"pattern store {str(self.path)!r} holds no runs"
            )
        return row[0]

    # ------------------------------------------------------------------
    # the four serving lookups
    # ------------------------------------------------------------------
    def get_pattern(self, pattern_id: int) -> StoredPattern:
        """One pattern by id; hot ids come straight from the LRU."""
        return self._read(
            "get_pattern", lambda: self._get_pattern_once(pattern_id)
        )

    def _get_pattern_once(self, pattern_id: int) -> StoredPattern:
        self._require_open()  # a closed reader must not serve cache hits
        cached = self.cache.get(pattern_id)
        if cached is not None:
            return cached
        with self._snapshot() as connection:
            stored = self._fetch_pattern(connection, pattern_id)
        if stored is None:
            raise NotFoundError(
                f"pattern id {pattern_id} is not in store {str(self.path)!r}"
            )
        return stored

    def patterns_with_vertex(self, vertex: Hashable) -> List[StoredPattern]:
        """All stored patterns whose quasi-clique contains ``vertex``."""
        return self._read(
            "patterns_with_vertex",
            lambda: self._patterns_with_vertex_once(vertex),
        )

    def _patterns_with_vertex_once(
        self, vertex: Hashable
    ) -> List[StoredPattern]:
        encoded = encode_value(vertex)
        with self._snapshot() as connection:
            ids = [
                row[0]
                for row in connection.execute(
                    "SELECT pattern_id FROM pattern_vertices "
                    "WHERE vertex = ? ORDER BY pattern_id",
                    (encoded,),
                )
            ]
            return self._fetch_many(connection, ids)

    def patterns_with_attributes(
        self, attributes: Sequence[Hashable], mode: str = "all"
    ) -> List[StoredPattern]:
        """Patterns of attribute sets matching an attribute filter.

        ``mode="all"`` keeps sets containing *every* filter attribute
        (the filter is a subset of the set); ``mode="any"`` keeps sets
        containing at least one.
        """
        return self._read(
            "patterns_with_attributes",
            lambda: self._patterns_with_attributes_once(attributes, mode),
        )

    def _patterns_with_attributes_once(
        self, attributes: Sequence[Hashable], mode: str
    ) -> List[StoredPattern]:
        attributes = tuple(attributes)
        if mode not in MODES:
            raise QueryError(
                f"unknown attribute-filter mode {mode!r} (expected one of "
                f"{MODES})"
            )
        if not attributes:
            raise QueryError("attribute filter must name at least one attribute")
        encoded = [encode_value(attribute) for attribute in attributes]
        placeholders = ", ".join("?" for _ in encoded)
        with self._snapshot() as connection:
            narrowing, fts_args = self._fts_narrowing(
                connection, attributes, mode
            )
            if mode == "any":
                set_query = (
                    "SELECT DISTINCT set_id FROM set_attributes "
                    f"WHERE attribute IN ({placeholders}){narrowing}"
                )
                set_args = (*encoded, *fts_args)
            else:
                set_query = (
                    "SELECT set_id FROM set_attributes "
                    f"WHERE attribute IN ({placeholders}){narrowing} "
                    "GROUP BY set_id "
                    "HAVING COUNT(DISTINCT attribute) = ?"
                )
                set_args = (*encoded, *fts_args, len(set(encoded)))
            set_ids = sorted(row[0] for row in connection.execute(set_query, set_args))
            ids: List[int] = []
            for set_id in set_ids:
                ids.extend(
                    row[0]
                    for row in connection.execute(
                        "SELECT pattern_id FROM patterns WHERE set_id = ? "
                        "ORDER BY position",
                        (set_id,),
                    )
                )
            return self._fetch_many(connection, ids)

    def top_k(self, k: int, run_id: Optional[int] = None) -> List[ListingEntry]:
        """Top-``k`` attribute sets by ε from the materialised listing.

        Ordering is exactly ``MiningResult.top_by_epsilon`` (ε desc,
        support desc, label asc), frozen at write time.  ``run_id``
        defaults to the latest stored run.
        """
        return self._read("top_k", lambda: self._top_k_once(k, run_id))

    def _top_k_once(
        self, k: int, run_id: Optional[int]
    ) -> List[ListingEntry]:
        if k <= 0:
            raise QueryError(f"top_k needs a positive k, got {k}")
        with self._snapshot() as connection:
            if run_id is None:
                run_id = self._latest_run_id_once()
            rows = connection.execute(
                "SELECT rank, set_id, label, epsilon, support "
                "FROM epsilon_listing WHERE run_id = ? "
                "ORDER BY rank LIMIT ?",
                (run_id, k),
            ).fetchall()
            if not rows and not self._run_exists(connection, run_id):
                raise NotFoundError(
                    f"run {run_id} is not in store {str(self.path)!r}"
                )
        return [
            ListingEntry(rank, set_id, label, epsilon, support)
            for rank, set_id, label, epsilon, support in rows
        ]

    # ------------------------------------------------------------------
    # full reconstruction
    # ------------------------------------------------------------------
    def load_result(self, run_id: Optional[int] = None) -> MiningResult:
        """Rebuild one run as a byte-identical :class:`MiningResult`."""
        return self._read(
            "load_result", lambda: self._load_result_once(run_id)
        )

    def _load_result_once(self, run_id: Optional[int]) -> MiningResult:
        with self._snapshot() as connection:
            if run_id is None:
                run_id = self._latest_run_id_once()
            header = connection.execute(
                "SELECT algorithm, counters_json FROM runs WHERE run_id = ?",
                (run_id,),
            ).fetchone()
            if header is None:
                raise NotFoundError(
                    f"run {run_id} is not in store {str(self.path)!r}"
                )
            algorithm, counters_json = header
            result = MiningResult(
                algorithm=algorithm,
                counters=MiningCounters.from_dict(json.loads(counters_json)),
            )
            for (
                set_id,
                attributes_json,
                support,
                epsilon_text,
                expected_epsilon_text,
                delta_text,
                qualified,
            ) in connection.execute(
                "SELECT set_id, attributes_json, support, epsilon_text, "
                "expected_epsilon_text, delta_text, qualified "
                "FROM attribute_sets WHERE run_id = ? ORDER BY position",
                (run_id,),
            ).fetchall():
                covered = frozenset(
                    decode_value(row[0])
                    for row in connection.execute(
                        "SELECT vertex FROM set_vertices WHERE set_id = ?",
                        (set_id,),
                    )
                )
                patterns = tuple(
                    self._fetch_pattern_row(connection, pattern_row)
                    for pattern_row in connection.execute(
                        "SELECT pattern_id, attributes_json, gamma_text "
                        "FROM patterns WHERE set_id = ? ORDER BY position",
                        (set_id,),
                    ).fetchall()
                )
                result.evaluated.append(
                    AttributeSetResult(
                        attributes=_decode_attributes(attributes_json),
                        support=support,
                        epsilon=float(epsilon_text),
                        expected_epsilon=float(expected_epsilon_text),
                        delta=float(delta_text),
                        covered_vertices=covered,
                        patterns=patterns,
                        qualified=bool(qualified),
                    )
                )
        return result

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _run_exists(self, connection, run_id: int) -> bool:
        return (
            connection.execute(
                "SELECT 1 FROM runs WHERE run_id = ?", (run_id,)
            ).fetchone()
            is not None
        )

    def _fts_narrowing(
        self, connection, attributes: Tuple[Hashable, ...], mode: str
    ) -> Tuple[str, Tuple]:
        """FTS5 candidate clause (``AND set_id IN (...)``) when usable.

        The token index can only *shrink* the scan — matches are still
        verified against ``set_attributes``.  Filters whose display
        tokens the FTS tokenizer cannot represent (punctuation-only or
        empty attributes, which tokenize to zero tokens and MATCH
        nothing) skip the narrowing rather than mis-filter: the
        ``LIMIT 0`` probe below only catches *syntax-level*
        ``OperationalError``, and a zero-token phrase is syntactically
        valid — it would silently exclude sets the exact relational
        check keeps, in ``"all"`` mode (the phrase ANDs the candidate
        set down to nothing) and in ``"any"`` mode alike (a set whose
        only matching attribute is the untokenizable one never enters
        the candidate set).
        """
        if not self.fts_enabled:
            return "", ()
        if not all(_fts_tokenizable(attribute) for attribute in attributes):
            return "", ()
        joiner = " AND " if mode == "all" else " OR "
        match = joiner.join(
            _fts_phrase(str(attribute)) for attribute in attributes
        )
        try:
            connection.execute(
                "SELECT rowid FROM attribute_search WHERE attribute_search "
                "MATCH ? LIMIT 0",
                (match,),
            )
        except sqlite3.OperationalError:
            return "", ()
        return (
            " AND set_id IN (SELECT rowid FROM attribute_search "
            "WHERE attribute_search MATCH ?)",
            (match,),
        )

    def _fetch_pattern(
        self, connection, pattern_id: int
    ) -> Optional[StoredPattern]:
        row = connection.execute(
            "SELECT pattern_id, set_id, run_id, attributes_json, gamma_text "
            "FROM patterns WHERE pattern_id = ?",
            (pattern_id,),
        ).fetchone()
        if row is None:
            return None
        pattern_id, set_id, run_id, attributes_json, gamma_text = row
        pattern = self._fetch_pattern_row(
            connection, (pattern_id, attributes_json, gamma_text)
        )
        stored = StoredPattern(
            pattern_id=pattern_id, set_id=set_id, run_id=run_id, pattern=pattern
        )
        self.cache.put(pattern_id, stored)
        return stored

    def _fetch_many(self, connection, pattern_ids) -> List[StoredPattern]:
        """Resolve ids through the LRU, fetching only the cold ones."""
        resolved = []
        for pattern_id in pattern_ids:
            cached = self.cache.get(pattern_id)
            if cached is None:
                cached = self._fetch_pattern(connection, pattern_id)
                if cached is None:  # pragma: no cover — ids come from the db
                    raise StoreError(f"pattern id {pattern_id} vanished")
            resolved.append(cached)
        return resolved

    def _fetch_pattern_row(
        self, connection, row
    ) -> StructuralCorrelationPattern:
        pattern_id, attributes_json, gamma_text = row
        vertices = frozenset(
            decode_value(vertex_row[0])
            for vertex_row in connection.execute(
                "SELECT vertex FROM pattern_vertices WHERE pattern_id = ?",
                (pattern_id,),
            )
        )
        return StructuralCorrelationPattern(
            attributes=_decode_attributes(attributes_json),
            vertices=vertices,
            gamma=float(gamma_text),
        )

"""Integrity verification of a pattern store file — ``scpm verify-store``.

The crash-fuzz contract of the writer (kill the process at any
``store.writer.*`` fault point) promises a store that is *never torn*:
every run is fully present or fully absent.  This module is the judge of
that promise.  :func:`verify_store` runs a fixed sequence of checks —
file-level (exists, non-empty, SQLite magic), database-level (``PRAGMA
integrity_check``, ``PRAGMA foreign_key_check``), store-level (metadata
keys, schema version) and run-level (row counts against the run header,
position/rank contiguity of every run) — and returns a
:class:`VerifyReport` listing each check with its outcome.

The CLI maps the report onto the usual exit contract: ``0`` clean,
``1`` corrupt/unreadable, ``2`` usage error.  Opening is read-only via a
SQLite URI so verification never creates, recovers or mutates anything —
a verifier that repairs as a side effect would mask the very torn states
it exists to catch (WAL recovery of a *cleanly* written store is the
reader's job, not ours; a truncated WAL sidecar therefore surfaces here
as a failed check instead of being silently healed).
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Tuple, Union

from repro.store.schema import SCHEMA_VERSION

PathLike = Union[str, Path]

#: First 16 bytes of every SQLite 3 database file.
_SQLITE_MAGIC = b"SQLite format 3\x00"

#: Valid values of the WAL header's first 4 bytes (big-endian magic).
_WAL_MAGICS = (b"\x37\x7f\x06\x82", b"\x37\x7f\x06\x83")

#: Size of a well-formed WAL file header.
_WAL_HEADER_SIZE = 32


@dataclass
class VerifyCheck:
    """One verification step: a name, a verdict, and detail on failure."""

    name: str
    ok: bool
    detail: str = ""


@dataclass
class VerifyReport:
    """Outcome of :func:`verify_store` — all checks, in execution order."""

    path: str
    checks: List[VerifyCheck] = field(default_factory=list)
    runs: int = 0

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    @property
    def failures(self) -> List[VerifyCheck]:
        return [check for check in self.checks if not check.ok]

    def add(self, name: str, ok: bool, detail: str = "") -> bool:
        self.checks.append(VerifyCheck(name=name, ok=ok, detail=detail))
        return ok

    def lines(self) -> List[str]:
        """Human-readable report body (one line per check + a verdict)."""
        out = []
        for check in self.checks:
            mark = "ok  " if check.ok else "FAIL"
            line = f"{mark} {check.name}"
            if check.detail:
                line += f": {check.detail}"
            out.append(line)
        verdict = "clean" if self.ok else "CORRUPT"
        out.append(f"{self.path}: {verdict} ({self.runs} run(s))")
        return out


def _connect_readonly(path: Path) -> sqlite3.Connection:
    uri = f"file:{path}?mode=ro"
    return sqlite3.connect(uri, uri=True, check_same_thread=False)


def _table_names(connection: sqlite3.Connection) -> List[str]:
    rows = connection.execute(
        "SELECT name FROM sqlite_master WHERE type IN ('table', 'view')"
    ).fetchall()
    return [row[0] for row in rows]


def _check_contiguous(
    values: List[int], start: int
) -> Tuple[bool, str]:
    expected = list(range(start, start + len(values)))
    if values == expected:
        return True, ""
    return False, f"expected {start}..{start + len(values) - 1}"


def verify_store(path: PathLike) -> VerifyReport:
    """Verify ``path`` bottom-up; return the full :class:`VerifyReport`.

    Never raises for a bad *store* — every corruption shape becomes a
    failed check in the report.  (Genuine usage errors, e.g. ``path`` is
    a directory, still raise ``OSError`` for the CLI to map to exit 2.)
    """
    path = Path(path)
    report = VerifyReport(path=str(path))

    if path.exists() and not path.is_file():
        # Not a corruption verdict — the caller pointed at a directory
        # (or socket, ...); that's a usage error, exit 2 at the CLI.
        raise IsADirectoryError(f"{path} is not a regular file")
    if not report.add(
        "file exists", path.is_file(),
        "" if path.is_file() else "no such file",
    ):
        return report
    size = path.stat().st_size
    if not report.add(
        "file non-empty", size > 0,
        "" if size else "zero-byte file (crash before first write?)",
    ):
        return report
    with path.open("rb") as handle:
        magic = handle.read(len(_SQLITE_MAGIC))
    if not report.add(
        "sqlite header", magic == _SQLITE_MAGIC,
        "" if magic == _SQLITE_MAGIC else "not a SQLite 3 database",
    ):
        return report
    _check_wal_sidecar(path, report)

    try:
        connection = _connect_readonly(path)
    except sqlite3.Error as error:
        report.add("open read-only", False, str(error))
        return report
    try:
        _verify_open_store(connection, report)
    except sqlite3.Error as error:
        report.add("database readable", False, str(error))
    finally:
        connection.close()
    return report


def _check_wal_sidecar(path: Path, report: VerifyReport) -> None:
    """Fail a mangled ``-wal`` file instead of letting SQLite eat it.

    SQLite treats a WAL whose header does not validate as *empty* and
    silently resets it on the next write-mode open — which discards any
    committed-but-not-yet-checkpointed frames it held.  A truncated or
    garbage sidecar therefore never surfaces through
    ``integrity_check``; the explicit header check here is the only
    place it becomes a verdict.  A missing or zero-length sidecar is
    fine (both are normal after a clean checkpoint).
    """
    wal = Path(str(path) + "-wal")
    if not wal.exists() or wal.stat().st_size == 0:
        report.add("wal sidecar", True)
        return
    size = wal.stat().st_size
    if size < _WAL_HEADER_SIZE:
        report.add(
            "wal sidecar", False,
            f"truncated WAL header ({size} byte(s), need "
            f"{_WAL_HEADER_SIZE}) — frames it held are unrecoverable",
        )
        return
    with wal.open("rb") as handle:
        magic = handle.read(4)
    report.add(
        "wal sidecar", magic in _WAL_MAGICS,
        "" if magic in _WAL_MAGICS
        else "invalid WAL magic — SQLite would silently discard this log",
    )


def _verify_open_store(
    connection: sqlite3.Connection, report: VerifyReport
) -> None:
    rows = connection.execute("PRAGMA integrity_check").fetchall()
    messages = [row[0] for row in rows]
    report.add(
        "integrity_check", messages == ["ok"], "; ".join(messages[:5])
    )

    fk_rows = connection.execute("PRAGMA foreign_key_check").fetchall()
    report.add(
        "foreign_key_check", not fk_rows,
        f"{len(fk_rows)} dangling reference(s)" if fk_rows else "",
    )

    tables = set(_table_names(connection))
    required = {
        "store_meta", "runs", "attribute_sets", "set_attributes",
        "set_vertices", "patterns", "pattern_vertices", "epsilon_listing",
    }
    missing = sorted(required - tables)
    if not report.add(
        "schema tables", not missing,
        f"missing: {', '.join(missing)}" if missing else "",
    ):
        return

    meta = dict(
        connection.execute("SELECT key, value FROM store_meta").fetchall()
    )
    version = meta.get("schema_version")
    report.add(
        "schema_version",
        version == str(SCHEMA_VERSION),
        f"found {version!r}, expected {SCHEMA_VERSION!r}"
        if version != str(SCHEMA_VERSION) else "",
    )
    fts_enabled = meta.get("fts_enabled") == "1"
    if fts_enabled:
        if "attribute_search" in tables:
            try:
                connection.execute(
                    "SELECT rowid FROM attribute_search "
                    "WHERE attribute_search MATCH 'probe' LIMIT 1"
                ).fetchall()
                report.add("fts index", True)
            except sqlite3.Error as error:
                report.add("fts index", False, str(error))
        else:
            report.add(
                "fts index", False,
                "fts_enabled=1 but attribute_search table missing",
            )

    run_rows = connection.execute(
        "SELECT run_id, num_evaluated, num_patterns FROM runs "
        "ORDER BY run_id"
    ).fetchall()
    report.runs = len(run_rows)
    for run_id, num_evaluated, num_patterns in run_rows:
        _verify_run(
            connection, report, run_id, num_evaluated, num_patterns,
            fts_enabled,
        )


def _verify_run(
    connection: sqlite3.Connection,
    report: VerifyReport,
    run_id: int,
    num_evaluated: int,
    num_patterns: int,
    fts_enabled: bool,
) -> None:
    """Cross-check one run's rows against its header counters."""
    name = f"run {run_id}"

    positions = [
        row[0] for row in connection.execute(
            "SELECT position FROM attribute_sets WHERE run_id = ? "
            "ORDER BY position", (run_id,),
        )
    ]
    ok, detail = _check_contiguous(positions, start=0)
    if len(positions) != num_evaluated:
        ok = False
        detail = (
            f"header says {num_evaluated} attribute set(s), "
            f"found {len(positions)}"
        )
    report.add(f"{name} attribute sets", ok, detail)

    pattern_count = connection.execute(
        "SELECT COUNT(*) FROM patterns WHERE run_id = ?", (run_id,)
    ).fetchone()[0]
    report.add(
        f"{name} patterns", pattern_count == num_patterns,
        f"header says {num_patterns}, found {pattern_count}"
        if pattern_count != num_patterns else "",
    )

    ranks = [
        row[0] for row in connection.execute(
            "SELECT rank FROM epsilon_listing WHERE run_id = ? "
            "ORDER BY rank", (run_id,),
        )
    ]
    ok, detail = _check_contiguous(ranks, start=1)
    if len(ranks) != num_evaluated:
        ok = False
        detail = f"{len(ranks)} rank(s) for {num_evaluated} set(s)"
    report.add(f"{name} epsilon listing", ok, detail)

    if fts_enabled:
        indexed = connection.execute(
            "SELECT COUNT(*) FROM attribute_search s "
            "JOIN attribute_sets a ON a.set_id = s.rowid "
            "WHERE a.run_id = ?", (run_id,),
        ).fetchone()[0]
        report.add(
            f"{name} fts rows", indexed == num_evaluated,
            f"{indexed} indexed of {num_evaluated}"
            if indexed != num_evaluated else "",
        )


__all__ = ["VerifyCheck", "VerifyReport", "verify_store"]

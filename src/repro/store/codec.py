"""Lossless text codec for vertex and attribute values.

The mining layer treats vertices and attributes as opaque ``Hashable``
values — in practice the integers and strings the file grammar produces
(:func:`repro.graph.io.parse_vertex_token`), plus the occasional float,
bool, ``None`` or tuple from programmatic graphs.  The store persists
them in ``TEXT`` columns, so the round-trip contract ("a loaded
``MiningResult`` is byte-identical to the in-memory one") needs an
encoding that is *injective across types*: the integer ``5`` and the
string ``"5"`` must map to different cells and decode back to exactly
what was mined.

The encoding is a one-character type tag, a colon, and a type-specific
body::

    i:5        int      (decimal text, arbitrary precision)
    s:alice    str      (verbatim — everything after the colon)
    f:0.25     float    (repr(); round-trips exactly, handles inf/nan)
    b:1        bool     (before int — bool is an int subclass)
    n:         None
    t:[...]    tuple    (JSON array of encoded elements, recursively)

Anything else raises :class:`~repro.errors.StoreError` rather than
silently degrading to ``str()`` — a store that cannot reproduce its
input is worse than no store.
"""

from __future__ import annotations

import json
from typing import Hashable

from repro.errors import StoreError

__all__ = ["encode_value", "decode_value"]


def encode_value(value: Hashable) -> str:
    """Encode one vertex/attribute value into its tagged text form."""
    if value is None:
        return "n:"
    if value is True:
        return "b:1"
    if value is False:
        return "b:0"
    if isinstance(value, int):
        return f"i:{value}"
    if isinstance(value, float):
        return f"f:{value!r}"
    if isinstance(value, str):
        return "s:" + value
    if isinstance(value, tuple):
        return "t:" + json.dumps([encode_value(item) for item in value])
    raise StoreError(
        f"cannot persist value {value!r} of type {type(value).__name__}; "
        "the pattern store supports int, str, float, bool, None and "
        "tuples thereof"
    )


def decode_value(text: str) -> Hashable:
    """Invert :func:`encode_value`.

    Any malformed input — missing tag, unknown tag, or a body that does
    not parse under its tag (``i:abc``, ``f:garbage``, ``t:not-json``) —
    raises :class:`~repro.errors.StoreError`.  The CLI and HTTP error
    paths rely on that taxonomy: a corrupt cell must surface as a store
    problem, never as a raw ``ValueError`` from ``int()``/``float()`` or
    a ``json.JSONDecodeError``.
    """
    tag, separator, body = text.partition(":")
    if not separator:
        raise StoreError(f"malformed stored value {text!r} (no type tag)")
    if tag == "s":
        return body
    if tag == "b":
        return body == "1"
    if tag == "n":
        return None
    try:
        if tag == "i":
            return int(body)
        if tag == "f":
            return float(body)
        if tag == "t":
            return tuple(decode_value(item) for item in json.loads(body))
    except StoreError:
        raise  # a nested tuple element already carries the right error
    except (ValueError, TypeError, AttributeError) as error:
        # json.JSONDecodeError is a ValueError; TypeError/AttributeError
        # cover t:-array elements that are not strings (e.g. ``t:[1]``).
        raise StoreError(
            f"malformed stored value {text!r} (bad {tag!r} body): {error}"
        ) from error
    raise StoreError(f"malformed stored value {text!r} (unknown tag {tag!r})")

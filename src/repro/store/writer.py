"""Batch writer of the persistent pattern store.

:class:`PatternStore` is the write half of the mine-once / serve-many
split: ``scpm mine --store out.sqlite`` (or :func:`save_result`) appends
one complete :class:`~repro.correlation.patterns.MiningResult` per
:meth:`PatternStore.save` call, inside a single ``BEGIN IMMEDIATE``
transaction.  Readers on the same WAL store therefore see each run
atomically — either none of it or all of it — which is what the
concurrency suite (``tests/store/test_concurrency.py``) pins down.

Everything needed to reconstruct the result bit-for-bit is persisted:
record order (``position`` columns), per-record floats as ``repr()``
text, covered-vertex and pattern-vertex memberships through the typed
codec, and the work counters as JSON.  The two read-optimised
structures — the materialised ε ranking and the FTS5 attribute-token
index — are populated in the same transaction, so they can never drift
from the rows they index.
"""

from __future__ import annotations

import json
from dataclasses import asdict, is_dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Optional, Union

from repro.correlation.patterns import MiningResult
from repro.errors import StoreError
from repro.store import schema
from repro.store.codec import encode_value

PathLike = Union[str, Path]


def _fts_tokens(attributes) -> str:
    """Space-joined display tokens of one attribute set (FTS5 content)."""
    return " ".join(str(attribute) for attribute in attributes)


def _params_json(params) -> Optional[str]:
    if params is None:
        return None
    data = asdict(params) if is_dataclass(params) else dict(params)
    return json.dumps(data, sort_keys=True, default=str)


class PatternStore:
    """Writable pattern store (one SQLite file, any number of runs).

    Usage::

        with PatternStore("patterns.sqlite") as store:
            run_id = store.save(result, params=params)

    Opening creates the file and schema when missing and validates the
    schema version otherwise.  One instance holds one connection; it is
    not itself thread-safe (WAL serialises writers anyway) — concurrent
    *readers* open their own :class:`~repro.serve.reader.PatternStoreReader`.
    """

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        self._connection = schema.connect(self.path, create=True)
        schema.initialize(self._connection)
        schema.check_schema_version(self._connection)
        self.fts_enabled = schema.read_meta(self._connection, "fts_enabled") == "1"

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "PatternStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def save(self, result: MiningResult, params: Optional[object] = None) -> int:
        """Persist one mining run atomically; return its ``run_id``."""
        if self._connection is None:
            raise StoreError("pattern store is closed")
        connection = self._connection
        cursor = connection.cursor()
        cursor.execute("BEGIN IMMEDIATE")
        try:
            cursor.execute(
                "INSERT INTO runs (algorithm, created_utc, params_json, "
                "counters_json, num_evaluated, num_qualified, num_patterns) "
                "VALUES (?, ?, ?, ?, ?, ?, ?)",
                (
                    result.algorithm,
                    datetime.now(timezone.utc).isoformat(),
                    _params_json(params),
                    json.dumps(result.counters.to_dict(), sort_keys=True),
                    len(result.evaluated),
                    len(result.qualified),
                    len(result.patterns),
                ),
            )
            run_id = cursor.lastrowid
            listing = []
            for position, record in enumerate(result.evaluated):
                cursor.execute(
                    "INSERT INTO attribute_sets (run_id, position, "
                    "attributes_json, label, support, epsilon, epsilon_text, "
                    "expected_epsilon_text, delta, delta_text, qualified) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        run_id,
                        position,
                        json.dumps([encode_value(a) for a in record.attributes]),
                        record.label(),
                        record.support,
                        record.epsilon,
                        repr(record.epsilon),
                        repr(record.expected_epsilon),
                        # NaN has no REAL representation in SQLite; the
                        # text column is authoritative either way.
                        None if record.delta != record.delta else record.delta,
                        repr(record.delta),
                        int(record.qualified),
                    ),
                )
                set_id = cursor.lastrowid
                cursor.executemany(
                    "INSERT INTO set_attributes (set_id, position, attribute) "
                    "VALUES (?, ?, ?)",
                    [
                        (set_id, i, encode_value(attribute))
                        for i, attribute in enumerate(record.attributes)
                    ],
                )
                cursor.executemany(
                    "INSERT INTO set_vertices (set_id, vertex) VALUES (?, ?)",
                    [(set_id, encode_value(v)) for v in record.covered_vertices],
                )
                if self.fts_enabled:
                    cursor.execute(
                        "INSERT INTO attribute_search (rowid, tokens) "
                        "VALUES (?, ?)",
                        (set_id, _fts_tokens(record.attributes)),
                    )
                for pattern_position, pattern in enumerate(record.patterns):
                    cursor.execute(
                        "INSERT INTO patterns (set_id, run_id, position, "
                        "attributes_json, gamma, gamma_text, size) "
                        "VALUES (?, ?, ?, ?, ?, ?, ?)",
                        (
                            set_id,
                            run_id,
                            pattern_position,
                            json.dumps(
                                [encode_value(a) for a in pattern.attributes]
                            ),
                            pattern.gamma,
                            repr(pattern.gamma),
                            pattern.size,
                        ),
                    )
                    pattern_id = cursor.lastrowid
                    cursor.executemany(
                        "INSERT INTO pattern_vertices (pattern_id, vertex) "
                        "VALUES (?, ?)",
                        [
                            (pattern_id, encode_value(v))
                            for v in pattern.vertices
                        ],
                    )
                listing.append(
                    (record.epsilon, record.support, record.label(), set_id)
                )
            # Materialised top-by-ε ranking: the exact ordering contract
            # of MiningResult.top_by_epsilon, frozen at write time.
            listing.sort(key=lambda row: (-row[0], -row[1], row[2]))
            cursor.executemany(
                "INSERT INTO epsilon_listing (run_id, rank, set_id, epsilon, "
                "support, label) VALUES (?, ?, ?, ?, ?, ?)",
                [
                    (run_id, rank, set_id, epsilon, support, label)
                    for rank, (epsilon, support, label, set_id) in enumerate(
                        listing, start=1
                    )
                ],
            )
            connection.commit()
        except BaseException:
            connection.rollback()
            raise
        return run_id


def save_result(
    path: PathLike, result: MiningResult, params: Optional[object] = None
) -> int:
    """One-shot convenience: open (or create) ``path`` and save ``result``."""
    with PatternStore(path) as store:
        return store.save(result, params=params)

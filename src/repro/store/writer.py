"""Batch writer of the persistent pattern store.

:class:`PatternStore` is the write half of the mine-once / serve-many
split: ``scpm mine --store out.sqlite`` (or :func:`save_result`) appends
one complete :class:`~repro.correlation.patterns.MiningResult` per
:meth:`PatternStore.save` call, inside a single ``BEGIN IMMEDIATE``
transaction.  Readers on the same WAL store therefore see each run
atomically — either none of it or all of it — which is what the
concurrency suite (``tests/store/test_concurrency.py``) pins down.

Everything needed to reconstruct the result bit-for-bit is persisted:
record order (``position`` columns), per-record floats as ``repr()``
text, covered-vertex and pattern-vertex memberships through the typed
codec, and the work counters as JSON.  The two read-optimised
structures — the materialised ε ranking and the FTS5 attribute-token
index — are populated in the same transaction, so they can never drift
from the rows they index.

Failure behaviour is part of the contract.  The save transaction is
threaded with the ``store.writer.*`` fault points (:mod:`repro.faults`) —
one per write step, ``begin`` through ``post_commit`` — and the crash
fuzz (``tests/faults/test_store_crash.py``) proves that killing the
process at *any* of them leaves a store that
:func:`repro.store.verify.verify_store` reports clean: either the run is
fully present (killed after commit) or fully absent (killed before),
never torn.  Transient ``database is locked``/busy collisions are
retried with the shared backoff helper
(:func:`repro.faults.retry.call_with_retry`, whole-transaction retry
after rollback) instead of discarding the mining run on first contact.
"""

from __future__ import annotations

import json
from dataclasses import asdict, is_dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Optional, Union

from repro.correlation.patterns import MiningResult
from repro.errors import NotFoundError, StoreError
from repro.faults import fault_point
from repro.faults.retry import (
    WRITE_RETRY_POLICY,
    RetryPolicy,
    call_with_retry,
    is_transient_operational_error,
)
from repro.store import schema
from repro.store.codec import encode_value

PathLike = Union[str, Path]

#: Every fault point inside :meth:`PatternStore.save`, in execution
#: order — the crash fuzz iterates this tuple so a new write step cannot
#: be added without entering the kill matrix.
SAVE_FAULT_SITES = (
    "store.writer.begin",
    "store.writer.run_row",
    "store.writer.set_row",
    "store.writer.pattern_row",
    "store.writer.listing",
    "store.writer.commit",
    "store.writer.post_commit",
)

#: Every fault point inside :meth:`PatternStore.apply_delta` — the save
#: sites (the row re-insert reuses the exact same write steps and
#: therefore the same points) plus the delta-only delete step.  The
#: delta crash fuzz (``tests/faults/test_delta_crash.py``) iterates this
#: tuple the way the save fuzz iterates :data:`SAVE_FAULT_SITES`.
APPLY_DELTA_FAULT_SITES = (
    "store.writer.begin",
    "store.writer.delete_rows",
    "store.writer.run_row",
    "store.writer.set_row",
    "store.writer.pattern_row",
    "store.writer.listing",
    "store.writer.commit",
    "store.writer.post_commit",
)


def _fts_tokens(attributes) -> str:
    """Space-joined display tokens of one attribute set (FTS5 content)."""
    return " ".join(str(attribute) for attribute in attributes)


def _params_json(params) -> Optional[str]:
    if params is None:
        return None
    data = asdict(params) if is_dataclass(params) else dict(params)
    return json.dumps(data, sort_keys=True, default=str)


class PatternStore:
    """Writable pattern store (one SQLite file, any number of runs).

    Usage::

        with PatternStore("patterns.sqlite") as store:
            run_id = store.save(result, params=params)

    Opening creates the file and schema when missing and validates the
    schema version otherwise.  One instance holds one connection; it is
    not itself thread-safe (WAL serialises writers anyway) — concurrent
    *readers* open their own :class:`~repro.serve.reader.PatternStoreReader`.
    """

    def __init__(
        self, path: PathLike, retry_policy: Optional[RetryPolicy] = None
    ) -> None:
        self.path = Path(path)
        self.retry_policy = retry_policy or WRITE_RETRY_POLICY
        #: Transient-lock retries performed by the most recent save().
        self.last_save_retries = 0
        self._connection = schema.connect(self.path, create=True)
        schema.initialize(self._connection)
        schema.check_schema_version(self._connection)
        self.fts_enabled = schema.read_meta(self._connection, "fts_enabled") == "1"

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "PatternStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def save(self, result: MiningResult, params: Optional[object] = None) -> int:
        """Persist one mining run atomically; return its ``run_id``.

        Transient lock/busy collisions (another writer holding the WAL
        write lock longer than the busy timeout) retry the *whole*
        transaction with exponential backoff — the failed attempt was
        rolled back, so re-execution is safe.  Any other failure
        propagates after rollback, leaving the store exactly pre-save.
        """
        if self._connection is None:
            raise StoreError("pattern store is closed")
        self.last_save_retries = 0

        def note_retry(error, attempt, delay) -> None:
            self.last_save_retries += 1

        return call_with_retry(
            lambda: self._save_once(result, params),
            policy=self.retry_policy,
            retry_on=is_transient_operational_error,
            on_retry=note_retry,
        )

    def _save_once(
        self, result: MiningResult, params: Optional[object]
    ) -> int:
        """One save attempt: a single ``BEGIN IMMEDIATE`` transaction."""
        connection = self._connection
        cursor = connection.cursor()
        fault_point("store.writer.begin")
        cursor.execute("BEGIN IMMEDIATE")
        try:
            cursor.execute(
                "INSERT INTO runs (algorithm, created_utc, params_json, "
                "counters_json, num_evaluated, num_qualified, num_patterns) "
                "VALUES (?, ?, ?, ?, ?, ?, ?)",
                (
                    result.algorithm,
                    datetime.now(timezone.utc).isoformat(),
                    _params_json(params),
                    json.dumps(result.counters.to_dict(), sort_keys=True),
                    len(result.evaluated),
                    len(result.qualified),
                    len(result.patterns),
                ),
            )
            run_id = cursor.lastrowid
            fault_point("store.writer.run_row")
            self._write_run_rows(cursor, run_id, result)
            fault_point("store.writer.commit")
            connection.commit()
        except BaseException:
            connection.rollback()
            raise
        fault_point("store.writer.post_commit")
        return run_id

    def _write_run_rows(self, cursor, run_id: int, result: MiningResult) -> None:
        """Insert every row of one run: sets, patterns, FTS, ε listing.

        Shared by the initial :meth:`save` and by :meth:`apply_delta`
        (which first deletes the old rows) — both paths therefore hit
        the same ``store.writer.set_row`` / ``pattern_row`` /
        ``listing`` fault points and produce bit-identical row content
        for the same result.  Runs inside the caller's transaction.
        """
        listing = []
        for position, record in enumerate(result.evaluated):
            cursor.execute(
                "INSERT INTO attribute_sets (run_id, position, "
                "attributes_json, label, support, epsilon, epsilon_text, "
                "expected_epsilon_text, delta, delta_text, qualified) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    run_id,
                    position,
                    json.dumps([encode_value(a) for a in record.attributes]),
                    record.label(),
                    record.support,
                    record.epsilon,
                    repr(record.epsilon),
                    repr(record.expected_epsilon),
                    # NaN has no REAL representation in SQLite; the
                    # text column is authoritative either way.
                    None if record.delta != record.delta else record.delta,
                    repr(record.delta),
                    int(record.qualified),
                ),
            )
            set_id = cursor.lastrowid
            fault_point("store.writer.set_row", key=position)
            cursor.executemany(
                "INSERT INTO set_attributes (set_id, position, attribute) "
                "VALUES (?, ?, ?)",
                [
                    (set_id, i, encode_value(attribute))
                    for i, attribute in enumerate(record.attributes)
                ],
            )
            cursor.executemany(
                "INSERT INTO set_vertices (set_id, vertex) VALUES (?, ?)",
                [(set_id, encode_value(v)) for v in record.covered_vertices],
            )
            if self.fts_enabled:
                cursor.execute(
                    "INSERT INTO attribute_search (rowid, tokens) "
                    "VALUES (?, ?)",
                    (set_id, _fts_tokens(record.attributes)),
                )
            for pattern_position, pattern in enumerate(record.patterns):
                cursor.execute(
                    "INSERT INTO patterns (set_id, run_id, position, "
                    "attributes_json, gamma, gamma_text, size) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?)",
                    (
                        set_id,
                        run_id,
                        pattern_position,
                        json.dumps(
                            [encode_value(a) for a in pattern.attributes]
                        ),
                        pattern.gamma,
                        repr(pattern.gamma),
                        pattern.size,
                    ),
                )
                pattern_id = cursor.lastrowid
                fault_point(
                    "store.writer.pattern_row",
                    key=(position, pattern_position),
                )
                cursor.executemany(
                    "INSERT INTO pattern_vertices (pattern_id, vertex) "
                    "VALUES (?, ?)",
                    [
                        (pattern_id, encode_value(v))
                        for v in pattern.vertices
                    ],
                )
            listing.append(
                (record.epsilon, record.support, record.label(), set_id)
            )
        # Materialised top-by-ε ranking: the exact ordering contract
        # of MiningResult.top_by_epsilon, frozen at write time.
        listing.sort(key=lambda row: (-row[0], -row[1], row[2]))
        cursor.executemany(
            "INSERT INTO epsilon_listing (run_id, rank, set_id, epsilon, "
            "support, label) VALUES (?, ?, ?, ?, ?, ?)",
            [
                (run_id, rank, set_id, epsilon, support, label)
                for rank, (epsilon, support, label, set_id) in enumerate(
                    listing, start=1
                )
            ],
        )
        fault_point("store.writer.listing")

    # ------------------------------------------------------------------
    # delta path
    # ------------------------------------------------------------------
    def apply_delta(
        self,
        run_id: int,
        result: MiningResult,
        params: Optional[object] = None,
    ) -> int:
        """Replace the stored rows of ``run_id`` with ``result``, atomically.

        The incremental miner
        (:class:`repro.correlation.incremental.IncrementalSCPM`) patches
        its :class:`MiningResult` in place after a graph update; this is
        the store half of that contract.  One ``BEGIN IMMEDIATE``
        transaction deletes the run's old attribute-set rows (cascading
        to set/pattern memberships, with explicit contentless-FTS
        deletes first), refreshes the run header counts, and re-inserts
        everything through the same row writer — and therefore the same
        ``store.writer.*`` fault points — as :meth:`save`.  Readers see
        the old run or the new one, never a mix, and a crash at any
        fault point leaves a store that
        :func:`~repro.store.verify.verify_store` reports clean
        (``tests/faults/test_delta_crash.py``).

        ``params`` replaces the stored ``params_json`` when given;
        ``None`` keeps the original.  Raises
        :class:`~repro.errors.NotFoundError` for an unknown run.
        Returns ``run_id`` for symmetry with :meth:`save`.
        """
        if self._connection is None:
            raise StoreError("pattern store is closed")
        self.last_save_retries = 0

        def note_retry(error, attempt, delay) -> None:
            self.last_save_retries += 1

        return call_with_retry(
            lambda: self._apply_delta_once(run_id, result, params),
            policy=self.retry_policy,
            retry_on=is_transient_operational_error,
            on_retry=note_retry,
        )

    def _apply_delta_once(
        self, run_id: int, result: MiningResult, params: Optional[object]
    ) -> int:
        """One delta attempt: a single ``BEGIN IMMEDIATE`` transaction."""
        connection = self._connection
        cursor = connection.cursor()
        fault_point("store.writer.begin")
        cursor.execute("BEGIN IMMEDIATE")
        try:
            if (
                cursor.execute(
                    "SELECT 1 FROM runs WHERE run_id = ?", (run_id,)
                ).fetchone()
                is None
            ):
                raise NotFoundError(f"run {run_id} is not in the store")
            if self.fts_enabled:
                # Contentless FTS5 cannot cascade: each row must be
                # removed by replaying its original tokens (== label).
                cursor.executemany(
                    "INSERT INTO attribute_search "
                    "(attribute_search, rowid, tokens) "
                    "VALUES ('delete', ?, ?)",
                    cursor.execute(
                        "SELECT set_id, label FROM attribute_sets "
                        "WHERE run_id = ?",
                        (run_id,),
                    ).fetchall(),
                )
            cursor.execute(
                "DELETE FROM epsilon_listing WHERE run_id = ?", (run_id,)
            )
            cursor.execute(
                "DELETE FROM attribute_sets WHERE run_id = ?", (run_id,)
            )
            fault_point("store.writer.delete_rows")
            cursor.execute(
                "UPDATE runs SET counters_json = ?, num_evaluated = ?, "
                "num_qualified = ?, num_patterns = ?, "
                "params_json = COALESCE(?, params_json) WHERE run_id = ?",
                (
                    json.dumps(result.counters.to_dict(), sort_keys=True),
                    len(result.evaluated),
                    len(result.qualified),
                    len(result.patterns),
                    _params_json(params),
                    run_id,
                ),
            )
            fault_point("store.writer.run_row")
            self._write_run_rows(cursor, run_id, result)
            fault_point("store.writer.commit")
            connection.commit()
        except BaseException:
            connection.rollback()
            raise
        fault_point("store.writer.post_commit")
        return run_id


def save_result(
    path: PathLike, result: MiningResult, params: Optional[object] = None
) -> int:
    """One-shot convenience: open (or create) ``path`` and save ``result``."""
    with PatternStore(path) as store:
        return store.save(result, params=params)

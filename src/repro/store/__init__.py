"""Persistent pattern store — the write half of mine-once / serve-many.

Until this package existed every mining run was batch-and-discard: the
:class:`~repro.correlation.patterns.MiningResult` died with the process
and any lookup ("which patterns contain vertex *v*?") meant a full
re-mine.  The store persists complete runs into one SQLite file in WAL
mode, written by ``scpm mine --store`` and served by :mod:`repro.serve`
(Python API and the ``scpm query`` CLI) to any number of concurrent
readers.

Layout: :mod:`~repro.store.schema` (DDL + connection pragmas),
:mod:`~repro.store.codec` (lossless typed text codec for vertex and
attribute values), :mod:`~repro.store.writer` (atomic per-run batch
writes, the materialised ε ranking and the FTS5 attribute index).

The round-trip is lossless: a result loaded back through
:class:`repro.serve.PatternStoreReader.load_result` compares
byte-identical — record order included — to the in-memory result, for
every engine × schedule × ``n_jobs`` configuration (differential suite
in ``tests/store/test_roundtrip.py``).
"""

from repro.store.codec import decode_value, encode_value
from repro.store.schema import SCHEMA_VERSION
from repro.store.verify import VerifyCheck, VerifyReport, verify_store
from repro.store.writer import (
    APPLY_DELTA_FAULT_SITES,
    SAVE_FAULT_SITES,
    PatternStore,
    save_result,
)

__all__ = [
    "PatternStore",
    "APPLY_DELTA_FAULT_SITES",
    "SAVE_FAULT_SITES",
    "save_result",
    "encode_value",
    "decode_value",
    "SCHEMA_VERSION",
    "VerifyCheck",
    "VerifyReport",
    "verify_store",
]

"""SQLite schema and connection policy of the persistent pattern store.

One store file holds any number of mining **runs**.  The layout follows
the batch-write / concurrent-read split of the serving tier: normalized
row tables written once per run inside a single transaction, plus two
read-optimised structures materialised at write time —

* ``epsilon_listing`` — the complete ``top_by_epsilon`` ranking of every
  run (rank, label, ε, σ), so ``top_k`` is an index walk instead of a
  sort over the run;
* ``attribute_search`` — a contentless FTS5 table over the attribute
  tokens of each attribute set (rowid = ``set_id``), used to narrow
  attribute-filter queries before the exact relational verification.

Connection policy (applied by :func:`connect`): ``journal_mode=WAL`` so
readers never block the writer and vice versa, ``synchronous=NORMAL``
(safe with WAL, avoids an fsync per commit), a 30 s ``busy_timeout`` so
rare write-lock collisions wait instead of raising ``database is
locked``, and ``foreign_keys=ON``.

Float columns that feed queries (``epsilon``, ``delta``, ``gamma``) are
stored twice: as ``REAL`` for ordering/filtering and as ``repr()`` text
for lossless reconstruction (SQLite REALs cannot represent NaN, and the
text form round-trips ``inf`` and every IEEE double exactly — the
byte-identity contract of the round-trip suite).
"""

from __future__ import annotations

import sqlite3
from pathlib import Path
from typing import Union

from repro.errors import StoreError

PathLike = Union[str, Path]

SCHEMA_VERSION = 1

#: Pragmas applied to every connection (writer and reader alike).
PRAGMAS = (
    "PRAGMA journal_mode=WAL",
    "PRAGMA synchronous=NORMAL",
    "PRAGMA busy_timeout=30000",
    "PRAGMA foreign_keys=ON",
)

DDL = """
CREATE TABLE IF NOT EXISTS store_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);

CREATE TABLE IF NOT EXISTS runs (
    run_id        INTEGER PRIMARY KEY,
    algorithm     TEXT NOT NULL,
    created_utc   TEXT NOT NULL,
    params_json   TEXT,
    counters_json TEXT NOT NULL,
    num_evaluated INTEGER NOT NULL,
    num_qualified INTEGER NOT NULL,
    num_patterns  INTEGER NOT NULL
);

CREATE TABLE IF NOT EXISTS attribute_sets (
    set_id                INTEGER PRIMARY KEY,
    run_id                INTEGER NOT NULL REFERENCES runs(run_id)
                          ON DELETE CASCADE,
    position              INTEGER NOT NULL,
    attributes_json       TEXT NOT NULL,
    label                 TEXT NOT NULL,
    support               INTEGER NOT NULL,
    epsilon               REAL NOT NULL,
    epsilon_text          TEXT NOT NULL,
    expected_epsilon_text TEXT NOT NULL,
    delta                 REAL,
    delta_text            TEXT NOT NULL,
    qualified             INTEGER NOT NULL,
    UNIQUE (run_id, position)
);

CREATE TABLE IF NOT EXISTS set_attributes (
    set_id    INTEGER NOT NULL REFERENCES attribute_sets(set_id)
              ON DELETE CASCADE,
    position  INTEGER NOT NULL,
    attribute TEXT NOT NULL,
    PRIMARY KEY (set_id, position)
);
CREATE INDEX IF NOT EXISTS idx_set_attributes_attribute
    ON set_attributes(attribute);

CREATE TABLE IF NOT EXISTS set_vertices (
    set_id INTEGER NOT NULL REFERENCES attribute_sets(set_id)
           ON DELETE CASCADE,
    vertex TEXT NOT NULL,
    PRIMARY KEY (set_id, vertex)
);

CREATE TABLE IF NOT EXISTS patterns (
    pattern_id      INTEGER PRIMARY KEY,
    set_id          INTEGER NOT NULL REFERENCES attribute_sets(set_id)
                    ON DELETE CASCADE,
    run_id          INTEGER NOT NULL REFERENCES runs(run_id)
                    ON DELETE CASCADE,
    position        INTEGER NOT NULL,
    attributes_json TEXT NOT NULL,
    gamma           REAL NOT NULL,
    gamma_text      TEXT NOT NULL,
    size            INTEGER NOT NULL,
    UNIQUE (set_id, position)
);

CREATE TABLE IF NOT EXISTS pattern_vertices (
    pattern_id INTEGER NOT NULL REFERENCES patterns(pattern_id)
               ON DELETE CASCADE,
    vertex     TEXT NOT NULL,
    PRIMARY KEY (pattern_id, vertex)
);
CREATE INDEX IF NOT EXISTS idx_pattern_vertices_vertex
    ON pattern_vertices(vertex);

CREATE TABLE IF NOT EXISTS epsilon_listing (
    run_id  INTEGER NOT NULL REFERENCES runs(run_id) ON DELETE CASCADE,
    rank    INTEGER NOT NULL,
    set_id  INTEGER NOT NULL REFERENCES attribute_sets(set_id),
    epsilon REAL NOT NULL,
    support INTEGER NOT NULL,
    label   TEXT NOT NULL,
    PRIMARY KEY (run_id, rank)
);
"""

FTS_DDL = (
    "CREATE VIRTUAL TABLE IF NOT EXISTS attribute_search "
    "USING fts5(tokens, content='')"
)


def fts5_available(connection: sqlite3.Connection) -> bool:
    """True when this SQLite build can create FTS5 virtual tables."""
    try:
        connection.execute(
            "CREATE VIRTUAL TABLE temp.fts5_probe USING fts5(x)"
        )
        connection.execute("DROP TABLE temp.fts5_probe")
        return True
    except sqlite3.OperationalError:
        return False


def apply_pragmas(connection: sqlite3.Connection) -> None:
    for pragma in PRAGMAS:
        connection.execute(pragma)


def connect(path: PathLike, create: bool = False) -> sqlite3.Connection:
    """Open a store connection with the WAL/read-concurrency pragmas.

    With ``create=False`` (the reader path) a missing file raises
    :class:`~repro.errors.StoreError` instead of letting SQLite conjure
    an empty database — a typo'd ``--store`` must fail loudly, not
    serve zero patterns.  ``check_same_thread`` is disabled; the serving
    layer hands one connection per thread anyway, and the concurrency
    suite opens its own readers.
    """
    path = Path(path)
    if not create and not path.exists():
        raise StoreError(f"pattern store {str(path)!r} does not exist")
    connection = sqlite3.connect(str(path), check_same_thread=False)
    apply_pragmas(connection)
    return connection


def initialize(connection: sqlite3.Connection) -> None:
    """Create the schema (idempotent) and record the store metadata."""
    connection.executescript(DDL)
    fts_enabled = fts5_available(connection)
    if fts_enabled:
        connection.execute(FTS_DDL)
    connection.execute(
        "INSERT OR IGNORE INTO store_meta (key, value) VALUES (?, ?)",
        ("schema_version", str(SCHEMA_VERSION)),
    )
    connection.execute(
        "INSERT OR IGNORE INTO store_meta (key, value) VALUES (?, ?)",
        ("fts_enabled", "1" if fts_enabled else "0"),
    )
    connection.commit()


def read_meta(connection: sqlite3.Connection, key: str) -> str:
    row = connection.execute(
        "SELECT value FROM store_meta WHERE key = ?", (key,)
    ).fetchone()
    if row is None:
        raise StoreError(f"store metadata key {key!r} missing — not a "
                         "pattern store or written by a newer version")
    return row[0]


def check_schema_version(connection: sqlite3.Connection) -> None:
    version = read_meta(connection, "schema_version")
    if version != str(SCHEMA_VERSION):
        raise StoreError(
            f"pattern store schema version {version} is not supported "
            f"(expected {SCHEMA_VERSION})"
        )

"""Chunk-level invalidation — which cached work survives a graph edit.

The evolve layer (:mod:`repro.graph.evolve`) reports an edit batch as a
set of **touched chunks**: the :data:`~repro.graph.sparseset.CHUNK_BITS`-
wide id blocks in which some adjacency or attribute-holder bit changed.
This module answers the question every cache above the graph asks after
an update: *does my working set intersect the touched footprint?*

The soundness argument is the heart of incremental mining.  A coverage
search (and therefore a :class:`~repro.quasiclique.memo.CoverageMemo`
entry, an attribute-set record, or a whole mined branch) is a pure
function of the subgraph induced by its working set ``W``.  An edge edit
``(u, v)`` changes adjacency containers only at the bits of ``u`` and
``v``; if ``W`` avoids the chunks of both endpoints then ``u, v ∉ W``
and every restricted adjacency ``adj(x) ∩ W`` for ``x ∈ W`` is
bit-for-bit unchanged — the induced subgraph is identical, so the cached
answer is still exact.  Conversely any entry whose working set *does*
intersect a touched chunk may be stale and must be recomputed.  The
evolve footprint is conservative (chunk-granular, not bit-granular), so
eviction can only err toward recomputing something that was still valid
— never toward serving a stale answer.

Natives come in two shapes (the engine seam): dense int masks and
chunked :class:`~repro.graph.sparseset.SparseBitset` containers.
:func:`native_touches` handles both, and
:func:`invalidate_memo` applies it to every memo key.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional, Set, Union

from repro.graph.sparseset import CHUNK_BITS, _CHUNK_MASK, SparseBitset
from repro.quasiclique.memo import CoverageMemo

Native = Union[int, SparseBitset]


def chunk_of(vertex_id: int) -> int:
    """Chunk id of one dense vertex id."""
    return vertex_id // CHUNK_BITS


def chunks_of_native(native: Native) -> Set[int]:
    """The set of chunk ids a native vertex set occupies."""
    if isinstance(native, SparseBitset):
        return set(native._chunks)
    chunks = set()
    chunk = 0
    mask = native
    while mask:
        if mask & _CHUNK_MASK:
            chunks.add(chunk)
        mask >>= CHUNK_BITS
        chunk += 1
    return chunks


def native_touches(native: Native, touched: Iterable[int]) -> bool:
    """``True`` when the native set has a member in any touched chunk.

    Works on both engine natives: a :class:`SparseBitset` consults its
    chunk dictionary directly; a dense int mask tests the corresponding
    bit window per touched chunk (touched sets are small — a handful of
    chunks per edit batch — so the per-chunk shift is the cheap side).
    """
    if isinstance(native, SparseBitset):
        chunks = native._chunks
        return any(chunk in chunks for chunk in touched)
    return any(
        (native >> (chunk * CHUNK_BITS)) & _CHUNK_MASK for chunk in touched
    )


def invalidate_memo(
    memo: Optional[CoverageMemo], touched: FrozenSet[int]
) -> int:
    """Evict every memo entry whose working set intersects ``touched``.

    Returns the number of evicted entries (0 when the memo is off or the
    footprint empty).  Entries that survive are provably still exact:
    their working sets avoid every touched chunk, so the subgraphs they
    answer for did not change (see the module docstring).
    """
    if memo is None or not touched:
        return 0
    return memo.evict_where(lambda key: native_touches(key[0], touched))


__all__ = [
    "chunk_of",
    "chunks_of_native",
    "invalidate_memo",
    "native_touches",
]

"""Set-enumeration search engine for quasi-cliques (Algorithm 1 of the paper).

One engine drives the three tasks the paper needs:

* :meth:`QuasiCliqueSearch.enumerate_maximal` — all maximal γ-quasi-cliques
  (used by the Naive baseline, mirroring the Quick algorithm);
* :meth:`QuasiCliqueSearch.covered_vertices` — the set ``K`` of vertices that
  belong to at least one quasi-clique, computed with *cover pruning* and
  early termination (this is how SCPM evaluates the structural correlation);
* :meth:`QuasiCliqueSearch.top_k` — the k largest/densest patterns with the
  dynamically increasing size threshold of Section 3.2.3.

Candidates ``(X, candExts(X))`` are explored over a set-enumeration tree
(Figure 2 of the paper).  A deque gives the BFS strategy, a stack the DFS
strategy.  The pruning rules live in :mod:`repro.quasiclique.pruning`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.errors import ParameterError
from repro.graph.attributed_graph import AttributedGraph
from repro.quasiclique.definitions import (
    QuasiCliqueParams,
    gamma_of,
    restricted_adjacency,
    satisfies_degree_condition,
)
from repro.quasiclique.pruning import (
    DistanceIndex,
    prune_low_degree_vertices,
    restrict_candidates,
    subtree_is_hopeless,
)

Vertex = Hashable
Adjacency = Dict[Vertex, Set[Vertex]]

BFS = "bfs"
DFS = "dfs"
_ORDERS = (BFS, DFS)


class SearchBudgetExceeded(RuntimeError):
    """Raised when a node budget is set and the search would exceed it."""


@dataclass
class SearchStats:
    """Counters describing one quasi-clique search run."""

    nodes_expanded: int = 0
    lookahead_hits: int = 0
    satisfying_sets_found: int = 0
    pruned_hopeless: int = 0
    pruned_covered: int = 0
    pruned_by_size: int = 0


@dataclass
class _Node:
    """A search-tree node: the growing set X and its candidate extensions."""

    members: Tuple[Vertex, ...]
    candidates: Set[Vertex] = field(default_factory=set)


class QuasiCliqueSearch:
    """Quasi-clique search over a graph or a vertex-restricted subgraph.

    Parameters
    ----------
    graph:
        The (induced) graph to search.  Only its adjacency is used.
    params:
        Quasi-clique parameters ``(γ, min_size)``.
    vertices:
        Optional restriction of the working vertex set (used by SCPM's
        Theorem-3 vertex pruning: only vertices covered for every parent
        attribute set need to be considered).
    order:
        ``"dfs"`` (default) or ``"bfs"`` — the traversal strategy.
    use_distance_pruning:
        Enable the diameter-based candidate restriction (only effective for
        γ ≥ 0.5, where the bound is valid).
    node_budget:
        Optional hard cap on expanded nodes; exceeding it raises
        :class:`SearchBudgetExceeded`.  ``None`` (default) means unlimited.
    """

    def __init__(
        self,
        graph: AttributedGraph,
        params: QuasiCliqueParams,
        vertices: Optional[Iterable[Vertex]] = None,
        order: str = DFS,
        use_distance_pruning: bool = True,
        node_budget: Optional[int] = None,
    ) -> None:
        if order not in _ORDERS:
            raise ParameterError(f"order must be one of {_ORDERS}, got {order!r}")
        self.params = params
        self.order = order
        self.node_budget = node_budget
        self.stats = SearchStats()

        if vertices is None:
            working_vertices = list(graph.vertices())
        else:
            working_vertices = [v for v in vertices if graph.has_vertex(v)]
        base_adjacency = {
            v: set(graph.neighbor_set(v)) for v in working_vertices
        }
        keep = set(working_vertices)
        for vertex, neighbors in base_adjacency.items():
            base_adjacency[vertex] = neighbors & keep
        self._adjacency: Adjacency = prune_low_degree_vertices(base_adjacency, params)
        self._distance_index = (
            DistanceIndex(self._adjacency, params.distance_bound)
            if use_distance_pruning
            else None
        )
        # Fixed total order over the working vertices: ascending degree is the
        # classical heuristic (small candidate sets near the root).
        ordered = sorted(
            self._adjacency,
            key=lambda v: (len(self._adjacency[v]), repr(v)),
        )
        self._rank: Dict[Vertex, int] = {v: i for i, v in enumerate(ordered)}
        self._ordered_vertices: List[Vertex] = ordered

    # ------------------------------------------------------------------
    # public modes
    # ------------------------------------------------------------------
    @property
    def working_vertices(self) -> FrozenSet[Vertex]:
        """Vertices that survived the global minimum-degree pruning."""
        return frozenset(self._adjacency)

    def enumerate_maximal(self) -> List[FrozenSet[Vertex]]:
        """Enumerate every maximal γ-quasi-clique of size ≥ ``min_size``.

        Maximality follows Definition 1: a satisfying vertex set with no
        satisfying proper superset.  The search emits every satisfying set
        that is not subsumed by a lookahead hit and a containment filter
        removes non-maximal emissions, which yields exactly the maximal
        sets (each satisfying set is contained in some emitted set).
        """
        emitted: List[FrozenSet[Vertex]] = []
        self._run(mode="enumerate", emitted=emitted)
        return _maximal_only(emitted)

    def covered_vertices(
        self, targets: Optional[Iterable[Vertex]] = None
    ) -> FrozenSet[Vertex]:
        """Return the vertices covered by at least one quasi-clique.

        ``targets`` optionally limits the vertices whose coverage status is
        required; the search stops as soon as every target is covered and
        skips subtrees that cannot cover a new target.  The returned set
        contains exactly the covered vertices among the targets (all working
        vertices when ``targets`` is ``None``).
        """
        if targets is None:
            target_set = set(self._adjacency)
        else:
            target_set = {v for v in targets if v in self._adjacency}
        covered: Set[Vertex] = set(self._greedy_cover(target_set))
        if not (target_set <= covered):
            self._run(mode="coverage", covered=covered, targets=target_set)
        return frozenset(covered & target_set)

    def top_k(self, k: int) -> List[Tuple[FrozenSet[Vertex], float]]:
        """Return the top-``k`` patterns ranked by size then density (γ).

        The result is a list of ``(vertex_set, gamma)`` pairs, best first.
        Following Section 3.2.3, the minimum size threshold is raised as the
        result set fills up, pruning subtrees that cannot beat the current
        k-th best pattern.

        Guarantees: the largest pattern is exact, every returned set
        satisfies Definition 1's degree/size condition, and the results are
        pairwise incomparable.  Because the pruning threshold is driven by
        the *current* pattern set — which can momentarily contain
        non-maximal candidates, exactly as in the paper's rule — patterns
        ranked 2..k may occasionally be larger than the true k-th maximal
        pattern would allow smaller ones to appear; in practice this only
        shows up on adversarial tiny graphs (see the property tests).
        """
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k}")
        current_top: List[FrozenSet[Vertex]] = []
        # Seed the result set with greedily found quasi-cliques so the dynamic
        # size threshold of Section 3.2.3 starts pruning immediately.
        for seed in self._greedy_satisfying_sets(set(self._adjacency)):
            self._record(seed, "topk", current_top, None, k)
        self._run(mode="topk", emitted=current_top, k=k)
        ranked = sorted(
            (
                (candidate, gamma_of(self._adjacency, candidate))
                for candidate in current_top
            ),
            key=lambda pair: (-len(pair[0]), -pair[1], sorted(map(repr, pair[0]))),
        )
        return ranked[:k]

    # ------------------------------------------------------------------
    # greedy coverage seed
    # ------------------------------------------------------------------
    def _greedy_satisfying_sets(self, targets: Set[Vertex]) -> List[FrozenSet[Vertex]]:
        """Cheap sound pre-pass that finds obvious quasi-cliques around dense vertices.

        For each still-unvisited target (densest first) the closed
        neighbourhood is shrunk greedily — dropping the weakest vertex while
        the γ degree condition fails — and, whenever a satisfying set
        remains, it is recorded.  Only verified satisfying sets are returned,
        so the pre-pass never over-reports; the exact search that follows
        settles everything else.  In dense planted communities this removes
        almost all the enumeration work.
        """
        adjacency = self._adjacency
        params = self.params
        found: List[FrozenSet[Vertex]] = []
        seen: Set[Vertex] = set()
        order = sorted(targets, key=lambda v: -len(adjacency[v]))
        for vertex in order:
            if vertex in seen:
                continue
            candidate = set(adjacency[vertex]) | {vertex}
            while len(candidate) >= params.min_size:
                if satisfies_degree_condition(adjacency, candidate, params):
                    frozen = frozenset(candidate)
                    found.append(frozen)
                    seen |= frozen
                    break
                removable = [v for v in candidate if v != vertex]
                weakest = min(
                    removable,
                    key=lambda v: (len(adjacency[v] & candidate), repr(v)),
                )
                candidate.discard(weakest)
        return found

    def _greedy_cover(self, targets: Set[Vertex]) -> Set[Vertex]:
        """Vertices covered by the greedy pre-pass (see ``_greedy_satisfying_sets``)."""
        covered: Set[Vertex] = set()
        for satisfying in self._greedy_satisfying_sets(targets):
            self.stats.satisfying_sets_found += 1
            covered |= satisfying
        return covered

    # ------------------------------------------------------------------
    # engine
    # ------------------------------------------------------------------
    def _run(
        self,
        mode: str,
        emitted: Optional[List[FrozenSet[Vertex]]] = None,
        covered: Optional[Set[Vertex]] = None,
        targets: Optional[Set[Vertex]] = None,
        k: int = 0,
    ) -> None:
        """Drive the set-enumeration search in the requested ``mode``."""
        if not self._adjacency:
            return
        params = self.params
        adjacency = self._adjacency
        frontier: deque = deque()
        frontier.append(_Node(members=(), candidates=set(adjacency)))

        while frontier:
            node = frontier.popleft() if self.order == BFS else frontier.pop()
            self.stats.nodes_expanded += 1
            if self.node_budget is not None and self.stats.nodes_expanded > self.node_budget:
                raise SearchBudgetExceeded(
                    f"expanded more than {self.node_budget} candidate quasi-cliques"
                )

            members = set(node.members)
            candidates = restrict_candidates(
                adjacency, members, node.candidates, params, self._distance_index
            )

            if mode == "coverage":
                assert covered is not None and targets is not None
                if targets <= covered:
                    return
                union = members | candidates
                if not (union - covered) or not (union & (targets - covered)):
                    self.stats.pruned_covered += 1
                    continue

            if mode == "topk" and emitted is not None and len(emitted) >= k:
                smallest_top = min(len(pattern) for pattern in emitted)
                if len(members) + len(candidates) < smallest_top:
                    self.stats.pruned_by_size += 1
                    continue

            if subtree_is_hopeless(adjacency, members, candidates, params):
                self.stats.pruned_hopeless += 1
                continue

            union = members | candidates
            if candidates and satisfies_degree_condition(adjacency, union, params):
                # Lookahead: X ∪ candExts(X) is itself a quasi-clique — it
                # subsumes every satisfying set of this subtree.
                self.stats.lookahead_hits += 1
                self._record(union, mode, emitted, covered, k)
                continue

            if len(members) >= params.min_size and satisfies_degree_condition(
                adjacency, members, params
            ):
                self._record(frozenset(members), mode, emitted, covered, k)

            if not candidates:
                continue
            ordered_candidates = sorted(candidates, key=self._rank.__getitem__)
            children: List[_Node] = []
            for index, vertex in enumerate(ordered_candidates):
                child_candidates = set(ordered_candidates[index + 1 :])
                children.append(
                    _Node(members=node.members + (vertex,), candidates=child_candidates)
                )
            if self.order == DFS:
                # push in reverse so the smallest-ranked extension is explored first
                children.reverse()
            frontier.extend(children)

    def _record(
        self,
        vertex_set: AbstractSet[Vertex],
        mode: str,
        emitted: Optional[List[FrozenSet[Vertex]]],
        covered: Optional[Set[Vertex]],
        k: int,
    ) -> None:
        """Register a satisfying vertex set according to the search mode."""
        self.stats.satisfying_sets_found += 1
        frozen = frozenset(vertex_set)
        if mode == "coverage":
            assert covered is not None
            covered |= frozen
            return
        assert emitted is not None
        if mode == "enumerate":
            emitted.append(frozen)
            return
        # top-k mode: keep only the current best, containment-filtered, so the
        # dynamic size threshold reflects k *distinct* candidate patterns.
        if any(frozen <= existing for existing in emitted):
            return
        emitted[:] = [existing for existing in emitted if not existing < frozen]
        emitted.append(frozen)
        adjacency = self._adjacency
        emitted.sort(
            key=lambda pattern: (
                -len(pattern),
                -gamma_of(adjacency, pattern),
                sorted(map(repr, pattern)),
            )
        )
        del emitted[k:]


def _maximal_only(vertex_sets: Sequence[FrozenSet[Vertex]]) -> List[FrozenSet[Vertex]]:
    """Filter a collection of vertex sets down to the inclusion-maximal ones."""
    unique = list(dict.fromkeys(vertex_sets))
    unique.sort(key=len, reverse=True)
    maximal: List[FrozenSet[Vertex]] = []
    for candidate in unique:
        if not any(candidate < other for other in maximal):
            maximal.append(candidate)
    return maximal


# ----------------------------------------------------------------------
# convenience functions
# ----------------------------------------------------------------------
def find_quasi_cliques(
    graph: AttributedGraph,
    gamma: float,
    min_size: int,
    order: str = DFS,
    vertices: Optional[Iterable[Vertex]] = None,
) -> List[FrozenSet[Vertex]]:
    """Enumerate the maximal γ-quasi-cliques of ``graph``.

    Examples
    --------
    >>> from repro.datasets import paper_example_graph
    >>> cliques = find_quasi_cliques(paper_example_graph(), gamma=0.6, min_size=4)
    >>> sorted(map(len, cliques))
    [4, 4, 4, 4, 6]
    """
    params = QuasiCliqueParams(gamma=gamma, min_size=min_size)
    search = QuasiCliqueSearch(graph, params, vertices=vertices, order=order)
    return search.enumerate_maximal()


def vertices_in_quasi_cliques(
    graph: AttributedGraph,
    gamma: float,
    min_size: int,
    order: str = DFS,
    vertices: Optional[Iterable[Vertex]] = None,
    targets: Optional[Iterable[Vertex]] = None,
) -> FrozenSet[Vertex]:
    """Return the set ``K`` of vertices belonging to at least one quasi-clique."""
    params = QuasiCliqueParams(gamma=gamma, min_size=min_size)
    search = QuasiCliqueSearch(graph, params, vertices=vertices, order=order)
    return search.covered_vertices(targets=targets)


def top_k_quasi_cliques(
    graph: AttributedGraph,
    gamma: float,
    min_size: int,
    k: int,
    order: str = DFS,
    vertices: Optional[Iterable[Vertex]] = None,
) -> List[Tuple[FrozenSet[Vertex], float]]:
    """Return the top-``k`` quasi-cliques of ``graph`` by size then density."""
    params = QuasiCliqueParams(gamma=gamma, min_size=min_size)
    search = QuasiCliqueSearch(graph, params, vertices=vertices, order=order)
    return search.top_k(k)
